"""Performance-per-watt: the paper's headline efficiency metric.

Performance-per-watt is "the number of instructions executed per Joule
of energy" (Section I): IPC × frequency / power = instructions /
energy.  Gains are reported relative to the LRU baseline (Figures 2, 9,
17).
"""

from __future__ import annotations

from ..config import SimulationConfig
from ..core.stats import SimulationStats
from .mcpat import CorePowerModel


def performance_per_watt(
    config: SimulationConfig,
    stats: SimulationStats,
    *,
    uop_cache_present: bool = True,
    model: CorePowerModel | None = None,
) -> float:
    """Instructions per joule for one run."""
    if model is None:
        model = CorePowerModel(config)
    timing = model.timing(stats)
    energy = model.breakdown(
        stats, timing, uop_cache_present=uop_cache_present
    ).total
    if energy <= 0:
        return 0.0
    return stats.instructions / energy


def ppw_gain(
    config: SimulationConfig,
    stats: SimulationStats,
    baseline: SimulationStats,
    *,
    model: CorePowerModel | None = None,
) -> float:
    """Relative performance-per-watt gain over a baseline (0.031 = +3.1%)."""
    if model is None:
        model = CorePowerModel(config)
    new = performance_per_watt(config, stats, model=model)
    old = performance_per_watt(config, baseline, model=model)
    if old == 0:
        return 0.0
    return new / old - 1.0
