"""CACTI-style cache energy estimation.

CACTI models SRAM access energy and leakage from geometry and process
technology.  The paper runs CACTI at 22 nm for the icache and, because
"the micro-op cache is not modeled by CACTI by default", builds its
micro-op cache power model "following the same structure of the icache
but with micro-op cache parameters" — exactly what
:func:`cacti_estimate` provides: per-access read/write energy and
leakage scaled by capacity, associativity and port width with the
empirical exponents CACTI exhibits in this size range (energy grows
roughly with the square root of capacity and sub-linearly with
associativity).

Absolute joules are calibrated to published 22 nm L1 figures (a 32 KiB
8-way L1 read ≈ 20-30 pJ); the experiments only consume *relative*
energies, which these scaling laws preserve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

#: Reference point: 32 KiB, 8-way, 64 B lines at 22 nm.
_REF_BYTES = 32 * 1024
_REF_WAYS = 8
_REF_READ_PJ = 24.0
_REF_WRITE_PJ = 30.0
_REF_LEAKAGE_MW = 12.0

#: Dennard-ish dynamic-energy scaling per technology node, relative to 22 nm.
_TECH_ENERGY_SCALE = {45: 3.2, 32: 1.8, 22: 1.0, 16: 0.62, 14: 0.55, 7: 0.30}


@dataclass(frozen=True, slots=True)
class StructureEnergy:
    """Energy characteristics of one SRAM structure."""

    read_pj: float
    write_pj: float
    leakage_mw: float

    def scaled(self, factor: float) -> "StructureEnergy":
        return StructureEnergy(
            self.read_pj * factor, self.write_pj * factor, self.leakage_mw * factor
        )


def cacti_estimate(
    size_bytes: int,
    ways: int,
    *,
    line_bytes: int = 64,
    tech_nm: int = 22,
    read_ports: int = 1,
) -> StructureEnergy:
    """Estimate per-access energy and leakage for an SRAM structure.

    Scaling laws (empirical fits to CACTI sweeps in the 4-128 KiB
    range): dynamic energy ∝ capacity^0.5 × ways^0.25 × ports;
    leakage ∝ capacity × ports^0.5.
    """
    if size_bytes <= 0 or ways <= 0 or line_bytes <= 0 or read_ports <= 0:
        raise ConfigurationError("structure geometry must be positive")
    try:
        tech = _TECH_ENERGY_SCALE[tech_nm]
    except KeyError:
        raise ConfigurationError(
            f"unsupported technology node {tech_nm} nm; "
            f"known: {sorted(_TECH_ENERGY_SCALE)}"
        ) from None
    capacity_factor = math.sqrt(size_bytes / _REF_BYTES)
    way_factor = (ways / _REF_WAYS) ** 0.25
    dynamic = capacity_factor * way_factor * read_ports * tech
    leakage = (size_bytes / _REF_BYTES) * math.sqrt(read_ports) * tech
    return StructureEnergy(
        read_pj=_REF_READ_PJ * dynamic,
        write_pj=_REF_WRITE_PJ * dynamic,
        leakage_mw=_REF_LEAKAGE_MW * leakage,
    )


def uop_cache_energy(
    entries: int, ways: int, uops_per_entry: int, *, tech_nm: int = 22
) -> StructureEnergy:
    """Micro-op cache energy, modelled "following the same structure of
    the icache but with micro-op cache parameters" (Section VI-C).

    Entry size follows the paper's footnote: 56 bits per micro-op × 8
    micro-ops + 4 × 32-bit immediates = 576 bits = 72 bytes per entry.
    """
    bits_per_entry = 56 * uops_per_entry + 32 * 4
    size_bytes = entries * bits_per_entry // 8
    return cacti_estimate(size_bytes, ways, line_bytes=bits_per_entry // 8,
                          tech_nm=tech_nm)
