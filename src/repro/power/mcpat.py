"""McPAT-style per-core power aggregation.

McPAT combines static configuration (structure geometries, technology)
with dynamic activity counters (accesses, decoded micro-ops, cycles) to
estimate per-core power.  This model does the same from
:class:`~repro.core.stats.SimulationStats`:

* **decoder** — energy per legacy-decoded micro-op plus idle leakage;
  clock-gated while the micro-op cache supplies the frontend, which is
  where the micro-op cache's energy win comes from (Section II-A);
* **icache** — per-line read energy on the legacy path plus leakage;
* **micro-op cache** — tag probe per lookup, entry reads on hits, entry
  writes on insertions (the component FURBYS's bypass reduces,
  Figure 14) plus leakage;
* **branch** — BTB/predictor access energy;
* **backend & other** — execution energy per micro-op plus the rest of
  the core's static power.

Constants are calibrated so a *no-micro-op-cache* core spends ≈12.5% of
its power in the decoder and ≈7.7% in the icache, matching the paper's
Figure 13 cross-check against published x86 measurements [40], [65].
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimulationConfig
from ..core.stats import SimulationStats
from ..timing.model import TimingModel, TimingResult
from .cacti import cacti_estimate, uop_cache_energy

# --- calibrated activity energies (pJ per event, 22 nm) --------------------
DECODE_UOP_PJ = 9.0
DECODE_LEAK_MW = 9.0
ICACHE_LINE_READ_PJ = 40.0
UOPC_PROBE_PJ = 1.2
UOPC_READ_ENTRY_PJ = 2.6
UOPC_WRITE_ENTRY_PJ = 3.4
BTB_ACCESS_PJ = 2.2
BP_ACCESS_PJ = 1.6
BACKEND_UOP_PJ = 52.0
OTHER_LEAK_MW = 105.0


@dataclass(slots=True)
class EnergyBreakdown:
    """Per-structure core energy for one run (joules)."""

    decoder: float
    icache: float
    uop_cache: float
    branch: float
    backend_other: float

    @property
    def total(self) -> float:
        return (
            self.decoder + self.icache + self.uop_cache + self.branch
            + self.backend_other
        )

    def fraction(self, component: str) -> float:
        if self.total == 0:
            return 0.0
        return getattr(self, component) / self.total

    def as_dict(self) -> dict[str, float]:
        return {
            "decoder": self.decoder,
            "icache": self.icache,
            "uop_cache": self.uop_cache,
            "branch": self.branch,
            "backend_other": self.backend_other,
        }


class CorePowerModel:
    """Aggregate activity counters into core energy and power."""

    def __init__(self, config: SimulationConfig, *, tech_nm: int = 22) -> None:
        self.config = config
        self.tech_nm = tech_nm
        self._icache_energy = cacti_estimate(
            config.icache.size_bytes, config.icache.ways, tech_nm=tech_nm
        )
        self._uopc_energy = uop_cache_energy(
            config.uop_cache.entries,
            config.uop_cache.ways,
            config.uop_cache.uops_per_entry,
            tech_nm=tech_nm,
        )
        self._timing = TimingModel(config)

    # --- energy ------------------------------------------------------------------

    def _seconds(self, timing: TimingResult) -> float:
        return timing.cycles / (self.config.core.frequency_ghz * 1e9)

    def breakdown(
        self,
        stats: SimulationStats,
        timing: TimingResult | None = None,
        *,
        uop_cache_present: bool = True,
    ) -> EnergyBreakdown:
        """Per-structure energy for a run.

        ``uop_cache_present=False`` models the Figure 13 reference core
        without a micro-op cache: every micro-op decodes through the
        legacy pipe and every fetch reads the icache.
        """
        if timing is None:
            timing = self._timing.evaluate(stats)
        seconds = self._seconds(timing)
        pj = 1e-12

        if uop_cache_present:
            decoded_uops = stats.decoder_uops
            icache_lines = stats.icache_accesses
            uopc = (
                stats.lookups * UOPC_PROBE_PJ
                + stats.uop_cache_reads * UOPC_READ_ENTRY_PJ
                + stats.uop_cache_writes * UOPC_WRITE_ENTRY_PJ
            ) * pj + self._uopc_energy.leakage_mw * 1e-3 * seconds
        else:
            decoded_uops = stats.uops_total
            # Without a micro-op cache the icache serves every fetch:
            # roughly one line read per PW lookup.
            icache_lines = stats.lookups
            uopc = 0.0

        # Decoder: active energy per decoded micro-op; leakage scales
        # down with clock-gating (idle when the uop cache supplies).
        active_fraction = decoded_uops / max(1, stats.uops_total)
        decoder = (
            decoded_uops * DECODE_UOP_PJ * pj
            + DECODE_LEAK_MW * 1e-3 * seconds * (0.3 + 0.7 * active_fraction)
        )
        icache = (
            icache_lines * ICACHE_LINE_READ_PJ * pj
            + self._icache_energy.leakage_mw * 1e-3 * seconds
            * (0.3 + 0.7 * active_fraction)
        )
        branch = (
            stats.btb_accesses * BTB_ACCESS_PJ + stats.branches * BP_ACCESS_PJ
        ) * pj
        backend_other = (
            stats.uops_total * BACKEND_UOP_PJ * pj
            + OTHER_LEAK_MW * 1e-3 * seconds
        )
        return EnergyBreakdown(
            decoder=decoder,
            icache=icache,
            uop_cache=uopc,
            branch=branch,
            backend_other=backend_other,
        )

    def power_watts(
        self, stats: SimulationStats, timing: TimingResult | None = None,
        *, uop_cache_present: bool = True,
    ) -> float:
        if timing is None:
            timing = self._timing.evaluate(stats)
        seconds = self._seconds(timing)
        if seconds <= 0:
            return 0.0
        return self.breakdown(
            stats, timing, uop_cache_present=uop_cache_present
        ).total / seconds

    def timing(self, stats: SimulationStats) -> TimingResult:
        return self._timing.evaluate(stats)
