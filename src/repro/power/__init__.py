"""Power modeling: CACTI-style structure energies + McPAT-style core
aggregation + performance-per-watt (Figures 2, 9, 13, 14, 17)."""

from .cacti import StructureEnergy, cacti_estimate
from .mcpat import CorePowerModel, EnergyBreakdown
from .ppw import performance_per_watt, ppw_gain

__all__ = [
    "StructureEnergy",
    "cacti_estimate",
    "CorePowerModel",
    "EnergyBreakdown",
    "performance_per_watt",
    "ppw_gain",
]
