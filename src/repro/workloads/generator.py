"""Dynamic trace generation: walking a CFG into a PW lookup stream.

The generator executes a :class:`~repro.workloads.cfg.ProgramCFG` the way
a decoupled frontend would observe it (Section II-B of the paper):

* execution follows blocks, sampling each terminating conditional branch
  against its bias;
* a prediction window accumulates instructions from a control-flow
  target until the first predicted-taken branch, or until the next
  instruction would start outside the icache line of the PW's start
  (PWs are "terminated by the last instruction of a cache line");
* *phases* periodically shift which functions are hot, producing the
  globally-cold-but-locally-hot windows that motivate FURBYS's local
  miss-pitfall detector (Section V).

Because the static code image is deterministic, two dynamic PWs with the
same start address and same branch outcomes are identical — and the same
start with a different outcome on an internal branch yields the
overlapping same-start/different-length windows of Section II-D.
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass

from .. import stagetimer
from ..core.pw import PWLookup
from ..core.trace import (
    FLAG_CONTAINS,
    FLAG_MISPREDICTED,
    FLAG_TERMINATED,
    Trace,
    TraceColumns,
    TraceMetadata,
    trace_fastpath_enabled,
)
from ..errors import ConfigurationError
from .cfg import BasicBlock, ProgramCFG

#: Version of the generation algorithm.  Any change that alters the
#: emitted lookup sequence for a given (CFG, parameters) pair must bump
#: this — it keys the disk trace cache
#: (:func:`repro.harness.artifacts.load_cached_trace`), so a stale
#: cached trace can never masquerade as a regenerated one.
GENERATOR_VERSION = "1"


class _TraceComplete(Exception):
    """Internal signal: the requested number of lookups was emitted."""


@dataclass(slots=True)
class _PendingPW:
    """Prediction window being accumulated."""

    start: int = -1
    line: int = -1
    uops: int = 0
    insts: int = 0
    end: int = 0
    #: The window includes a block-terminating (branch) instruction.
    has_branch: bool = False

    @property
    def empty(self) -> bool:
        return self.start < 0

    def reset(self) -> None:
        self.start = -1
        self.line = -1
        self.uops = 0
        self.insts = 0
        self.end = 0
        self.has_branch = False


class TraceGenerator:
    """Walk a CFG and emit a deterministic PW lookup trace.

    Parameters mirror the application-profile knobs in
    :mod:`repro.workloads.apps`; see :func:`generate_trace` for the
    common entry point.
    """

    #: Maximum modelled call depth (beyond it, call edges are ignored).
    MAX_CALL_DEPTH = 2

    def __init__(
        self,
        cfg: ProgramCFG,
        *,
        seed: int,
        zipf_alpha: float = 1.1,
        phase_length: int = 4000,
        phase_count: int = 4,
        in_phase_bias: float = 0.85,
        phase_loop_length: int = 90,
        phase_stability: float = 0.7,
        structure_seed: int | None = None,
        line_bytes: int = 64,
        target_mispredict_mpki: float | None = None,
    ) -> None:
        if not cfg.functions:
            raise ConfigurationError("cannot generate a trace from an empty CFG")
        if phase_count <= 0 or phase_length <= 0:
            raise ConfigurationError("phase_count and phase_length must be positive")
        self._cfg = cfg
        self._seed = seed
        self._rng = random.Random(seed)
        self._line_bytes = line_bytes
        self._target_mpki = target_mispredict_mpki
        self._phase_length = phase_length
        self._in_phase_bias = in_phase_bias
        self._lookups: list[PWLookup] = []
        self._limit = 0
        self._pending = _PendingPW()
        self._mispredict_mult = self._calibrate_mispredictions(
            target_mispredict_mpki
        )
        # The icache-line segmentation of a block is static (addresses
        # never change), so it is computed once per block here instead of
        # per execution in the walk; likewise the effective mispredict
        # probability (bias x calibration multiplier, clamped).
        self._block_segments: list[list[tuple[tuple[int, int, int, int, int], ...]]] = [
            [self._segment_block(block) for block in function.blocks]
            for function in cfg.functions
        ]
        self._block_mis_rate: list[list[float]] = []
        self._refresh_mis_rates()
        # Per-branch Bresenham accumulators: outcomes follow the branch's
        # bias as a deterministic periodic pattern, so both directions of
        # every branch surface early (matching steady-state code, where
        # rare paths are rare but not forever-unseen) instead of as an
        # unbounded random novelty tail.
        self._outcome_acc: dict[int, float] = {}

        nfuncs = len(cfg.functions)
        weights = [1.0 / (rank + 1) ** zipf_alpha for rank in range(nfuncs)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        self._zipf_cdf = cumulative
        # Each phase gets its own hotness permutation so different
        # functions are hot in different program phases — but the top
        # ``phase_stability`` fraction of hotness ranks maps to the same
        # functions in every phase.  Real services keep their core
        # request paths hot across phases; only peripheral features
        # rotate, and those rotating functions are what exercises
        # FURBYS's local miss-pitfall detector.
        # Phase permutations and request loops describe the *binary's*
        # handler structure, not one run's randomness: they derive from
        # ``structure_seed`` so different inputs of the same application
        # share them (the property the Figure 18 cross-validation
        # depends on), while the walk itself still differs per input.
        if structure_seed is None:
            structure_seed = seed
        perm_rng = random.Random(structure_seed ^ 0x5EED)
        stable = round(nfuncs * min(1.0, max(0.0, phase_stability)))
        self._phase_perms: list[list[int]] = []
        for _ in range(phase_count):
            tail = list(range(stable, nfuncs))
            perm_rng.shuffle(tail)
            self._phase_perms.append(list(range(stable)) + tail)
        # Each phase serves requests through a fixed *request loop* — a
        # cyclic sequence of handler functions, as a server iterating
        # over its request-processing paths.  Cyclic working sets larger
        # than the micro-op cache are what make replacement policy
        # quality matter (LRU degenerates on them; Section III-B).
        #
        # All phases share a stable core (the service's main request
        # paths — the paper's "warm" PWs, which profile-guided policies
        # learn to keep); each phase replaces the remaining
        # ``1 - phase_stability`` of the loop with its own functions,
        # producing the locally-hot-but-globally-cold windows that
        # exercise the miss-pitfall detector.
        base_loop: list[int] = []
        for _ in range(max(1, phase_loop_length)):
            rank = bisect.bisect_left(self._zipf_cdf, perm_rng.random())
            base_loop.append(min(rank, nfuncs - 1))
        self._phase_loops: list[list[int]] = []
        stability = min(1.0, max(0.0, phase_stability))
        for perm in self._phase_perms:
            loop = list(base_loop)
            for slot in range(len(loop)):
                if perm_rng.random() >= stability:
                    rank = bisect.bisect_left(self._zipf_cdf, perm_rng.random())
                    loop[slot] = perm[min(rank, nfuncs - 1)]
            self._phase_loops.append(loop)
        self._loop_cursor = 0

    # --- misprediction calibration -------------------------------------------

    def _calibrate_mispredictions(self, target_mpki: float | None) -> float:
        """Scale factor so expected mispredictions/kilo-inst ≈ target.

        Uses a static estimate (uniform block usage); dynamic skew makes
        the measured value deviate modestly, which is fine — Table II
        only needs the per-app ordering and magnitude.
        """
        if target_mpki is None:
            return 1.0
        total_insts = self._cfg.total_insts
        expected_mispredicts = sum(
            block.mispredict_rate
            for function in self._cfg.functions
            for block in function.blocks
        )
        if expected_mispredicts <= 0 or total_insts <= 0:
            return 1.0
        current_mpki = 1000.0 * expected_mispredicts / total_insts
        return target_mpki / current_mpki

    # --- PW accumulation ------------------------------------------------------

    def _emit(self, terminated_by_branch: bool, mispredicted: bool) -> None:
        pending = self._pending
        if pending.empty:
            return
        self._lookups.append(
            PWLookup(
                start=pending.start,
                uops=pending.uops,
                insts=pending.insts,
                bytes_len=max(1, pending.end - pending.start),
                terminated_by_branch=terminated_by_branch,
                contains_branch=terminated_by_branch or pending.has_branch,
                mispredicted=mispredicted,
            )
        )
        pending.reset()
        if len(self._lookups) >= self._limit:
            raise _TraceComplete

    def _segment_block(
        self, block: BasicBlock
    ) -> tuple[tuple[int, int, int, int, int], ...]:
        """Static line-boundary segmentation of one block.

        Returns ``(abs_start, uops, insts, abs_end, line)`` runs of
        consecutive instructions whose start addresses share an icache
        line — exactly the granularity at which the walk splits PWs.
        """
        line_bytes = self._line_bytes
        addr = block.addr
        uop_prefix = block.uop_prefix
        segments: list[tuple[int, int, int, int, int]] = []
        prev_end = prev_uops = 0
        seg_start = seg_line = -1
        seg_end = uops = insts = 0
        for i, inst_end in enumerate(block.inst_ends):
            inst_start = addr + prev_end
            line = inst_start // line_bytes
            if seg_line < 0:
                seg_start, seg_line = inst_start, line
            elif line != seg_line:
                segments.append((seg_start, uops, insts, seg_end, seg_line))
                seg_start, seg_line = inst_start, line
                uops = insts = 0
            uops += uop_prefix[i] - prev_uops
            prev_uops = uop_prefix[i]
            insts += 1
            seg_end = addr + inst_end
            prev_end = inst_end
        segments.append((seg_start, uops, insts, seg_end, seg_line))
        return tuple(segments)

    def _consume_block(
        self, segments: tuple[tuple[int, int, int, int, int], ...]
    ) -> None:
        """Append a block's instructions, splitting at line boundaries.

        ``segments`` is the block's precomputed static segmentation; the
        emit sequence (and every emitted window) is identical to walking
        the block instruction by instruction.
        """
        pending = self._pending
        for seg_start, uops, insts, seg_end, line in segments:
            if pending.start < 0:
                pending.start = seg_start
                pending.line = line
            elif line != pending.line:
                # Line-boundary termination: not a branch PW.
                self._emit(terminated_by_branch=False, mispredicted=False)
                pending.start = seg_start
                pending.line = line
            pending.uops += uops
            pending.insts += insts
            pending.end = seg_end
        # The block's final instruction (last segment) is its branch.
        pending.has_branch = True

    # --- execution ------------------------------------------------------------

    def _refresh_mis_rates(self) -> None:
        """Recompute per-block mispredict probabilities.

        Must be re-run whenever ``_mispredict_mult`` changes (the pilot
        calibration in :meth:`generate` rescales it between walks).
        """
        mult = self._mispredict_mult
        self._block_mis_rate = [
            [min(0.5, block.mispredict_rate * mult) for block in function.blocks]
            for function in self._cfg.functions
        ]

    def _periodic_outcome(self, key: int, bias: float) -> bool:
        """Deterministic Bresenham-style outcome with long-run rate ``bias``."""
        acc = self._outcome_acc.get(key, 0.5) + bias
        if acc >= 1.0:
            self._outcome_acc[key] = acc - 1.0
            return True
        self._outcome_acc[key] = acc
        return False

    def _run_function(self, findex: int, depth: int) -> None:
        function = self._cfg.functions[findex]
        blocks = function.blocks
        n_blocks = len(blocks)
        segments = self._block_segments[findex]
        mis_rates = self._block_mis_rate[findex]
        rng_random = self._rng.random
        consume = self._consume_block
        emit = self._emit
        periodic = self._periodic_outcome
        max_depth = self.MAX_CALL_DEPTH
        # Geometric iteration count with the function's configured mean.
        p_continue = 1.0 - 1.0 / max(1.0, function.mean_iterations)
        iterating = True
        while iterating:
            i = 0
            while i < n_blocks:
                block = blocks[i]
                consume(segments[i])
                mispredicted = rng_random() < mis_rates[i]
                # Call edge: modelled as a taken call terminating the PW,
                # with return to the next block.
                if (
                    block.callee >= 0
                    and depth < max_depth
                    and periodic(block.addr ^ 0x1, block.call_bias)
                ):
                    emit(terminated_by_branch=True, mispredicted=mispredicted)
                    self._run_function(block.callee, depth + 1)
                    i += 1
                    continue
                if i == n_blocks - 1:
                    # Loop back edge (taken) or function exit (taken ret).
                    iterating = rng_random() < p_continue
                    emit(terminated_by_branch=True, mispredicted=mispredicted)
                    break
                if periodic(block.addr, block.taken_bias):
                    emit(terminated_by_branch=True, mispredicted=mispredicted)
                    if (
                        periodic(block.addr ^ 0x2, block.skip_bias)
                        and i + 2 < n_blocks
                    ):
                        i += 2  # if/else shape: skip the next block
                    else:
                        i += 1
                else:
                    # Fall through: the next block joins the current PW.
                    i += 1
            else:
                iterating = False

    def _pick_function(self, emitted: int) -> int:
        phase = (emitted // self._phase_length) % len(self._phase_loops)
        if self._rng.random() < self._in_phase_bias:
            loop = self._phase_loops[phase]
            function = loop[self._loop_cursor % len(loop)]
            self._loop_cursor += 1
            return function
        rank = bisect.bisect_left(self._zipf_cdf, self._rng.random())
        return min(rank, len(self._zipf_cdf) - 1)

    def _run_function_cols(self, findex: int, depth: int) -> None:
        """Columnar fast-path twin of :meth:`_run_function`.

        Identical control flow and RNG consumption order (the property
        tests and ``scripts/bench_trace_engine.py`` assert the emitted
        sequences match), but windows append straight into the packed
        columns and the pending window lives in locals — valid because
        a function always enters and exits with an empty pending window
        (every exit path flushes it).  :meth:`_consume_block`,
        :meth:`_emit` and :meth:`_periodic_outcome` are inlined; any
        behavioural change there must be mirrored here.
        """
        function = self._cfg.functions[findex]
        blocks = function.blocks
        n_blocks = len(blocks)
        segments = self._block_segments[findex]
        mis_rates = self._block_mis_rate[findex]
        rng_random = self._rng.random
        outcome_acc = self._outcome_acc
        acc_get = outcome_acc.get
        max_depth = self.MAX_CALL_DEPTH
        recurse = self._run_function_cols
        columns = self._columns
        starts_col = columns.starts
        uops_col = columns.uops
        insts_col = columns.insts
        bytes_col = columns.bytes_len
        flags_col = columns.flags
        limit = self._limit

        p_start = -1
        p_line = -1
        p_uops = 0
        p_insts = 0
        p_end = 0
        p_branch = False

        def emit(terminated: bool, mispredicted: bool) -> None:
            nonlocal p_start, p_line, p_uops, p_insts, p_end, p_branch
            if p_start < 0:
                return
            starts_col.append(p_start)
            uops_col.append(p_uops)
            insts_col.append(p_insts)
            span = p_end - p_start
            bytes_col.append(span if span > 0 else 1)
            if terminated:
                flags = FLAG_TERMINATED | FLAG_CONTAINS
            elif p_branch:
                flags = FLAG_CONTAINS
            else:
                flags = 0
            if mispredicted:
                flags |= FLAG_MISPREDICTED
            flags_col.append(flags)
            p_start = -1
            p_line = -1
            p_uops = 0
            p_insts = 0
            p_end = 0
            p_branch = False
            if len(starts_col) >= limit:
                raise _TraceComplete

        p_continue = 1.0 - 1.0 / max(1.0, function.mean_iterations)
        iterating = True
        while iterating:
            i = 0
            while i < n_blocks:
                block = blocks[i]
                # _consume_block, inlined over the pending locals.
                for seg_start, uops, insts, seg_end, line in segments[i]:
                    if p_start < 0:
                        p_start = seg_start
                        p_line = line
                    elif line != p_line:
                        emit(False, False)
                        p_start = seg_start
                        p_line = line
                    p_uops += uops
                    p_insts += insts
                    p_end = seg_end
                p_branch = True
                mispredicted = rng_random() < mis_rates[i]
                # Call edge; _periodic_outcome inlined (short-circuit
                # order preserved: the accumulator only advances when
                # the callee/depth guard passes).
                if block.callee >= 0 and depth < max_depth:
                    key = block.addr ^ 0x1
                    acc = acc_get(key, 0.5) + block.call_bias
                    if acc >= 1.0:
                        outcome_acc[key] = acc - 1.0
                        emit(True, mispredicted)
                        recurse(block.callee, depth + 1)
                        i += 1
                        continue
                    outcome_acc[key] = acc
                if i == n_blocks - 1:
                    iterating = rng_random() < p_continue
                    emit(True, mispredicted)
                    break
                key = block.addr
                acc = acc_get(key, 0.5) + block.taken_bias
                if acc >= 1.0:
                    outcome_acc[key] = acc - 1.0
                    emit(True, mispredicted)
                    # The skip accumulator always advances, even when
                    # the i+2 bound forbids the skip (reference
                    # evaluates _periodic_outcome first).
                    key = block.addr ^ 0x2
                    acc = acc_get(key, 0.5) + block.skip_bias
                    if acc >= 1.0:
                        outcome_acc[key] = acc - 1.0
                        if i + 2 < n_blocks:
                            i += 2
                        else:
                            i += 1
                    else:
                        outcome_acc[key] = acc
                        i += 1
                else:
                    outcome_acc[key] = acc
                    i += 1
            else:
                iterating = False

    def _reset_walk(self) -> None:
        self._rng = random.Random(self._seed)
        self._outcome_acc.clear()
        self._lookups = []
        self._columns = TraceColumns()
        self._pending.reset()
        self._loop_cursor = 0

    def _walk(self, n_lookups: int, fast: bool = False) -> None:
        self._limit = n_lookups
        run = self._run_function_cols if fast else self._run_function
        columns = self._columns
        try:
            # Startup sweep: initialization code touches every function
            # once (in a shuffled order), so first-touch cold misses
            # concentrate in the warmup window, as with real services.
            order = list(range(len(self._cfg.functions)))
            random.Random(self._rng.random()).shuffle(order)
            for findex in order:
                run(findex, self.MAX_CALL_DEPTH)
            while True:
                emitted = len(columns) if fast else len(self._lookups)
                findex = self._pick_function(emitted)
                run(findex, 0)
        except _TraceComplete:
            pass

    def generate(self, n_lookups: int, metadata: TraceMetadata | None = None) -> Trace:
        """Produce a trace of exactly ``n_lookups`` PW lookups.

        When a misprediction-MPKI target is set, a deterministic pilot
        walk first measures the dynamic misprediction rate (the static
        calibration cannot see hotness skew) and rescales the per-branch
        rates before the real walk.

        On the fast path (the default) windows are emitted straight
        into packed :class:`~repro.core.trace.TraceColumns`;
        ``REPRO_TRACE_FASTPATH=0`` restores the reference object-list
        emission.  Both paths produce identical lookup sequences.
        """
        if n_lookups <= 0:
            raise ConfigurationError("n_lookups must be positive")
        fast = trace_fastpath_enabled()
        if self._target_mpki is not None and self._target_mpki > 0:
            with stagetimer.timed("trace_pilot"):
                for _ in range(2):  # two passes converge well within tolerance
                    self._reset_walk()
                    self._walk(min(n_lookups, 12000), fast)
                    if fast:
                        _, insts, _, mispredictions = self._columns.totals()
                    else:
                        pilot = Trace(self._lookups)
                        insts = pilot.total_instructions
                        mispredictions = pilot.total_mispredictions
                    measured = 1000.0 * mispredictions / max(1, insts)
                    if measured > 0:
                        factor = self._target_mpki / measured
                        self._mispredict_mult *= min(20.0, max(0.05, factor))
                        self._refresh_mis_rates()
        with stagetimer.timed("trace_walk"):
            self._reset_walk()
            self._walk(n_lookups, fast)
        if fast:
            return Trace(columns=self._columns, metadata=metadata or TraceMetadata())
        return Trace(self._lookups, metadata or TraceMetadata())


def generate_trace(
    cfg: ProgramCFG,
    n_lookups: int,
    *,
    seed: int,
    zipf_alpha: float = 1.1,
    phase_length: int = 4000,
    phase_count: int = 4,
    in_phase_bias: float = 0.85,
    phase_loop_length: int = 90,
    target_mispredict_mpki: float | None = None,
    metadata: TraceMetadata | None = None,
) -> Trace:
    """One-shot helper: build a generator and produce a trace."""
    generator = TraceGenerator(
        cfg,
        seed=seed,
        zipf_alpha=zipf_alpha,
        phase_length=phase_length,
        phase_count=phase_count,
        in_phase_bias=in_phase_bias,
        phase_loop_length=phase_loop_length,
        target_mispredict_mpki=target_mispredict_mpki,
    )
    return generator.generate(n_lookups, metadata)


def reuse_distance_tail(trace: Trace, threshold: int = 30) -> float:
    """Fraction of PW lookups whose stack reuse distance exceeds ``threshold``.

    Section III-E reports that over 20% of micro-op cache PWs have a
    reuse distance above 30 (versus 10%/2% for icache/BTB); this helper
    lets tests assert the generator reproduces that heavy tail.
    """
    last_seen: dict[int, int] = {}
    stack: list[int] = []  # most recent at the end
    long_reuses = 0
    reuses = 0
    for pw in trace:
        key = pw.start
        if key in last_seen:
            # Stack distance = number of distinct addresses since last use.
            position = stack.index(key)  # O(n) but fine for test-sized traces
            distance = len(stack) - position - 1
            reuses += 1
            if distance > threshold:
                long_reuses += 1
            stack.pop(position)
        stack.append(key)
        last_seen[key] = 1
    if reuses == 0:
        return 0.0
    return long_reuses / reuses
