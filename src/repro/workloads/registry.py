"""Trace registry: build (and cache) traces for (app, input, length).

Trace generation is deterministic, so a process-wide cache keyed by
``(app, input, n_lookups)`` lets the many figure benches share workload
construction.  ``REPRO_TRACE_LEN`` scales the default trace length for
quick smoke runs.
"""

from __future__ import annotations

import os

from ..core.trace import Trace, TraceMetadata
from .apps import AppProfile, get_profile
from .cfg import build_cfg
from .generator import TraceGenerator

#: Default dynamic trace length (PW lookups) used by the experiments.
#: One third is treated as warmup by the harness.
DEFAULT_TRACE_LEN = int(os.environ.get("REPRO_TRACE_LEN", "45000"))

_trace_cache: dict[tuple[str, str, int], Trace] = {}


def available_inputs(app: str) -> tuple[str, ...]:
    """Names of the inputs defined for an application."""
    return tuple(inp.name for inp in get_profile(app).inputs)


def build_app_trace(
    profile: AppProfile, input_name: str, n_lookups: int
) -> Trace:
    """Construct a trace for one application input (uncached)."""
    app_input = profile.input_named(input_name)
    cfg = build_cfg(
        seed=profile.base_seed,
        functions=profile.functions,
        blocks_per_function=profile.blocks_per_function,
        insts_per_block=profile.insts_per_block,
        mean_iterations=profile.mean_iterations,
        call_fraction=profile.call_fraction,
    )
    generator = TraceGenerator(
        cfg,
        seed=profile.base_seed * 7919 + app_input.seed_offset,
        zipf_alpha=max(0.1, profile.zipf_alpha + app_input.zipf_alpha_delta),
        phase_length=max(1, round(profile.phase_length * app_input.phase_length_scale)),
        phase_count=profile.phase_count,
        in_phase_bias=min(
            0.99, max(0.0, profile.in_phase_bias + app_input.in_phase_bias_delta)
        ),
        phase_loop_length=profile.phase_loop_length,
        structure_seed=profile.base_seed,
        target_mispredict_mpki=profile.branch_mpki,
    )
    metadata = TraceMetadata(
        app=profile.name,
        input_name=input_name,
        seed=profile.base_seed + app_input.seed_offset,
        description=profile.description,
    )
    return generator.generate(n_lookups, metadata)


def get_trace(
    app: str, input_name: str = "default", n_lookups: int | None = None
) -> Trace:
    """Return the (cached) trace for one application input.

    Note: the CFG is shared across inputs of an app (same binary,
    different inputs), while the dynamic walk differs — exactly the
    setting of the paper's cross-validation study.
    """
    length = n_lookups if n_lookups is not None else DEFAULT_TRACE_LEN
    key = (app, input_name, length)
    cached = _trace_cache.get(key)
    if cached is None:
        cached = build_app_trace(get_profile(app), input_name, length)
        _trace_cache[key] = cached
    return cached


def clear_trace_cache() -> None:
    """Drop all cached traces (tests use this to bound memory)."""
    _trace_cache.clear()
