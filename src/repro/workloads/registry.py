"""Trace registry: build (and cache) traces for (app, input, length).

Trace generation is deterministic, so a process-wide cache keyed by
``(app, input, n_lookups)`` lets the many figure benches share workload
construction.  ``REPRO_TRACE_LEN`` scales the default trace length for
quick smoke runs.

Two cache layers sit in front of generation:

* an in-process LRU bounded by ``REPRO_TRACE_CACHE_CAP`` (default 16
  traces; ``<= 0`` means unbounded) so long sweeps over many
  (app, input, length) combinations can't grow memory without bound;
* the on-disk binary trace store in :mod:`repro.harness.artifacts`
  (``REPRO_CACHE=0`` disables it), keyed by the trace identity plus
  :data:`~repro.workloads.generator.GENERATOR_VERSION`, so cold batches
  and CI never regenerate the same trace twice.
"""

from __future__ import annotations

import os
from collections import OrderedDict

from .. import stagetimer
from ..core.trace import Trace, TraceMetadata, trace_fastpath_enabled
from .apps import AppProfile, get_profile
from .cfg import build_cfg
from .generator import GENERATOR_VERSION, TraceGenerator

#: Default dynamic trace length (PW lookups) used by the experiments.
#: One third is treated as warmup by the harness.
DEFAULT_TRACE_LEN = int(os.environ.get("REPRO_TRACE_LEN", "45000"))

#: Max traces held in process memory (LRU eviction; ``<= 0`` = unbounded).
TRACE_CACHE_CAP = int(os.environ.get("REPRO_TRACE_CACHE_CAP", "16"))

_trace_cache: OrderedDict[tuple[str, str, int], Trace] = OrderedDict()

#: How get_trace satisfied requests since the last clear (observability
#: for the CI disk-cache smoke and for cache-sizing experiments).
_cache_counters = {
    "memory_hits": 0, "disk_hits": 0, "generated": 0, "evictions": 0,
}


def available_inputs(app: str) -> tuple[str, ...]:
    """Names of the inputs defined for an application."""
    return tuple(inp.name for inp in get_profile(app).inputs)


def build_app_trace(
    profile: AppProfile, input_name: str, n_lookups: int
) -> Trace:
    """Construct a trace for one application input (uncached)."""
    with stagetimer.timed("trace_build"):
        app_input = profile.input_named(input_name)
        with stagetimer.timed("cfg_build"):
            cfg = build_cfg(
                seed=profile.base_seed,
                functions=profile.functions,
                blocks_per_function=profile.blocks_per_function,
                insts_per_block=profile.insts_per_block,
                mean_iterations=profile.mean_iterations,
                call_fraction=profile.call_fraction,
            )
        with stagetimer.timed("trace_setup"):
            generator = TraceGenerator(
                cfg,
                seed=profile.base_seed * 7919 + app_input.seed_offset,
                zipf_alpha=max(
                    0.1, profile.zipf_alpha + app_input.zipf_alpha_delta
                ),
                phase_length=max(
                    1, round(profile.phase_length * app_input.phase_length_scale)
                ),
                phase_count=profile.phase_count,
                in_phase_bias=min(
                    0.99,
                    max(0.0, profile.in_phase_bias + app_input.in_phase_bias_delta),
                ),
                phase_loop_length=profile.phase_loop_length,
                structure_seed=profile.base_seed,
                target_mispredict_mpki=profile.branch_mpki,
            )
        metadata = TraceMetadata(
            app=profile.name,
            input_name=input_name,
            seed=profile.base_seed + app_input.seed_offset,
            description=profile.description,
        )
        return generator.generate(n_lookups, metadata)


def _remember(key: tuple[str, str, int], trace: Trace) -> None:
    _trace_cache[key] = trace
    _trace_cache.move_to_end(key)
    if TRACE_CACHE_CAP > 0:
        while len(_trace_cache) > TRACE_CACHE_CAP:
            _trace_cache.popitem(last=False)
            _cache_counters["evictions"] += 1


def get_trace(
    app: str, input_name: str = "default", n_lookups: int | None = None
) -> Trace:
    """Return the (cached) trace for one application input.

    Note: the CFG is shared across inputs of an app (same binary,
    different inputs), while the dynamic walk differs — exactly the
    setting of the paper's cross-validation study.
    """
    length = n_lookups if n_lookups is not None else DEFAULT_TRACE_LEN
    key = (app, input_name, length)
    cached = _trace_cache.get(key)
    if cached is not None:
        _trace_cache.move_to_end(key)
        _cache_counters["memory_hits"] += 1
        return cached
    if trace_fastpath_enabled():
        # Lazy import: artifacts imports this module at top level.
        from ..harness.artifacts import load_cached_trace

        cached = load_cached_trace(app, input_name, length, GENERATOR_VERSION)
        if cached is not None:
            _cache_counters["disk_hits"] += 1
            _remember(key, cached)
            return cached
    cached = build_app_trace(get_profile(app), input_name, length)
    _cache_counters["generated"] += 1
    _remember(key, cached)
    if trace_fastpath_enabled():
        from ..harness.artifacts import store_cached_trace

        store_cached_trace(cached, app, input_name, length, GENERATOR_VERSION)
    return cached


def seed_trace_cache(
    app: str, input_name: str, n_lookups: int, trace: Trace
) -> None:
    """Install an externally supplied trace (e.g. received over shared
    memory by a batch worker) unless the key is already present.

    A trace whose length contradicts the key is rejected (counted as a
    ``shm_attach`` degradation): seeding it would serve a wrong-geometry
    trace to every later :func:`get_trace` call in the process, which is
    far worse than regenerating.
    """
    if len(trace) != n_lookups:
        from ..harness import resilience

        resilience.note_fallback("shm_attach")
        return
    key = (app, input_name, n_lookups)
    if key not in _trace_cache:
        _remember(key, trace)


def trace_cache_stats() -> dict[str, int]:
    """Counters since the last :func:`clear_trace_cache` (copy)."""
    return dict(_cache_counters, cached=len(_trace_cache))


def clear_trace_cache() -> None:
    """Drop all cached traces (tests use this to bound memory)."""
    _trace_cache.clear()
    for counter in _cache_counters:
        _cache_counters[counter] = 0
