"""Static code model: synthetic control-flow graphs.

An application's static code is modelled as a set of *functions*, each a
contiguous run of *basic blocks*.  Every block carries deterministic
per-instruction byte sizes and micro-op counts (x86 instructions are
variable length and may crack into several micro-ops), a terminating
conditional branch with a fixed taken bias, and an optional call edge.

The layout is byte-accurate so prediction-window formation can honour
icache-line boundaries, and so the inclusive icache can invalidate the
micro-op cache by byte range.
"""

from __future__ import annotations

import random
from bisect import bisect as _bisect
from dataclasses import dataclass, field
from itertools import accumulate

from ..errors import ConfigurationError

#: Instruction byte sizes sampled for synthetic x86 code; the weights give
#: a mean close to the ~3.7 bytes/inst observed for server binaries.
_INST_SIZES = (1, 2, 3, 4, 5, 6, 7, 8)
_INST_SIZE_WEIGHTS = (4, 12, 22, 24, 16, 12, 6, 4)

#: Micro-ops per instruction: most decode to one, some crack into 2-4.
_UOP_COUNTS = (1, 2, 3, 4)
_UOP_WEIGHTS = (78, 16, 4, 2)

# Precomputed cumulative weights so the per-instruction sampling below
# can inline random.choices(k=1) — same bisect over the same cumulative
# table with the same single rng.random() draw, so the generated code
# image is unchanged.
_INST_CUM = list(accumulate(_INST_SIZE_WEIGHTS))
_INST_TOTAL = _INST_CUM[-1] + 0.0
_INST_HI = len(_INST_CUM) - 1
_UOP_CUM = list(accumulate(_UOP_WEIGHTS))
_UOP_TOTAL = _UOP_CUM[-1] + 0.0
_UOP_HI = len(_UOP_CUM) - 1


@dataclass(slots=True)
class BasicBlock:
    """One static basic block, ending in a conditional branch.

    ``inst_ends`` holds cumulative byte offsets (relative to ``addr``) of
    each instruction's end; ``uop_prefix`` holds cumulative micro-op
    counts.  Both let the PW builder split a block at an icache-line
    boundary at instruction granularity.
    """

    addr: int
    inst_ends: tuple[int, ...]
    uop_prefix: tuple[int, ...]
    #: Probability the terminating branch is taken.
    taken_bias: float
    #: Probability that a *taken* outcome skips the next block (if/else
    #: shape) rather than targeting it directly.
    skip_bias: float
    #: Probability the terminating branch is mispredicted, per execution.
    mispredict_rate: float
    #: Index of a callee function, or -1 for no call edge.
    callee: int = -1
    #: Probability the call edge is followed on a given execution.
    call_bias: float = 0.0

    @property
    def insts(self) -> int:
        return len(self.inst_ends)

    @property
    def bytes_len(self) -> int:
        return self.inst_ends[-1]

    @property
    def uops(self) -> int:
        return self.uop_prefix[-1]

    @property
    def end(self) -> int:
        return self.addr + self.bytes_len


@dataclass(slots=True)
class CodeFunction:
    """A function: contiguous blocks executed as a counted loop.

    Execution iterates the block sequence ``mean_iterations`` times on
    average (geometric), with per-block conditional branches deciding
    skips, and optional call edges into other functions.
    """

    index: int
    blocks: list[BasicBlock]
    mean_iterations: float

    @property
    def addr(self) -> int:
        return self.blocks[0].addr

    @property
    def end(self) -> int:
        return self.blocks[-1].end

    @property
    def bytes_len(self) -> int:
        return self.end - self.addr


@dataclass(slots=True)
class ProgramCFG:
    """The complete static code image of one synthetic application."""

    functions: list[CodeFunction] = field(default_factory=list)
    code_base: int = 0x400000

    @property
    def total_blocks(self) -> int:
        return sum(len(f.blocks) for f in self.functions)

    @property
    def total_insts(self) -> int:
        return sum(b.insts for f in self.functions for b in f.blocks)

    @property
    def total_bytes(self) -> int:
        return sum(f.bytes_len for f in self.functions)


def _build_block(
    rng: random.Random,
    addr: int,
    insts: int,
    taken_bias: float,
    skip_bias: float,
    mispredict_rate: float,
) -> BasicBlock:
    """Materialize one block with deterministic instruction layout."""
    ends: list[int] = []
    uops: list[int] = []
    offset = 0
    total_uops = 0
    rng_random = rng.random
    for _ in range(insts):
        offset += _INST_SIZES[
            _bisect(_INST_CUM, rng_random() * _INST_TOTAL, 0, _INST_HI)
        ]
        total_uops += _UOP_COUNTS[
            _bisect(_UOP_CUM, rng_random() * _UOP_TOTAL, 0, _UOP_HI)
        ]
        ends.append(offset)
        uops.append(total_uops)
    return BasicBlock(
        addr=addr,
        inst_ends=tuple(ends),
        uop_prefix=tuple(uops),
        taken_bias=taken_bias,
        skip_bias=skip_bias,
        mispredict_rate=mispredict_rate,
    )


def build_cfg(
    *,
    seed: int,
    functions: int,
    blocks_per_function: tuple[int, int],
    insts_per_block: tuple[int, int],
    taken_bias_range: tuple[float, float] = (0.15, 0.9),
    mean_iterations: float = 6.0,
    call_fraction: float = 0.15,
    mispredict_scale: float = 0.02,
    code_base: int = 0x400000,
    function_gap_bytes: int = 48,
) -> ProgramCFG:
    """Synthesize a program CFG deterministically from ``seed``.

    ``call_fraction`` is the fraction of blocks carrying a call edge;
    ``mispredict_scale`` sets the mean per-branch misprediction
    probability (a small set of "hard" branches gets a much higher rate,
    reproducing the skew real predictors see).
    """
    if functions <= 0:
        raise ConfigurationError("a program needs at least one function")
    lo_b, hi_b = blocks_per_function
    lo_i, hi_i = insts_per_block
    if lo_b <= 0 or hi_b < lo_b or lo_i <= 0 or hi_i < lo_i:
        raise ConfigurationError("block/instruction ranges must be positive and ordered")

    rng = random.Random(seed)
    cfg = ProgramCFG(code_base=code_base)
    addr = code_base
    for findex in range(functions):
        nblocks = rng.randint(lo_b, hi_b)
        blocks: list[BasicBlock] = []
        for _ in range(nblocks):
            insts = rng.randint(lo_i, hi_i)
            # Bimodal biases: real branches are mostly strongly biased,
            # which keeps each function's dominant PW decomposition
            # stable across invocations (rare paths still occur).
            lo_t, hi_t = taken_bias_range
            if rng.random() < 0.5:
                taken = lo_t + (hi_t - lo_t) * rng.uniform(0.0, 0.12)
            else:
                taken = lo_t + (hi_t - lo_t) * rng.uniform(0.88, 1.0)
            skip = rng.uniform(0.0, 0.15)
            # A few branches are hard to predict; most are easy.
            if rng.random() < 0.08:
                mispredict = min(0.35, rng.expovariate(1.0 / (mispredict_scale * 8)))
            else:
                mispredict = min(0.05, rng.expovariate(1.0 / mispredict_scale) * 0.1)
            block = _build_block(rng, addr, insts, taken, skip, mispredict)
            blocks.append(block)
            addr = block.end
        iters = max(1.0, rng.gauss(mean_iterations, mean_iterations / 2.0))
        cfg.functions.append(CodeFunction(findex, blocks, iters))
        addr += function_gap_bytes
        # Nudge alignment so functions start at varied line offsets.
        addr += rng.randrange(0, 32)

    # Wire call edges after all functions exist so callees can be anywhere.
    for function in cfg.functions:
        for block in function.blocks:
            if rng.random() < call_fraction and len(cfg.functions) > 1:
                callee = rng.randrange(len(cfg.functions))
                if callee != function.index:
                    block.callee = callee
                    block.call_bias = rng.uniform(0.3, 0.9)
    return cfg
