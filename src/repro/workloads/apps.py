"""The 11 data-center applications of Table II, as synthetic profiles.

Each :class:`AppProfile` captures the workload-level knobs that drive
micro-op cache behaviour: static code footprint (functions × blocks),
basic-block shape, hotness skew, phase behaviour, and branch MPKI
(mispredictions per kilo-instruction, the Table II column).  Footprints
are scaled so the default 512-entry micro-op cache is under heavy
capacity pressure, matching Section III-B (88.31% of LRU misses are
capacity misses).

Each application also defines several *inputs* — seed/parameter
variations standing in for the paper's varied request mixes, data sizes
and query types — used by the Figure 18 cross-validation study.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..errors import UnknownWorkloadError


@dataclass(frozen=True, slots=True)
class AppInput:
    """One input configuration of an application (e.g. a request mix)."""

    name: str
    seed_offset: int = 0
    zipf_alpha_delta: float = 0.0
    phase_length_scale: float = 1.0
    in_phase_bias_delta: float = 0.0


@dataclass(frozen=True, slots=True)
class AppProfile:
    """Synthetic stand-in for one Table II application."""

    name: str
    description: str
    branch_mpki: float
    #: Static footprint: number of functions and blocks per function.
    functions: int
    blocks_per_function: tuple[int, int]
    insts_per_block: tuple[int, int]
    #: Function hotness skew (lower alpha = flatter = bigger working set).
    zipf_alpha: float
    #: Loop trip-count mean inside functions.
    mean_iterations: float
    #: Fraction of blocks carrying call edges.
    call_fraction: float
    #: Phase structure (locally-hot / globally-cold behaviour).
    phase_length: int
    phase_count: int
    in_phase_bias: float
    base_seed: int
    #: Length of each phase's cyclic request loop (sized so phase
    #: working sets exceed the micro-op cache).
    phase_loop_length: int = 90
    inputs: tuple[AppInput, ...] = field(
        default=(
            AppInput("default"),
            AppInput("alt-seed", seed_offset=101),
            AppInput("mixed-load", seed_offset=202, in_phase_bias_delta=-0.05),
            AppInput("long-phase", seed_offset=303, phase_length_scale=1.6),
        )
    )

    def input_named(self, name: str) -> AppInput:
        for candidate in self.inputs:
            if candidate.name == name:
                return candidate
        raise UnknownWorkloadError(
            f"app {self.name!r} has no input {name!r}; "
            f"available: {[i.name for i in self.inputs]}"
        )


def _profile(**kwargs: object) -> AppProfile:
    return AppProfile(**kwargs)  # type: ignore[arg-type]


#: Table II applications.  Descriptions follow the paper; structural
#: parameters are calibrated so relative footprints and branch MPKIs
#: track the published per-app statistics.
APP_PROFILES: dict[str, AppProfile] = {
    profile.name: profile
    for profile in (
        _profile(
            name="cassandra",
            description="Java DaCapo benchmark suite (NoSQL database)",
            branch_mpki=1.78,
            functions=600, blocks_per_function=(4, 14), insts_per_block=(3, 10),
            zipf_alpha=0.65, mean_iterations=1.25, call_fraction=0.18,
            phase_length=7000, phase_count=4, in_phase_bias=0.94,
            phase_loop_length=48,
            base_seed=11,
        ),
        _profile(
            name="kafka",
            description="Java DaCapo benchmark suite (stream processing)",
            branch_mpki=1.77,
            functions=560, blocks_per_function=(4, 12), insts_per_block=(3, 10),
            zipf_alpha=0.62, mean_iterations=1.2, call_fraction=0.20,
            phase_length=7000, phase_count=4, in_phase_bias=0.94,
            phase_loop_length=45,
            base_seed=23,
        ),
        _profile(
            name="tomcat",
            description="Java DaCapo benchmark suite (servlet container)",
            branch_mpki=4.45,
            functions=680, blocks_per_function=(3, 10), insts_per_block=(2, 8),
            zipf_alpha=0.55, mean_iterations=1.2, call_fraction=0.22,
            phase_length=6500, phase_count=5, in_phase_bias=0.94,
            phase_loop_length=55,
            base_seed=37,
        ),
        _profile(
            name="drupal",
            description="Facebook OSS-performance suite (PHP CMS)",
            branch_mpki=1.89,
            functions=740, blocks_per_function=(3, 12), insts_per_block=(3, 9),
            zipf_alpha=0.52, mean_iterations=1.2, call_fraction=0.25,
            phase_length=7500, phase_count=4, in_phase_bias=0.94,
            phase_loop_length=58,
            base_seed=41,
        ),
        _profile(
            name="mediawiki",
            description="Facebook OSS-performance suite (PHP wiki)",
            branch_mpki=2.35,
            functions=700, blocks_per_function=(4, 12), insts_per_block=(3, 9),
            zipf_alpha=0.55, mean_iterations=1.25, call_fraction=0.24,
            phase_length=7000, phase_count=4, in_phase_bias=0.94,
            phase_loop_length=50,
            base_seed=53,
        ),
        _profile(
            name="wordpress",
            description="Facebook OSS-performance suite (PHP blog)",
            branch_mpki=5.64,
            functions=820, blocks_per_function=(3, 10), insts_per_block=(2, 7),
            zipf_alpha=0.5, mean_iterations=1.15, call_fraction=0.26,
            phase_length=6000, phase_count=5, in_phase_bias=0.93,
            phase_loop_length=60,
            base_seed=67,
        ),
        _profile(
            name="postgres",
            description="PostgreSQL serving pgbench queries",
            branch_mpki=0.41,
            functions=300, blocks_per_function=(5, 16), insts_per_block=(5, 14),
            zipf_alpha=0.8, mean_iterations=1.4, call_fraction=0.14,
            phase_length=9000, phase_count=3, in_phase_bias=0.95,
            phase_loop_length=38,
            base_seed=71,
        ),
        _profile(
            name="mysql",
            description="MySQL serving TPC-C queries",
            branch_mpki=0.66,
            functions=400, blocks_per_function=(5, 15), insts_per_block=(4, 12),
            zipf_alpha=0.72, mean_iterations=1.3, call_fraction=0.16,
            phase_length=8000, phase_count=3, in_phase_bias=0.95,
            phase_loop_length=42,
            base_seed=83,
        ),
        _profile(
            name="python",
            description="CPython running the pyperformance suite",
            branch_mpki=4.73,
            functions=480, blocks_per_function=(3, 9), insts_per_block=(2, 7),
            zipf_alpha=0.8, mean_iterations=1.3, call_fraction=0.20,
            phase_length=6000, phase_count=4, in_phase_bias=0.94,
            phase_loop_length=40,
            base_seed=97,
        ),
        _profile(
            name="finagle",
            description="Twitter Finagle microblogging service",
            branch_mpki=4.76,
            functions=640, blocks_per_function=(3, 10), insts_per_block=(2, 8),
            zipf_alpha=0.58, mean_iterations=1.2, call_fraction=0.22,
            phase_length=6500, phase_count=5, in_phase_bias=0.94,
            phase_loop_length=52,
            base_seed=103,
        ),
        _profile(
            name="clang",
            description="Clang building LLVM",
            branch_mpki=1.86,
            functions=620, blocks_per_function=(4, 13), insts_per_block=(3, 10),
            zipf_alpha=0.6, mean_iterations=1.25, call_fraction=0.18,
            phase_length=7000, phase_count=4, in_phase_bias=0.94,
            phase_loop_length=48,
            base_seed=113,
        ),
    )
}


def app_names() -> tuple[str, ...]:
    """All application names, in Table II order."""
    return tuple(APP_PROFILES)


def get_profile(name: str) -> AppProfile:
    try:
        return APP_PROFILES[name]
    except KeyError:
        raise UnknownWorkloadError(
            f"unknown application {name!r}; available: {sorted(APP_PROFILES)}"
        ) from None


def scaled_profile(profile: AppProfile, footprint_scale: float) -> AppProfile:
    """A copy of ``profile`` with the static footprint scaled.

    Used by sensitivity benches that vary pressure on the cache without
    changing the app's dynamic character.
    """
    return replace(profile, functions=max(1, round(profile.functions * footprint_scale)))
