"""Synthetic data-center workloads (the paper's Table II applications).

The paper drives its simulator with Intel PT traces of 11 open-source
data-center applications.  Those traces are not redistributable here, so
this package synthesizes statistically comparable PW lookup streams:
per-application control-flow graphs (functions, loops, biased branches,
calls, execution phases) are walked deterministically to produce dynamic
prediction-window traces whose code footprint, branch MPKI, PW size/cost
distribution and reuse-distance tail are calibrated to the paper's
reported statistics.  See DESIGN.md §2 for the substitution argument.
"""

from .apps import APP_PROFILES, AppProfile, app_names
from .cfg import BasicBlock, CodeFunction, ProgramCFG, build_cfg
from .generator import TraceGenerator, generate_trace
from .registry import available_inputs, clear_trace_cache, get_trace

__all__ = [
    "APP_PROFILES",
    "AppProfile",
    "app_names",
    "BasicBlock",
    "CodeFunction",
    "ProgramCFG",
    "build_cfg",
    "TraceGenerator",
    "generate_trace",
    "available_inputs",
    "clear_trace_cache",
    "get_trace",
]
