"""repro — reproduction of "From Optimal to Practical: Efficient Micro-op
Cache Replacement Policies for Data Center Applications" (HPCA 2025).

The package provides:

* a behavioural micro-op cache / frontend simulator
  (:mod:`repro.uopcache`, :mod:`repro.frontend`);
* the paper's offline near-optimal policy **FLACK** and its ablation
  ladder (:mod:`repro.offline`), plus Belady and FOO references;
* the practical profile-guided policy **FURBYS** and the online
  baselines SRRIP / SHiP++ / GHRP / Mockingjay / Thermometer
  (:mod:`repro.policies`, :mod:`repro.profiling`);
* synthetic data-center workloads calibrated to the paper's Table II
  (:mod:`repro.workloads`);
* McPAT/CACTI-style power and analytic timing models
  (:mod:`repro.power`, :mod:`repro.timing`);
* an experiment harness regenerating every table and figure
  (:mod:`repro.harness`, ``repro`` CLI).

Quickstart::

    from repro import quick_compare
    print(quick_compare("kafka", ["lru", "srrip", "furbys", "flack"]))
"""

from __future__ import annotations

from .config import SimulationConfig, preset, zen3_config, zen4_config
from .core.pw import PWLookup, StoredPW
from .core.stats import SimulationStats
from .core.trace import Trace, TraceMetadata
from .errors import ReproError
from .frontend.pipeline import FrontendPipeline
from .harness.runner import RunRequest, run

__version__ = "1.0.0"

__all__ = [
    "SimulationConfig",
    "preset",
    "zen3_config",
    "zen4_config",
    "PWLookup",
    "StoredPW",
    "SimulationStats",
    "Trace",
    "TraceMetadata",
    "ReproError",
    "FrontendPipeline",
    "RunRequest",
    "run",
    "quick_compare",
]


def quick_compare(app: str, policies: list[str]) -> str:
    """Simulate several policies on one application and tabulate them."""
    from .harness.reporting import format_table, percent

    baseline = run(RunRequest(app=app, policy="lru"))
    rows = []
    for policy in policies:
        stats = run(RunRequest(app=app, policy=policy))
        rows.append((
            policy,
            f"{stats.uop_miss_rate:.4f}",
            percent(stats.miss_reduction_vs(baseline)),
            f"{stats.bypass_fraction:.2f}",
        ))
    return format_table(
        ("policy", "uop miss rate", "miss reduction vs LRU", "bypass fraction"),
        rows,
        title=f"micro-op cache policies on {app!r}",
    )
