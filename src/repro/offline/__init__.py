"""Offline (future-knowledge) replacement policies.

* :class:`~repro.offline.belady.BeladyPolicy` — Belady's MIN adapted to
  insertion-time decisions (Section III-C);
* :class:`~repro.offline.foo.FOOPolicy` — flow-based offline optimal
  with OHR/BHR objectives (Section III-D);
* :class:`~repro.offline.flack.FLACKPolicy` — the paper's near-optimal
  policy: FOO extended with variable costs, selective bypass for
  partial hits and asynchrony awareness (Section IV), with feature
  flags matching the Figure 10 ablation.

All of them are :class:`~repro.uopcache.replacement.ReplacementPolicy`
implementations replayed through the same behavioural simulator as the
online policies, so miss accounting is identical across the comparison.
"""

from .base import IdentityMode, OfflineReplayPolicy, ValueMetric
from .belady import BeladyPolicy
from .flack import FLACKPolicy
from .foo import FOOPolicy
from .future import ColumnarFutureIndex, FutureIndex, shared_future_index
from .intervals import Interval, extract_intervals, shared_intervals
from .plan import AdmissionPlan, greedy_admission

__all__ = [
    "IdentityMode",
    "OfflineReplayPolicy",
    "ValueMetric",
    "BeladyPolicy",
    "FLACKPolicy",
    "FOOPolicy",
    "ColumnarFutureIndex",
    "FutureIndex",
    "shared_future_index",
    "Interval",
    "extract_intervals",
    "shared_intervals",
    "AdmissionPlan",
    "greedy_admission",
]
