"""Request-interval extraction from a PW lookup trace.

Offline caching decisions decompose the trace into *request intervals*:
for each lookup of an object, the span until the object's next lookup.
Keeping the object cached across the interval turns the lookup at the
far end into a hit; the interval occupies ``size`` entries of its set
for its whole duration.  FOO's insight (Section III-D) is that the
optimal decision is constant between consecutive accesses, so choosing
which intervals to cache — subject to per-set way capacity over time —
*is* the offline replacement problem.

Two object-identity modes reproduce the paper's distinction:

* ``IdentityMode.EXACT`` — a PW is ``(start, uops)``; same-start
  windows of different lengths are unrelated objects.  This is what
  Belady and plain FOO assume, and what makes them blind to partial
  hits (Figure 4).
* ``IdentityMode.START`` — a PW is its start address; consecutive
  same-start lookups chain regardless of length, and the interval's
  value is the micro-ops actually served (``min(uops_i, uops_j)``, the
  intermediate-exit-point benefit).  This is FLACK's view.

Three value metrics reproduce the objectives:

* ``ValueMetric.OHR`` — every avoided miss is worth 1 (object hit
  ratio);
* ``ValueMetric.ENTRIES`` — worth the PW's size in entries (byte hit
  ratio analogue);
* ``ValueMetric.UOPS`` — worth the micro-ops served (FLACK's variable
  disproportional cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Hashable

import numpy as np

from .. import stagetimer
from ..config import UopCacheConfig
from ..core.pw import PWLookup
from ..core.trace import Trace, callable_token


class IdentityMode(Enum):
    """How lookups are matched into reuse chains."""

    EXACT = "exact"
    START = "start"

    def key_fn(self) -> Callable[[PWLookup], Hashable]:
        if self is IdentityMode.EXACT:
            return lambda pw: (pw.start, pw.uops)
        return lambda pw: pw.start


class ValueMetric(Enum):
    """What a kept interval is worth (the avoided miss cost)."""

    OHR = "ohr"
    ENTRIES = "entries"
    UOPS = "uops"


@dataclass(slots=True)
class Interval:
    """One request interval within a single cache set.

    ``i_slot``/``j_slot`` index the set-local timeline (the sequence of
    lookups mapping to this set); ``t_start``/``t_end`` are the global
    lookup indices of the two endpoint accesses.
    """

    set_index: int
    i_slot: int
    j_slot: int
    t_start: int
    t_end: int
    size: int
    value: float

    @property
    def duration_slots(self) -> int:
        return self.j_slot - self.i_slot

    def density(self) -> float:
        """Value per entry-slot of cache occupancy (greedy ranking key)."""
        return self.value / (self.size * max(1, self.duration_slots))


def interval_value(
    metric: ValueMetric, stored: PWLookup, next_lookup: PWLookup,
    uops_per_entry: int,
) -> float:
    """Miss cost avoided at ``next_lookup`` if ``stored`` is kept."""
    served_uops = min(stored.uops, next_lookup.uops)
    if metric is ValueMetric.OHR:
        return 1.0
    if metric is ValueMetric.ENTRIES:
        return float(min(
            stored.size(uops_per_entry), next_lookup.size(uops_per_entry)
        ))
    return float(served_uops)


def extract_intervals(
    trace: Trace,
    config: UopCacheConfig,
    *,
    identity: IdentityMode,
    metric: ValueMetric,
    set_index_fn: Callable[[int, int], int],
    min_gap: int = 0,
) -> tuple[list[list[Interval]], list[int]]:
    """Decompose a trace into per-set request intervals.

    ``min_gap`` drops intervals whose global-time span is not greater
    than the decode-pipeline insertion delay: with asynchronous
    insertion the window cannot be resident in time, so such an
    interval can never produce a hit (FLACK's asynchrony awareness).

    Returns ``(per_set_intervals, slot_counts)``: the intervals grouped
    by set and the number of timeline slots of each set.
    """
    n_sets = config.sets
    key_fn = identity.key_fn()
    per_set: list[list[Interval]] = [[] for _ in range(n_sets)]
    slot_counts = [0] * n_sets
    # key -> (set_index, slot, global_t, lookup)
    last_seen: dict[Hashable, tuple[int, int, int, PWLookup]] = {}

    for t, pw in enumerate(trace):
        s = set_index_fn(pw.start, n_sets)
        slot = slot_counts[s]
        slot_counts[s] += 1
        key = key_fn(pw)
        previous = last_seen.get(key)
        if previous is not None:
            _, i_slot, t_start, stored = previous
            if t - t_start > min_gap:
                per_set[s].append(
                    Interval(
                        set_index=s,
                        i_slot=i_slot,
                        j_slot=slot,
                        t_start=t_start,
                        t_end=t,
                        size=min(stored.size(config.uops_per_entry), config.ways),
                        value=interval_value(metric, stored, pw, config.uops_per_entry),
                    )
                )
        last_seen[key] = (s, slot, t, pw)
    return per_set, slot_counts


def _set_timeline(
    trace: Trace, n_sets: int, set_index_fn: Callable[[int, int], int]
) -> tuple[list[int], list[int], list[int]]:
    """Per-lookup set index and set-local slot, memoized on the trace.

    Returns ``(set_ids, slot_of, slot_counts)``; every interval
    decomposition over one trace geometry shares the single pass.
    """

    def build() -> tuple[list[int], list[int], list[int]]:
        set_of: dict[int, int] = {}
        set_ids: list[int] = []
        slot_of: list[int] = []
        slot_counts = [0] * n_sets
        starts = (
            trace.columns.starts if trace.has_columns()
            else (pw.start for pw in trace.lookups)
        )
        for start in starts:
            s = set_of.get(start)
            if s is None:
                s = set_of[start] = set_index_fn(start, n_sets)
            set_ids.append(s)
            slot_of.append(slot_counts[s])
            slot_counts[s] += 1
        return set_ids, slot_of, slot_counts

    return trace.memo(
        ("set_timeline", n_sets, callable_token(set_index_fn)), build
    )


def _extract_intervals_columnar(
    trace: Trace,
    config: UopCacheConfig,
    *,
    identity: IdentityMode,
    metric: ValueMetric,
    set_index_fn: Callable[[int, int], int],
    min_gap: int,
) -> tuple[list[list[Interval]], list[int]]:
    """Interval decomposition driven by the shared successor array.

    The reuse chains :func:`extract_intervals` re-derives with its
    ``last_seen`` scan are exactly the pairs ``(t, succ[t])`` of the
    trace's columnar future index, so this consumes that shared
    artifact and only walks the surviving pairs.  Pairs are emitted in
    ascending end-time order — the same per-set order the reference
    scan appends in.
    """
    from .future import NEVER, shared_future_index

    index = shared_future_index(trace, identity)
    succ = getattr(index, "succ", None)
    if succ is None:  # fast path disabled: reference index has no array
        return extract_intervals(
            trace, config, identity=identity, metric=metric,
            set_index_fn=set_index_fn, min_gap=min_gap,
        )
    set_ids, slot_of, slot_counts = _set_timeline(
        trace, config.sets, set_index_fn
    )
    ways = config.ways
    uops_per_entry = config.uops_per_entry
    per_set: list[list[Interval]] = [[] for _ in range(config.sets)]

    starts = np.nonzero(succ != NEVER)[0]
    ends = succ[starts]
    if min_gap:
        keep = ends - starts > min_gap
        starts, ends = starts[keep], ends[keep]
    order = np.argsort(ends, kind="stable")
    starts, ends = starts[order], ends[order]

    # Vectorized size/value computation (same arithmetic as
    # interval_value / PWLookup.size, broadcast over all pairs).
    uops = trace.memo(
        ("uops_arr",),
        lambda: (
            np.asarray(trace.columns.uops).astype(np.int64)
            if trace.has_columns()
            else np.fromiter(
                (pw.uops for pw in trace.lookups), dtype=np.int64,
                count=len(trace.lookups),
            )
        ),
    )
    stored_uops = uops[starts]
    sizes = np.minimum(-(-stored_uops // uops_per_entry), ways)
    if metric is ValueMetric.OHR:
        values = np.ones(len(starts))
    elif metric is ValueMetric.ENTRIES:
        values = np.minimum(
            -(-stored_uops // uops_per_entry), -(-uops[ends] // uops_per_entry)
        ).astype(float)
    else:
        values = np.minimum(stored_uops, uops[ends]).astype(float)

    for t_start, t_end, size, value in zip(
        starts.tolist(), ends.tolist(), sizes.tolist(), values.tolist()
    ):
        s = set_ids[t_start]
        per_set[s].append(
            Interval(
                set_index=s,
                i_slot=slot_of[t_start],
                j_slot=slot_of[t_end],
                t_start=t_start,
                t_end=t_end,
                size=size,
                value=value,
            )
        )
    return per_set, slot_counts


def shared_intervals(
    trace: Trace,
    config: UopCacheConfig,
    *,
    identity: IdentityMode,
    metric: ValueMetric,
    set_index_fn: Callable[[int, int], int],
    min_gap: int = 0,
) -> tuple[list[list[Interval]], list[int]]:
    """Memoized interval decomposition shared across policy instances.

    Keyed by everything that shapes the result (identity, metric, cache
    geometry, ``min_gap``); FOO and the FLACK plan-mode ablation step
    requesting the same decomposition of one trace pay for it once.
    Callers must not mutate the returned structures.  With the fast
    path disabled this falls through to a fresh reference extraction.
    """
    from .future import fast_path_enabled

    kwargs = dict(
        identity=identity, metric=metric, set_index_fn=set_index_fn,
        min_gap=min_gap,
    )
    if not fast_path_enabled():
        with stagetimer.timed("intervals"):
            return extract_intervals(trace, config, **kwargs)
    key = (
        "intervals", identity, metric, callable_token(set_index_fn), min_gap,
        config.sets, config.ways, config.uops_per_entry,
    )

    def build() -> tuple[list[list[Interval]], list[int]]:
        with stagetimer.timed("intervals"):
            return _extract_intervals_columnar(trace, config, **kwargs)

    return trace.memo(key, build)
