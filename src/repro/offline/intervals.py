"""Request-interval extraction from a PW lookup trace.

Offline caching decisions decompose the trace into *request intervals*:
for each lookup of an object, the span until the object's next lookup.
Keeping the object cached across the interval turns the lookup at the
far end into a hit; the interval occupies ``size`` entries of its set
for its whole duration.  FOO's insight (Section III-D) is that the
optimal decision is constant between consecutive accesses, so choosing
which intervals to cache — subject to per-set way capacity over time —
*is* the offline replacement problem.

Two object-identity modes reproduce the paper's distinction:

* ``IdentityMode.EXACT`` — a PW is ``(start, uops)``; same-start
  windows of different lengths are unrelated objects.  This is what
  Belady and plain FOO assume, and what makes them blind to partial
  hits (Figure 4).
* ``IdentityMode.START`` — a PW is its start address; consecutive
  same-start lookups chain regardless of length, and the interval's
  value is the micro-ops actually served (``min(uops_i, uops_j)``, the
  intermediate-exit-point benefit).  This is FLACK's view.

Three value metrics reproduce the objectives:

* ``ValueMetric.OHR`` — every avoided miss is worth 1 (object hit
  ratio);
* ``ValueMetric.ENTRIES`` — worth the PW's size in entries (byte hit
  ratio analogue);
* ``ValueMetric.UOPS`` — worth the micro-ops served (FLACK's variable
  disproportional cost).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, Hashable

from ..config import UopCacheConfig
from ..core.pw import PWLookup
from ..core.trace import Trace


class IdentityMode(Enum):
    """How lookups are matched into reuse chains."""

    EXACT = "exact"
    START = "start"

    def key_fn(self) -> Callable[[PWLookup], Hashable]:
        if self is IdentityMode.EXACT:
            return lambda pw: (pw.start, pw.uops)
        return lambda pw: pw.start


class ValueMetric(Enum):
    """What a kept interval is worth (the avoided miss cost)."""

    OHR = "ohr"
    ENTRIES = "entries"
    UOPS = "uops"


@dataclass(slots=True)
class Interval:
    """One request interval within a single cache set.

    ``i_slot``/``j_slot`` index the set-local timeline (the sequence of
    lookups mapping to this set); ``t_start``/``t_end`` are the global
    lookup indices of the two endpoint accesses.
    """

    set_index: int
    i_slot: int
    j_slot: int
    t_start: int
    t_end: int
    size: int
    value: float

    @property
    def duration_slots(self) -> int:
        return self.j_slot - self.i_slot

    def density(self) -> float:
        """Value per entry-slot of cache occupancy (greedy ranking key)."""
        return self.value / (self.size * max(1, self.duration_slots))


def interval_value(
    metric: ValueMetric, stored: PWLookup, next_lookup: PWLookup,
    uops_per_entry: int,
) -> float:
    """Miss cost avoided at ``next_lookup`` if ``stored`` is kept."""
    served_uops = min(stored.uops, next_lookup.uops)
    if metric is ValueMetric.OHR:
        return 1.0
    if metric is ValueMetric.ENTRIES:
        return float(min(
            stored.size(uops_per_entry), next_lookup.size(uops_per_entry)
        ))
    return float(served_uops)


def extract_intervals(
    trace: Trace,
    config: UopCacheConfig,
    *,
    identity: IdentityMode,
    metric: ValueMetric,
    set_index_fn: Callable[[int, int], int],
    min_gap: int = 0,
) -> tuple[list[list[Interval]], list[int]]:
    """Decompose a trace into per-set request intervals.

    ``min_gap`` drops intervals whose global-time span is not greater
    than the decode-pipeline insertion delay: with asynchronous
    insertion the window cannot be resident in time, so such an
    interval can never produce a hit (FLACK's asynchrony awareness).

    Returns ``(per_set_intervals, slot_counts)``: the intervals grouped
    by set and the number of timeline slots of each set.
    """
    n_sets = config.sets
    key_fn = identity.key_fn()
    per_set: list[list[Interval]] = [[] for _ in range(n_sets)]
    slot_counts = [0] * n_sets
    # key -> (set_index, slot, global_t, lookup)
    last_seen: dict[Hashable, tuple[int, int, int, PWLookup]] = {}

    for t, pw in enumerate(trace):
        s = set_index_fn(pw.start, n_sets)
        slot = slot_counts[s]
        slot_counts[s] += 1
        key = key_fn(pw)
        previous = last_seen.get(key)
        if previous is not None:
            _, i_slot, t_start, stored = previous
            if t - t_start > min_gap:
                per_set[s].append(
                    Interval(
                        set_index=s,
                        i_slot=i_slot,
                        j_slot=slot,
                        t_start=t_start,
                        t_end=t,
                        size=min(stored.size(config.uops_per_entry), config.ways),
                        value=interval_value(metric, stored, pw, config.uops_per_entry),
                    )
                )
        last_seen[key] = (s, slot, t, pw)
    return per_set, slot_counts
