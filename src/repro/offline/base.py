"""Shared machinery for offline-policy replay.

Offline policies replay through the same behavioural simulator as
online policies.  Two replay modes exist, matching the paper's
narrative:

* **plan mode** (FOO, Section III-D): a static interval-admission plan
  is computed up front (greedy density allocation or exact min-cost
  flow) and followed verbatim — insertions the plan did not admit are
  eagerly bypassed, and plan-bypassed residents are preferred victims.
  Because the plan assumed synchronous insertion and exact-identity
  objects, it degrades under asynchrony and partial hits — exactly the
  failure the paper describes ("FOO cannot efficiently recompute future
  decisions for every asynchronous insertion").
* **greedy mode** (FLACK and its ablation steps, Section IV): decisions
  are recomputed *at insertion time* from the future index, using the
  evictability score ``(next_use - now) · size / value`` — Belady's
  rule generalized to variable disproportional costs.  The asynchrony
  feature ("A") evaluates the future at the actual insertion time and
  bypasses windows whose reuse already raced past in the decode
  pipeline; "VC" switches the score to micro-op values; "SB" switches
  object identity to start-address chains so partial hits earn credit.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Callable, Sequence

from ..config import UopCacheConfig
from ..core.pw import PWLookup, StoredPW
from ..core.trace import Trace
from ..uopcache.cache import default_set_index
from ..uopcache.replacement import EvictionReason, ReplacementPolicy
from .future import (  # re-exported: historic home of these names
    NEVER,
    ColumnarFutureIndex,
    FutureIndex,
    fast_path_enabled,
    shared_future_index,
)
from .intervals import IdentityMode, ValueMetric, shared_intervals
from .plan import AdmissionPlan, greedy_admission

__all__ = [
    "NEVER", "ColumnarFutureIndex", "FutureIndex", "OfflineReplayPolicy",
    "shared_future_index",
]


class OfflineReplayPolicy(ReplacementPolicy):
    """Future-knowledge replacement with plan or greedy replay.

    Constructed from the full trace.  ``plan_mode=True`` yields FOO-like
    static-plan behaviour; ``plan_mode=False`` yields the FLACK family,
    with ``async_aware`` / ``variable_cost`` / ``selective_bypass``
    toggling the Section IV features (the Figure 10 ablation axes).
    """

    name = "offline"

    def __init__(
        self,
        trace: Trace,
        config: UopCacheConfig,
        *,
        plan_mode: bool,
        async_aware: bool,
        variable_cost: bool,
        selective_bypass: bool,
        metric: ValueMetric | None = None,
        set_index_fn: Callable[[int, int], int] | None = None,
        name: str | None = None,
    ) -> None:
        super().__init__()
        if name:
            self.name = name
        self._plan_mode = plan_mode
        self._async_aware = async_aware
        self._selective_bypass = selective_bypass
        self._identity = (
            IdentityMode.START if selective_bypass else IdentityMode.EXACT
        )
        if metric is None:
            metric = ValueMetric.UOPS if variable_cost else ValueMetric.OHR
        self._metric = metric
        self.future = shared_future_index(trace, self._identity)
        # Hot-path aliases: _score runs per resident per insertion
        # attempt, so the future-index internals and the metric dispatch
        # are bound once here instead of per call.  The two index
        # layouts (reference dict-of-lists, shared columnar CSR) get a
        # matching _score implementation each.
        self._key_fn = self.future._key_fn
        if isinstance(self.future, ColumnarFutureIndex):
            self._occ = self.future.occ_list
            self._span = self.future.span
            self._score = self._score_columnar
        else:
            self._times = self.future._times
            self._score = self._score_reference
        self._metric_mode = (
            0 if metric is ValueMetric.OHR
            else 1 if metric is ValueMetric.ENTRIES
            else 2
        )
        self.plan: AdmissionPlan | None = None
        if plan_mode:
            set_fn = set_index_fn or default_set_index
            min_gap = config.insertion_delay if async_aware else 0

            def build_plan() -> AdmissionPlan:
                per_set, slots = shared_intervals(
                    trace,
                    config,
                    identity=self._identity,
                    metric=metric,
                    set_index_fn=set_fn,
                    min_gap=min_gap,
                )
                return greedy_admission(per_set, slots, config.ways, len(trace))

            if fast_path_enabled():
                # The plan is a pure function of the decomposition, so
                # plan-mode policies with identical parameters (e.g.
                # foo-ohr and flack[foo]) share one admission pass.
                self.plan = trace.memo(
                    ("greedy_plan", self._identity, metric, set_fn, min_gap,
                     config.sets, config.ways, config.uops_per_entry),
                    build_plan,
                )
            else:
                self.plan = build_plan()

    def reset(self) -> None:
        #: start -> global lookup time that began the current residency
        #: interval (refreshed on every hit; used by plan mode).
        self._interval_start: dict[int, int] = {}
        #: start -> lookup time of the miss awaiting async insertion.
        self._pending_lookup_t: dict[int, int] = {}

    # --- event hooks ---------------------------------------------------------

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: PWLookup) -> None:
        self._interval_start[stored.start] = now

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: PWLookup) -> None:
        self._interval_start[stored.start] = now
        self._pending_lookup_t[lookup.start] = now

    def on_miss(self, now: int, set_index: int, lookup: PWLookup) -> None:
        self._pending_lookup_t[lookup.start] = now

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        self._interval_start[stored.start] = self._pending_lookup_t.pop(
            stored.start, now
        )

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        if reason is not EvictionReason.UPGRADE:
            self._interval_start.pop(stored.start, None)

    # --- scoring ---------------------------------------------------------------

    # ``self._score`` is bound in __init__ to the implementation
    # matching the future-index layout.  Both compute the same number:
    # ``(next_use - now) * size / value`` generalizes Belady's
    # furthest-next-use rule (the size = value case) to variable
    # disproportional costs — a far-future, many-entry, few-micro-op
    # window is the cheapest thing to sacrifice.  ``now`` is an
    # insertion-completion time; the lookup at ``now`` has not been
    # served yet, so a use *at* ``now`` counts (``now - 1`` below).

    def _score_reference(self, pw: StoredPW, now: int) -> float:
        times = self._times.get(self._key_fn(pw))
        if times:
            index = bisect_right(times, now - 1)
            if index < len(times):
                distance = float(times[index] - now)
                mode = self._metric_mode
                if mode == 0:
                    return distance * pw.size  # equal value, per-entry cost
                if mode == 1:
                    return distance  # value proportional to size: cancels
                return distance * pw.size / max(1, pw.uops)
        return float("inf")

    def _score_columnar(self, pw: StoredPW, now: int) -> float:
        span = self._span.get(self._key_fn(pw))
        if span is not None:
            lo, hi = span
            occ = self._occ
            index = bisect_right(occ, now - 1, lo, hi)
            if index < hi:
                distance = float(occ[index] - now)
                mode = self._metric_mode
                if mode == 0:
                    return distance * pw.size  # equal value, per-entry cost
                if mode == 1:
                    return distance  # value proportional to size: cancels
                return distance * pw.size / max(1, pw.uops)
        return float("inf")

    def _planned(self, start: int) -> bool:
        """Is the resident window's *current* interval plan-admitted?"""
        if self.plan is None:
            return True
        t = self._interval_start.get(start)
        return t is not None and self.plan.keep_from(t)

    # --- decisions ---------------------------------------------------------------

    def should_bypass(self, now: int, set_index: int, incoming: StoredPW,
                      resident: Sequence[StoredPW], need_ways: int) -> bool:
        lookup_t = self._pending_lookup_t.get(incoming.start, now)
        if self._plan_mode:
            # FOO follows its static plan eagerly (Section III-D): if the
            # interval starting at the lookup was not admitted, bypass —
            # even into free space.
            assert self.plan is not None
            return not self.plan.keep_from(lookup_t)
        # Greedy (FLACK) mode: insertion-time decisions.  Without the
        # asynchrony feature the policy still believes the stale view it
        # computed when the lookup missed.
        time_ref = now if self._async_aware else lookup_t
        # At insertion time the lookup at `now` is still unserved; the
        # stale lookup-time view keeps its own (exclusive) reference.
        next_use = self.future.next_use_of(
            incoming, time_ref - 1 if self._async_aware else time_ref
        )
        if self._async_aware and next_use == NEVER:
            # Reuse raced past during decode, or the window is dead:
            # inserting now only forces an eviction ("safeguarding late
            # insertions").
            return True
        if need_ways > 0:
            # Never insert a window that would immediately be the best
            # victim.
            incoming_score = self._score(incoming, time_ref)
            if all(
                self._score(pw, time_ref) <= incoming_score for pw in resident
            ):
                return True
        return False

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        if self._plan_mode:
            # Static plan adherence: plan-bypassed residents leave first,
            # furthest next use first within each class.
            def plan_rank(pw: StoredPW) -> tuple[int, int]:
                return (
                    1 if self._planned(pw.start) else 0,
                    -self.future.next_use_of(pw, now),
                )

            return sorted(resident, key=plan_rank)
        # Lazy eviction: residents are only displaced when an insertion
        # needs the space, ranked by evictability score at *this* moment.
        score = self._score
        return sorted(resident, key=lambda pw: -score(pw, now))
