"""Admission planning: choosing which request intervals to cache.

Selecting the maximum-value subset of variable-size intervals under a
per-set capacity-over-time constraint is NP-complete (Hosseini-Khayat
[41]); FOO approximates it with a min-cost-flow LP relaxation, and this
module provides the scalable greedy analogue used by default: intervals
are admitted in decreasing *density* (value per entry-slot) order
whenever capacity remains across their span.  The exact flow-based
solver in :mod:`repro.offline.mincostflow` is used by tests (and
optionally by the policies, for small traces) to confirm the greedy
plan's value is close to the LP bound.

The output :class:`AdmissionPlan` answers, for each global lookup index
``t``, "should the window observed at ``t`` be kept in the cache until
its next use?" — which is everything the replay policy needs.
"""

from __future__ import annotations

from .. import stagetimer
from .intervals import Interval


class AdmissionPlan:
    """Per-lookup keep/bypass decisions derived from interval admission."""

    def __init__(self, trace_len: int) -> None:
        self._admit_from = bytearray(trace_len)
        self.admitted_value = 0.0
        self.considered_value = 0.0
        self.admitted_count = 0
        self.considered_count = 0

    def admit(self, interval: Interval) -> None:
        self._admit_from[interval.t_start] = 1
        self.admitted_value += interval.value
        self.admitted_count += 1

    def keep_from(self, t: int) -> bool:
        """Should the PW looked up at ``t`` stay cached until next use?"""
        if 0 <= t < len(self._admit_from):
            return bool(self._admit_from[t])
        return False

    @property
    def admission_ratio(self) -> float:
        if self.considered_count == 0:
            return 0.0
        return self.admitted_count / self.considered_count


def greedy_admission(
    per_set: list[list[Interval]],
    slot_counts: list[int],
    ways: int,
    trace_len: int,
) -> AdmissionPlan:
    """Admit intervals greedily by density under way-capacity.

    For each set, an occupancy array over the set-local timeline tracks
    entries in use per slot; an interval is admitted when every slot in
    ``[i_slot, j_slot)`` still has ``size`` free entries.  Zero-length
    spans (back-to-back lookups in the same set) occupy nothing and are
    always admitted.

    The occupancy is a plain list: the windows are short (a reuse span
    within one set's timeline), so C-level ``max`` over a slice and a
    slice-assign update beat per-interval numpy calls by a wide margin.
    """
    with stagetimer.timed("greedy_admission"):
        plan = AdmissionPlan(trace_len)
        for set_index, intervals in enumerate(per_set):
            if not intervals:
                continue
            plan.considered_count += len(intervals)
            plan.considered_value += sum(iv.value for iv in intervals)
            occupancy = [0] * max(1, slot_counts[set_index])
            # Density-descending; deterministic tie-break on (start, slot).
            ranked = sorted(
                intervals, key=lambda iv: (-iv.density(), iv.t_start, iv.i_slot)
            )
            admit = plan.admit
            for interval in ranked:
                lo, hi = interval.i_slot, interval.j_slot
                if lo >= hi:
                    admit(interval)
                    continue
                window = occupancy[lo:hi]
                size = interval.size
                if max(window) + size <= ways:
                    occupancy[lo:hi] = [v + size for v in window]
                    admit(interval)
    return plan
