"""Exact min-cost-flow interval admission (the FOO LP relaxation).

Berger et al. showed offline caching with variable sizes relaxes to a
min-cost flow: per cache set, a chain of nodes (one per request slot)
carries *cached* flow with capacity equal to the set's ways; each
request interval must route its ``size`` units from its start slot to
its end slot, either through the chain (cached, free) or through a
direct *miss* edge costing the interval's value.  Minimizing cost
maximizes the value of cached intervals.

This solver is exact but O(F · E log V), so the policies default to the
greedy admission in :mod:`repro.offline.plan`; tests use this module to
bound the greedy plan's optimality gap, and ``FOOPolicy(use_flow=True)``
runs it end-to-end on small traces.
"""

from __future__ import annotations

import heapq

from ..errors import FlowError
from .intervals import Interval
from .plan import AdmissionPlan

#: Fixed-point scale for fractional interval values.
_COST_SCALE = 1024


class MinCostFlow:
    """Successive-shortest-path min-cost max-flow with potentials.

    Edge costs must be non-negative (true for this problem).
    """

    def __init__(self, n_nodes: int) -> None:
        self._n = n_nodes
        self._graph: list[list[int]] = [[] for _ in range(n_nodes)]
        # Parallel arrays: to, capacity, cost (reverse edge at index ^ 1).
        self._to: list[int] = []
        self._cap: list[int] = []
        self._cost: list[int] = []

    def add_edge(self, u: int, v: int, capacity: int, cost: int) -> int:
        """Add a directed edge; returns its index (for flow queries)."""
        if capacity < 0 or cost < 0:
            raise FlowError("capacity and cost must be non-negative")
        index = len(self._to)
        self._graph[u].append(index)
        self._to.append(v)
        self._cap.append(capacity)
        self._cost.append(cost)
        self._graph[v].append(index + 1)
        self._to.append(u)
        self._cap.append(0)
        self._cost.append(-cost)
        return index

    def flow_on(self, edge_index: int) -> int:
        """Units of flow routed through an edge added by :meth:`add_edge`."""
        return self._cap[edge_index + 1]

    def solve(self, source: int, sink: int) -> tuple[int, int]:
        """Push max flow at min cost; returns ``(flow, cost)``."""
        n = self._n
        to, cap, cost = self._to, self._cap, self._cost
        graph = self._graph
        potential = [0] * n
        total_flow = 0
        total_cost = 0
        infinity = float("inf")
        while True:
            dist = [infinity] * n
            dist[source] = 0
            parent_edge = [-1] * n
            heap = [(0, source)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u]:
                    continue
                for edge in graph[u]:
                    if cap[edge] <= 0:
                        continue
                    v = to[edge]
                    nd = d + cost[edge] + potential[u] - potential[v]
                    if nd < dist[v]:
                        dist[v] = nd
                        parent_edge[v] = edge
                        heapq.heappush(heap, (nd, v))
            if dist[sink] == infinity:
                break
            for v in range(n):
                if dist[v] < infinity:
                    potential[v] += int(dist[v])
            # Find bottleneck along the path.
            push = None
            v = sink
            while v != source:
                edge = parent_edge[v]
                push = cap[edge] if push is None else min(push, cap[edge])
                v = to[edge ^ 1]
            assert push is not None and push > 0
            v = sink
            while v != source:
                edge = parent_edge[v]
                cap[edge] -= push
                cap[edge ^ 1] += push
                total_cost += push * cost[edge]
                v = to[edge ^ 1]
            total_flow += push
        return total_flow, total_cost


def flow_admission(
    per_set: list[list[Interval]],
    slot_counts: list[int],
    ways: int,
    trace_len: int,
) -> AdmissionPlan:
    """Exact (LP-relaxation) interval admission via min-cost flow.

    An interval is admitted when more than half its units route through
    the chain (the standard rounding of FOO's fractional solution).
    """
    plan = AdmissionPlan(trace_len)
    for set_index, intervals in enumerate(per_set):
        if not intervals:
            continue
        plan.considered_count += len(intervals)
        plan.considered_value += sum(iv.value for iv in intervals)
        m = max(1, slot_counts[set_index])
        source, sink = m, m + 1
        solver = MinCostFlow(m + 2)
        for slot in range(m - 1):
            solver.add_edge(slot, slot + 1, ways, 0)
        miss_edges: list[tuple[Interval, int]] = []
        for interval in intervals:
            if interval.i_slot >= interval.j_slot:
                plan.admit(interval)  # occupies no capacity
                continue
            solver.add_edge(source, interval.i_slot, interval.size, 0)
            solver.add_edge(interval.j_slot, sink, interval.size, 0)
            unit_cost = max(1, round(interval.value * _COST_SCALE / interval.size))
            miss_edge = solver.add_edge(
                interval.i_slot, interval.j_slot, interval.size, unit_cost
            )
            miss_edges.append((interval, miss_edge))
        solver.solve(source, sink)
        for interval, miss_edge in miss_edges:
            missed_units = solver.flow_on(miss_edge)
            if missed_units * 2 <= interval.size:
                plan.admit(interval)
    return plan
