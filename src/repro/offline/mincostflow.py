"""Exact min-cost-flow interval admission (the FOO LP relaxation).

Berger et al. showed offline caching with variable sizes relaxes to a
min-cost flow: per cache set, a chain of nodes (one per request slot)
carries *cached* flow with capacity equal to the set's ways; each
request interval must route its ``size`` units from its start slot to
its end slot, either through the chain (cached, free) or through a
direct *miss* edge costing the interval's value.  Minimizing cost
maximizes the value of cached intervals.

Two structural optimizations make the exact solver usable at full
trace length (the greedy admission in :mod:`repro.offline.plan` is
still the policies' default):

* :meth:`MinCostFlow.solve` augments with *multi-unit blocking pushes*:
  after each Dijkstra/potential update it saturates **every**
  zero-reduced-cost (shortest) augmenting path with a Dinic-style
  blocking flow over the admissible level graph, instead of one path
  per Dijkstra.  Identical flows and costs — the classic per-path
  successive-shortest-path loop is kept as
  :meth:`~MinCostFlow.solve_reference` and equivalence is tested.
* :func:`flow_admission` compresses each set's slot chain to the slots
  that are actually interval endpoints: chain segments between
  consecutive endpoints are series edges of equal capacity and zero
  cost, so they collapse to one edge without changing any feasible
  flow.  A set touched by a handful of intervals now yields a graph of
  that size, not of the set's full timeline.
"""

from __future__ import annotations

import heapq
from collections import deque

from .. import stagetimer
from ..errors import FlowError
from .intervals import Interval
from .plan import AdmissionPlan

#: Fixed-point scale for fractional interval values.
_COST_SCALE = 1024


class MinCostFlow:
    """Min-cost max-flow via successive shortest paths with potentials.

    Edge costs must be non-negative (true for this problem).
    :meth:`solve` performs blocking-flow (multi-unit) augmentation per
    potential update; :meth:`solve_reference` is the one-path-per-
    Dijkstra baseline it must match.
    """

    def __init__(self, n_nodes: int) -> None:
        self._n = n_nodes
        self._graph: list[list[int]] = [[] for _ in range(n_nodes)]
        # Parallel arrays: to, capacity, cost (reverse edge at index ^ 1).
        self._to: list[int] = []
        self._cap: list[int] = []
        self._cost: list[int] = []

    def add_edge(self, u: int, v: int, capacity: int, cost: int) -> int:
        """Add a directed edge; returns its index (for flow queries)."""
        if capacity < 0 or cost < 0:
            raise FlowError("capacity and cost must be non-negative")
        index = len(self._to)
        self._graph[u].append(index)
        self._to.append(v)
        self._cap.append(capacity)
        self._cost.append(cost)
        self._graph[v].append(index + 1)
        self._to.append(u)
        self._cap.append(0)
        self._cost.append(-cost)
        return index

    def flow_on(self, edge_index: int) -> int:
        """Units of flow routed through an edge added by :meth:`add_edge`."""
        return self._cap[edge_index + 1]

    def _dijkstra(self, source: int, potential: list[int]) -> list:
        """Shortest reduced-cost distances from ``source``."""
        dist: list = [float("inf")] * self._n
        dist[source] = 0
        to, cap, cost, graph = self._to, self._cap, self._cost, self._graph
        heap = [(0, source)]
        while heap:
            d, u = heapq.heappop(heap)
            if d > dist[u]:
                continue
            pu = potential[u]
            for edge in graph[u]:
                if cap[edge] <= 0:
                    continue
                v = to[edge]
                nd = d + cost[edge] + pu - potential[v]
                if nd < dist[v]:
                    dist[v] = nd
                    heapq.heappush(heap, (nd, v))
        return dist

    def solve(self, source: int, sink: int) -> tuple[int, int]:
        """Push max flow at min cost; returns ``(flow, cost)``.

        Per phase: one Dijkstra fixes the potentials, a BFS levels the
        admissible (zero-reduced-cost residual) subgraph, and an
        iterative DFS with per-node edge cursors pushes a blocking flow
        through it — every augmenting path of the phase costs the same,
        so saturating them all at once preserves the
        successive-shortest-path invariant while doing the expensive
        Dijkstra once per cost level instead of once per path.
        """
        n = self._n
        to, cap, cost = self._to, self._cap, self._cost
        graph = self._graph
        potential = [0] * n
        total_flow = 0
        total_cost = 0
        infinity = float("inf")
        while True:
            dist = self._dijkstra(source, potential)
            if dist[sink] == infinity:
                break
            for v in range(n):
                if dist[v] < infinity:
                    potential[v] += dist[v]
            # Saturate every zero-reduced-cost path before paying for
            # another Dijkstra: a blocking flow only covers shortest-
            # hop-count admissible paths, so re-level and repeat until
            # the admissible subgraph disconnects source from sink.
            while True:
                level = [-1] * n
                level[source] = 0
                queue = deque([source])
                while queue:
                    u = queue.popleft()
                    lu = level[u] + 1
                    pu = potential[u]
                    for edge in graph[u]:
                        v = to[edge]
                        if (cap[edge] > 0 and level[v] < 0
                                and cost[edge] + pu - potential[v] == 0):
                            level[v] = lu
                            queue.append(v)
                if level[sink] < 0:
                    break
                # Blocking flow: repeated cursor-preserving DFS until
                # the admissible level graph is saturated.
                cursor = [0] * n
                while True:
                    stack = [source]
                    path: list[int] = []
                    while stack:
                        u = stack[-1]
                        if u == sink:
                            break
                        advanced = False
                        edges = graph[u]
                        while cursor[u] < len(edges):
                            edge = edges[cursor[u]]
                            v = to[edge]
                            if (cap[edge] > 0 and level[v] == level[u] + 1
                                    and cost[edge] + potential[u]
                                    - potential[v] == 0):
                                stack.append(v)
                                path.append(edge)
                                advanced = True
                                break
                            cursor[u] += 1
                        if not advanced:
                            stack.pop()
                            if path:
                                # Dead end: skip the edge that led here.
                                parent = stack[-1]
                                cursor[parent] += 1
                                path.pop()
                    if not stack:
                        break  # level graph exhausted
                    push = min(cap[edge] for edge in path)
                    for edge in path:
                        cap[edge] -= push
                        cap[edge ^ 1] += push
                        total_cost += push * cost[edge]
                    total_flow += push
        return total_flow, total_cost

    def solve_reference(self, source: int, sink: int) -> tuple[int, int]:
        """One-augmenting-path-per-Dijkstra baseline (kept for tests)."""
        n = self._n
        to, cap, cost = self._to, self._cap, self._cost
        potential = [0] * n
        total_flow = 0
        total_cost = 0
        infinity = float("inf")
        while True:
            dist: list = [infinity] * n
            dist[source] = 0
            parent_edge = [-1] * n
            heap = [(0, source)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist[u]:
                    continue
                for edge in self._graph[u]:
                    if cap[edge] <= 0:
                        continue
                    v = to[edge]
                    nd = d + cost[edge] + potential[u] - potential[v]
                    if nd < dist[v]:
                        dist[v] = nd
                        parent_edge[v] = edge
                        heapq.heappush(heap, (nd, v))
            if dist[sink] == infinity:
                break
            for v in range(n):
                if dist[v] < infinity:
                    potential[v] += int(dist[v])
            # Find bottleneck along the path.
            push = None
            v = sink
            while v != source:
                edge = parent_edge[v]
                push = cap[edge] if push is None else min(push, cap[edge])
                v = to[edge ^ 1]
            assert push is not None and push > 0
            v = sink
            while v != source:
                edge = parent_edge[v]
                cap[edge] -= push
                cap[edge ^ 1] += push
                total_cost += push * cost[edge]
                v = to[edge ^ 1]
            total_flow += push
        return total_flow, total_cost


def flow_admission(
    per_set: list[list[Interval]],
    slot_counts: list[int],
    ways: int,
    trace_len: int,
) -> AdmissionPlan:
    """Exact (LP-relaxation) interval admission via min-cost flow.

    An interval is admitted when more than half its units route through
    the chain (the standard rounding of FOO's fractional solution).
    The per-set chain is compressed to interval-endpoint slots: runs of
    series chain edges with no interval attached collapse into one
    edge, which leaves the flow problem unchanged but sizes the graph
    by the set's interval count rather than its timeline length.
    """
    with stagetimer.timed("flow_admission"):
        plan = AdmissionPlan(trace_len)
        for intervals in per_set:
            if not intervals:
                continue
            plan.considered_count += len(intervals)
            plan.considered_value += sum(iv.value for iv in intervals)
            spanning = [iv for iv in intervals if iv.i_slot < iv.j_slot]
            for interval in intervals:
                if interval.i_slot >= interval.j_slot:
                    plan.admit(interval)  # occupies no capacity
            if not spanning:
                continue
            endpoints = sorted(
                {iv.i_slot for iv in spanning} | {iv.j_slot for iv in spanning}
            )
            node_of = {slot: node for node, slot in enumerate(endpoints)}
            m = len(endpoints)
            source, sink = m, m + 1
            solver = MinCostFlow(m + 2)
            for node in range(m - 1):
                solver.add_edge(node, node + 1, ways, 0)
            miss_edges: list[tuple[Interval, int]] = []
            for interval in spanning:
                u = node_of[interval.i_slot]
                v = node_of[interval.j_slot]
                solver.add_edge(source, u, interval.size, 0)
                solver.add_edge(v, sink, interval.size, 0)
                unit_cost = max(
                    1, round(interval.value * _COST_SCALE / interval.size)
                )
                miss_edge = solver.add_edge(u, v, interval.size, unit_cost)
                miss_edges.append((interval, miss_edge))
            solver.solve(source, sink)
            for interval, miss_edge in miss_edges:
                missed_units = solver.flow_on(miss_edge)
                if missed_units * 2 <= interval.size:
                    plan.admit(interval)
    return plan
