"""Belady's MIN algorithm, adapted to the micro-op cache as in the paper.

Classic Belady evicts the block whose next use is furthest in the
future.  Two adaptations from Section III-C:

* decisions are made at **insertion time** (the asynchronous-insertion
  fix Belady *can* make, unlike FOO, because the greedy rule is cheap
  to re-evaluate);
* an insertion is **bypassed** when the incoming window itself has the
  furthest next use — inserting it would make it the next victim.

Belady still treats same-start windows of different lengths as distinct
objects (``IdentityMode.EXACT``) and values every PW equally, which is
exactly why FLACK outperforms it on the micro-op-level miss metric
(Figures 3 and 4).
"""

from __future__ import annotations

from typing import Sequence

from ..core.pw import PWLookup, StoredPW
from ..core.trace import Trace
from ..uopcache.replacement import EvictionReason, ReplacementPolicy
from .future import NEVER, shared_future_index
from .intervals import IdentityMode


class BeladyPolicy(ReplacementPolicy):
    """Insertion-time Belady MIN with bypass."""

    name = "belady"

    def __init__(self, trace: Trace) -> None:
        super().__init__()
        self.future = shared_future_index(trace, IdentityMode.EXACT)

    def reset(self) -> None:
        pass

    def should_bypass(self, now: int, set_index: int, incoming: StoredPW,
                      resident: Sequence[StoredPW], need_ways: int) -> bool:
        # Insertions complete before the lookup at `now` is served, so a
        # use *at* `now` still counts — hence `now - 1`.
        incoming_next = self.future.next_use_of(incoming, now - 1)
        if incoming_next == NEVER:
            return True
        if need_ways <= 0:
            return False
        # Bypass when the incoming window would itself be the victim.
        return all(
            self.future.next_use_of(pw, now - 1) <= incoming_next
            for pw in resident
        )

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        return sorted(
            resident, key=lambda pw: -self.future.next_use_of(pw, now - 1)
        )
