"""Next-use indices over a fixed trace, shared across policy instances.

Two implementations with one query interface:

* :class:`FutureIndex` — the semantic reference: a dict of per-key
  lookup-time lists, bisected per query.  Each policy used to build its
  own copy, so a FLACK-ablation batch paid the O(n) construction once
  per variant.
* :class:`ColumnarFutureIndex` — the fast path: one pass over the trace
  produces a columnar CSR layout (a flat occurrence array grouped by
  key plus per-key spans) and a numpy *successor array* ``succ`` where
  ``succ[t]`` is the next lookup time of the object observed at ``t``
  (:data:`NEVER` when it never recurs).  Point queries bisect the flat
  array within the key's span — same complexity and same answers as the
  reference — while bulk consumers
  (:func:`repro.offline.intervals.shared_intervals`) read ``succ``
  directly instead of re-deriving reuse chains.

:func:`shared_future_index` memoizes the columnar index on the
:class:`~repro.core.trace.Trace` (alongside ``prepared()``), so every
policy replaying one trace under the same identity mode shares a single
build.  ``REPRO_POLICY_FASTPATH=0`` restores the per-policy reference
behaviour — the before-arm of ``scripts/bench_policy_build.py``.
"""

from __future__ import annotations

import os
import sys
from bisect import bisect_right
from typing import Hashable

import numpy as np

from .. import stagetimer
from ..core.pw import PWLookup, StoredPW
from ..core.trace import Trace
from .intervals import IdentityMode

#: Sentinel "never used again".
NEVER = sys.maxsize


def fast_path_enabled() -> bool:
    """Whether shared columnar artifacts are in use (default: yes).

    ``REPRO_POLICY_FASTPATH=0`` switches policy construction back to
    the reference path: per-policy :class:`FutureIndex` builds, the
    scan-based interval extraction and unshared profiling runs.  The
    policy-build benchmark uses this to time its before arm.
    """
    return os.environ.get("REPRO_POLICY_FASTPATH", "1") != "0"


class FutureIndex:
    """Next-use queries over a fixed trace (reference implementation)."""

    def __init__(self, trace: Trace, identity: IdentityMode) -> None:
        self._key_fn = identity.key_fn()
        self._times: dict[Hashable, list[int]] = {}
        for t, pw in enumerate(trace):
            self._times.setdefault(self._key_fn(pw), []).append(t)

    def key_of(self, pw: PWLookup | StoredPW) -> Hashable:
        # StoredPW quacks enough like PWLookup for both key functions.
        return self._key_fn(pw)  # type: ignore[arg-type]

    def next_use(self, key: Hashable, after: int) -> int:
        """First lookup time of ``key`` strictly after ``after``."""
        times = self._times.get(key)
        if not times:
            return NEVER
        index = bisect_right(times, after)
        if index >= len(times):
            return NEVER
        return times[index]

    def next_use_of(self, pw: PWLookup | StoredPW, after: int) -> int:
        return self.next_use(self.key_of(pw), after)


class ColumnarFutureIndex:
    """Columnar next-use representation built in one pass.

    Layout (all parallel to the trace, length ``n``):

    ``succ``
        int64 numpy array; ``succ[t]`` is the next lookup time of the
        key observed at ``t``, or :data:`NEVER`.
    ``occ`` / ``occ_list``
        the lookup times ``0..n-1`` grouped by key (ascending within
        each group) — a CSR occurrence array, as numpy and as a plain
        list (C ``bisect`` on a list is what the per-resident scoring
        hot path wants).
    ``span``
        key -> ``(lo, hi)`` half-open range into ``occ``.
    """

    def __init__(self, trace: Trace, identity: IdentityMode) -> None:
        key_fn = identity.key_fn()
        self._key_fn = key_fn
        # Packed traces yield the key stream straight from the columns
        # (ints for START, (start, uops) tuples for EXACT — the same
        # values key_fn computes), skipping PWLookup materialization.
        if trace.has_columns():
            columns = trace.columns
            n = len(columns)
            if identity is IdentityMode.START:
                keys = iter(columns.starts)
            else:
                keys = zip(columns.starts, columns.uops)
        else:
            lookups = trace.lookups
            n = len(lookups)
            keys = map(key_fn, lookups)
        ids = np.empty(n, dtype=np.int64)
        key_id: dict[Hashable, int] = {}
        next_id = 0
        for t, k in enumerate(keys):
            i = key_id.get(k)
            if i is None:
                i = key_id[k] = next_id
                next_id += 1
            ids[t] = i
        # CSR occurrence layout: a stable sort by key id groups the
        # (already time-ordered) positions per key.
        occ = np.argsort(ids, kind="stable").astype(np.int64, copy=False)
        offsets = np.zeros(next_id + 1, dtype=np.int64)
        np.cumsum(np.bincount(ids, minlength=next_id), out=offsets[1:])
        # Successor array: within each key group, each occurrence's
        # successor is the next group element; group tails get NEVER.
        succ = np.empty(n, dtype=np.int64)
        if n:
            succ[occ[:-1]] = occ[1:]
            succ[occ[offsets[1:] - 1]] = NEVER
        self.succ = succ
        self.occ = occ
        self.occ_list: list[int] = occ.tolist()
        off = offsets.tolist()
        self.span: dict[Hashable, tuple[int, int]] = {
            key: (off[i], off[i + 1]) for key, i in key_id.items()
        }

    def key_of(self, pw: PWLookup | StoredPW) -> Hashable:
        return self._key_fn(pw)  # type: ignore[arg-type]

    def next_use(self, key: Hashable, after: int) -> int:
        """First lookup time of ``key`` strictly after ``after``."""
        span = self.span.get(key)
        if span is None:
            return NEVER
        lo, hi = span
        index = bisect_right(self.occ_list, after, lo, hi)
        if index >= hi:
            return NEVER
        return self.occ_list[index]

    def next_use_of(self, pw: PWLookup | StoredPW, after: int) -> int:
        return self.next_use(self._key_fn(pw), after)  # type: ignore[arg-type]


def shared_future_index(
    trace: Trace, identity: IdentityMode
) -> FutureIndex | ColumnarFutureIndex:
    """The trace's memoized columnar index for one identity mode.

    All policies (and the interval extractor) replaying ``trace`` under
    ``identity`` share one build.  With the fast path disabled this
    degrades to a fresh per-call reference :class:`FutureIndex`.
    """
    if not fast_path_enabled():
        with stagetimer.timed("future_index"):
            return FutureIndex(trace, identity)

    def build() -> ColumnarFutureIndex:
        with stagetimer.timed("future_index"):
            return ColumnarFutureIndex(trace, identity)

    return trace.memo(("future_index", identity), build)
