"""FOO: flow-based offline optimal replacement (Berger et al. [23]).

FOO frames offline replacement as interval admission (Section III-D):
after each lookup, decide whether the window stays cached until its
next use, subject to capacity.  The LP relaxation solves exactly via
min-cost flow; this implementation uses the scalable greedy admission
of :mod:`repro.offline.plan` by default and the exact flow solver for
small traces (``use_flow=True``).

As in the paper, FOO here is *deliberately* blind to the micro-op
cache's specifics — that is what FLACK fixes:

* objective is OHR (missed PWs) or BHR (missed entries), never
  micro-ops, so costs stay proportional to size (Figure 3's flaw);
* same-start windows of different lengths are separate objects, so
  partial hits earn nothing (Figure 4's flaw);
* admission ignores the decode-pipeline insertion delay, so intervals
  too short to ever become resident waste planned capacity, and stale
  lookup-time decisions govern insertions (Section III-C(3)'s flaw).
"""

from __future__ import annotations

from typing import Callable

from ..config import UopCacheConfig
from ..core.trace import Trace
from ..uopcache.cache import default_set_index
from .base import OfflineReplayPolicy
from .intervals import IdentityMode, ValueMetric, shared_intervals
from .mincostflow import flow_admission


class FOOPolicy(OfflineReplayPolicy):
    """FOO with the OHR (default) or BHR objective."""

    def __init__(
        self,
        trace: Trace,
        config: UopCacheConfig,
        *,
        objective: str = "ohr",
        use_flow: bool = False,
        set_index_fn: Callable[[int, int], int] | None = None,
    ) -> None:
        if objective not in ("ohr", "bhr"):
            raise ValueError(f"objective must be 'ohr' or 'bhr', got {objective!r}")
        metric = ValueMetric.OHR if objective == "ohr" else ValueMetric.ENTRIES
        super().__init__(
            trace,
            config,
            plan_mode=True,
            async_aware=False,
            variable_cost=False,
            selective_bypass=False,
            metric=metric,
            set_index_fn=set_index_fn,
            name=f"foo-{objective}",
        )
        if use_flow:
            # Replace the greedy plan with the exact LP/flow admission.
            set_fn = set_index_fn or default_set_index
            per_set, slots = shared_intervals(
                trace,
                config,
                identity=IdentityMode.EXACT,
                metric=metric,
                set_index_fn=set_fn,
                min_gap=0,
            )
            self.plan = flow_admission(per_set, slots, config.ways, len(trace))
