"""FLACK: the paper's offline near-optimal micro-op cache policy.

FLACK (FOO-based seLectively-bypassing Asynchronizing Cost-varying
selective-data-Keeping, Section IV) extends FOO with three features,
each independently toggleable to reproduce the Figure 10 ablation:

``async_aware`` ("A")
    Lazy eviction and late-insertion safeguarding: plan admission knows
    windows only become resident ``insertion_delay`` lookups after the
    miss, and insertion-time decisions re-check the future at the
    *actual* insertion time, bypassing windows whose reuse already
    raced past in the decode pipe.
``variable_cost`` ("VC")
    Unit cost becomes cost/size — the number of micro-ops per occupied
    entry — so a 4-uop single-entry window outranks a 1-uop one
    (Figure 3).
``selective_bypass`` ("SB")
    Same-start windows chain into one object so partial hits earn their
    served micro-ops, larger windows are preferred on upgrade, and
    plan-bypassed windows are still kept when capacity is spare and a
    nearby same-start use exists (Figure 4).

With all three enabled this is the FLACK configuration evaluated in the
paper; :func:`flack_ablation_suite` yields the Figure 10 ladder.
"""

from __future__ import annotations

from typing import Callable

from ..config import UopCacheConfig
from ..core.trace import Trace
from .base import OfflineReplayPolicy


class FLACKPolicy(OfflineReplayPolicy):
    """FLACK with Figure 10 feature flags (all on by default)."""

    def __init__(
        self,
        trace: Trace,
        config: UopCacheConfig,
        *,
        async_aware: bool = True,
        variable_cost: bool = True,
        selective_bypass: bool = True,
        set_index_fn: Callable[[int, int], int] | None = None,
        name: str | None = None,
    ) -> None:
        if name is None:
            if async_aware and variable_cost and selective_bypass:
                name = "flack"
            else:
                parts = [
                    label
                    for flag, label in (
                        (async_aware, "A"),
                        (variable_cost, "VC"),
                        (selective_bypass, "SB"),
                    )
                    if flag
                ]
                name = "flack[" + "+".join(parts or ["none"]) + "]"
        plan_mode = not (async_aware or variable_cost or selective_bypass)
        super().__init__(
            trace,
            config,
            # With no FLACK feature enabled this *is* FOO: a static plan
            # followed verbatim.  Any feature moves to insertion-time
            # greedy replay (lazy eviction is part of "A").
            plan_mode=plan_mode,
            async_aware=async_aware,
            variable_cost=variable_cost,
            selective_bypass=selective_bypass,
            set_index_fn=set_index_fn,
            name=name,
        )


#: The Figure 10 ablation ladder: feature sets applied cumulatively.
ABLATION_STEPS: tuple[tuple[str, dict[str, bool]], ...] = (
    ("foo", dict(async_aware=False, variable_cost=False, selective_bypass=False)),
    ("A", dict(async_aware=True, variable_cost=False, selective_bypass=False)),
    ("A+VC", dict(async_aware=True, variable_cost=True, selective_bypass=False)),
    ("A+VC+SB", dict(async_aware=True, variable_cost=True, selective_bypass=True)),
)


def flack_ablation_suite(
    trace: Trace, config: UopCacheConfig
) -> dict[str, FLACKPolicy]:
    """Build the cumulative-feature policies of the Figure 10 ablation."""
    return {
        label: FLACKPolicy(trace, config, name=f"flack[{label}]", **flags)
        for label, flags in ABLATION_STEPS
    }
