"""Vectorized simulation kernel for offline and profile-guided policies.

The online kernel (:mod:`repro.frontend.simd`) covers the policies
whose per-event updates are plain recency/RRPV dict writes.  This
sibling extends the same machinery to the paper's headline arms:

* **Belady** and the **FOO/FLACK replay family** — their decisions are
  bisect queries into the shared columnar future index
  (:class:`~repro.offline.future.ColumnarFutureIndex`): ``occ_list``
  and ``span`` are bound once and queried directly on the cold
  (insertion) path, exactly the computation the reference ``_score`` /
  ``next_use`` methods perform.  Each resident record additionally
  caches its occurrence bracket ``[idx, lo, hi]`` in the (otherwise
  unused) aux slot: a query is valid iff ``occ[idx-1] <= after <
  occ[idx]``, which replaces the per-candidate tuple-key hash, span
  lookup and bisect with two list compares on the hot path (the bisect
  only reruns when the cached next use actually went by — at most once
  per occurrence).  Plan mode additionally reads the precomputed
  admission bytearray.
* **FURBYS / Thermometer** — static per-PW hints and classes; the hit
  path is the same inlined probe-and-stamp loop as LRU, with the live
  policy dicts (``_last_use``, RRPV table, pitfall detector) mirrored
  in event order.
* **per-PW hit-rate recording** (``record_hit_rates=True``) — a live
  mirror of ``pipeline.pw_hit_stats``, so the FURBYS/Thermometer
  profiling replay in :mod:`repro.harness.artifacts` routes through
  the kernel instead of triggering a fallback.

Unlike the online kernel — which keeps policy state in the resident
records and rebuilds the dicts before the drain — this kernel mutates
the *live* policy dicts throughout.  The offline policies' state is
keyed by start address and touched once per event (no per-set aging
offsets to batch), so mirroring costs what the records would and keeps
``_rebuild_policy_dicts`` a no-op; key insertion order then matches the
reference hook order by construction.

Bit-identity discipline is inherited wholesale: ``REPRO_SIM_FASTPATH=0``
restores the reference loop, unsupported shapes (reference future
index, miss classification, mid-stream pipelines) fall back with a
``sim_fallback:*`` counter, and ``tests/test_offline_kernel.py`` sweeps
geometries x policies x trace lengths against ``run_reference``.
"""

from __future__ import annotations

import os as _os
from bisect import bisect_right

from ..policies.srrip import RRPV_HIT, RRPV_INSERT, RRPV_MAX
from ..policies.thermometer import COLD, HOT
from ._specialize import compile_flagged
from .simd import (
    _INCLUSIVE,
    _REPLACEMENT,
    _SIZE,
    _UOPS,
    _UPGRADE,
    _WEIGHT,
    _Kernel,
    _np,
    offline_kernel_kind,
)

#: "Never used again" sentinel of the future index (sys.maxsize).
from ..offline.future import NEVER as _NEVER

_INF = float("inf")


class _OfflineKernel(_Kernel):
    """Kernel run for the offline / profile-guided policy kinds.

    Reuses the base kernel's columns, storage mirrors, orchestration
    and ``_sync_back`` unchanged; overrides the policy-state handling
    (live dict mirroring instead of record-resident state) and the
    insertion decisions (future-index bisects / hint comparisons
    instead of recency ranking).
    """

    def __init__(self, pipeline, trace, warmup: int, *, columns=None,
                 n_total=None) -> None:
        super().__init__(pipeline, trace, warmup, columns=columns,
                         n_total=n_total)
        policy = pipeline.policy
        # The base constructor resolved the *online* kind (None here);
        # rebind to the offline one — every inherited kind branch in
        # __init__/_sync_back is a no-op for these values.
        kind = offline_kernel_kind(policy)
        self.kind = kind

        # Live policy dicts.  Unused kinds get empty placeholders so
        # the segment's unconditional alias hoists stay valid under
        # specialization.
        self.interval_start: dict[int, int] = {}
        self.pending_lookup_t: dict[int, int] = {}
        self.o_last_use: dict[int, int] = {}
        self.o_rrpv: dict[int, int] = {}
        self.classes_get = self.interval_start.get
        self.occ: list[int] = []
        self.span_get = self.interval_start.get
        self.admit = b""
        self.n_admit = 0
        self.start_identity = False
        self.async_aware = False
        self.metric_mode = 0
        if kind in ("plan", "greedy"):
            from ..offline.intervals import IdentityMode

            self.interval_start = policy._interval_start
            self.pending_lookup_t = policy._pending_lookup_t
            self.occ = policy._occ
            self.span_get = policy._span.get
            self.start_identity = policy._identity is IdentityMode.START
            self.async_aware = policy._async_aware
            self.metric_mode = policy._metric_mode
            if kind == "plan":
                self.admit = policy.plan._admit_from
                self.n_admit = len(self.admit)
        elif kind == "belady":
            self.occ = policy.future.occ_list
            self.span_get = policy.future.span.get
        elif kind == "furbys":
            self.o_last_use = policy._last_use
            self.o_rrpv = policy.rrpv._rrpv
            self.f_bypass_enabled = policy._bypass_enabled
            self.f_bypass_floor = policy._bypass_floor
            self.f_bypass_margin = policy._bypass_margin
            self.f_pitfall_depth = policy._pitfall_depth
            # Bound method: the detector lazily creates per-set deques
            # in the policy's _pitfall dict, which is itself compared
            # state — let the policy maintain it.
            self.f_detector = policy._detector
        else:  # thermometer
            self.o_last_use = policy._last_use
            self.classes_get = policy._classes.get

        phs = pipeline.pw_hit_stats
        self.has_phs = phs is not None
        self.phs: dict[int, list[int]] = phs if phs is not None else {}

    # --- orchestration -------------------------------------------------------

    def run(self):
        self._bind_specialized()
        return super().run()

    def _bind_specialized(self) -> None:
        # Bind the flag-specialized attempt before the segments run:
        # the generic segment, the specialized segment and _drain all
        # call through ``self._attempt``, so the instance binding
        # covers every path (REPRO_SIM_SPECIALIZE=0 keeps the generic
        # method, whose flag locals branch per attempt instead).  The
        # fused sweep calls this directly — it drives segments without
        # going through run().
        if _os.environ.get("REPRO_SIM_SPECIALIZE", "1") != "0":
            spec = _off_specialized_attempt({
                "is_belady": self.kind == "belady",
                "is_plan": self.kind == "plan",
                "is_greedy": self.kind == "greedy",
                "is_furbys": self.kind == "furbys",
                "start_identity": self.start_identity,
                "async_aware": self.async_aware,
                "metric0": self.metric_mode == 0,
                "metric1": self.metric_mode == 1,
                "keep_larger": self.keep_larger,
            })
            if spec is not None:
                self._attempt = spec.__get__(self)

    def _spec_flags(self) -> dict:
        """Run-constant flags the specialized segment bakes in."""
        kind = self.kind
        return {
            "is_replay": kind in ("plan", "greedy"),
            "is_furbys": kind == "furbys",
            "track_lu": kind in ("furbys", "thermometer"),
            "has_phs": self.has_phs,
            "has_hints": bool(self.pipeline.accumulator._hints),
            "perfect_icache": self.pipeline.config.perfect_icache,
            "inclusive": self.inclusive,
        }

    def _specialized(self):
        """Compiled flag-specialized segment variant (None on failure)."""
        return _off_specialized_segment(self._spec_flags())

    def _rebuild_policy_dicts(self) -> None:
        """No-op: the policy dicts are mirrored live by the hot loop."""

    # --- storage engine ------------------------------------------------------

    def _remove(self, now: int, start: int, rec: list, reason: int) -> None:
        """Evict a resident record, mirroring the policy's on_evict."""
        set_index = rec[2]
        del self.sets_pws[set_index][start]
        del self.resident[start]
        self.used_ways[set_index] -= rec[1]
        if reason == _REPLACEMENT:
            self.cache_evictions += 1
            self.cache_evicted_entries += rec[1]
        elif reason == _INCLUSIVE:
            self.cache_invalidations += 1
        else:
            self.cache_upgrades += 1
        kind = self.kind
        if kind == "furbys":
            self.o_last_use.pop(start, None)
            self.o_rrpv.pop(start, None)
        elif kind == "thermometer":
            self.o_last_use.pop(start, None)
        elif kind != "belady" and reason != _UPGRADE:
            # Replay modes keep the interval across an in-place upgrade
            # (EvictionReason.UPGRADE is excluded in the reference).
            self.interval_start.pop(start, None)

    # The bracket-cache pattern below repeats inline in every ranking
    # loop on purpose: a shared helper would reintroduce the very
    # function-call overhead the cache removes.  The cached [idx, lo,
    # hi] answers ``first occurrence > after`` iff ``occ[idx-1] <=
    # after < occ[idx]`` (with the boundary cases); any other query —
    # the next use went by, or a stale FLACK time_ref looks backwards —
    # falls back to one bisect and re-caches.

    def _attempt(self, now: int, start: int, request: tuple) -> None:
        """One insertion attempt (mirrors ``UopCache.try_insert``).

        The reference splits this across ``try_insert`` plus the
        policy's ``should_bypass`` / ``choose_victims`` / ``on_evict``
        hooks; here the whole decision is one straight-line body so the
        per-kind specialization (module tail) prunes every cross-kind
        branch and the bypass-check ranking doubles as the victim order
        without a handoff.  Candidate sets are never materialized: the
        ranking loops iterate ``cset`` directly (dict order ==
        residency order), skipping ``skip`` (the same-start entry being
        upgraded); the unique running index ``i`` breaks sort ties in
        residency order.
        """
        is_belady = self.kind == "belady"
        is_plan = self.kind == "plan"
        is_greedy = self.kind == "greedy"
        is_furbys = self.kind == "furbys"
        start_identity = self.start_identity
        async_aware = self.async_aware
        metric0 = self.metric_mode == 0
        metric1 = self.metric_mode == 1
        keep_larger = self.keep_larger

        self.st_attempts += 1
        uops = request[0]
        weight = request[3]
        set_index = request[4]
        size = request[5]
        ways = self.ways
        if size > ways:
            self.st_bypasses += 1
            return
        cset = self.sets_pws[set_index]
        existing = cset.get(start)
        if existing is not None:
            if keep_larger and existing[_UOPS] >= uops:
                self.st_bypasses += 1
                return
            extra_needed = size - existing[_SIZE]
            skip = start
        else:
            extra_needed = size
            skip = None
        need = extra_needed - (ways - self.used_ways[set_index])

        # --- should_bypass (every offline kind overrides it, so the
        # reference consults it on *every* attempt) ---
        decorated = None
        if is_belady:
            # A use *at* `now` still counts — insertions complete
            # before the lookup at `now` is served.
            span = self.span_get((start, uops))
            if span is None:
                self.st_bypasses += 1
                return
            occ = self.occ
            after = now - 1
            idx = bisect_right(occ, after, span[0], span[1])
            if idx >= span[1]:
                self.st_bypasses += 1
                return
            incoming_next = occ[idx]
            if need > 0:
                # Bypass when the incoming window would itself be the
                # best victim.  The ranking built for the check is the
                # victim order of this attempt (same `after`).
                span_get = self.span_get
                decorated = []
                i = 0
                bypass = True
                for s, rec in cset.items():
                    if s == skip:
                        continue
                    aux = rec[9]
                    if aux is None:
                        span = span_get((s, rec[0]))
                        aux = rec[9] = (
                            [span[0], span[0], span[1]]
                            if span is not None else [0, 0, 0])
                    idx, blo, bhi = aux
                    if not ((idx == blo or occ[idx - 1] <= after)
                            and (idx == bhi or occ[idx] > after)):
                        idx = bisect_right(occ, after, blo, bhi)
                        aux[0] = idx
                    nuv = occ[idx] if idx < bhi else _NEVER
                    if nuv > incoming_next:
                        # NEVER or a later next use: not the best
                        # victim.
                        bypass = False
                    decorated.append((-nuv, i, s))
                    i += 1
                if bypass:
                    self.st_bypasses += 1
                    return
        elif is_plan:
            # FOO follows its static plan eagerly: if the interval
            # starting at the lookup was not admitted, bypass — even
            # into free space.
            lookup_t = self.pending_lookup_t.get(start, now)
            if (not 0 <= lookup_t < self.n_admit
                    or self.admit[lookup_t] == 0):
                self.st_bypasses += 1
                return
        elif is_greedy:
            key = start if start_identity else (start, uops)
            occ = self.occ
            span_get = self.span_get
            if async_aware:
                time_ref = now
                span = span_get(key)
                if (span is None
                        or bisect_right(occ, now - 1, span[0], span[1])
                        >= span[1]):
                    # Reuse raced past during decode, or the window is
                    # dead ("safeguarding late insertions").
                    self.st_bypasses += 1
                    return
            else:
                # Without the asynchrony feature the policy still
                # believes the stale view from when the lookup missed.
                time_ref = self.pending_lookup_t.get(start, now)
            if need > 0:
                # Never insert a window that would immediately be the
                # best victim.  When the stale view coincides with
                # `now` (always under async awareness) the scores
                # computed for the check ARE the victim ranking of
                # this attempt.
                t = time_ref
                incoming_score = _INF
                span = span_get(key)
                if span is not None:
                    idx = bisect_right(occ, t - 1, span[0], span[1])
                    if idx < span[1]:
                        distance = float(occ[idx] - t)
                        if metric0:
                            incoming_score = distance * size
                        elif metric1:
                            incoming_score = distance
                        else:
                            incoming_score = (distance * size
                                              / max(1, uops))
                stale = t != now
                after = t - 1
                decorated = []
                i = 0
                bypass = True
                for s, rec in cset.items():
                    if s == skip:
                        continue
                    aux = rec[9]
                    if aux is None:
                        k = s if start_identity else (s, rec[0])
                        span = span_get(k)
                        aux = rec[9] = (
                            [span[0], span[0], span[1]]
                            if span is not None else [0, 0, 0])
                    idx, blo, bhi = aux
                    if not ((idx == blo or occ[idx - 1] <= after)
                            and (idx == bhi or occ[idx] > after)):
                        idx = bisect_right(occ, after, blo, bhi)
                        aux[0] = idx
                    if idx < bhi:
                        distance = float(occ[idx] - t)
                        if metric0:
                            sc = distance * rec[1]
                        elif metric1:
                            sc = distance
                        else:
                            sc = distance * rec[1] / max(1, rec[0])
                    else:
                        sc = _INF
                    if sc > incoming_score:
                        if stale:
                            # The stale ranking is NOT the victim
                            # order — rebuild below at `now`.
                            decorated = None
                            bypass = False
                            break
                        bypass = False
                    decorated.append((-sc, i, s))
                    i += 1
                if bypass:
                    self.st_bypasses += 1
                    return
        elif is_furbys:
            if (self.f_bypass_enabled and need > 0
                    and weight is not None
                    and weight < self.f_bypass_floor
                    and len(cset) != (skip is not None)):
                # Only profiled-cold windows (with a hint that reached
                # the decoder) are bypass candidates, measured against
                # the set's weight floor.
                min_weight = None
                for s, rec in cset.items():
                    if s == skip:
                        continue
                    rw = rec[5]
                    if rw is None:
                        rw = 0
                    if min_weight is None or rw < min_weight:
                        min_weight = rw
                if weight < min_weight - self.f_bypass_margin:
                    self.pipeline.policy.bypass_decisions += 1
                    self.st_bypasses += 1
                    return
        elif need > 0:
            # thermometer: a cold insertion never displaces an all-hot
            # set.
            classes_get = self.classes_get
            if (classes_get(start, COLD) == COLD
                    and len(cset) != (skip is not None)):
                for s in cset:
                    if s == skip:
                        continue
                    if classes_get(s, COLD) != HOT:
                        break
                else:
                    self.st_bypasses += 1
                    return

        if need > 0:
            # --- choose_victims ---
            if is_furbys:
                victims = self._furbys_victims(now, set_index, cset,
                                               skip, need)
                if victims is None:
                    # The policy could not (or chose not to) free
                    # enough ways: bypass, same as a Bypass decision.
                    self.st_bypasses += 1
                    return
            else:
                if decorated is None:
                    decorated = []
                    i = 0
                    if is_plan:
                        # Static plan adherence: plan-bypassed
                        # residents leave first, furthest next use
                        # first within each class (the plan ranking
                        # queries the future at `now`, not `now - 1`).
                        interval_get = self.interval_start.get
                        admit = self.admit
                        n_admit = self.n_admit
                        occ = self.occ
                        span_get = self.span_get
                        after = now
                        for s, rec in cset.items():
                            if s == skip:
                                continue
                            pt = interval_get(s)
                            planned = 1 if (pt is not None
                                            and 0 <= pt < n_admit
                                            and admit[pt]) else 0
                            aux = rec[9]
                            if aux is None:
                                k = (s if start_identity
                                     else (s, rec[0]))
                                span = span_get(k)
                                aux = rec[9] = (
                                    [span[0], span[0], span[1]]
                                    if span is not None else [0, 0, 0])
                            idx, blo, bhi = aux
                            if not ((idx == blo
                                     or occ[idx - 1] <= after)
                                    and (idx == bhi
                                         or occ[idx] > after)):
                                idx = bisect_right(occ, after, blo, bhi)
                                aux[0] = idx
                            nuv = occ[idx] if idx < bhi else _NEVER
                            decorated.append((planned, -nuv, i, s))
                            i += 1
                    elif is_greedy:
                        # The bypass check ran on a stale time_ref; the
                        # victim ranking queries the future at `now`.
                        occ = self.occ
                        span_get = self.span_get
                        after = now - 1
                        for s, rec in cset.items():
                            if s == skip:
                                continue
                            aux = rec[9]
                            if aux is None:
                                k = (s if start_identity
                                     else (s, rec[0]))
                                span = span_get(k)
                                aux = rec[9] = (
                                    [span[0], span[0], span[1]]
                                    if span is not None else [0, 0, 0])
                            idx, blo, bhi = aux
                            if not ((idx == blo
                                     or occ[idx - 1] <= after)
                                    and (idx == bhi
                                         or occ[idx] > after)):
                                idx = bisect_right(occ, after, blo, bhi)
                                aux[0] = idx
                            if idx < bhi:
                                distance = float(occ[idx] - now)
                                if metric0:
                                    sc = distance * rec[1]
                                elif metric1:
                                    sc = distance
                                else:
                                    sc = (distance * rec[1]
                                          / max(1, rec[0]))
                            else:
                                sc = _INF
                            decorated.append((-sc, i, s))
                            i += 1
                    elif not is_belady:
                        # thermometer: cold before warm before hot, LRU
                        # within a class (last use lives in the record
                        # stamp).
                        classes_get = self.classes_get
                        for s, rec in cset.items():
                            if s == skip:
                                continue
                            decorated.append(
                                (classes_get(s, COLD), rec[8], i, s))
                            i += 1
                # Base-protocol greedy accumulation (stable sort; ties
                # fall back to residency order via `i`).
                decorated.sort()
                victims = []
                freed = 0
                for tup in decorated:
                    vs = tup[-1]
                    victims.append(vs)
                    freed += cset[vs][_SIZE]
                    if freed >= need:
                        break
                else:
                    self.st_bypasses += 1
                    return
            # Evict (inlined _remove with EvictionReason.REPLACEMENT).
            resident = self.resident
            used_ways = self.used_ways
            for victim in victims:
                rec = cset[victim]
                vsize = rec[_SIZE]
                self.st_evictions += 1
                self.st_evicted_entries += vsize
                del cset[victim]
                del resident[victim]
                used_ways[set_index] -= vsize
                self.cache_evictions += 1
                self.cache_evicted_entries += vsize
                if is_furbys:
                    self.o_last_use.pop(victim, None)
                    self.o_rrpv.pop(victim, None)
                elif is_plan or is_greedy:
                    self.interval_start.pop(victim, None)
                elif not is_belady:  # thermometer
                    self.o_last_use.pop(victim, None)
        if existing is not None:
            # Upgrade in place: same tag, more entries (keep-larger).
            # Inlined _remove with EvictionReason.UPGRADE — the replay
            # modes keep the residency interval across the upgrade.
            if weight is None:
                weight = existing[_WEIGHT]
            del cset[start]
            del self.resident[start]
            self.used_ways[set_index] -= existing[_SIZE]
            self.cache_upgrades += 1
            if is_furbys:
                self.o_last_use.pop(start, None)
                self.o_rrpv.pop(start, None)
            elif not (is_belady or is_plan or is_greedy):
                self.o_last_use.pop(start, None)
        first_line = request[6]
        last_line = request[7]
        rec = [uops, size, set_index, request[1], request[2], weight,
               first_line, last_line, now, None, False]
        cset[start] = rec
        self.resident[start] = rec
        self.used_ways[set_index] += size
        line_map = self.line_map
        for line in range(first_line, last_line + 1):
            starts = line_map.get(line)
            if starts is None:
                line_map[line] = {start}
            else:
                starts.add(start)
        self.st_insertions += 1
        self.st_writes += size
        if is_furbys:
            self.o_last_use[start] = now
            self.o_rrpv[start] = RRPV_INSERT
        elif is_belady or is_plan or is_greedy:
            if not is_belady:
                # The residency interval starts at the lookup that
                # missed (async insertion), falling back to the
                # completion time.
                self.interval_start[start] = \
                    self.pending_lookup_t.pop(start, now)
            # Seed the record's occurrence-bracket cache ([idx, lo, hi]
            # into occ_list; [0, 0, 0] = no occurrences).
            key = start if start_identity else (start, uops)
            span = self.span_get(key)
            rec[9] = ([span[0], span[0], span[1]] if span is not None
                      else [0, 0, 0])
        else:
            self.o_last_use[start] = now

    def _furbys_victims(self, now: int, set_index: int, cset: dict,
                        skip, need: int) -> list | None:
        """Mirror of ``FurbysPolicy.choose_victims``."""
        policy = self.pipeline.policy
        decorated = []
        i = 0
        for s, rec in cset.items():
            if s == skip:
                continue
            w = rec[5]
            decorated.append((w if w is not None else 0,
                              rec[8], i, s))
            i += 1
        if not decorated:
            return []
        decorated.sort()
        ranked = [tup[3] for tup in decorated]
        use_fallback = False
        if self.f_pitfall_depth > 0:
            if ranked[0] in self.f_detector(set_index):
                # The weight-based victim was itself evicted from this
                # set just recently: degrade to SRRIP for one decision.
                use_fallback = True
        if use_fallback:
            candidates = [s for s in cset if s != skip]
            ranked = self._rrpv_victims(cset, candidates)
            policy.fallback_selections += 1
        else:
            policy.primary_selections += 1
        victims = []
        freed = 0
        for vs in ranked:
            if freed >= need:
                break
            victims.append(vs)
            freed += cset[vs][_SIZE]
        if freed < need:
            return None
        if self.f_pitfall_depth > 0:
            detector = self.f_detector(set_index)
            if use_fallback:
                detector.clear()
            else:
                for vs in victims:
                    detector.append(vs)
        return victims

    def _rrpv_victims(self, cset: dict, candidates: list) -> list:
        """Mirror of ``RRPVTable.victim_order`` with LRU tie-breaks."""
        o_rrpv = self.o_rrpv
        values = [o_rrpv.get(s, RRPV_MAX) for s in candidates]
        current_max = max(values)
        if current_max < RRPV_MAX:
            # Age the set until a distant entry exists, writing the
            # aged values back (hardware counter increments would).
            delta = RRPV_MAX - current_max
            values = [value + delta for value in values]
            for s, value in zip(candidates, values):
                o_rrpv[s] = value
        decorated = sorted(
            (-values[i], cset[s][8], i)
            for i, s in enumerate(candidates))
        return [candidates[i] for _, _, i in decorated]

    # --- main loop -----------------------------------------------------------

    def _segment(self, begin: int, end: int) -> None:
        """Simulate lookups ``[begin, end)`` into ``pipeline.stats``.

        Modeled on the online kernel's segment loop (same BTB pass,
        hit/miss/partial accounting, icache block and scheduling);
        the policy-state writes mirror the offline hooks live, and
        insertion completions run through :meth:`_attempt` (their cost
        is the ranking sorts and bisects, not the call overhead the
        online kinds inline away).
        """
        pipeline = self.pipeline
        stats = pipeline.stats
        cfg = pipeline.config
        cols = self.cols

        perfect_bp = cfg.perfect_branch_predictor
        perfect_icache = cfg.perfect_icache
        inclusive = self.inclusive
        line_bytes = self.line_bytes
        decode_width = cfg.core.decode_width
        delay = self.delay
        base = self.col_base

        starts_l = cols["starts"]
        uops_l = cols["uops"]
        reqs_l = cols["reqs"]
        ff_l = cols["first_line"]
        fl_l = cols["last_line"]
        cont_l = cols["contains"]
        ic_si_l = cols["ic_si"]

        kind = self.kind
        is_replay = kind in ("plan", "greedy")
        is_furbys = kind == "furbys"
        track_lu = is_furbys or kind == "thermometer"
        has_phs = self.has_phs
        interval_start = self.interval_start
        pending_lookup_t = self.pending_lookup_t
        o_last_use = self.o_last_use
        o_rrpv = self.o_rrpv
        phs = self.phs
        phs_get = phs.get

        resident = self.resident
        resident_get = resident.get
        pending = self.pending
        pending_append = pending.append
        pending_popleft = pending.popleft
        in_flight = self.in_flight
        in_flight_get = in_flight.get
        in_flight_pop = in_flight.pop
        in_flight_setdefault = in_flight.setdefault
        attempt = self._attempt
        remove = self._remove

        hints = pipeline.accumulator._hints
        has_hints = bool(hints)
        hints_get = hints.get

        icache = pipeline.icache
        isets = icache._sets
        ic_n_sets = icache.config.sets
        ic_ways = icache.config.ways
        line_map_get = self.line_map.get

        # --- compressed BTB pass (independent of cache state) ---
        # [fused:btb]
        if not cfg.perfect_btb:
            btb = pipeline.btb
            bsets = btb._sets
            btb_ways = btb.config.btb_ways
            branch_pos = cols["branch_pos"]
            lo = int(_np.searchsorted(branch_pos, begin))
            hi = int(_np.searchsorted(branch_pos, end))
            btb_misses = 0
            prev_pc = None
            for pc, bi in zip(cols["branch_pcs"][lo:hi],
                              cols["branch_si"][lo:hi]):
                if pc == prev_pc:
                    continue  # still the MRU entry of its set
                prev_pc = pc
                bset = bsets[bi]
                if pc in bset:
                    bset.move_to_end(pc)
                else:
                    btb_misses += 1
                    if len(bset) >= btb_ways:
                        bset.popitem(last=False)
                    bset[pc] = None
            self.btb_accesses += hi - lo
            self.btb_misses += btb_misses
            stats.btb_misses += btb_misses
        # [fused:/btb]

        # --- segment-local counters ---
        pw_partial_hits = 0
        uops_missed = 0
        reads_corr = 0
        path_switches = icache_accesses = inclusive_invalidations = 0
        dec_episodes = dec_insts = dec_uops = dec_cycles = 0
        ic_acc = ic_miss = 0
        accumulated = 0
        on_uop_path = self.on_uop_path
        # Full misses record their index only; the per-miss totals are
        # numpy fancy-indexed sums over the precomputed columns.
        miss_idx: list[int] = []
        miss_append = miss_idx.append
        ic_prev = None  # last icache line touched (still MRU in its set)
        NEVER = 1 << 62  # int sentinel keeps the per-lookup compare int-int
        next_due = pending[0] + delay if pending else NEVER

        for now, start, uops in zip(range(begin, end),
                                    starts_l[begin - base:end - base],
                                    uops_l[begin - base:end - base]):
            if next_due <= now:
                lim = now - delay
                while pending and pending[0] <= lim:
                    qi = pending_popleft()
                    queued_start = starts_l[qi - base]
                    request = in_flight_pop(queued_start, None)
                    if request is None:
                        continue  # superseded and already completed
                    attempt(now, queued_start, request)
                next_due = pending[0] + delay if pending else NEVER

            rec = resident_get(start)
            if rec is not None and rec[0] >= uops:
                # Full hit: probe + live policy-dict stamp.
                if has_phs:
                    entry = phs_get(start)
                    if entry is None:
                        phs[start] = [uops, uops]
                    else:
                        entry[0] += uops
                        entry[1] += uops
                if track_lu:
                    rec[8] = now  # ranking reads the record stamp
                    o_last_use[start] = now
                    if is_furbys:
                        o_rrpv[start] = RRPV_HIT
                elif is_replay:
                    interval_start[start] = now
                if not on_uop_path:
                    path_switches += 1
                    on_uop_path = True
            else:
                request = reqs_l[now - base]
                if rec is None:
                    # Full miss: record the index; totals are fancy-indexed
                    # numpy sums at segment fold time.
                    miss_append(now)
                    if has_phs:
                        entry = phs_get(start)
                        if entry is None:
                            phs[start] = [0, uops]
                        else:
                            entry[1] += uops
                    if is_replay:
                        pending_lookup_t[start] = now
                    if on_uop_path:
                        path_switches += 1
                        on_uop_path = False
                    fetch_first = ff_l[now - base]
                    fetch_last = fl_l[now - base]
                else:
                    # Partial hit: stored prefix served, remainder decodes,
                    # merged larger window is scheduled for insertion.
                    served = rec[0]
                    missed = uops - served
                    insts_now = request[1]
                    pw_partial_hits += 1
                    uops_missed += missed
                    reads_corr += rec[1] - request[5]
                    if has_phs:
                        entry = phs_get(start)
                        if entry is None:
                            phs[start] = [served, uops]
                        else:
                            entry[0] += served
                            entry[1] += uops
                    missed_insts = max(1, round(insts_now * missed / uops))
                    dec_episodes += 1
                    dec_insts += missed_insts
                    dec_uops += missed
                    cycles = -(-missed_insts // decode_width)
                    dec_cycles += cycles if cycles > 1 else 1
                    if track_lu:
                        rec[8] = now  # ranking reads the record stamp
                        o_last_use[start] = now
                        if is_furbys:
                            o_rrpv[start] = RRPV_HIT
                    elif is_replay:
                        interval_start[start] = now
                        pending_lookup_t[start] = now
                    path_switches += 1 if on_uop_path else 2
                    on_uop_path = False
                    fetch_start = start + rec[4]
                    fetch_end = start + request[2]
                    fetch_first = fetch_start // line_bytes
                    if fetch_end > fetch_start:
                        fetch_last = (fetch_end - 1) // line_bytes
                    else:
                        fetch_last = fetch_first

                n_lines = fetch_last - fetch_first + 1
                icache_accesses += n_lines
                if not perfect_icache:
                    ic_acc += n_lines
                    # Same line as the previous icache access: still the MRU
                    # entry of its set, so the hit is free — no probe.
                    if n_lines == 1:
                        if fetch_first != ic_prev:
                            ic_prev = fetch_first
                            icset = isets[ic_si_l[now - base] if rec is None
                                          else fetch_first % ic_n_sets]
                            if fetch_first in icset:
                                icset.move_to_end(fetch_first)
                            else:
                                ic_miss += 1
                                if len(icset) >= ic_ways:
                                    victim_line, _ = icset.popitem(last=False)
                                    if inclusive:
                                        victim_starts = line_map_get(victim_line)
                                        if victim_starts:
                                            for vstart in list(victim_starts):
                                                vrec = resident_get(vstart)
                                                if (vrec is not None
                                                        and vrec[6] <= victim_line
                                                        <= vrec[7]):
                                                    remove(now, vstart, vrec,
                                                           _INCLUSIVE)
                                                    inclusive_invalidations += 1
                                icset[fetch_first] = None
                    else:
                        evicted = []
                        for line in range(fetch_first, fetch_last + 1):
                            if line == ic_prev:
                                continue
                            ic_prev = line
                            icset = isets[line % ic_n_sets]
                            if line in icset:
                                icset.move_to_end(line)
                                continue
                            ic_miss += 1
                            if len(icset) >= ic_ways:
                                victim_line, _ = icset.popitem(last=False)
                                evicted.append(victim_line)
                            icset[line] = None
                        if inclusive and evicted:
                            for victim_line in evicted:
                                victim_starts = line_map_get(victim_line)
                                if victim_starts:
                                    for vstart in list(victim_starts):
                                        vrec = resident_get(vstart)
                                        if (vrec is not None
                                                and vrec[6] <= victim_line
                                                <= vrec[7]):
                                            remove(now, vstart, vrec, _INCLUSIVE)
                                            inclusive_invalidations += 1

                # Schedule the insertion (inlined accumulate + supersede).
                if has_hints:
                    cur = in_flight_get(start)
                    if cur is None:
                        accumulated += 1
                        if cont_l[now - base]:
                            request = (request[:3] + (hints_get(start),)
                                       + request[4:])
                        in_flight[start] = request
                        pending_append(now)
                        if next_due == NEVER:
                            next_due = now + delay
                    elif uops > cur[0]:
                        # A longer same-start window supersedes the pending
                        # one (the original due time is kept by the pending
                        # entry).
                        accumulated += 1
                        if cont_l[now - base]:
                            request = (request[:3] + (hints_get(start),)
                                       + request[4:])
                        in_flight[start] = request
                else:
                    # setdefault fuses the probe and the store; each reqs_l
                    # tuple is stored at most once, so identity with the
                    # just-read request means the slot was empty.
                    cur = in_flight_setdefault(start, request)
                    if cur is request:
                        accumulated += 1
                        pending_append(now)
                        if next_due == NEVER:
                            next_due = now + delay
                    elif uops > cur[0]:
                        accumulated += 1
                        in_flight[start] = request

        # --- fold the segment into stats ---
        pw_misses = len(miss_idx)
        if pw_misses:
            idx = _np.array(miss_idx, dtype=_np.int64) - base
            miss_uops = int(cols["arr_uops"][idx].sum())
            uops_missed += miss_uops
            dec_uops += miss_uops
            dec_episodes += pw_misses
            dec_insts += int(cols["arr_insts"][idx].sum())
            dec_cycles += int(cols["arr_cycles"][idx].sum())
            reads_corr -= int(cols["arr_esize"][idx].sum())
        n_seg = end - begin
        cum_uops = cols["cum_uops"]
        cum_insts = cols["cum_insts"]
        cum_esize = cols["cum_esize"]
        cum_branches = cols["cum_branches"]
        b0 = begin - base
        e0 = end - base
        seg_uops = int(cum_uops[e0] - cum_uops[b0])
        seg_branches = int(cum_branches[e0] - cum_branches[b0])
        stats.lookups += n_seg
        stats.uops_total += seg_uops
        stats.instructions += int(cum_insts[e0] - cum_insts[b0])
        stats.branches += seg_branches
        stats.btb_accesses += seg_branches
        if not perfect_bp:
            cum_mispred = cols["cum_mispred"]
            stats.mispredictions += int(cum_mispred[e0] - cum_mispred[b0])
        stats.pw_hits += n_seg - pw_partial_hits - pw_misses
        stats.pw_partial_hits += pw_partial_hits
        stats.pw_misses += pw_misses
        stats.uops_hit += seg_uops - uops_missed
        stats.uops_missed += uops_missed
        stats.uop_cache_reads += (
            int(cum_esize[e0] - cum_esize[b0]) + reads_corr
        )
        stats.decoder_uops += uops_missed
        stats.path_switches += path_switches
        stats.icache_accesses += icache_accesses
        stats.inclusive_invalidations += inclusive_invalidations
        # Insertion outcomes accumulate on self (every completion goes
        # through the _attempt/_remove methods, which also maintain the
        # cache-object counters); fold and reset like the drain does.
        stats.insertion_attempts += self.st_attempts
        stats.insertions += self.st_insertions
        stats.bypasses += self.st_bypasses
        stats.uop_cache_writes += self.st_writes
        stats.evictions += self.st_evictions
        stats.evicted_entries += self.st_evicted_entries
        self.st_attempts = self.st_insertions = self.st_bypasses = 0
        self.st_writes = self.st_evictions = self.st_evicted_entries = 0
        self.dec_episodes += dec_episodes
        self.dec_insts += dec_insts
        self.dec_uops += dec_uops
        self.dec_cycles += dec_cycles
        self.ic_accesses += ic_acc
        self.ic_misses += ic_miss
        self.accumulated += accumulated
        self.on_uop_path = on_uop_path


# --- per-kind loop specialization ---------------------------------------------

#: Run-constant flags baked into specialized offline segment variants.
_OFF_SPEC_NAMES = ("is_replay", "is_furbys", "track_lu", "has_phs",
                   "has_hints", "perfect_icache", "inclusive")
#: Compiled variants keyed by flag tuple (None = compilation unavailable).
_off_spec_cache: dict[tuple, object] = {}
#: One-element cache for the extracted segment source.
_off_spec_template: list[str] = []


def _off_specialized_segment(flags: dict):
    """Cached specialized offline segment for ``flags`` (None on failure)."""
    key = tuple(bool(flags[n]) for n in _OFF_SPEC_NAMES)
    if key not in _off_spec_cache:
        try:
            _off_spec_cache[key] = compile_flagged(
                _OfflineKernel._segment, _OFF_SPEC_NAMES, flags,
                new_name="_segment_spec", namespace=globals(),
                prefix="offline-segment", template=_off_spec_template,
            )
        except Exception:  # pragma: no cover - source unavailable
            _off_spec_cache[key] = None
    return _off_spec_cache[key]


#: Run-constant flags baked into specialized ``_attempt`` variants.
#: The kind flags prune the decision branches; the policy-config flags
#: (identity mode, asynchrony, metric, keep-larger) fold their per-call
#: tests away too.
_OFF_ATT_NAMES = ("is_belady", "is_plan", "is_greedy", "is_furbys",
                  "start_identity", "async_aware", "metric0", "metric1",
                  "keep_larger")
#: Compiled variants keyed by flag tuple (None = compilation unavailable).
_off_att_cache: dict[tuple, object] = {}
#: One-element cache for the extracted attempt source.
_off_att_template: list[str] = []


def _off_specialized_attempt(flags: dict):
    """Cached specialized insertion attempt for ``flags`` (None on failure)."""
    key = tuple(bool(flags[n]) for n in _OFF_ATT_NAMES)
    if key not in _off_att_cache:
        try:
            _off_att_cache[key] = compile_flagged(
                _OfflineKernel._attempt, _OFF_ATT_NAMES, flags,
                new_name="_attempt_spec", namespace=globals(),
                prefix="offline-attempt", template=_off_att_template,
            )
        except Exception:  # pragma: no cover - source unavailable
            _off_att_cache[key] = None
    return _off_att_cache[key]


#: Cumulative evictions via :func:`clear_segment_caches`.
_off_evictions = 0


def segment_cache_stats() -> dict[str, int]:
    """Resident and cumulatively evicted compiled offline segments."""
    return {"entries": len(_off_spec_cache) + len(_off_att_cache),
            "evicted": _off_evictions}


def clear_segment_caches() -> int:
    """Drop the compiled offline segment/attempt variants."""
    global _off_evictions
    dropped = len(_off_spec_cache) + len(_off_att_cache)
    _off_evictions += dropped
    _off_spec_cache.clear()
    _off_att_cache.clear()
    return dropped
