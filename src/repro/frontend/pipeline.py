"""Frontend pipeline: the trace-driven simulation loop.

This is the behavioural simulator every policy runs under.  Per lookup
(the simulator clock is the lookup index):

1. complete any decode-pipeline insertions that have become due
   (asynchronous insertion, Section II-B);
2. probe the micro-op cache:

   * **full hit** — a resident same-start PW covers the lookup
     (intermediate exit points);
   * **partial hit** — a shorter same-start PW serves its micro-ops;
     the remainder decodes through the legacy path and the merged,
     larger window is scheduled for insertion (Section II-D);
   * **miss** — the whole PW decodes and is scheduled for insertion
     ``insertion_delay`` lookups later; lookups racing an in-flight
     insertion miss again but coalesce into one insertion;

3. on the legacy path, fetch the missed byte range through the L1i;
   icache evictions invalidate overlapping micro-op cache PWs
   (inclusivity).

Path switches, BTB accesses, decode activity and all power-model
counters are accounted along the way.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from ..config import SimulationConfig
from ..core.pw import PWLookup
from ..core.stats import MissClass, SimulationStats
from ..core.trace import Trace
from ..uopcache.cache import UopCache
from ..uopcache.replacement import ReplacementPolicy
from .accumulator import Accumulator, InsertionRequest
from .branch import BranchTargetBuffer
from .decoder import LegacyDecoder
from .icache import InstructionCache


class _ShadowClassifier:
    """3C miss classifier (Section III-B).

    ``cold``: first reference to a PW start.  For the rest, a shadow
    fully-associative LRU cache with the same total entry capacity
    arbitrates: present there → ``conflict`` (only the set mapping
    lost it), absent → ``capacity``.
    """

    def __init__(self, capacity_entries: int, uops_per_entry: int) -> None:
        self._capacity = capacity_entries
        self._uops_per_entry = uops_per_entry
        self._seen: set[int] = set()
        self._fa: OrderedDict[int, int] = OrderedDict()  # start -> size
        self._used = 0

    def classify(self, lookup: PWLookup) -> MissClass:
        """Classify a miss on ``lookup`` (call before :meth:`touch`)."""
        if lookup.start not in self._seen:
            return MissClass.COLD
        if lookup.start in self._fa:
            return MissClass.CONFLICT
        return MissClass.CAPACITY

    def touch(self, lookup: PWLookup) -> None:
        """Record the reference in the shadow structures."""
        start = lookup.start
        self._seen.add(start)
        size = lookup.size(self._uops_per_entry)
        if start in self._fa:
            self._used -= self._fa.pop(start)
        while self._used + size > self._capacity and self._fa:
            _, evicted_size = self._fa.popitem(last=False)
            self._used -= evicted_size
        if size <= self._capacity:
            self._fa[start] = size
            self._used += size


class FrontendPipeline:
    """Drives one trace through the frontend model.

    Parameters
    ----------
    config:
        Machine configuration (Table I presets).
    policy:
        Micro-op cache replacement policy.
    hints:
        FURBYS weight hints (start address → 3-bit group), attached by
        the accumulator on insertion.
    classify_misses:
        Enable the 3C shadow classifier (costs one shadow-LRU update
        per lookup; off by default).
    set_index:
        Custom micro-op cache set-index function.
    """

    def __init__(
        self,
        config: SimulationConfig,
        policy: ReplacementPolicy,
        *,
        hints: dict[int, int] | None = None,
        classify_misses: bool = False,
        record_hit_rates: bool = False,
        set_index=None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.stats = SimulationStats()
        self.uop_cache = UopCache(
            config.uop_cache,
            policy,
            line_bytes=config.icache.line_bytes,
            set_index=set_index,
        )
        self.icache = InstructionCache(config.icache)
        self.btb = BranchTargetBuffer(config.branch)
        self.decoder = LegacyDecoder(config.core)
        self.accumulator = Accumulator(hints)
        self._pending: deque[InsertionRequest] = deque()
        self._in_flight: dict[int, InsertionRequest] = {}
        self._on_uop_path = False
        self._classifier = (
            _ShadowClassifier(config.uop_cache.entries, config.uop_cache.uops_per_entry)
            if classify_misses
            else None
        )
        #: start -> [uops_hit, uops_total]; feeds the FURBYS profiling
        #: pipeline (STEP 5 of Figure 6) when enabled.
        self.pw_hit_stats: dict[int, list[int]] | None = (
            {} if record_hit_rates else None
        )

    # --- components ------------------------------------------------------------

    def _complete_due_insertions(self, now: int) -> None:
        stats = self.stats
        while self._pending and self._pending[0].due <= now:
            queued = self._pending.popleft()
            request = self._in_flight.get(queued.lookup.start)
            if request is None:
                continue  # superseded and already completed
            del self._in_flight[request.lookup.start]
            stats.insertion_attempts += 1
            result = self.uop_cache.try_insert(now, request.lookup, request.weight)
            if result.inserted:
                stats.insertions += 1
                stats.uop_cache_writes += request.lookup.size(
                    self.config.uop_cache.uops_per_entry
                )
            else:
                stats.bypasses += 1
            stats.evictions += result.evicted_pws
            stats.evicted_entries += result.evicted_entries

    def _schedule_insertion(self, now: int, lookup: PWLookup) -> None:
        existing = self._in_flight.get(lookup.start)
        if existing is not None:
            if lookup.uops > existing.lookup.uops:
                # A longer same-start window supersedes the pending one.
                request = self.accumulator.accumulate(
                    lookup, now, self.config.uop_cache.insertion_delay
                )
                self._in_flight[lookup.start] = InsertionRequest(
                    lookup=lookup, weight=request.weight, due=existing.due
                )
            return
        request = self.accumulator.accumulate(
            lookup, now, self.config.uop_cache.insertion_delay
        )
        self._in_flight[lookup.start] = request
        self._pending.append(request)

    def _legacy_fetch(self, now: int, start: int, end: int) -> None:
        """Fetch bytes through the icache on the legacy decode path."""
        stats = self.stats
        line_bytes = self.config.icache.line_bytes
        n_lines = (end - 1) // line_bytes - start // line_bytes + 1 if end > start else 1
        if self.config.perfect_icache:
            stats.icache_accesses += n_lines
            return
        evicted = self.icache.access_range(start, max(end, start + 1))
        stats.icache_accesses += n_lines
        if self.config.uop_cache.inclusive_with_icache:
            for line_addr in evicted:
                stats.inclusive_invalidations += self.uop_cache.invalidate_line(
                    now, line_addr
                )

    def _switch_to(self, uop_path: bool) -> None:
        if self._on_uop_path != uop_path:
            self.stats.path_switches += 1
            self._on_uop_path = uop_path

    def _record_miss_uops(self, lookup: PWLookup, missed_uops: int) -> None:
        stats = self.stats
        stats.uops_missed += missed_uops
        if self._classifier is not None:
            stats.miss_breakdown.add(self._classifier.classify(lookup), missed_uops)

    def _record_pw(self, start: int, hit_uops: int, total_uops: int) -> None:
        if self.pw_hit_stats is not None:
            entry = self.pw_hit_stats.setdefault(start, [0, 0])
            entry[0] += hit_uops
            entry[1] += total_uops

    # --- main loop ---------------------------------------------------------------

    def step(self, now: int, lookup: PWLookup) -> None:
        """Process one PW lookup."""
        stats = self.stats
        cfg = self.config
        uops_per_entry = cfg.uop_cache.uops_per_entry

        self._complete_due_insertions(now)

        stats.lookups += 1
        stats.uops_total += lookup.uops
        stats.instructions += lookup.insts
        if lookup.terminated_by_branch:
            stats.branches += 1
            stats.btb_accesses += 1
            if not cfg.perfect_btb:
                if not self.btb.access(lookup.start + lookup.bytes_len - 1):
                    stats.btb_misses += 1
            if lookup.mispredicted and not cfg.perfect_branch_predictor:
                stats.mispredictions += 1

        if cfg.perfect_uop_cache:
            stats.pw_hits += 1
            stats.uops_hit += lookup.uops
            stats.uop_cache_reads += lookup.size(uops_per_entry)
            self._switch_to(True)
            return

        self.policy.on_lookup(now, self.uop_cache.set_index(lookup.start), lookup)
        stored = self.uop_cache.probe(lookup)
        set_index = self.uop_cache.set_index(lookup.start)

        if stored is not None and stored.uops >= lookup.uops:
            # Full hit (possibly via an intermediate exit point).
            stats.pw_hits += 1
            stats.uops_hit += lookup.uops
            stats.uop_cache_reads += lookup.size(uops_per_entry)
            self._record_pw(lookup.start, lookup.uops, lookup.uops)
            self.policy.on_hit(now, set_index, stored, lookup)
            self._switch_to(True)
        elif stored is not None:
            # Partial hit: stored prefix served from the cache, the rest
            # decodes; a merged larger window is accumulated (II-D).
            served = stored.uops
            missed = lookup.uops - served
            stats.pw_partial_hits += 1
            stats.uops_hit += served
            self._record_miss_uops(lookup, missed)
            stats.uop_cache_reads += stored.size
            self._record_pw(lookup.start, served, lookup.uops)
            missed_insts = max(1, round(lookup.insts * missed / lookup.uops))
            stats.decoder_uops += missed
            self.decoder.decode(missed_insts, missed)
            self.policy.on_partial_hit(now, set_index, stored, lookup)
            self._switch_to(True)   # prefix streamed from the uop cache
            self._switch_to(False)  # then back to the legacy pipe
            self._legacy_fetch(now, stored.end, lookup.end)
            self._schedule_insertion(now, lookup)
        else:
            stats.pw_misses += 1
            self._record_miss_uops(lookup, lookup.uops)
            self._record_pw(lookup.start, 0, lookup.uops)
            stats.decoder_uops += lookup.uops
            self.decoder.decode(lookup.insts, lookup.uops)
            self.policy.on_miss(now, set_index, lookup)
            self._switch_to(False)
            self._legacy_fetch(now, lookup.start, lookup.end)
            self._schedule_insertion(now, lookup)

        if self._classifier is not None:
            self._classifier.touch(lookup)

    def run(self, trace: Trace, warmup: int = 0) -> SimulationStats:
        """Simulate a trace; stats cover the post-warmup portion only.

        Warmup keeps all microarchitectural state (caches, policy
        metadata, pending insertions) but discards the counters.
        """
        for now, lookup in enumerate(trace):
            if now == warmup and warmup > 0:
                self.stats = SimulationStats()
            self.step(now, lookup)
        # Drain decode-pipeline insertions still in flight at trace end so
        # insertion/bypass accounting covers every miss.
        self._complete_due_insertions(
            len(trace) + self.config.uop_cache.insertion_delay
        )
        # Fold structure-level counters the loop does not track directly.
        self.stats.icache_misses = self.icache.misses
        self.stats.policy_victim_selections = getattr(
            self.policy, "primary_selections", self.stats.evictions
        )
        self.stats.fallback_victim_selections = getattr(
            self.policy, "fallback_selections", 0
        )
        return self.stats
