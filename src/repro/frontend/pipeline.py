"""Frontend pipeline: the trace-driven simulation loop.

This is the behavioural simulator every policy runs under.  Per lookup
(the simulator clock is the lookup index):

1. complete any decode-pipeline insertions that have become due
   (asynchronous insertion, Section II-B);
2. probe the micro-op cache:

   * **full hit** — a resident same-start PW covers the lookup
     (intermediate exit points);
   * **partial hit** — a shorter same-start PW serves its micro-ops;
     the remainder decodes through the legacy path and the merged,
     larger window is scheduled for insertion (Section II-D);
   * **miss** — the whole PW decodes and is scheduled for insertion
     ``insertion_delay`` lookups later; lookups racing an in-flight
     insertion miss again but coalesce into one insertion;

3. on the legacy path, fetch the missed byte range through the L1i;
   icache evictions invalidate overlapping micro-op cache PWs
   (inclusivity).

Path switches, BTB accesses, decode activity and all power-model
counters are accounted along the way.
"""

from __future__ import annotations

from collections import OrderedDict, deque

from .. import stagetimer
from ..config import SimulationConfig
from ..core.pw import PWLookup
from ..core.stats import MissClass, SimulationStats
from ..core.trace import PreparedTrace, Trace
from ..uopcache.cache import UopCache
from ..uopcache.replacement import ReplacementPolicy
from .accumulator import Accumulator, InsertionRequest
from .branch import BranchTargetBuffer
from .decoder import LegacyDecoder
from .icache import InstructionCache

#: Sentinel "no pending insertion" due time for the hot loop.
_NEVER = float("inf")


class _ShadowClassifier:
    """3C miss classifier (Section III-B).

    ``cold``: first reference to a PW start.  For the rest, a shadow
    fully-associative LRU cache with the same total entry capacity
    arbitrates: present there → ``conflict`` (only the set mapping
    lost it), absent → ``capacity``.
    """

    def __init__(self, capacity_entries: int, uops_per_entry: int) -> None:
        self._capacity = capacity_entries
        self._uops_per_entry = uops_per_entry
        self._seen: set[int] = set()
        self._fa: OrderedDict[int, int] = OrderedDict()  # start -> size
        self._used = 0

    def classify(self, lookup: PWLookup) -> MissClass:
        """Classify a miss on ``lookup`` (call before :meth:`touch`)."""
        if lookup.start not in self._seen:
            return MissClass.COLD
        if lookup.start in self._fa:
            return MissClass.CONFLICT
        return MissClass.CAPACITY

    def touch(self, lookup: PWLookup) -> None:
        """Record the reference in the shadow structures."""
        start = lookup.start
        self._seen.add(start)
        size = lookup.size(self._uops_per_entry)
        if start in self._fa:
            self._used -= self._fa.pop(start)
        while self._used + size > self._capacity and self._fa:
            _, evicted_size = self._fa.popitem(last=False)
            self._used -= evicted_size
        if size <= self._capacity:
            self._fa[start] = size
            self._used += size


class FrontendPipeline:
    """Drives one trace through the frontend model.

    Parameters
    ----------
    config:
        Machine configuration (Table I presets).
    policy:
        Micro-op cache replacement policy.
    hints:
        FURBYS weight hints (start address → 3-bit group), attached by
        the accumulator on insertion.
    classify_misses:
        Enable the 3C shadow classifier (costs one shadow-LRU update
        per lookup; off by default).
    set_index:
        Custom micro-op cache set-index function.
    """

    def __init__(
        self,
        config: SimulationConfig,
        policy: ReplacementPolicy,
        *,
        hints: dict[int, int] | None = None,
        classify_misses: bool = False,
        record_hit_rates: bool = False,
        set_index=None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.stats = SimulationStats()
        self.uop_cache = UopCache(
            config.uop_cache,
            policy,
            line_bytes=config.icache.line_bytes,
            set_index=set_index,
        )
        self.icache = InstructionCache(config.icache)
        self.btb = BranchTargetBuffer(config.branch)
        self.decoder = LegacyDecoder(config.core)
        self.accumulator = Accumulator(hints)
        self._pending: deque[InsertionRequest] = deque()
        self._in_flight: dict[int, InsertionRequest] = {}
        self._on_uop_path = False
        self._classifier = (
            _ShadowClassifier(config.uop_cache.entries, config.uop_cache.uops_per_entry)
            if classify_misses
            else None
        )
        #: start -> [uops_hit, uops_total]; feeds the FURBYS profiling
        #: pipeline (STEP 5 of Figure 6) when enabled.
        self.pw_hit_stats: dict[int, list[int]] | None = (
            {} if record_hit_rates else None
        )
        # The base-class observation hooks are no-ops; the hot loop
        # skips the calls a policy does not override (pure dead work).
        policy_type = type(policy)
        self._policy_observes_lookups = (
            policy_type.on_lookup is not ReplacementPolicy.on_lookup
        )
        self._policy_observes_misses = (
            policy_type.on_miss is not ReplacementPolicy.on_miss
        )

    # --- components ------------------------------------------------------------

    def _complete_due_insertions(self, now: int) -> None:
        stats = self.stats
        pending = self._pending
        in_flight = self._in_flight
        try_insert = self.uop_cache.try_insert
        uops_per_entry = self.config.uop_cache.uops_per_entry
        while pending and pending[0].due <= now:
            queued = pending.popleft()
            start = queued.lookup.start
            request = in_flight.get(start)
            if request is None:
                continue  # superseded and already completed
            del in_flight[start]
            stats.insertion_attempts += 1
            result = try_insert(
                now, request.lookup, request.weight, request.set_index
            )
            if result.inserted:
                stats.insertions += 1
                stats.uop_cache_writes += -(
                    -request.lookup.uops // uops_per_entry
                )
            else:
                stats.bypasses += 1
            stats.evictions += result.evicted_pws
            stats.evicted_entries += result.evicted_entries

    def _schedule_insertion(self, now: int, lookup: PWLookup) -> None:
        existing = self._in_flight.get(lookup.start)
        if existing is not None:
            if lookup.uops > existing.lookup.uops:
                # A longer same-start window supersedes the pending one.
                request = self.accumulator.accumulate(
                    lookup, now, self.config.uop_cache.insertion_delay
                )
                self._in_flight[lookup.start] = InsertionRequest(
                    lookup=lookup, weight=request.weight, due=existing.due
                )
            return
        request = self.accumulator.accumulate(
            lookup, now, self.config.uop_cache.insertion_delay
        )
        self._in_flight[lookup.start] = request
        self._pending.append(request)

    def _legacy_fetch(self, now: int, start: int, end: int) -> None:
        """Fetch bytes through the icache on the legacy decode path."""
        stats = self.stats
        line_bytes = self.config.icache.line_bytes
        n_lines = (end - 1) // line_bytes - start // line_bytes + 1 if end > start else 1
        if self.config.perfect_icache:
            stats.icache_accesses += n_lines
            return
        evicted = self.icache.access_range(start, max(end, start + 1))
        stats.icache_accesses += n_lines
        if self.config.uop_cache.inclusive_with_icache:
            for line_addr in evicted:
                stats.inclusive_invalidations += self.uop_cache.invalidate_line(
                    now, line_addr
                )

    def _switch_to(self, uop_path: bool) -> None:
        if self._on_uop_path != uop_path:
            self.stats.path_switches += 1
            self._on_uop_path = uop_path

    def _record_miss_uops(self, lookup: PWLookup, missed_uops: int) -> None:
        stats = self.stats
        stats.uops_missed += missed_uops
        if self._classifier is not None:
            stats.miss_breakdown.add(self._classifier.classify(lookup), missed_uops)

    def _record_pw(self, start: int, hit_uops: int, total_uops: int) -> None:
        if self.pw_hit_stats is not None:
            entry = self.pw_hit_stats.setdefault(start, [0, 0])
            entry[0] += hit_uops
            entry[1] += total_uops

    # --- main loop ---------------------------------------------------------------

    def step(self, now: int, lookup: PWLookup) -> None:
        """Process one PW lookup."""
        stats = self.stats
        cfg = self.config
        uops_per_entry = cfg.uop_cache.uops_per_entry

        self._complete_due_insertions(now)

        stats.lookups += 1
        stats.uops_total += lookup.uops
        stats.instructions += lookup.insts
        if lookup.terminated_by_branch:
            stats.branches += 1
            stats.btb_accesses += 1
            if not cfg.perfect_btb:
                if not self.btb.access(lookup.start + lookup.bytes_len - 1):
                    stats.btb_misses += 1
            if lookup.mispredicted and not cfg.perfect_branch_predictor:
                stats.mispredictions += 1

        if cfg.perfect_uop_cache:
            stats.pw_hits += 1
            stats.uops_hit += lookup.uops
            stats.uop_cache_reads += lookup.size(uops_per_entry)
            self._switch_to(True)
            return

        self.policy.on_lookup(now, self.uop_cache.set_index(lookup.start), lookup)
        stored = self.uop_cache.probe(lookup)
        set_index = self.uop_cache.set_index(lookup.start)

        if stored is not None and stored.uops >= lookup.uops:
            # Full hit (possibly via an intermediate exit point).
            stats.pw_hits += 1
            stats.uops_hit += lookup.uops
            stats.uop_cache_reads += lookup.size(uops_per_entry)
            self._record_pw(lookup.start, lookup.uops, lookup.uops)
            self.policy.on_hit(now, set_index, stored, lookup)
            self._switch_to(True)
        elif stored is not None:
            # Partial hit: stored prefix served from the cache, the rest
            # decodes; a merged larger window is accumulated (II-D).
            served = stored.uops
            missed = lookup.uops - served
            stats.pw_partial_hits += 1
            stats.uops_hit += served
            self._record_miss_uops(lookup, missed)
            stats.uop_cache_reads += stored.size
            self._record_pw(lookup.start, served, lookup.uops)
            missed_insts = max(1, round(lookup.insts * missed / lookup.uops))
            stats.decoder_uops += missed
            self.decoder.decode(missed_insts, missed)
            self.policy.on_partial_hit(now, set_index, stored, lookup)
            self._switch_to(True)   # prefix streamed from the uop cache
            self._switch_to(False)  # then back to the legacy pipe
            self._legacy_fetch(now, stored.end, lookup.end)
            self._schedule_insertion(now, lookup)
        else:
            stats.pw_misses += 1
            self._record_miss_uops(lookup, lookup.uops)
            self._record_pw(lookup.start, 0, lookup.uops)
            stats.decoder_uops += lookup.uops
            self.decoder.decode(lookup.insts, lookup.uops)
            self.policy.on_miss(now, set_index, lookup)
            self._switch_to(False)
            self._legacy_fetch(now, lookup.start, lookup.end)
            self._schedule_insertion(now, lookup)

        if self._classifier is not None:
            self._classifier.touch(lookup)

    def _finalize(self, trace_len: int) -> SimulationStats:
        # Drain decode-pipeline insertions still in flight at trace end so
        # insertion/bypass accounting covers every miss.
        self._complete_due_insertions(
            trace_len + self.config.uop_cache.insertion_delay
        )
        # Fold structure-level counters the loop does not track directly.
        self.stats.icache_misses = self.icache.misses
        self.stats.policy_victim_selections = getattr(
            self.policy, "primary_selections", self.stats.evictions
        )
        self.stats.fallback_victim_selections = getattr(
            self.policy, "fallback_selections", 0
        )
        return self.stats

    def run_reference(self, trace: Trace, warmup: int = 0) -> SimulationStats:
        """Simulate via :meth:`step` — the unoptimized reference loop.

        Kept as the semantic baseline the optimized :meth:`run` is
        verified against (golden-stats and property tests) and as the
        "before" arm of the hot-path microbenchmark.
        """
        for now, lookup in enumerate(trace):
            if now == warmup and warmup > 0:
                self.stats = SimulationStats()
            self.step(now, lookup)
        return self._finalize(len(trace))

    def run(self, trace: Trace, warmup: int = 0) -> SimulationStats:
        """Simulate a trace; stats cover the post-warmup portion only.

        Warmup keeps all microarchitectural state (caches, policy
        metadata, pending insertions) but discards the counters.

        Supported configurations (the online LRU/SRRIP/random/GHRP
        kinds plus the offline and profile-guided families — Belady,
        FOO/FLACK replay, FURBYS, Thermometer) dispatch to the
        vectorized :mod:`repro.frontend.simd` /
        :mod:`repro.frontend.simd_offline` kernels unless
        ``REPRO_SIM_FASTPATH=0``; everything else runs the
        prepared-trace loop below, counting the reason under a
        ``sim_fallback:<policy>:<reason>`` fallback counter.  All paths
        are bit-identical to :meth:`run_reference` / :meth:`step` — see
        ``tests/test_golden_stats.py``, ``tests/test_sim_kernel.py``
        and ``tests/test_offline_kernel.py``.
        """
        from . import simd

        with stagetimer.timed("frontend_sim"):
            if simd.sim_fastpath_enabled():
                reason = simd.fallback_reason(self)
                if reason is None:
                    return simd.run_kernel(self, trace, warmup)
                from ..harness import resilience

                resilience.note_fallback(
                    f"sim_fallback:{self.policy.name}:{reason}")
            prepared = trace.prepared(
                n_sets=self.uop_cache.n_sets,
                uops_per_entry=self.config.uop_cache.uops_per_entry,
                line_bytes=self.config.icache.line_bytes,
                set_index_fn=self.uop_cache._set_index,
            )
            n = len(prepared.lookups)
            if 0 < warmup < n:
                self._run_segment(prepared, 0, warmup)
                self.stats = SimulationStats()
                self._run_segment(prepared, warmup, n)
            else:
                self._run_segment(prepared, 0, n)
            return self._finalize(n)

    def _run_segment(self, prepared: PreparedTrace, begin: int, end: int) -> None:
        """Hot loop: process ``prepared`` lookups ``[begin, end)``.

        Mirrors :meth:`step` exactly, with attribute lookups hoisted to
        locals, counters accumulated in locals and flushed once at the
        end of the segment (no observer reads :attr:`stats` mid-run),
        and the precomputed per-lookup set index / entry size / line
        count replacing per-step recomputation.
        """
        stats = self.stats
        cfg = self.config
        lookups = prepared.lookups
        set_indices = prepared.set_indices
        entry_sizes = prepared.entry_sizes
        line_counts = prepared.line_counts

        perfect_btb = cfg.perfect_btb
        perfect_bp = cfg.perfect_branch_predictor
        perfect_icache = cfg.perfect_icache
        inclusive = cfg.uop_cache.inclusive_with_icache
        line_bytes = cfg.icache.line_bytes
        btb = self.btb
        btb_access = btb.access
        btb_sets = btb._sets
        btb_n_sets = btb._n_sets
        btb_ways = btb.config.btb_ways
        decoder = self.decoder
        decode_width = decoder.config.decode_width
        icache = self.icache
        icache_access_range = icache.access_range
        icache_sets = icache._sets
        icache_n_sets = icache.config.sets
        icache_ways = icache.config.ways
        invalidate_line = self.uop_cache.invalidate_line
        complete_due = self._complete_due_insertions
        pending = self._pending
        in_flight = self._in_flight
        accumulator = self.accumulator
        hints_get = accumulator._hints.get
        try_insert = self.uop_cache.try_insert
        insertion_delay = cfg.uop_cache.insertion_delay
        uops_per_entry = cfg.uop_cache.uops_per_entry
        classifier = self._classifier
        pw_hit_stats = self.pw_hit_stats
        policy = self.policy
        on_hit = policy.on_hit
        on_partial_hit = policy.on_partial_hit
        on_lookup = policy.on_lookup if self._policy_observes_lookups else None
        on_miss = policy.on_miss if self._policy_observes_misses else None
        pws_by_set = [cset.pws for cset in self.uop_cache.sets]
        on_uop_path = self._on_uop_path

        # Segment-local counter accumulators (flushed to ``stats`` once).
        n_lookups = uops_total = instructions = 0
        branches = btb_accesses = btb_misses = mispredictions = 0
        pw_hits = pw_partial_hits = pw_misses = 0
        uops_hit = uops_missed = 0
        uop_cache_reads = uop_cache_writes = decoder_uops = 0
        path_switches = icache_accesses = inclusive_invalidations = 0
        decode_episodes = decode_insts = decode_uops_n = decode_cycles = 0
        insertion_attempts = insertions = bypasses = 0
        evictions = evicted_entries = 0
        # Structure-object counters (flushed to btb/icache at the end).
        btb_obj_accesses = btb_obj_misses = 0
        icache_obj_accesses = icache_obj_misses = 0

        if cfg.perfect_uop_cache:
            for now in range(begin, end):
                lookup = lookups[now]
                if pending and pending[0].due <= now:
                    complete_due(now)
                n_lookups += 1
                uops = lookup.uops
                uops_total += uops
                instructions += lookup.insts
                if lookup.terminated_by_branch:
                    branches += 1
                    btb_accesses += 1
                    if not perfect_btb and not btb_access(
                        lookup.start + lookup.bytes_len - 1
                    ):
                        btb_misses += 1
                    if lookup.mispredicted and not perfect_bp:
                        mispredictions += 1
                pw_hits += 1
                uops_hit += uops
                uop_cache_reads += entry_sizes[now]
                if not on_uop_path:
                    path_switches += 1
                    on_uop_path = True
        else:
            # Event-driven completion: ``next_due`` caches the head of
            # the (monotonically ordered) pending queue so the common
            # nothing-due case is a single integer comparison.
            next_due = pending[0].due if pending else _NEVER
            for now in range(begin, end):
                lookup = lookups[now]
                if now >= next_due:
                    # Inlined _complete_due_insertions with local counters.
                    while pending and pending[0].due <= now:
                        queued = pending.popleft()
                        queued_start = queued.lookup.start
                        request = in_flight.get(queued_start)
                        if request is None:
                            continue  # superseded and already completed
                        del in_flight[queued_start]
                        insertion_attempts += 1
                        result = try_insert(
                            now, request.lookup, request.weight,
                            request.set_index,
                        )
                        if result[0]:
                            insertions += 1
                            uop_cache_writes += -(
                                -request.lookup.uops // uops_per_entry
                            )
                        else:
                            bypasses += 1
                        evictions += result[1]
                        evicted_entries += result[2]
                    next_due = pending[0].due if pending else _NEVER
                n_lookups += 1
                uops = lookup.uops
                uops_total += uops
                instructions += lookup.insts
                start = lookup.start
                bytes_len = lookup.bytes_len
                if lookup.terminated_by_branch:
                    branches += 1
                    btb_accesses += 1
                    if not perfect_btb:
                        # Inlined BranchTargetBuffer.access.
                        branch_pc = start + bytes_len - 1
                        bset = btb_sets[(branch_pc >> 2) % btb_n_sets]
                        btb_obj_accesses += 1
                        if branch_pc in bset:
                            bset.move_to_end(branch_pc)
                        else:
                            btb_obj_misses += 1
                            btb_misses += 1
                            if len(bset) >= btb_ways:
                                bset.popitem(last=False)
                            bset[branch_pc] = None
                    if lookup.mispredicted and not perfect_bp:
                        mispredictions += 1

                set_index = set_indices[now]
                if on_lookup is not None:
                    on_lookup(now, set_index, lookup)
                stored = pws_by_set[set_index].get(start)

                if stored is not None and stored.uops >= uops:
                    # Full hit (possibly via an intermediate exit point).
                    pw_hits += 1
                    uops_hit += uops
                    uop_cache_reads += entry_sizes[now]
                    if pw_hit_stats is not None:
                        entry = pw_hit_stats.setdefault(start, [0, 0])
                        entry[0] += uops
                        entry[1] += uops
                    on_hit(now, set_index, stored, lookup)
                    if not on_uop_path:
                        path_switches += 1
                        on_uop_path = True
                else:
                    if stored is not None:
                        # Partial hit: stored prefix served from the cache,
                        # the rest decodes; a merged larger window is
                        # accumulated (II-D).
                        served = stored.uops
                        missed = uops - served
                        pw_partial_hits += 1
                        uops_hit += served
                        uops_missed += missed
                        if classifier is not None:
                            stats.miss_breakdown.add(
                                classifier.classify(lookup), missed
                            )
                        uop_cache_reads += stored.size
                        if pw_hit_stats is not None:
                            entry = pw_hit_stats.setdefault(start, [0, 0])
                            entry[0] += served
                            entry[1] += uops
                        missed_insts = max(1, round(lookup.insts * missed / uops))
                        decoder_uops += missed
                        decode_episodes += 1
                        decode_insts += missed_insts
                        decode_uops_n += missed
                        cycles = -(-missed_insts // decode_width)
                        decode_cycles += cycles if cycles > 1 else 1
                        on_partial_hit(now, set_index, stored, lookup)
                        # Prefix streamed from the uop cache, then back to
                        # the legacy pipe.
                        path_switches += 1 if on_uop_path else 2
                        on_uop_path = False
                        fetch_start = stored.start + stored.bytes_len
                        fetch_end = start + bytes_len
                        n_lines = (
                            (fetch_end - 1) // line_bytes
                            - fetch_start // line_bytes + 1
                            if fetch_end > fetch_start
                            else 1
                        )
                    else:
                        pw_misses += 1
                        uops_missed += uops
                        if classifier is not None:
                            stats.miss_breakdown.add(
                                classifier.classify(lookup), uops
                            )
                        if pw_hit_stats is not None:
                            entry = pw_hit_stats.setdefault(start, [0, 0])
                            entry[1] += uops
                        decoder_uops += uops
                        decode_episodes += 1
                        decode_insts += lookup.insts
                        decode_uops_n += uops
                        cycles = -(-lookup.insts // decode_width)
                        decode_cycles += cycles if cycles > 1 else 1
                        if on_miss is not None:
                            on_miss(now, set_index, lookup)
                        if on_uop_path:
                            path_switches += 1
                            on_uop_path = False
                        fetch_start = start
                        fetch_end = start + bytes_len
                        n_lines = line_counts[now]
                    # Legacy fetch through the L1i (inlined _legacy_fetch).
                    icache_accesses += n_lines
                    if not perfect_icache:
                        if n_lines == 1:
                            # Single-line fetch: inlined access_line body
                            # (the overwhelmingly common case — most PWs
                            # fit one icache line).
                            iline = fetch_start // line_bytes
                            icset = icache_sets[iline % icache_n_sets]
                            icache_obj_accesses += 1
                            if iline in icset:
                                icset.move_to_end(iline)
                            else:
                                icache_obj_misses += 1
                                if len(icset) >= icache_ways:
                                    victim_line, _ = icset.popitem(last=False)
                                    if inclusive:
                                        inclusive_invalidations += (
                                            invalidate_line(
                                                now, victim_line * line_bytes
                                            )
                                        )
                                icset[iline] = None
                        else:
                            evicted = icache_access_range(
                                fetch_start,
                                fetch_end if fetch_end > fetch_start
                                else fetch_start + 1,
                            )
                            if inclusive and evicted:
                                for line_addr in evicted:
                                    inclusive_invalidations += invalidate_line(
                                        now, line_addr
                                    )
                    # Schedule the insertion (inlined _schedule_insertion
                    # + Accumulator.accumulate).
                    in_flight_req = in_flight.get(start)
                    if in_flight_req is None:
                        accumulator.accumulated += 1
                        request = InsertionRequest(
                            lookup=lookup,
                            weight=hints_get(start)
                            if lookup.contains_branch else None,
                            due=now + insertion_delay,
                            set_index=set_index,
                        )
                        in_flight[start] = request
                        pending.append(request)
                        if len(pending) == 1:
                            next_due = request.due
                    elif uops > in_flight_req.lookup.uops:
                        # A longer same-start window supersedes the
                        # pending one.
                        accumulator.accumulated += 1
                        in_flight[start] = InsertionRequest(
                            lookup=lookup,
                            weight=hints_get(start)
                            if lookup.contains_branch else None,
                            due=in_flight_req.due,
                            set_index=set_index,
                        )

                if classifier is not None:
                    classifier.touch(lookup)

        self._on_uop_path = on_uop_path
        btb.accesses += btb_obj_accesses
        btb.misses += btb_obj_misses
        icache.accesses += icache_obj_accesses
        icache.misses += icache_obj_misses
        stats.lookups += n_lookups
        stats.uops_total += uops_total
        stats.instructions += instructions
        stats.branches += branches
        stats.btb_accesses += btb_accesses
        stats.btb_misses += btb_misses
        stats.mispredictions += mispredictions
        stats.pw_hits += pw_hits
        stats.pw_partial_hits += pw_partial_hits
        stats.pw_misses += pw_misses
        stats.uops_hit += uops_hit
        stats.uops_missed += uops_missed
        stats.uop_cache_reads += uop_cache_reads
        stats.uop_cache_writes += uop_cache_writes
        stats.insertion_attempts += insertion_attempts
        stats.insertions += insertions
        stats.bypasses += bypasses
        stats.evictions += evictions
        stats.evicted_entries += evicted_entries
        stats.decoder_uops += decoder_uops
        stats.path_switches += path_switches
        stats.icache_accesses += icache_accesses
        stats.inclusive_invalidations += inclusive_invalidations
        decoder.episodes += decode_episodes
        decoder.insts_decoded += decode_insts
        decoder.uops_decoded += decode_uops_n
        decoder.active_cycles += decode_cycles
