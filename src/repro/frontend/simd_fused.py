"""Arm-fused multi-policy simulation sweeps.

Every figure in the paper compares many replacement policies over the
*same* trace.  The per-arm kernels (:mod:`repro.frontend.simd` and
:mod:`repro.frontend.simd_offline`) already vectorize one (pipeline,
trace) pass, but a K-policy figure still pays the column builds, the
compiled-segment warmup, the GC bookkeeping and (when streaming) the
window decode K times per app.  This module advances *all* requested
arms in a single pass over the packed columns, sharing those costs
across the group.

Two execution shapes are provided (``REPRO_SIM_FUSE_MODE``):

``striped`` (default)
    One pass over shared column windows; within each window every arm
    advances via its **own** flag-specialized solo segment.  Each
    arm's inner loop stays small enough for the CPU's instruction and
    inline-cache working set, which measures fastest on the paper's
    miss-heavy data-center traces.

``interleave``
    A single mega-function steps every arm inside one shared lookup
    loop, amortizing the loop header, the column loads and the BTB
    pass.  Profitable only when the per-arm bodies are tiny (hit-
    dominated traces, few arms); on 60%+ miss-rate workloads the
    combined per-iteration bytecode overflows the CPU caches.

The interleaved loop is assembled **textually** from the proven
per-arm kernels rather than re-implemented:

1. each arm's flag-specialized ``_segment`` source is obtained via
   :func:`repro.frontend._specialize.flagged_source` — exactly the
   text the solo kernels compile and verify;
2. every local name of that source is suffix-renamed (``_a0``,
   ``_a1``, …) with a tokenizer pass, except the five shared loop
   names (``begin``/``end``/``now``/``start``/``uops``);
3. the renamed sources are split at stable anchors (hoist / loop
   header / loop body / fold) and stitched into one function: all
   hoists first, **one** shared loop header, the per-arm loop bodies
   concatenated inside it, then the per-arm folds.

Each arm therefore executes its own exact specialized code on its own
state — bit-identity per arm against the solo kernels is inherited by
construction, and the shared loop header, the single BTB pass (arm 0
runs it, the other arms replicate the counters and copy the final BTB
state — its evolution is trace-only and the group shares one config)
and the one-shot GC pause are amortized across arms.

Streaming: with ``REPRO_SIM_STREAM_WINDOW=<n>`` the sweep consumes the
trace in bounded windows — :func:`repro.frontend.simd._build_columns`
builds each window's derived columns on demand (``base``-relative
indexing keeps every read local) so peak memory stays flat and
10M-lookup traces become a supported figure scale.

``REPRO_SIM_FUSE=0`` disables the fused path end-to-end; unsupported
arm mixes raise :class:`FusedUnsupported` and the caller falls back to
the per-arm path, counting ``sim_fallback:fused:<reason>``.
"""

from __future__ import annotations

import gc as _gc
import io
import os
import tokenize

from .. import stagetimer
from ..core.stats import SimulationStats
from . import simd as _simd
from . import simd_offline as _simd_off
from ._specialize import flagged_source, gc_paused as _gc_paused, spec_code
from .simd import _Kernel, _build_columns, kernel_kind, sim_fastpath_enabled
from .simd_offline import _OfflineKernel

#: Loop names shared across arms (the fused header binds them once).
_SHARED_NAMES = frozenset({"begin", "end", "now", "start", "uops"})

#: Keyword-argument names used inside the segments.  They are not
#: locals, so the renamer never touches them — asserted at assembly
#: time because a future local with one of these names would rename
#: the keyword too and break the call.
_KWARG_NAMES = frozenset({"last", "dtype", "key", "reverse", "out", "count"})

#: Windows below this are all rebuild overhead; the knob is clamped up.
_MIN_STREAM_WINDOW = 4096

#: Max arms per fused function (compile time grows linearly; a full
#: figure is 14 arms).
MAX_ARMS = 32


class FusedUnsupported(Exception):
    """This arm mix cannot run fused; ``reason`` feeds the fallback
    counter (``sim_fallback:fused:<reason>``)."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


def fuse_enabled() -> bool:
    """Whether the fused sweep may be used at all."""
    return (os.environ.get("REPRO_SIM_FUSE", "1") != "0"
            and os.environ.get("REPRO_SIM_SPECIALIZE", "1") != "0"
            and sim_fastpath_enabled())


def fuse_mode() -> str:
    """Group execution shape: ``striped`` (default) or ``interleave``.

    ``striped`` advances each arm across a window with its own solo
    specialized segment — per-arm bytecode stays small enough for the
    CPU caches, which measures fastest on miss-heavy data-center
    traces.  ``interleave`` runs the textually assembled mega-function
    that steps every arm inside one shared lookup loop; it amortizes
    the loop header and the BTB pass, which wins only when the per-arm
    bodies are tiny (hit-dominated traces, few arms).
    """
    mode = os.environ.get("REPRO_SIM_FUSE_MODE", "striped").strip().lower()
    return mode if mode == "interleave" else "striped"


def stream_window() -> int:
    """Streaming window size in lookups (0 = stream off)."""
    try:
        w = int(os.environ.get("REPRO_SIM_STREAM_WINDOW", "0") or "0")
    except ValueError:
        return 0
    if w <= 0:
        return 0
    return max(w, _MIN_STREAM_WINDOW)


# --- per-arm source sections --------------------------------------------------

#: (family, flag_key) -> suffix-independent section data.
_section_cache: dict[tuple, dict] = {}

#: specs tuple -> compiled fused driver (or None when compilation
#: failed once; retrying every group would repay the cost for nothing).
_fused_cache: dict[tuple, object] = {}

#: Cumulative eviction counters for ``repro trace inspect --cache-stats``.
_evictions = {"fused_fns": 0, "fused_sections": 0}


def _solo_source(family: str, flags: dict) -> str:
    """The flag-specialized solo segment source for one arm family."""
    if family == "on":
        return flagged_source(
            _Kernel._segment, _simd._SPEC_NAMES, flags,
            new_name="_seg", template=_simd._spec_template)
    return flagged_source(
        _OfflineKernel._segment, _simd_off._OFF_SPEC_NAMES, flags,
        new_name="_seg", template=_simd_off._off_spec_template)


def _local_names(src: str) -> frozenset:
    """Locals (and cellvars) of the solo segment compiled from ``src``."""
    code = compile(src, "<fused-arm>", "exec")
    for const in code.co_consts:
        if hasattr(const, "co_varnames") and const.co_name == "_seg":
            return frozenset(const.co_varnames) | frozenset(const.co_cellvars)
    raise FusedUnsupported("no_segment_code")


def _arm_sections(family: str, flag_key: tuple) -> dict:
    """Tokenized, split section data for one (family, flags) arm.

    Suffix-independent: ``renames`` records (row, col0, col1, name)
    spans to rewrite; the anchors index into ``lines``.  Cached — the
    tokenizer pass is the expensive part.
    """
    cache_key = (family, flag_key)
    cached = _section_cache.get(cache_key)
    if cached is not None:
        return cached

    names = (_simd._SPEC_NAMES if family == "on"
             else _simd_off._OFF_SPEC_NAMES)
    flags = dict(zip(names, flag_key))
    src = _solo_source(family, flags)
    renamable = _local_names(src) - _SHARED_NAMES
    bad = renamable & _KWARG_NAMES
    if bad:
        raise FusedUnsupported(f"kwarg_collision:{sorted(bad)[0]}")

    lines = src.split("\n")
    renames: dict[int, list] = {}
    prev = None
    for tok in tokenize.generate_tokens(io.StringIO(src).readline):
        if tok.type in (tokenize.NL, tokenize.NEWLINE, tokenize.INDENT,
                        tokenize.DEDENT, tokenize.COMMENT):
            continue
        if (tok.type == tokenize.NAME and tok.string in renamable
                and not (prev is not None and prev.type == tokenize.OP
                         and prev.string == ".")):
            renames.setdefault(tok.start[0], []).append(
                (tok.start[1], tok.end[1], tok.string))
        prev = tok

    def _line_index(pred, start=0):
        for i in range(start, len(lines)):
            if pred(lines[i]):
                return i
        raise FusedUnsupported("anchor_missing")

    i_def = _line_index(lambda l: l.startswith("def "))
    i_for = _line_index(lambda l: l.startswith("    for now, start, uops"))
    i_for_end = _line_index(lambda l: l.rstrip().endswith("):"), i_for)
    i_fold = _line_index(
        lambda l: l.startswith("    # --- fold the segment"))
    i_btb = _line_index(lambda l: l.strip() == "# [fused:btb]")
    i_btb_end = _line_index(lambda l: l.strip() == "# [fused:/btb]")

    data = {
        "lines": lines, "renames": renames,
        "i_def": i_def, "i_for": i_for, "i_for_end": i_for_end,
        "i_fold": i_fold, "i_btb": i_btb, "i_btb_end": i_btb_end,
    }
    _section_cache[cache_key] = data
    return data


def _renamed_lines(data: dict, suffix: str) -> list[str]:
    """The arm source lines with every local suffix-renamed."""
    lines = list(data["lines"])
    for row, spans in data["renames"].items():
        line = lines[row - 1]
        for c0, c1, name in sorted(spans, reverse=True):
            line = line[:c0] + name + suffix + line[c1:]
        lines[row - 1] = line
    return lines


def _fused_source(specs: tuple) -> str:
    """Assemble the fused driver source for an ordered arm-spec tuple.

    ``specs`` is one ``(family, flag_key)`` pair per arm.  The emitted
    function runs all arms over lookups ``[begin, end)``::

        def _fused_run(kernels, begin, end): ...
    """
    prologue = ["def _fused_run(kernels, begin, end):"]
    hoists: list[str] = []
    header: list[str] = []
    bodies: list[str] = []
    folds: list[str] = []
    for j, (family, flag_key) in enumerate(specs):
        sfx = f"_a{j}"
        data = _arm_sections(family, flag_key)
        lines = _renamed_lines(data, sfx)
        prologue.append(f"    self{sfx} = kernels[{j}]")
        hoist = lines[data["i_def"] + 1:data["i_for"]]
        if j > 0:
            # Arm 0 runs the one BTB pass (trace-only evolution, one
            # config per group); the other arms replicate its counter
            # deltas here and receive the final BTB state afterwards
            # (see run_group).
            hoist = (hoist[:data["i_btb"] - data["i_def"] - 1] + [
                f"    if not cfg{sfx}.perfect_btb:",
                f"        self{sfx}.btb_accesses += hi_a0 - lo_a0",
                f"        self{sfx}.btb_misses += btb_misses_a0",
                f"        stats{sfx}.btb_misses += btb_misses_a0",
            ] + hoist[data["i_btb_end"] - data["i_def"]:])
        hoists.extend(hoist)
        if j == 0:
            header = lines[data["i_for"]:data["i_for_end"] + 1]
        bodies.extend(lines[data["i_for_end"] + 1:data["i_fold"]])
        folds.extend(lines[data["i_fold"]:])
    out = prologue + hoists + header + bodies + folds
    return "\n".join(line.rstrip() for line in out) + "\n"


def _fused_function(specs: tuple):
    """Compiled fused driver for an arm-spec tuple (memoized)."""
    if specs in _fused_cache:
        fn = _fused_cache[specs]
        if fn is None:
            raise FusedUnsupported("compile_failed")
        return fn
    try:
        src = _fused_source(specs)
        ns = dict(vars(_simd))
        ns.update(vars(_simd_off))
        exec(spec_code(src, prefix="fused"), ns)
        fn = ns["_fused_run"]
    except FusedUnsupported:
        raise
    except Exception:
        _fused_cache[specs] = None
        raise FusedUnsupported("compile_failed") from None
    _fused_cache[specs] = fn
    return fn


# --- orchestration ------------------------------------------------------------


def _make_kernel(pipeline, trace, warmup, *, columns=None, n_total=None):
    if kernel_kind(pipeline.policy) is not None:
        return _Kernel(pipeline, trace, warmup,
                       columns=columns, n_total=n_total)
    return _OfflineKernel(pipeline, trace, warmup,
                          columns=columns, n_total=n_total)


def _arm_spec(kernel) -> tuple:
    if isinstance(kernel, _OfflineKernel):
        names, family = _simd_off._OFF_SPEC_NAMES, "off"
    else:
        names, family = _simd._SPEC_NAMES, "on"
    flags = kernel._spec_flags()
    return family, tuple(bool(flags[n]) for n in names)


def _window_columns(pipeline, trace, lo: int, hi: int) -> dict:
    """Windowed derived columns under this pipeline's geometry."""
    config = pipeline.config
    uc = config.uop_cache
    return _gc_paused(lambda: _build_columns(
        trace,
        n_sets=uc.sets,
        uops_per_entry=uc.uops_per_entry,
        line_bytes=config.icache.line_bytes,
        decode_width=config.core.decode_width,
        btb_n_sets=pipeline.btb._n_sets,
        ic_n_sets=config.icache.sets,
        delay=uc.insertion_delay,
        set_index_fn=pipeline.uop_cache._set_index,
        lo=lo, hi=hi,
    ))


def _segment_bounds(n: int, warmup: int, window: int) -> list[int]:
    """Cut points: trace ends, the warmup boundary, window multiples."""
    cuts = {0, n}
    if 0 < warmup < n:
        cuts.add(warmup)
    if window:
        cuts.update(range(window, n, window))
    return sorted(cuts)


def run_group(pipelines, trace, warmup: int) -> list[SimulationStats]:
    """Advance all arms over one trace in a single fused pass.

    Every pipeline must share the trace-shaping config (geometry and
    perfect-structure flags — policy/hints may differ freely) and pass
    :func:`repro.frontend.simd.fallback_reason`; the caller is
    responsible for both, plus the :func:`fuse_enabled` gate.  Returns
    one finalized :class:`SimulationStats` per pipeline, bit-identical
    to running each arm through its solo kernel.
    """
    if not pipelines:
        return []
    if len(pipelines) > MAX_ARMS:
        raise FusedUnsupported("too_many_arms")
    c0 = pipelines[0].config
    for p in pipelines[1:]:
        if p.config != c0:
            raise FusedUnsupported("config_mismatch")

    # The stage timers cover everything from column build to finalize —
    # the same span the solo path counts under ``frontend_sim`` (once
    # per arm there, once per group here), so stage-level comparisons
    # between the two paths are apples-to-apples.
    with stagetimer.timed("frontend_sim"), stagetimer.timed("sim_fused"):
        n = len(trace)
        window = stream_window()
        bounds = _segment_bounds(n, warmup, window)

        if window:
            cols = _window_columns(pipelines[0], trace, bounds[0], bounds[1])
        else:
            cols = None  # kernels share the memoized full-trace columns
        kernels = [_make_kernel(p, trace, warmup, columns=cols, n_total=n)
                   for p in pipelines]
        for k in kernels:
            if isinstance(k, _OfflineKernel):
                k._bind_specialized()

        mode = fuse_mode()
        if mode == "interleave":
            fn = _fused_function(tuple(_arm_spec(k) for k in kernels))
            segments = None
        else:
            fn = None
            segments = []
            for k in kernels:
                spec = k._specialized()
                segments.append(spec.__get__(k) if spec is not None
                                else k._segment)

        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            for lo, hi in zip(bounds, bounds[1:]):
                if window and lo != bounds[0]:
                    cols = _window_columns(pipelines[0], trace, lo, hi)
                    for k in kernels:
                        k.cols = cols
                        k.col_base = cols["base"]
                        k.hist = cols["hist"]
                if fn is not None:
                    fn(kernels, lo, hi)
                else:
                    for seg in segments:
                        seg(lo, hi)
                if hi == warmup:
                    for k in kernels:
                        k.pipeline.stats = SimulationStats()
            for k in kernels:
                k._drain(n)
        finally:
            if gc_was_enabled:
                _gc.enable()

        # Interleave only: hand arm 0's final BTB state to the other
        # arms (the counters were replicated in-loop).  ``update``
        # preserves the OrderedDict's recency order, so later runs on
        # these pipelines stay exact.  Striped arms each ran their own
        # BTB pass.
        if mode == "interleave" and len(kernels) > 1 and not c0.perfect_btb:
            src_sets = kernels[0].pipeline.btb._sets
            for k in kernels[1:]:
                for dst, src in zip(k.pipeline.btb._sets, src_sets):
                    dst.clear()
                    dst.update(src)

        results = []
        for k in kernels:
            k._sync_back()
            results.append(k.pipeline._finalize(n))
        return results


# --- cache maintenance (see harness.runner.clear_memory_cache) ----------------


def fused_cache_stats() -> dict[str, int]:
    """Entry counts and cumulative evictions of the fused-path caches."""
    return {
        "fused_fns": len(_fused_cache),
        "fused_sections": len(_section_cache),
        "fused_fns_evicted": _evictions["fused_fns"],
        "fused_sections_evicted": _evictions["fused_sections"],
    }


def clear_fused_caches() -> int:
    """Drop the compiled fused drivers and section templates."""
    dropped = len(_fused_cache) + len(_section_cache)
    _evictions["fused_fns"] += len(_fused_cache)
    _evictions["fused_sections"] += len(_section_cache)
    _fused_cache.clear()
    _section_cache.clear()
    return dropped
