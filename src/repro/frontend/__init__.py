"""Frontend substrate: icache, branch structures, decoder, pipeline."""

from .accumulator import Accumulator
from .branch import BranchTargetBuffer
from .decoder import LegacyDecoder
from .icache import InstructionCache
from .pipeline import FrontendPipeline

__all__ = [
    "Accumulator",
    "BranchTargetBuffer",
    "LegacyDecoder",
    "InstructionCache",
    "FrontendPipeline",
]
