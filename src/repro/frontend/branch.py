"""Branch structures: a BTB model.

Branch *outcomes* (taken / not-taken and mispredictions) are carried by
the trace itself, following the paper's trace-driven methodology — the
generator models a TAGE-SC-L-class predictor through per-branch
misprediction rates calibrated to each application's Table II MPKI.
What remains to model online is the BTB: branch-terminated PWs access
it, and a BTB miss causes a frontend resteer that the timing model
charges like a misprediction bubble.  A perfect BTB (Figure 2) simply
never misses.
"""

from __future__ import annotations

from collections import OrderedDict

from ..config import BranchPredictorConfig


class BranchTargetBuffer:
    """Set-associative LRU BTB keyed by branch PC."""

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        if config.btb_entries % config.btb_ways != 0:
            sets = max(1, config.btb_entries // config.btb_ways)
        else:
            sets = config.btb_entries // config.btb_ways
        self._n_sets = sets
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(sets)
        ]
        self.accesses = 0
        self.misses = 0

    def access(self, branch_pc: int) -> bool:
        """Access the BTB for a branch; returns True on hit.

        A miss allocates the entry (next execution hits).
        """
        self.accesses += 1
        cset = self._sets[(branch_pc >> 2) % self._n_sets]
        if branch_pc in cset:
            cset.move_to_end(branch_pc)
            return True
        self.misses += 1
        if len(cset) >= self.config.btb_ways:
            cset.popitem(last=False)
        cset[branch_pc] = None
        return False

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses
