"""Vectorized frontend simulation kernel over packed trace columns.

The reference simulation (:meth:`FrontendPipeline.step` and the inlined
:meth:`FrontendPipeline._run_segment` loop) walks one ``PWLookup``
object at a time through virtual policy hooks, the ``UopCache`` storage
layer and the icache/BTB models.  For the stateless-scoreable online
policies (LRU, SRRIP, random, GHRP) all of that dispatch is avoidable:
their per-event updates are plain dict/counter operations, and every
per-lookup quantity that depends only on the (PW, geometry) pair can be
precomputed for the whole trace in numpy array passes directly from
:class:`~repro.core.trace.TraceColumns` — no ``PWLookup`` objects are
materialized at all.

The kernel splits the simulation into:

* **array passes** (numpy, once per trace x geometry, memoized on the
  trace so all policies in a batch share them): set indices, entry
  sizes, icache line spans, legacy-decode cycles, branch extraction,
  prefix sums for per-segment totals, and — for GHRP — the full global
  history sequence (the 20-bit history register is a shift-XOR of the
  last four start addresses, so it vectorizes exactly);
* a **compressed BTB pass** per segment over branch-terminated lookups
  only (the BTB is independent of micro-op cache state, so its LRU
  updates batch into one tight loop over precomputed branch PCs);
* a **stamp-based main loop** over ``(now, start, uops)`` triples whose
  hit path is one dict probe plus a recency stamp, and whose
  miss/insertion path inlines the storage layer (per-set resident
  dicts, the line reverse map, per-policy victim ranking) without
  allocating ``StoredPW``/``InsertionRequest`` objects.

Bit-identity: the kernel replicates the reference event order exactly —
insertion completions before the policy's lookup hook, bypass
consultation before victim ranking, inclusive invalidations in
line-map set order — and mutates the *live* policy dicts (LRU/SRRIP
recency and RRPV maps, GHRP tables/signatures, the random policy's
RNG), so every ``SimulationStats`` field matches the reference loop;
``tests/test_sim_kernel.py`` sweeps geometries, policies and trace
lengths against :meth:`FrontendPipeline.run_reference`.

The offline and profile-guided policy families (Belady, FOO/FLACK
replay, FURBYS, Thermometer) run through the sibling kernel in
:mod:`repro.frontend.simd_offline`, which subclasses :class:`_Kernel`
and swaps the policy-state handling; :func:`run_kernel` dispatches on
:func:`kernel_kind` / :func:`offline_kernel_kind`.

``REPRO_SIM_FASTPATH=0`` disables both kernels (the prepared-trace
loop in :meth:`FrontendPipeline._run_segment` then runs, exactly as
before the kernels existed); unsupported configurations (policies
without a specialization, miss classification, perfect uop cache)
fall back automatically, counted per (policy, reason) by the
``sim_fallback:*`` resilience counters — see :func:`fallback_reason`.
"""

from __future__ import annotations

import gc as _gc
import os
from collections import deque
from typing import TYPE_CHECKING

try:  # numpy is a project dependency, but minimal CI envs may omit it.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback path
    _np = None

from .. import stagetimer
from ._specialize import compile_flagged, gc_paused as _gc_paused
from ..core.pw import StoredPW
from ..core.stats import SimulationStats
from ..core.trace import (
    FLAG_CONTAINS,
    FLAG_MISPREDICTED,
    FLAG_TERMINATED,
    callable_token,
)
from ..policies.ghrp import (
    _BYPASS_THRESHOLD,
    _DEAD_THRESHOLD,
    _TABLE_SIZE,
    GHRPPolicy,
)
from ..policies.lru import LRUPolicy
from ..policies.random_policy import RandomPolicy
from ..policies.srrip import RRPV_HIT, RRPV_INSERT, RRPV_MAX, SRRIPPolicy
from ..uopcache.cache import default_set_index

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.trace import Trace
    from .pipeline import FrontendPipeline

_MASK12 = _TABLE_SIZE - 1


def _inline_shuffle_matches_stdlib() -> bool:
    """Whether the kernel's inlined Fisher-Yates replays ``Random.shuffle``.

    The random policy's victim order (and final RNG state) must be
    bit-identical to the reference, which calls ``Random.shuffle``.  The
    kernel inlines the exact CPython implementation (``_randbelow`` via
    ``getrandbits`` rejection sampling) to skip two layers of function
    calls per element; this import-time check replays both against one
    seed and disables the inline path if the stdlib ever changes.
    """
    import random as _random

    a = _random.Random(0xC0FFEE)
    b = _random.Random(0xC0FFEE)
    getrandbits = b.getrandbits
    for size in (2, 3, 5, 7, 8, 23):
        xa = list(range(size))
        xb = list(range(size))
        a.shuffle(xa)
        for i in range(size - 1, 0, -1):
            n = i + 1
            k = n.bit_length()
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            xb[i], xb[r] = xb[r], xb[i]
        if xa != xb:
            return False
    return a.getstate() == b.getstate()


_INLINE_SHUFFLE = _inline_shuffle_matches_stdlib()

#: Resident-PW record layout (plain list — no object churn).
# Resident-record layout.  Fields 8+ carry the policy state that the
# policy objects keep in their own dicts; during the kernel run the
# records are the *only* live copy (the policy dicts are rebuilt from
# them, in exact reference insertion order, before the final drain —
# see _rebuild_policy_dicts), so the hot loop never touches a policy
# dict.  _LU is the last-use stamp, _AUX the raw RRPV (SRRIP; the
# per-set aging offset makes raw order == absolute order).  GHRP
# records extend the layout with four trailing slots.
(_UOPS, _SIZE, _SET, _INSTS, _BYTES, _WEIGHT, _LINE0, _LINE1,
 _LU, _AUX, _REUSED) = range(11)
#: GHRP record tail: flattened predictor table indices (i0/i1/i2, or
#: None in i0 when the entry has no recorded signature), the reuse bit
#: and the raw 32-bit signature (needed to rebuild ``_sig``).
_G_I0, _G_I1, _G_I2, _G_REUSED, _G_SIG = 9, 10, 11, 12, 13

#: Eviction reason codes for :meth:`_Kernel._remove`.
_REPLACEMENT, _INCLUSIVE, _UPGRADE = range(3)


def sim_fastpath_enabled() -> bool:
    """Whether the vectorized simulation kernel may run (default: yes).

    ``REPRO_SIM_FASTPATH=0`` restores the prepared-trace reference loop
    end-to-end (same knob pattern as ``REPRO_TRACE_FASTPATH`` /
    ``REPRO_POLICY_FASTPATH``).  The kernel also requires numpy; when
    it is absent the reference loop runs unconditionally.
    """
    return _np is not None and os.environ.get("REPRO_SIM_FASTPATH", "1") != "0"


def kernel_kind(policy: object) -> str | None:
    """The kernel specialization for ``policy``, or None if unsupported.

    Exact-type checks on purpose: a subclass may override hooks the
    kernel inlines, which would silently diverge from the reference.
    """
    tp = type(policy)
    if tp is LRUPolicy:
        return "lru"
    if tp is SRRIPPolicy:
        return "srrip"
    if tp is RandomPolicy:
        return "random"
    if tp is GHRPPolicy:
        return "ghrp"
    return None


def offline_kernel_kind(policy: object) -> str | None:
    """The offline-kernel specialization for ``policy``, or None.

    Exact-type checks, like :func:`kernel_kind` (FOO/FLACK only
    override ``__init__`` of :class:`OfflineReplayPolicy`, so they
    share its specializations).  Imports are lazy and guarded: the
    offline modules require numpy at import time, and this predicate
    must stay callable — answering None — without it.
    """
    try:
        from ..offline.base import OfflineReplayPolicy
        from ..offline.belady import BeladyPolicy
        from ..offline.flack import FLACKPolicy
        from ..offline.foo import FOOPolicy
        from ..policies.furbys import FurbysPolicy
        from ..policies.thermometer import ThermometerPolicy
    except ImportError:  # pragma: no cover - numpy-less environments
        return None
    tp = type(policy)
    if tp is BeladyPolicy:
        return "belady"
    if tp in (OfflineReplayPolicy, FOOPolicy, FLACKPolicy):
        return "plan" if policy._plan_mode else "greedy"
    if tp is FurbysPolicy:
        return "furbys"
    if tp is ThermometerPolicy:
        return "thermometer"
    return None


def fallback_reason(pipeline: "FrontendPipeline") -> str | None:
    """Why this pipeline cannot run through a kernel (None = it can).

    The reason strings feed the ``sim_fallback:<policy>:<reason>``
    resilience counters, so they are short stable identifiers rather
    than prose.
    """
    kind = kernel_kind(pipeline.policy)
    offline_kind = None if kind is not None \
        else offline_kernel_kind(pipeline.policy)
    if kind is None and offline_kind is None:
        return "unsupported_policy"
    if pipeline._classifier is not None:
        return "miss_classifier"
    if pipeline.pw_hit_stats is not None and offline_kind is None:
        # Per-PW hit-rate recording is implemented by the offline
        # kernel (the profiling replay needs it); the online kinds
        # still fall back.
        return "pw_hit_stats"
    if pipeline.config.perfect_uop_cache:
        return "perfect_uop_cache"
    # A pipeline that already streamed lookups (manual step() calls)
    # carries loop state the kernel does not reconstruct.
    if pipeline._pending or pipeline._in_flight:
        return "pipeline_mid_stream"
    # The precomputed GHRP history sequence assumes the register starts
    # at zero; a reused pipeline (back-to-back runs) falls back.
    if (type(pipeline.policy) is GHRPPolicy
            and pipeline.policy._history != 0):
        return "ghrp_history_nonzero"
    if offline_kind in ("belady", "plan", "greedy"):
        # The future-knowledge kinds read the columnar CSR layout; with
        # REPRO_POLICY_FASTPATH=0 the policy holds the reference
        # dict-of-lists index instead.
        from ..offline.base import ColumnarFutureIndex

        if not isinstance(pipeline.policy.future, ColumnarFutureIndex):
            return "reference_future_index"
    return None


def supports(pipeline: "FrontendPipeline") -> bool:
    """Whether this pipeline instance can run through a kernel."""
    return fallback_reason(pipeline) is None


def run_kernel(pipeline: "FrontendPipeline", trace: "Trace",
               warmup: int) -> SimulationStats:
    """Simulate ``trace`` on ``pipeline`` through the matching kernel.

    The caller (``FrontendPipeline.run``) is responsible for checking
    :func:`sim_fastpath_enabled` and :func:`supports` first.
    """
    if kernel_kind(pipeline.policy) is not None:
        return _Kernel(pipeline, trace, warmup).run()
    from .simd_offline import _OfflineKernel

    return _OfflineKernel(pipeline, trace, warmup).run()


# --- precomputed columns ------------------------------------------------------


def _precompute(trace: "Trace", *, n_sets: int, uops_per_entry: int,
                line_bytes: int, decode_width: int, btb_n_sets: int,
                ic_n_sets: int, delay: int, set_index_fn) -> dict:
    """Per-lookup derived columns for the kernel loop, memoized on the trace.

    Everything here depends only on the trace contents and machine
    geometry, so all policies simulating one trace share a single pass
    (the memo key follows the :meth:`Trace.prepared` convention).
    """
    key = ("simd", n_sets, uops_per_entry, line_bytes, decode_width,
           btb_n_sets, ic_n_sets, delay, callable_token(set_index_fn))
    return trace.memo(key, lambda: _gc_paused(lambda: _build_columns(
        trace, n_sets=n_sets, uops_per_entry=uops_per_entry,
        line_bytes=line_bytes, decode_width=decode_width,
        btb_n_sets=btb_n_sets, ic_n_sets=ic_n_sets, delay=delay,
        set_index_fn=set_index_fn,
    )))


def _build_columns(trace: "Trace", *, n_sets: int, uops_per_entry: int,
                   line_bytes: int, decode_width: int, btb_n_sets: int,
                   ic_n_sets: int, delay: int, set_index_fn,
                   lo: int = 0, hi=None) -> dict:
    """Derived columns for the lookup window ``[lo, hi)``.

    The default (``lo=0``, ``hi=None``) builds the full trace; the
    streaming fused sweep builds bounded windows instead.  Window reads
    are indexed relative to the returned ``base``: completions trail the
    window start by up to the insertion delay and the GHRP signature
    looks up to ``delay`` lookups ahead, so the materialized slice is
    ``[max(0, lo - delay), min(n, hi + delay))`` and every in-window
    access — including the four-lookup history back-context, handled
    separately below — stays inside it.
    """
    columns = trace.columns
    starts_all = _np.frombuffer(columns.starts, dtype=_np.uint64)
    n_total = len(starts_all)
    if hi is None:
        hi = n_total
    clo = max(0, lo - delay)
    chi = min(n_total, hi + delay)
    starts = starts_all[clo:chi]
    uops = _np.frombuffer(columns.uops, dtype=_np.uint32)[clo:chi]
    insts = _np.frombuffer(columns.insts, dtype=_np.uint32)[clo:chi]
    bytes_len = _np.frombuffer(columns.bytes_len, dtype=_np.uint32)[clo:chi]
    flags = _np.frombuffer(columns.flags, dtype=_np.uint8)[clo:chi]
    n = len(starts)

    # Micro-op cache set index per lookup.  The shipped hash-index
    # function vectorizes directly; custom index functions are applied
    # once per unique start and broadcast.
    if set_index_fn is default_set_index:
        si = ((starts >> _np.uint64(5)) ^ (starts >> _np.uint64(11))) \
            % _np.uint64(n_sets)
    else:
        unique, inverse = _np.unique(starts, return_inverse=True)
        per_unique = _np.fromiter(
            (set_index_fn(int(s), n_sets) for s in unique),
            dtype=_np.int64, count=len(unique),
        )
        si = per_unique[inverse]

    esize = -(-uops.astype(_np.int64) // uops_per_entry)
    first_line = (starts // _np.uint64(line_bytes)).astype(_np.int64)
    last_line = ((starts + bytes_len.astype(_np.uint64) - _np.uint64(1))
                 // _np.uint64(line_bytes)).astype(_np.int64)
    # Full-miss legacy decode: cycles = max(1, ceil(insts / width)).
    cycles = -(-insts.astype(_np.int64) // decode_width)
    _np.maximum(cycles, 1, out=cycles)

    terminated = (flags & FLAG_TERMINATED) != 0
    mispredicted = (flags & FLAG_MISPREDICTED) != 0
    # Branch-terminated subset for the compressed BTB pass.  Positions
    # stay absolute so the segment's searchsorted with absolute bounds
    # yields indices into the window-local pcs/si lists.
    branch_rel = _np.nonzero(terminated)[0]
    branch_pos = branch_rel + clo
    branch_pcs = (starts[branch_rel]
                  + bytes_len[branch_rel].astype(_np.uint64) - _np.uint64(1))
    branch_si = (branch_pcs >> _np.uint64(2)) % _np.uint64(btb_n_sets)

    # GHRP global history *before* each lookup:
    # h' = ((h << 5) ^ (start >> 4)) & 0xFFFFF.  Four updates fully
    # shift out the previous value, so h_i is a closed-form shift-XOR
    # of the last four starts — an exact vectorization of the scan.
    # Windowed builds extend the input four lookups left so hist values
    # at positions >= clo see their full back-context, then trim.
    xlo = max(0, clo - 4)
    x = ((starts_all[xlo:chi] >> _np.uint64(4))
         & _np.uint64(0xFFFFF)).astype(_np.uint32)
    m = chi - xlo
    hist = _np.zeros(m + 1, dtype=_np.uint32)
    for back, shift in ((1, 0), (2, 5), (3, 10), (4, 15)):
        hist[back:] ^= x[: m - back + 1] << _np.uint32(shift)
    hist &= _np.uint32(0xFFFFF)
    hist = hist[clo - xlo:]

    # GHRP insertion signature per *scheduling* lookup.  A pending
    # insertion scheduled by lookup m drains at exactly now = m + delay
    # (dues are strictly increasing and now advances one lookup at a
    # time; anything still pending at trace end uses hist[n]), and a
    # superseding window keeps both the start and the original due, so
    # the signature and predictor-table indices are pure functions of m.
    # In a mid-trace window the clamp target chi exceeds hi - 1 + delay,
    # so every in-window signature is exact; the trailing margin rows
    # are clamped-and-garbage but never scheduled by this window.
    drain_rel = _np.minimum(
        _np.arange(clo, chi, dtype=_np.int64) + delay, chi) - clo
    g_sig = (((starts >> _np.uint64(4)) ^ hist[drain_rel].astype(_np.uint64))
             & _np.uint64(0xFFFFFFFF)).astype(_np.int64)

    # Prefix sums: any segment's totals are two array reads.
    def _prefix(arr):
        out = _np.zeros(n + 1, dtype=_np.int64)
        _np.cumsum(arr, out=out[1:])
        return out

    insts_l = insts.tolist()
    bytes_l = bytes_len.tolist()
    si_l = si.tolist()
    esize_l = esize.tolist()
    first_l = first_line.tolist()
    last_l = last_line.tolist()
    contains_l = ((flags & FLAG_CONTAINS) != 0).tolist()
    uops_l = uops.tolist()
    return {
        # Index offset of this window's columns: loop indices subtract
        # it at every column read site (0 for a full build).
        "base": clo,
        "starts": starts.tolist(),
        "uops": uops_l,
        "insts": insts_l,
        "bytes_len": bytes_l,
        "si": si_l,
        "esize": esize_l,
        "first_line": first_l,
        "last_line": last_l,
        "contains": contains_l,
        # Fully-built insertion requests (weight=None): when the run
        # carries no accumulator hints — every online-policy run — the
        # miss path schedules a precomputed tuple instead of building
        # one.  Hinted runs rebuild the tuple with the weight slot.
        # The trailing line span feeds the inlined insert (same values
        # the reference derives from start/bytes at insert time).
        "reqs": list(zip(uops_l, insts_l, bytes_l, [None] * n, si_l,
                         esize_l, first_l, last_l)),
        # Icache set index of the first fetch line (full-miss path).
        "ic_si": (first_line % ic_n_sets).tolist(),
        # Kept as an array: only indexed at segment boundaries (int()
        # at the use sites keeps policy state on Python ints).
        "hist": hist,
        "g_sig": g_sig.tolist(),
        "g_i0": ((g_sig ^ (g_sig >> 7)) & _MASK12).tolist(),
        "g_i1": (((g_sig >> 5) ^ (g_sig >> 8)) & _MASK12).tolist(),
        "g_i2": (((g_sig >> 10) ^ (g_sig >> 9)) & _MASK12).tolist(),
        "branch_pos": branch_pos,
        "branch_pcs": branch_pcs.tolist(),
        "branch_si": branch_si.tolist(),
        "cum_uops": _prefix(uops),
        "cum_insts": _prefix(insts),
        "cum_esize": _prefix(esize),
        "cum_branches": _prefix(terminated),
        "cum_mispred": _prefix(mispredicted & terminated),
        # Raw arrays for fancy-indexed miss totals: the loop records
        # *which* lookups fully missed and numpy sums their columns,
        # instead of bumping six scalar counters per miss.
        "arr_uops": uops.astype(_np.int64),
        "arr_insts": insts.astype(_np.int64),
        "arr_esize": esize,
        "arr_cycles": cycles,
    }


# --- the kernel ---------------------------------------------------------------


class _Kernel:
    """One kernel execution: state shared across warmup/measure segments."""

    def __init__(self, pipeline: "FrontendPipeline", trace: "Trace",
                 warmup: int, *, columns=None, n_total=None) -> None:
        self.pipeline = pipeline
        self.trace = trace
        self.warmup = warmup
        config = pipeline.config
        self.kind = kernel_kind(pipeline.policy)
        uc = config.uop_cache
        self.ways = uc.ways
        self.keep_larger = uc.keep_larger
        self.delay = uc.insertion_delay
        self.line_bytes = config.icache.line_bytes
        self.inclusive = uc.inclusive_with_icache

        if columns is None:
            columns = _precompute(
                trace,
                n_sets=uc.sets,
                uops_per_entry=uc.uops_per_entry,
                line_bytes=config.icache.line_bytes,
                decode_width=config.core.decode_width,
                btb_n_sets=pipeline.btb._n_sets,
                ic_n_sets=config.icache.sets,
                delay=uc.insertion_delay,
                set_index_fn=pipeline.uop_cache._set_index,
            )
        self.cols = columns
        # Streaming callers pass a bounded window plus the true trace
        # length; ``col_base`` shifts every column read accordingly.
        self.col_base = columns.get("base", 0)
        self.n = (n_total if n_total is not None
                  else self.col_base + len(self.cols["starts"]))
        self.hist = self.cols["hist"]
        self.hist_now = 0

        # Live policy state (mutated in place — no sync needed).
        policy = pipeline.policy
        kind = self.kind
        self.lu: dict[int, int] = {}
        self.rrpv: dict[int, int] = {}
        if kind in ("lru", "srrip", "ghrp"):
            self.lu = policy._last_use
        if kind == "srrip":
            self.rrpv = policy._rrpv_map
            # Per-set aging offsets: effective RRPV = stored + offset,
            # so uniform aging is O(1) instead of rewriting every way.
            # Normalized back to absolute values in _drain/_sync_back.
            self.rrpv_off = [0] * uc.sets
        if kind == "ghrp":
            self.g_tables = policy._tables
            self.g_sig = policy._sig
            self.g_reused = policy._reused
            self.g_bypassed = policy._bypassed
            self.g_window = policy._BYPASS_FEEDBACK_WINDOW
        if kind == "random":
            self.rng_shuffle = policy._rng.shuffle
            self.rng_getrandbits = policy._rng.getrandbits

        # Kernel-side storage mirrors (synced back to the real objects
        # at the end of the run), seeded from current cache contents so
        # back-to-back runs on one pipeline keep their state.
        self.sets_pws: list[dict[int, list]] = []
        self.used_ways: list[int] = []
        line_bytes = self.line_bytes
        lu_get = self.lu.get
        seeded: dict[int, list] = {}
        for set_index, cset in enumerate(pipeline.uop_cache.sets):
            kernel_set: dict[int, list] = {}
            for start, spw in cset.pws.items():
                rec = [spw.uops, spw.size, set_index, spw.insts,
                       spw.bytes_len, spw.weight, start // line_bytes,
                       (start + spw.bytes_len - 1) // line_bytes,
                       lu_get(start, -1), None, False]
                if kind == "srrip":
                    rec[_AUX] = self.rrpv.get(start, RRPV_MAX)
                elif kind == "ghrp":
                    sg = self.g_sig.get(start)
                    if sg is None:
                        rec[_G_I0:] = [None, None, None,
                                       self.g_reused.get(start, False), None]
                    else:
                        rec[_G_I0:] = [
                            (sg ^ sg >> 7) & _MASK12,
                            (sg >> 5 ^ sg >> 8) & _MASK12,
                            (sg >> 10 ^ sg >> 9) & _MASK12,
                            self.g_reused.get(start, False), sg]
                kernel_set[start] = rec
                seeded[start] = rec
            self.sets_pws.append(kernel_set)
            self.used_ways.append(cset.used_ways)
        # ``resident`` doubles as the rebuild order for the policy dicts
        # at the end of the run (reference dicts keep insertion order:
        # pre-run survivors first, then new inserts chronologically), so
        # seed it in the policy dict's own key order, not set-scan order.
        self.resident: dict[int, list] = {}
        if kind in ("lru", "srrip", "ghrp") and self.lu:
            for start in self.lu:
                rec = seeded.get(start)
                if rec is not None:
                    self.resident[start] = rec
            if len(self.resident) != len(seeded):
                for start, rec in seeded.items():
                    if start not in self.resident:
                        self.resident[start] = rec
        else:
            self.resident = seeded
        # The line reverse map is used (and mutated) live.
        self.line_map = pipeline.uop_cache._line_map
        # Scheduling indices of pending insertions (due = m + delay,
        # start = starts[m]); strictly increasing, so always sorted.
        self.pending: deque[int] = deque()
        self.in_flight: dict[int, tuple] = {}
        self.on_uop_path = pipeline._on_uop_path

        # Structure-object counter accumulators (synced at the end).
        self.ic_accesses = 0
        self.ic_misses = 0
        self.btb_accesses = 0
        self.btb_misses = 0
        self.dec_episodes = 0
        self.dec_insts = 0
        self.dec_uops = 0
        self.dec_cycles = 0
        self.accumulated = 0
        self.cache_evictions = 0
        self.cache_evicted_entries = 0
        self.cache_invalidations = 0
        self.cache_upgrades = 0
        # Stats-level insertion counters (folded into the active
        # segment's stats, then reset — mutated by _attempt/_remove).
        self.st_attempts = 0
        self.st_insertions = 0
        self.st_bypasses = 0
        self.st_writes = 0
        self.st_evictions = 0
        self.st_evicted_entries = 0

    # --- orchestration -------------------------------------------------------

    def run(self) -> SimulationStats:
        pipeline = self.pipeline
        n = self.n
        warmup = self.warmup
        segment = self._segment
        if os.environ.get("REPRO_SIM_SPECIALIZE", "1") != "0":
            spec = self._specialized()
            if spec is not None:
                segment = spec.__get__(self)
        # The kernel's working set is acyclic (columns of ints/tuples plus
        # flat list records), so the cyclic collector can only cost time
        # here: every gen-2 pass re-scans the millions of column pointers
        # while the hot loop's record churn keeps triggering collections.
        # Refcounting frees everything the loop drops; pause the collector
        # for the duration and restore the caller's setting afterwards.
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        try:
            with stagetimer.timed("sim_kernel"):
                if 0 < warmup < n:
                    segment(0, warmup)
                    pipeline.stats = SimulationStats()
                    segment(warmup, n)
                else:
                    segment(0, n)
                self._drain(n)
        finally:
            if gc_was_enabled:
                _gc.enable()
        self._sync_back()
        return pipeline._finalize(n)

    def _spec_flags(self) -> dict:
        """Run-constant flags the specialized segment bakes in."""
        kind = self.kind
        return {
            "is_lru": kind == "lru",
            "is_srrip": kind == "srrip",
            "is_ghrp": kind == "ghrp",
            "track_lu": kind in ("lru", "srrip"),
            "keep_larger": self.keep_larger,
            "has_hints": bool(self.pipeline.accumulator._hints),
            "perfect_icache": self.pipeline.config.perfect_icache,
            "inclusive": self.inclusive,
            "inline_shuffle": _INLINE_SHUFFLE,
        }

    def _specialized(self):
        """Compiled flag-specialized segment variant (None on failure)."""
        return _specialized_segment(self._spec_flags())

    def _rebuild_policy_dicts(self) -> None:
        """Refill the live policy dicts from the resident records.

        The hot loop maintains policy state in the records only; the
        reference's dicts are reconstructed here (before the drain-time
        attempts, which go back to mirroring both views).  ``resident``
        iterates in exact reference insertion order — pre-run survivors
        first, then surviving inserts chronologically (an upgrade or a
        re-insert after eviction re-appends, in both engines) — so key
        order, not just content, matches the reference dicts.
        """
        kind = self.kind
        if kind == "random":
            return
        lu = self.lu
        lu.clear()
        if kind == "lru":
            for s, rec in self.resident.items():
                lu[s] = rec[_LU]
        elif kind == "srrip":
            # Fold the per-set aging offsets back into absolute RRPV
            # values; _attempt/_rank (and the policy object afterwards)
            # speak absolutes.
            off = self.rrpv_off
            rrpv = self.rrpv
            rrpv.clear()
            for s, rec in self.resident.items():
                o = off[rec[_SET]]
                if o:
                    rec[_AUX] += o
                lu[s] = rec[_LU]
                rrpv[s] = rec[_AUX]
            self.rrpv_off = [0] * len(off)
        else:  # ghrp
            g_sig = self.g_sig
            g_reused = self.g_reused
            g_sig.clear()
            g_reused.clear()
            for s, rec in self.resident.items():
                sg = rec[_G_SIG]
                if sg is not None:
                    g_sig[s] = sg
                g_reused[s] = rec[_G_REUSED]
                lu[s] = rec[_LU]

    def _drain(self, n: int) -> None:
        """Complete insertions still in flight at trace end."""
        self._rebuild_policy_dicts()
        now = n + self.delay
        base = self.col_base
        self.hist_now = int(self.hist[n - base])
        pending = self.pending
        in_flight = self.in_flight
        starts_l = self.cols["starts"]
        delay = self.delay
        # Pending entries are scheduling indices: due = m + delay and
        # start = starts[m] are both derivable, so nothing else is stored.
        while pending and pending[0] + delay <= now:
            start = starts_l[pending.popleft() - base]
            request = in_flight.pop(start, None)
            if request is None:
                continue
            self._attempt(now, start, request)
        stats = self.pipeline.stats
        stats.insertion_attempts += self.st_attempts
        stats.insertions += self.st_insertions
        stats.bypasses += self.st_bypasses
        stats.uop_cache_writes += self.st_writes
        stats.evictions += self.st_evictions
        stats.evicted_entries += self.st_evicted_entries
        self.st_attempts = self.st_insertions = self.st_bypasses = 0
        self.st_writes = self.st_evictions = self.st_evicted_entries = 0

    def _sync_back(self) -> None:
        """Propagate kernel state into the pipeline's real structures."""
        pipeline = self.pipeline
        icache = pipeline.icache
        icache.accesses += self.ic_accesses
        icache.misses += self.ic_misses
        btb = pipeline.btb
        btb.accesses += self.btb_accesses
        btb.misses += self.btb_misses
        decoder = pipeline.decoder
        decoder.episodes += self.dec_episodes
        decoder.insts_decoded += self.dec_insts
        decoder.uops_decoded += self.dec_uops
        decoder.active_cycles += self.dec_cycles
        pipeline.accumulator.accumulated += self.accumulated
        cache = pipeline.uop_cache
        cache.eviction_count += self.cache_evictions
        cache.evicted_entries += self.cache_evicted_entries
        cache.inclusive_invalidations += self.cache_invalidations
        cache.upgrades += self.cache_upgrades
        # The in-run line map is append-only (removals leave stale
        # starts behind; readers re-validate against ``resident``), so
        # rebuild the exact reverse map the reference maintains.
        line_map: dict[int, set[int]] = {}
        for start, rec in self.resident.items():
            for line in range(rec[_LINE0], rec[_LINE1] + 1):
                starts = line_map.get(line)
                if starts is None:
                    line_map[line] = {start}
                else:
                    starts.add(start)
        cache._line_map = line_map
        pipeline._on_uop_path = self.on_uop_path
        if self.kind == "ghrp":
            pipeline.policy._history = int(self.hist[self.n - self.col_base])
        # Rebuild resident StoredPW objects so post-run cache probes
        # (tests, notebooks) see the expected contents.  Way-slot ids
        # are reassigned in residency order; kernel-eligible policies
        # never read them.
        for set_index, kernel_set in enumerate(self.sets_pws):
            cset = cache.sets[set_index]
            free = list(range(self.ways))
            pws: dict[int, StoredPW] = {}
            for start, rec in kernel_set.items():
                size = rec[_SIZE]
                slots = tuple(free[:size])
                del free[:size]
                pws[start] = StoredPW(
                    start=start, uops=rec[_UOPS], insts=rec[_INSTS],
                    bytes_len=rec[_BYTES], size=size, weight=rec[_WEIGHT],
                    slots=slots,
                    lines=range(rec[_LINE0], rec[_LINE1] + 1),
                )
            cset.pws = pws
            cset.used_ways = self.used_ways[set_index]
            cset.free_slots = free  # ascending == valid min-heap

    # --- GHRP predictor helpers ----------------------------------------------

    def _predict(self, signature: int) -> int:
        t0, t1, t2 = self.g_tables
        return (
            t0[(signature ^ signature >> 7) & _MASK12]
            + t1[(signature >> 5 ^ signature >> 8) & _MASK12]
            + t2[(signature >> 10 ^ signature >> 9) & _MASK12]
        )

    def _train(self, signature: int, dead: bool) -> None:
        t0, t1, t2 = self.g_tables
        i0 = (signature ^ signature >> 7) & _MASK12
        i1 = (signature >> 5 ^ signature >> 8) & _MASK12
        i2 = (signature >> 10 ^ signature >> 9) & _MASK12
        if dead:
            if t0[i0] < 3:
                t0[i0] += 1
            if t1[i1] < 3:
                t1[i1] += 1
            if t2[i2] < 3:
                t2[i2] += 1
        else:
            if t0[i0] > 0:
                t0[i0] -= 1
            if t1[i1] > 0:
                t1[i1] -= 1
            if t2[i2] > 0:
                t2[i2] -= 1

    # --- storage engine ------------------------------------------------------

    def _remove(self, now: int, start: int, rec: list, reason: int) -> None:
        """Evict a resident record (mirrors ``UopCache._remove``).

        The line map is left as-is (stale starts are re-validated by the
        inclusive-invalidation scan and the map is rebuilt exactly in
        ``_sync_back``).  The policy-dict pops only matter during the
        final drain, after ``_rebuild_policy_dicts`` has refreshed the
        dicts; before that they are no-ops on state that gets rebuilt.
        """
        del self.sets_pws[rec[_SET]][start]
        del self.resident[start]
        self.used_ways[rec[_SET]] -= rec[_SIZE]
        if reason == _REPLACEMENT:
            self.cache_evictions += 1
            self.cache_evicted_entries += rec[_SIZE]
        elif reason == _INCLUSIVE:
            self.cache_invalidations += 1
        else:
            self.cache_upgrades += 1
        kind = self.kind
        if kind == "lru":
            self.lu.pop(start, None)
        elif kind == "srrip":
            self.rrpv.pop(start, None)
            self.lu.pop(start, None)
        elif kind == "ghrp":
            if reason != _UPGRADE:
                i0 = rec[_G_I0]
                if i0 is not None and not rec[_G_REUSED]:
                    t0, t1, t2 = self.g_tables
                    if t0[i0] < 3:
                        t0[i0] += 1
                    i1 = rec[_G_I1]
                    if t1[i1] < 3:
                        t1[i1] += 1
                    i2 = rec[_G_I2]
                    if t2[i2] < 3:
                        t2[i2] += 1
            self.g_sig.pop(start, None)
            self.g_reused.pop(start, None)
            self.lu.pop(start, None)

    def _attempt(self, now: int, start: int, request: tuple) -> None:
        """One insertion attempt (mirrors ``UopCache.try_insert``)."""
        self.st_attempts += 1
        uops, insts, bytes_len, weight, set_index, size = request[:6]
        ways = self.ways
        if size > ways:
            self.st_bypasses += 1
            return
        cset = self.sets_pws[set_index]
        existing = cset.get(start)
        if existing is not None:
            if self.keep_larger and existing[_UOPS] >= uops:
                self.st_bypasses += 1
                return
            extra_needed = size - existing[_SIZE]
        else:
            extra_needed = size
        need = extra_needed - (ways - self.used_ways[set_index])
        kind = self.kind
        sig = 0
        if kind == "ghrp":
            sig = ((start >> 4) ^ self.hist_now) & 0xFFFFFFFF
            if self._predict(sig) >= _BYPASS_THRESHOLD:
                bypassed = self.g_bypassed
                bypassed[start] = (sig, now)
                if len(bypassed) > 1 << 16:  # pragma: no cover - bound
                    bypassed.clear()
                self.st_bypasses += 1
                return
        if need > 0:
            candidates = [s for s, r in cset.items() if r is not existing]
            ranked = self._rank(cset, candidates, kind)
            victims = []
            freed = 0
            for victim in ranked:
                victims.append(victim)
                freed += cset[victim][_SIZE]
                if freed >= need:
                    break
            if freed < need:
                # The set genuinely cannot host the PW; bypass (same
                # fallback as ReplacementPolicy.choose_victims).
                self.st_bypasses += 1
                return
            for victim in victims:
                rec = cset[victim]
                self.st_evictions += 1
                self.st_evicted_entries += rec[_SIZE]
                self._remove(now, victim, rec, _REPLACEMENT)
        if existing is not None:
            # Upgrade in place: same tag, more entries (keep-larger).
            if weight is None:
                weight = existing[_WEIGHT]
            self._remove(now, start, existing, _UPGRADE)
        line_bytes = self.line_bytes
        first_line = start // line_bytes
        last_line = (start + bytes_len - 1) // line_bytes
        rec = [uops, size, set_index, insts, bytes_len, weight,
               first_line, last_line, now, None, False]
        cset[start] = rec
        self.resident[start] = rec
        self.used_ways[set_index] += size
        line_map = self.line_map
        for line in range(first_line, last_line + 1):
            starts = line_map.get(line)
            if starts is None:
                line_map[line] = {start}
            else:
                starts.add(start)
        self.st_insertions += 1
        self.st_writes += size
        if kind == "lru":
            self.lu[start] = now
        elif kind == "srrip":
            # Offsets are normalized before drain-time attempts run,
            # so the absolute insert value is also the raw one.
            self.rrpv[start] = RRPV_INSERT
            rec[_AUX] = RRPV_INSERT
            self.lu[start] = now
        elif kind == "ghrp":
            self.g_sig[start] = sig
            rec[_G_I0:] = [(sig ^ sig >> 7) & _MASK12,
                           (sig >> 5 ^ sig >> 8) & _MASK12,
                           (sig >> 10 ^ sig >> 9) & _MASK12,
                           False, sig]
            self.g_reused[start] = False
            self.lu[start] = now

    def _rank(self, cset: dict[int, list], candidates: list[int],
              kind: str) -> list[int]:
        """Victim preference order (mirrors each policy's victim_order).

        Reads policy state from the records (the only live copy during
        the run); ties break in candidate order, matching the
        reference's stable sorts over the same orderings.
        """
        if kind == "lru":
            order = sorted((cset[s][_LU], i)
                           for i, s in enumerate(candidates))
            return [candidates[i] for _, i in order]
        if kind == "random":
            order = list(candidates)
            self.rng_shuffle(order)
            return order
        if kind == "srrip":
            # Only reachable at drain time, after offsets are folded
            # back (raw == absolute); aging keeps dict and records in
            # lockstep like the reference's bulk rewrite.
            if not candidates:
                return []
            values = [cset[s][_AUX] for s in candidates]
            current_max = max(values)
            if current_max < RRPV_MAX:
                delta = RRPV_MAX - current_max
                values = [value + delta for value in values]
                rrpv = self.rrpv
                for s, value in zip(candidates, values):
                    rrpv[s] = value
                    cset[s][_AUX] = value
            decorated = [
                (-values[i], cset[s][_LU], i, s)
                for i, s in enumerate(candidates)
            ]
            decorated.sort()
            return [entry[3] for entry in decorated]
        # ghrp: dead-predicted first, ties broken by LRU.
        t0, t1, t2 = self.g_tables
        decorated = []
        for i, s in enumerate(candidates):
            r = cset[s]
            i0 = r[_G_I0]
            dead = i0 is not None and (
                t0[i0] + t1[r[_G_I1]] + t2[r[_G_I2]] >= _DEAD_THRESHOLD)
            decorated.append((0 if dead else 1, r[_LU], i, s))
        decorated.sort()
        return [entry[3] for entry in decorated]

    # --- main loop -----------------------------------------------------------

    def _segment(self, begin: int, end: int) -> None:
        """Simulate lookups ``[begin, end)`` into ``pipeline.stats``."""
        pipeline = self.pipeline
        stats = pipeline.stats
        cfg = pipeline.config
        cols = self.cols

        perfect_bp = cfg.perfect_branch_predictor
        perfect_icache = cfg.perfect_icache
        inclusive = self.inclusive
        line_bytes = self.line_bytes
        decode_width = cfg.core.decode_width
        delay = self.delay
        base = self.col_base

        starts_l = cols["starts"]
        uops_l = cols["uops"]
        reqs_l = cols["reqs"]
        ff_l = cols["first_line"]
        fl_l = cols["last_line"]
        cont_l = cols["contains"]
        ic_si_l = cols["ic_si"]

        kind = self.kind
        is_lru = kind == "lru"
        is_ghrp = kind == "ghrp"
        is_srrip = kind == "srrip"
        track_lu = is_lru or is_srrip
        if is_srrip:
            rrpv_off = self.rrpv_off
        if is_ghrp:
            g_bypassed = self.g_bypassed
            g_bypassed_pop = g_bypassed.pop
            g_window = self.g_window
            t0, t1, t2 = self.g_tables
            g_sig_l = cols["g_sig"]
            g_i0_l = cols["g_i0"]
            g_i1_l = cols["g_i1"]
            g_i2_l = cols["g_i2"]
        elif kind == "random":
            rng_shuffle = self.rng_shuffle
            getrandbits = self.rng_getrandbits
            inline_shuffle = _INLINE_SHUFFLE
            # Bit lengths for rejection sampling, indexed by population
            # count (a set holds at most ``ways`` single-entry PWs).
            bitlen = [n.bit_length() for n in range(self.ways + 2)]

        ways = self.ways
        keep_larger = self.keep_larger
        sets_pws = self.sets_pws
        used_ways = self.used_ways
        resident = self.resident
        resident_get = resident.get
        pending = self.pending
        pending_append = pending.append
        pending_popleft = pending.popleft
        in_flight = self.in_flight
        in_flight_get = in_flight.get
        in_flight_pop = in_flight.pop
        in_flight_setdefault = in_flight.setdefault
        rank = self._rank
        remove = self._remove

        hints = pipeline.accumulator._hints
        has_hints = bool(hints)
        hints_get = hints.get

        icache = pipeline.icache
        isets = icache._sets
        ic_n_sets = icache.config.sets
        ic_ways = icache.config.ways
        line_map = self.line_map
        line_map_get = line_map.get

        # --- compressed BTB pass (independent of cache state) ---
        # [fused:btb]
        if not cfg.perfect_btb:
            btb = pipeline.btb
            bsets = btb._sets
            btb_ways = btb.config.btb_ways
            branch_pos = cols["branch_pos"]
            lo = int(_np.searchsorted(branch_pos, begin))
            hi = int(_np.searchsorted(branch_pos, end))
            btb_misses = 0
            prev_pc = None
            for pc, bi in zip(cols["branch_pcs"][lo:hi],
                              cols["branch_si"][lo:hi]):
                if pc == prev_pc:
                    continue  # still the MRU entry of its set
                prev_pc = pc
                bset = bsets[bi]
                if pc in bset:
                    bset.move_to_end(pc)
                else:
                    btb_misses += 1
                    if len(bset) >= btb_ways:
                        bset.popitem(last=False)
                    bset[pc] = None
            self.btb_accesses += hi - lo
            self.btb_misses += btb_misses
            stats.btb_misses += btb_misses
        # [fused:/btb]

        # --- segment-local counters ---
        pw_partial_hits = 0
        uops_missed = 0
        reads_corr = 0
        path_switches = icache_accesses = inclusive_invalidations = 0
        dec_episodes = dec_insts = dec_uops = dec_cycles = 0
        ic_acc = ic_miss = 0
        accumulated = 0
        insertions = bypasses = writes = 0
        evictions = evicted_entries = 0
        cache_upgrades = 0
        on_uop_path = self.on_uop_path
        # Full misses record their index only; the per-miss totals are
        # numpy fancy-indexed sums over the precomputed columns.
        miss_idx: list[int] = []
        miss_append = miss_idx.append
        ic_prev = None  # last icache line touched (still MRU in its set)
        NEVER = 1 << 62  # int sentinel keeps the per-lookup compare int-int
        next_due = pending[0] + delay if pending else NEVER
        sig = i0 = i1 = i2 = 0

        for now, start, uops in zip(range(begin, end),
                                    starts_l[begin - base:end - base],
                                    uops_l[begin - base:end - base]):
            if next_due <= now:
                lim = now - delay
                while pending and pending[0] <= lim:
                    qi = pending_popleft()
                    queued_start = starts_l[qi - base]
                    request = in_flight_pop(queued_start, None)
                    if request is None:
                        continue  # superseded and already completed
                    # --- inlined insertion attempt; the drain-time
                    # _attempt method is the readable reference for
                    # this block — keep them in lockstep.  (Attempts
                    # are not counted here: every attempt ends as
                    # exactly one insertion or bypass, so the fold
                    # derives the total.) ---
                    (q_uops, q_insts, q_bytes, q_weight, q_si, q_size,
                     q_line0, q_line1) = request
                    if q_size > ways:
                        bypasses += 1
                        continue
                    cset = sets_pws[q_si]
                    existing = cset.get(queued_start)
                    if existing is None:
                        need = q_size - ways + used_ways[q_si]
                    elif keep_larger and existing[0] >= q_uops:
                        bypasses += 1
                        continue
                    else:
                        need = (q_size - existing[1]
                                - ways + used_ways[q_si])
                    if is_ghrp:
                        # Signature and table indices were vectorized at
                        # column-build time, keyed by scheduling index.
                        sig = g_sig_l[qi - base]
                        i0 = g_i0_l[qi - base]
                        i1 = g_i1_l[qi - base]
                        i2 = g_i2_l[qi - base]
                        if t0[i0] + t1[i1] + t2[i2] >= _BYPASS_THRESHOLD:
                            g_bypassed[queued_start] = (sig, now)
                            if len(g_bypassed) > 1 << 16:
                                g_bypassed.clear()
                            bypasses += 1
                            continue
                    if need > 0:
                        if existing is not None:
                            # Rare: an upgrade that must evict others.
                            cands = [s for s in cset if s != queued_start]
                            if is_srrip:
                                # Offset-space ranking.  The reference
                                # ages only the candidates (the upgraded
                                # entry is excluded), so a positive
                                # offset bump must compensate the
                                # excluded entry's raw value instead.
                                vals = [cset[s][9] for s in cands]
                                if vals:
                                    off_si = rrpv_off[q_si]
                                    delta = RRPV_MAX - max(vals) - off_si
                                    if delta > 0:
                                        rrpv_off[q_si] = off_si + delta
                                        existing[9] -= delta
                                order = sorted(
                                    (-vals[i], cset[s][8], i)
                                    for i, s in enumerate(cands))
                                ranked = [cands[i] for _, _, i in order]
                            else:
                                ranked = rank(cset, cands, kind)
                            victims = []
                            freed = 0
                            for vs in ranked:
                                victims.append(vs)
                                freed += cset[vs][1]
                                if freed >= need:
                                    break
                            if freed < need:
                                bypasses += 1
                                continue
                        elif is_lru:
                            # First victim = argmin recency; ties keep
                            # residency order (== stable-sort prefix).
                            best_s = best_r = None
                            best_v = 0
                            for s, r in cset.items():
                                v = r[8]
                                if best_s is None or v < best_v:
                                    best_s = s
                                    best_r = r
                                    best_v = v
                            if best_r[1] >= need:
                                victims = (best_s,)
                            else:
                                # Next victims by repeated argmin with
                                # exclusion — picks in exactly the
                                # stable (lu, residency) sort order.
                                victims = [best_s]
                                freed = best_r[1]
                                while freed < need:
                                    nbs = nbr = None
                                    nbv = 0
                                    for s, r in cset.items():
                                        if s in victims:
                                            continue
                                        v = r[8]
                                        if nbs is None or v < nbv:
                                            nbs = s
                                            nbr = r
                                            nbv = v
                                    if nbs is None:
                                        break
                                    victims.append(nbs)
                                    freed += nbr[1]
                        elif is_srrip:
                            # Raw RRPV values (absolute - offset) live
                            # in the records.  Uniform aging shifts the
                            # whole set, so raw order == absolute order
                            # and aging is a single offset bump instead
                            # of N dict writes.  The argmax's best_v IS
                            # max(raw), which prices the bump.
                            best_s = best_r = None
                            best_v = best_lu = 0
                            for s, r in cset.items():
                                v = r[9]
                                if (best_s is None or v > best_v
                                        or (v == best_v and r[8] < best_lu)):
                                    best_s = s
                                    best_r = r
                                    best_v = v
                                    best_lu = r[8]
                            off_si = rrpv_off[q_si]
                            delta = RRPV_MAX - best_v - off_si
                            if delta > 0:
                                rrpv_off[q_si] = off_si + delta
                            if best_r[1] >= need:
                                victims = (best_s,)
                            else:
                                # Next victims by repeated argmax with
                                # exclusion — exactly the reference's
                                # stable (-rrpv, lu, residency) order.
                                victims = [best_s]
                                freed = best_r[1]
                                while freed < need:
                                    nbs = nbr = None
                                    nbv = nbl = 0
                                    for s, r in cset.items():
                                        if s in victims:
                                            continue
                                        v = r[9]
                                        if (nbs is None or v > nbv
                                                or (v == nbv
                                                    and r[8] < nbl)):
                                            nbs = s
                                            nbr = r
                                            nbv = v
                                            nbl = r[8]
                                    if nbs is None:
                                        break
                                    victims.append(nbs)
                                    freed += nbr[1]
                        elif is_ghrp:
                            best_s = best_r = None
                            best_d = 2
                            best_lu = 0
                            for s, r in cset.items():
                                vi0 = r[9]
                                if vi0 is not None and (
                                    t0[vi0] + t1[r[10]] + t2[r[11]]
                                    >= _DEAD_THRESHOLD
                                ):
                                    d = 0
                                else:
                                    d = 1
                                lu_s = r[8]
                                if (best_s is None or d < best_d
                                        or (d == best_d and lu_s < best_lu)):
                                    best_s = s
                                    best_r = r
                                    best_d = d
                                    best_lu = lu_s
                            if best_r[1] >= need:
                                victims = (best_s,)
                            else:
                                # Repeated argmin with exclusion over
                                # the stable (dead, lu, residency) key;
                                # the tables only train at removal time,
                                # after selection, so re-evaluating
                                # deadness per pass is exact.
                                victims = [best_s]
                                freed = best_r[1]
                                while freed < need:
                                    nbs = nbr = None
                                    nbd = 2
                                    nbl = 0
                                    for s, r in cset.items():
                                        if s in victims:
                                            continue
                                        vi0 = r[9]
                                        if vi0 is not None and (
                                            t0[vi0] + t1[r[10]] + t2[r[11]]
                                            >= _DEAD_THRESHOLD
                                        ):
                                            d = 0
                                        else:
                                            d = 1
                                        if (nbs is None or d < nbd
                                                or (d == nbd
                                                    and r[8] < nbl)):
                                            nbs = s
                                            nbr = r
                                            nbd = d
                                            nbl = r[8]
                                    if nbs is None:
                                        break
                                    victims.append(nbs)
                                    freed += nbr[1]
                        else:  # random
                            cands = list(cset)
                            if inline_shuffle:
                                # Exact CPython Random.shuffle, with the
                                # _randbelow call layers peeled off (the
                                # import-time check guarantees identical
                                # draws and final RNG state).
                                for fy in range(len(cands) - 1, 0, -1):
                                    nn = fy + 1
                                    k = bitlen[nn]
                                    rr = getrandbits(k)
                                    while rr >= nn:
                                        rr = getrandbits(k)
                                    cands[fy], cands[rr] = \
                                        cands[rr], cands[fy]
                            else:  # pragma: no cover - stdlib changed
                                rng_shuffle(cands)
                            victims = []
                            freed = 0
                            for vs in cands:
                                victims.append(vs)
                                freed += cset[vs][1]
                                if freed >= need:
                                    break
                        # --- inlined removals (reason: replacement).
                        # Stale line-map entries are left behind (the
                        # invalidation scan re-validates), and policy
                        # dicts are rebuilt from the records at drain
                        # time, so only the storage views update here.
                        freed = 0
                        for vs in victims:
                            vrec = cset[vs]
                            del cset[vs]
                            del resident[vs]
                            vsize = vrec[1]
                            freed += vsize
                            evictions += 1
                            evicted_entries += vsize
                            if is_ghrp:
                                vi0 = vrec[9]
                                if vi0 is not None and not vrec[12]:
                                    c = t0[vi0]
                                    if c < 3:
                                        t0[vi0] = c + 1
                                    vi1 = vrec[10]
                                    c = t1[vi1]
                                    if c < 3:
                                        t1[vi1] = c + 1
                                    vi2 = vrec[11]
                                    c = t2[vi2]
                                    if c < 3:
                                        t2[vi2] = c + 1
                        used_ways[q_si] -= freed
                    if existing is not None:
                        # Upgrade in place (keep-larger merge); no
                        # dead-training on upgrades.
                        if q_weight is None:
                            q_weight = existing[5]
                        del cset[queued_start]
                        del resident[queued_start]
                        used_ways[q_si] -= existing[1]
                        cache_upgrades += 1
                    # --- inlined insert (line span precomputed in the
                    # request: same derivation the reference applies to
                    # start/bytes at insert time) ---
                    line0 = q_line0
                    line1 = q_line1
                    if is_ghrp:
                        nrec = [q_uops, q_size, q_si, q_insts, q_bytes,
                                q_weight, line0, line1, now,
                                i0, i1, i2, False, sig]
                    elif is_srrip:
                        nrec = [q_uops, q_size, q_si, q_insts, q_bytes,
                                q_weight, line0, line1, now,
                                RRPV_INSERT - rrpv_off[q_si], False]
                    else:
                        nrec = [q_uops, q_size, q_si, q_insts, q_bytes,
                                q_weight, line0, line1, now, None, False]
                    cset[queued_start] = nrec
                    resident[queued_start] = nrec
                    used_ways[q_si] += q_size
                    if line0 == line1:
                        lstarts = line_map_get(line0)
                        if lstarts is None:
                            line_map[line0] = {queued_start}
                        else:
                            lstarts.add(queued_start)
                    else:
                        for line in range(line0, line1 + 1):
                            lstarts = line_map_get(line)
                            if lstarts is None:
                                line_map[line] = {queued_start}
                            else:
                                lstarts.add(queued_start)
                    insertions += 1
                    writes += q_size
                next_due = pending[0] + delay if pending else NEVER

            if is_ghrp and g_bypassed and start in g_bypassed:
                entry = g_bypassed_pop(start)
                if now - entry[1] <= g_window:
                    bsg = entry[0]
                    bi = (bsg ^ bsg >> 7) & _MASK12
                    c = t0[bi]
                    if c > 0:
                        t0[bi] = c - 1
                    bi = (bsg >> 5 ^ bsg >> 8) & _MASK12
                    c = t1[bi]
                    if c > 0:
                        t1[bi] = c - 1
                    bi = (bsg >> 10 ^ bsg >> 9) & _MASK12
                    c = t2[bi]
                    if c > 0:
                        t2[bi] = c - 1

            rec = resident_get(start)
            if rec is not None and rec[0] >= uops:
                # Full hit: probe + recency stamp, everything else is
                # reconstructed from the prefix sums afterwards.
                if track_lu:
                    rec[8] = now
                    if is_srrip:
                        rec[9] = RRPV_HIT - rrpv_off[rec[2]]
                elif is_ghrp:
                    rec[8] = now
                    if not rec[12]:
                        rec[12] = True
                        hi0 = rec[9]
                        if hi0 is not None:
                            c = t0[hi0]
                            if c > 0:
                                t0[hi0] = c - 1
                            hi1 = rec[10]
                            c = t1[hi1]
                            if c > 0:
                                t1[hi1] = c - 1
                            hi2 = rec[11]
                            c = t2[hi2]
                            if c > 0:
                                t2[hi2] = c - 1
                if not on_uop_path:
                    path_switches += 1
                    on_uop_path = True
            else:
                request = reqs_l[now - base]
                if rec is None:
                    # Full miss: record the index; totals are fancy-indexed
                    # numpy sums at segment fold time.
                    miss_append(now)
                    if on_uop_path:
                        path_switches += 1
                        on_uop_path = False
                    fetch_first = ff_l[now - base]
                    fetch_last = fl_l[now - base]
                else:
                    # Partial hit: stored prefix served, remainder decodes,
                    # merged larger window is scheduled for insertion.
                    served = rec[0]
                    missed = uops - served
                    insts_now = request[1]
                    pw_partial_hits += 1
                    uops_missed += missed
                    reads_corr += rec[1] - request[5]
                    missed_insts = max(1, round(insts_now * missed / uops))
                    dec_episodes += 1
                    dec_insts += missed_insts
                    dec_uops += missed
                    cycles = -(-missed_insts // decode_width)
                    dec_cycles += cycles if cycles > 1 else 1
                    if track_lu:
                        rec[8] = now
                        if is_srrip:
                            rec[9] = RRPV_HIT - rrpv_off[rec[2]]
                    elif is_ghrp:
                        rec[8] = now
                        if not rec[12]:
                            rec[12] = True
                            hi0 = rec[9]
                            if hi0 is not None:
                                c = t0[hi0]
                                if c > 0:
                                    t0[hi0] = c - 1
                                hi1 = rec[10]
                                c = t1[hi1]
                                if c > 0:
                                    t1[hi1] = c - 1
                                hi2 = rec[11]
                                c = t2[hi2]
                                if c > 0:
                                    t2[hi2] = c - 1
                    path_switches += 1 if on_uop_path else 2
                    on_uop_path = False
                    fetch_start = start + rec[4]
                    fetch_end = start + request[2]
                    fetch_first = fetch_start // line_bytes
                    if fetch_end > fetch_start:
                        fetch_last = (fetch_end - 1) // line_bytes
                    else:
                        fetch_last = fetch_first

                n_lines = fetch_last - fetch_first + 1
                icache_accesses += n_lines
                if not perfect_icache:
                    ic_acc += n_lines
                    # Same line as the previous icache access: still the MRU
                    # entry of its set (nothing has touched that set since),
                    # so the hit is free — no probe, no move_to_end.
                    if n_lines == 1:
                        if fetch_first != ic_prev:
                            ic_prev = fetch_first
                            # Full misses fetch from the lookup's own first
                            # line, whose set index is a precomputed column.
                            icset = isets[ic_si_l[now - base] if rec is None
                                          else fetch_first % ic_n_sets]
                            if fetch_first in icset:
                                icset.move_to_end(fetch_first)
                            else:
                                ic_miss += 1
                                if len(icset) >= ic_ways:
                                    victim_line, _ = icset.popitem(last=False)
                                    if inclusive:
                                        victim_starts = line_map_get(victim_line)
                                        if victim_starts:
                                            for vstart in list(victim_starts):
                                                vrec = resident_get(vstart)
                                                if (vrec is not None
                                                        and vrec[6] <= victim_line
                                                        <= vrec[7]):
                                                    remove(now, vstart, vrec,
                                                           _INCLUSIVE)
                                                    inclusive_invalidations += 1
                                icset[fetch_first] = None
                    else:
                        evicted = []
                        for line in range(fetch_first, fetch_last + 1):
                            if line == ic_prev:
                                continue
                            ic_prev = line
                            icset = isets[line % ic_n_sets]
                            if line in icset:
                                icset.move_to_end(line)
                                continue
                            ic_miss += 1
                            if len(icset) >= ic_ways:
                                victim_line, _ = icset.popitem(last=False)
                                evicted.append(victim_line)
                            icset[line] = None
                        if inclusive and evicted:
                            for victim_line in evicted:
                                victim_starts = line_map_get(victim_line)
                                if victim_starts:
                                    for vstart in list(victim_starts):
                                        vrec = resident_get(vstart)
                                        if (vrec is not None
                                                and vrec[6] <= victim_line
                                                <= vrec[7]):
                                            remove(now, vstart, vrec, _INCLUSIVE)
                                            inclusive_invalidations += 1

                # Schedule the insertion (inlined accumulate + supersede).
                if has_hints:
                    cur = in_flight_get(start)
                    if cur is None:
                        accumulated += 1
                        if cont_l[now - base]:
                            request = (request[:3] + (hints_get(start),)
                                       + request[4:])
                        in_flight[start] = request
                        pending_append(now)
                        if next_due == NEVER:
                            next_due = now + delay
                    elif uops > cur[0]:
                        # A longer same-start window supersedes the pending
                        # one (the original due time is kept by the pending
                        # entry).
                        accumulated += 1
                        if cont_l[now - base]:
                            request = (request[:3] + (hints_get(start),)
                                       + request[4:])
                        in_flight[start] = request
                else:
                    # setdefault fuses the probe and the store; each reqs_l
                    # tuple is stored at most once, so identity with the
                    # just-read request means the slot was empty.
                    cur = in_flight_setdefault(start, request)
                    if cur is request:
                        accumulated += 1
                        pending_append(now)
                        if next_due == NEVER:
                            next_due = now + delay
                    elif uops > cur[0]:
                        # A longer same-start window supersedes the pending
                        # one (the original due time is kept by the pending
                        # entry).
                        accumulated += 1
                        in_flight[start] = request

        # --- fold the segment into stats ---
        pw_misses = len(miss_idx)
        if pw_misses:
            idx = _np.array(miss_idx, dtype=_np.int64) - base
            miss_uops = int(cols["arr_uops"][idx].sum())
            uops_missed += miss_uops
            dec_uops += miss_uops
            dec_episodes += pw_misses
            dec_insts += int(cols["arr_insts"][idx].sum())
            dec_cycles += int(cols["arr_cycles"][idx].sum())
            reads_corr -= int(cols["arr_esize"][idx].sum())
        n_seg = end - begin
        cum_uops = cols["cum_uops"]
        cum_insts = cols["cum_insts"]
        cum_esize = cols["cum_esize"]
        cum_branches = cols["cum_branches"]
        b0 = begin - base
        e0 = end - base
        seg_uops = int(cum_uops[e0] - cum_uops[b0])
        seg_branches = int(cum_branches[e0] - cum_branches[b0])
        stats.lookups += n_seg
        stats.uops_total += seg_uops
        stats.instructions += int(cum_insts[e0] - cum_insts[b0])
        stats.branches += seg_branches
        stats.btb_accesses += seg_branches
        if not perfect_bp:
            cum_mispred = cols["cum_mispred"]
            stats.mispredictions += int(cum_mispred[e0] - cum_mispred[b0])
        stats.pw_hits += n_seg - pw_partial_hits - pw_misses
        stats.pw_partial_hits += pw_partial_hits
        stats.pw_misses += pw_misses
        stats.uops_hit += seg_uops - uops_missed
        stats.uops_missed += uops_missed
        stats.uop_cache_reads += (
            int(cum_esize[e0] - cum_esize[b0]) + reads_corr
        )
        stats.decoder_uops += uops_missed
        stats.path_switches += path_switches
        stats.icache_accesses += icache_accesses
        stats.inclusive_invalidations += inclusive_invalidations
        stats.insertion_attempts += insertions + bypasses
        stats.insertions += insertions
        stats.bypasses += bypasses
        stats.uop_cache_writes += writes
        stats.evictions += evictions
        stats.evicted_entries += evicted_entries
        # Cache-object counters mirror the stats-level ones exactly for
        # the inline replacement path, so one pair of locals serves both.
        self.cache_evictions += evictions
        self.cache_evicted_entries += evicted_entries
        self.cache_upgrades += cache_upgrades
        self.dec_episodes += dec_episodes
        self.dec_insts += dec_insts
        self.dec_uops += dec_uops
        self.dec_cycles += dec_cycles
        self.ic_accesses += ic_acc
        self.ic_misses += ic_miss
        self.accumulated += accumulated
        self.on_uop_path = on_uop_path


# --- per-kind loop specialization ---------------------------------------------

#: Run-constant flags baked into specialized ``_segment`` variants.
_SPEC_NAMES = ("is_lru", "is_srrip", "is_ghrp", "track_lu", "keep_larger",
               "has_hints", "perfect_icache", "inclusive", "inline_shuffle")
#: Compiled variants keyed by flag tuple (None = compilation unavailable).
_spec_cache: dict[tuple, object] = {}
#: One-element cache for the extracted ``_segment`` source.
_spec_template: list[str] = []


def _compile_segment(flags: dict) -> object:
    """Compile ``_Kernel._segment`` with run-constant flags baked in.

    Delegates the source transformation and the marshal disk cache to
    :mod:`repro.frontend._specialize`; any failure falls back to the
    generic loop (``REPRO_SIM_SPECIALIZE=0`` forces that fallback).
    """
    return compile_flagged(
        _Kernel._segment, _SPEC_NAMES, flags, new_name="_segment_spec",
        namespace=globals(), prefix="segment", template=_spec_template,
    )


def _specialized_segment(flags: dict):
    """Cached specialized ``_segment`` for ``flags`` (None on failure)."""
    key = tuple(bool(flags[n]) for n in _SPEC_NAMES)
    if key not in _spec_cache:
        try:
            _spec_cache[key] = _compile_segment(flags)
        except Exception:  # pragma: no cover - source unavailable
            _spec_cache[key] = None
    return _spec_cache[key]


#: Cumulative evictions via :func:`clear_segment_cache`.
_spec_evictions = 0


def segment_cache_stats() -> dict[str, int]:
    """Resident and cumulatively evicted compiled online segments."""
    return {"entries": len(_spec_cache), "evicted": _spec_evictions}


def clear_segment_cache() -> int:
    """Drop the compiled specialized segments (cache maintenance)."""
    global _spec_evictions
    dropped = len(_spec_cache)
    _spec_evictions += dropped
    _spec_cache.clear()
    return dropped
