"""Accumulation buffer: forms PWs for insertion and attaches hints.

The legacy decode path deposits decoded micro-ops into the accumulation
buffer until the PW terminates, then hands the assembled window to the
micro-op cache for insertion (Section II-B).  In FURBYS deployments the
decoder extracts the 3-bit weight-group hint from the terminating
branch's reserved bits; the accumulator "retains the first group tag
within the PW" and forwards it with the window (Section V-B).

In this trace-driven reproduction the PW contents are already known, so
the accumulator's job reduces to hint attachment and insertion-request
construction — but it is kept as an explicit stage so the FURBYS
dataflow (decoder → accumulator → micro-op cache) matches Figure 7.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.pw import PWLookup


@dataclass(frozen=True, slots=True)
class InsertionRequest:
    """A fully accumulated PW ready for micro-op cache insertion."""

    lookup: PWLookup
    #: FURBYS weight group (None when the binary carries no hint for it).
    weight: int | None
    #: Simulator time at which the decode completes and insertion fires.
    due: int
    #: Micro-op cache set index of ``lookup.start``; negative when the
    #: scheduler did not precompute it (the cache then derives it).
    set_index: int = -1


class Accumulator:
    """Builds insertion requests from decoded PWs.

    ``hints`` maps PW start address to a weight group; only
    branch-terminated PWs can carry hints (the encoding lives in branch
    instructions' reserved bits), mirroring the paper's deployment
    constraint.
    """

    def __init__(self, hints: dict[int, int] | None = None) -> None:
        self._hints = hints or {}
        self.accumulated = 0

    def accumulate(self, lookup: PWLookup, now: int, delay: int) -> InsertionRequest:
        """Assemble the insertion request for a decoded PW."""
        self.accumulated += 1
        weight: int | None = None
        if lookup.contains_branch:
            weight = self._hints.get(lookup.start)
        return InsertionRequest(lookup=lookup, weight=weight, due=now + delay)

    def has_hints(self) -> bool:
        return bool(self._hints)
