"""Shared infrastructure for the specialized simulation kernels.

Both vectorized kernels (:mod:`repro.frontend.simd` for the online
policies, :mod:`repro.frontend.simd_offline` for the offline and
profile-guided families) lean on the same three mechanisms:

* :func:`gc_paused` — run a column-building pass with the cyclic
  collector paused (the builds materialize millions of tracked
  containers at once; generation scans over live survivors would turn
  an O(n) build into something closer to O(n^2 / threshold));
* :func:`spec_code` — compile transformed kernel source to a code
  object, marshal-cached on disk like a ``.pyc`` under the repo-level
  result cache knobs (``REPRO_CACHE=1`` + ``REPRO_CACHE_DIR``);
* :func:`compile_flagged` — derive a specialized variant of a generic
  segment method by baking run-constant boolean flags in as literals,
  so the bytecode compiler drops every dead cross-kind branch.

Keeping them here means the offline specializations reuse — rather
than copy — the machinery the online kernel established.
"""

from __future__ import annotations

import gc as _gc
import os


def gc_paused(fn):
    """Run ``fn`` with the cyclic collector paused, restoring it after.

    Building the columns materializes millions of tracked containers at
    once; with the collector live, each generation pass re-scans every
    survivor while the build keeps allocating, which turns an O(n) build
    into something closer to O(n^2 / threshold) at 1M-lookup scale.  The
    column data is acyclic, so pausing costs nothing in reclaimed memory.
    """
    enabled = _gc.isenabled()
    if enabled:
        _gc.disable()
    try:
        return fn()
    finally:
        if enabled:
            _gc.enable()


def spec_code(src: str, prefix: str = "segment"):
    """Code object for a transformed source, disk-cached like a .pyc.

    Compiling a specialized variant costs ~25ms; a cold process pays it
    once per flag combination.  When the repo-level result cache is on
    (``REPRO_CACHE=1`` + ``REPRO_CACHE_DIR``, the same knobs the trace
    store uses) the bytecode is marshalled to disk keyed by the hash of
    the transformed source — exactly the ``__pycache__`` contract, so
    any source or flag change invalidates naturally.  ``prefix`` keeps
    the online and offline kernels' entries side by side.
    """
    import hashlib
    import marshal
    from importlib.util import MAGIC_NUMBER

    cache_path = None
    cache_root = (os.environ.get("REPRO_CACHE_DIR")
                  if os.environ.get("REPRO_CACHE") == "1" else None)
    if cache_root:
        digest = hashlib.sha256(src.encode()).hexdigest()[:16]
        cache_path = os.path.join(
            cache_root, "simd_spec", f"{prefix}-{digest}.marshal")
        try:
            with open(cache_path, "rb") as fh:
                if fh.read(len(MAGIC_NUMBER)) == MAGIC_NUMBER:
                    return marshal.loads(fh.read())
        except (OSError, ValueError, EOFError):
            pass
    code = compile(src, f"<simd-specialized-{prefix}>", "exec")
    if cache_path:
        try:
            os.makedirs(os.path.dirname(cache_path), exist_ok=True)
            tmp = f"{cache_path}.tmp{os.getpid()}"
            with open(tmp, "wb") as fh:
                fh.write(MAGIC_NUMBER)
                fh.write(marshal.dumps(code))
            os.replace(tmp, cache_path)
        except OSError:  # pragma: no cover - cache dir not writable
            pass
    return code


def flagged_source(method, spec_names, flags: dict, *, new_name: str,
                   template: list[str]) -> str:
    """The source of ``method`` with the ``spec_names`` flags baked in.

    This is the text half of :func:`compile_flagged`; the arm-fused
    kernel (:mod:`repro.frontend.simd_fused`) also consumes it directly,
    stitching several specialized segment bodies into one shared loop.
    ``template`` is the caller's one-element source cache (the
    ``inspect.getsource`` extraction is paid once per process).
    """
    import inspect
    import re
    import textwrap

    if not template:
        template.append(textwrap.dedent(inspect.getsource(method)))
    src = template[0]
    # Drop the flag assignments first (they would otherwise turn into
    # assignments *to* a literal), then substitute the bare names.
    for name in spec_names:
        src = re.sub(rf"^[ \t]*{name} = .*\n", "", src, count=1,
                     flags=re.MULTILINE)
    for name in spec_names:
        src = re.sub(rf"\b{name}\b", repr(bool(flags[name])), src)
    return src.replace(f"def {method.__name__}(", f"def {new_name}(", 1)


def compile_flagged(method, spec_names, flags: dict, *, new_name: str,
                    namespace: dict, prefix: str, template: list[str]):
    """Compile ``method`` with the ``spec_names`` flags baked in.

    The generic loop assigns each flag once and branches on it per
    lookup/event.  Rewriting the flag names to literals lets the
    bytecode compiler drop every dead branch outright (``if False``
    blocks compile to nothing, ``True and x`` reduces to ``x``), so
    each policy kind runs a loop with no cross-kind tests left in it.
    The generic method stays the single source of truth: variants are
    derived from its source at first use and behave identically.
    """
    src = flagged_source(method, spec_names, flags, new_name=new_name,
                         template=template)
    ns = dict(namespace)
    exec(spec_code(src, prefix), ns)
    return ns[new_name]
