"""L1 instruction cache model.

A plain set-associative LRU cache of 64-byte lines.  Its only jobs here
are (a) activity accounting for the power model (the legacy decode path
reads the icache; the micro-op cache path clock-gates it) and (b)
driving *inclusive* invalidations of the micro-op cache: per the paper's
Section II-A, "every icache eviction will trigger the eviction of
corresponding items in the micro-op cache".
"""

from __future__ import annotations

from collections import OrderedDict

from ..config import ICacheConfig


class InstructionCache:
    """Set-associative LRU icache tracking line residency."""

    def __init__(self, config: ICacheConfig) -> None:
        self.config = config
        self._sets: list[OrderedDict[int, None]] = [
            OrderedDict() for _ in range(config.sets)
        ]
        self.accesses = 0
        self.misses = 0

    def _set_for(self, line: int) -> OrderedDict[int, None]:
        return self._sets[line % self.config.sets]

    def access_line(self, line_addr: int) -> int | None:
        """Access one line (by byte address of line start).

        Returns the byte address of an evicted line when the fill
        displaced one, else None.  Hits refresh LRU position.
        """
        line = line_addr // self.config.line_bytes
        cset = self._set_for(line)
        self.accesses += 1
        if line in cset:
            cset.move_to_end(line)
            return None
        self.misses += 1
        evicted: int | None = None
        if len(cset) >= self.config.ways:
            victim_line, _ = cset.popitem(last=False)
            evicted = victim_line * self.config.line_bytes
        cset[line] = None
        return evicted

    def access_range(self, start: int, end: int) -> list[int]:
        """Access every line covering ``[start, end)``.

        Returns the evicted line addresses (possibly empty).  Inlines
        the per-line :meth:`access_line` body — this sits on the legacy
        fetch path of every simulated micro-op cache miss.
        """
        config = self.config
        line_bytes = config.line_bytes
        first = start // line_bytes
        last = (end - 1) // line_bytes
        if last < first:
            last = first
        sets = self._sets
        n_sets = config.sets
        ways = config.ways
        misses = 0
        evicted: list[int] = []
        for line in range(first, last + 1):
            cset = sets[line % n_sets]
            if line in cset:
                cset.move_to_end(line)
                continue
            misses += 1
            if len(cset) >= ways:
                victim_line, _ = cset.popitem(last=False)
                evicted.append(victim_line * line_bytes)
            cset[line] = None
        self.accesses += last - first + 1
        self.misses += misses
        return evicted

    def contains(self, line_addr: int) -> bool:
        line = line_addr // self.config.line_bytes
        return line in self._set_for(line)

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses
