"""Legacy decode pipeline model.

The x86 legacy path fetches variable-length instructions from the
icache and cracks them into micro-ops through a deep (5-cycle), 4-wide
decoder (Table I).  For this reproduction the decoder's roles are:

* activity accounting — decoded micro-ops and active cycles drive the
  decoder's share of core power (the decoder is clock-gated while the
  micro-op cache serves the frontend, which is where the energy win
  comes from, Section II-A);
* latency accounting — the pipeline-depth delay between a micro-op
  cache miss and the availability (and insertion) of the decoded PW,
  which creates the asynchronous lookup/insertion window.
"""

from __future__ import annotations

import math

from ..config import CoreConfig


class LegacyDecoder:
    """Counts decode work; computes decode episode latencies."""

    def __init__(self, config: CoreConfig) -> None:
        self.config = config
        self.uops_decoded = 0
        self.insts_decoded = 0
        self.episodes = 0
        self.active_cycles = 0

    def decode(self, insts: int, uops: int) -> int:
        """Decode one PW's worth of instructions.

        Returns the number of cycles the episode occupies the decoder
        (throughput-limited by the decode width); the pipeline-fill
        latency is accounted separately by the caller when the episode
        follows a path switch.
        """
        self.episodes += 1
        self.insts_decoded += insts
        self.uops_decoded += uops
        cycles = max(1, math.ceil(insts / self.config.decode_width))
        self.active_cycles += cycles
        return cycles

    @property
    def fill_latency(self) -> int:
        """Cycles before the first micro-op of a fresh episode emerges."""
        return self.config.decode_latency_cycles
