"""``repro-trace`` / ``repro trace`` — generate, inspect and convert PW traces.

Subcommands::

    repro-trace generate kafka out.trace --lookups 40000 --input alt-seed
    repro-trace stats out.trace
    repro-trace head out.trace --count 20
    repro-trace apps
    repro trace inspect out.trace          # metadata + totals, any format
    repro trace convert out.trace out.bin  # v1 text <-> v2 binary
    repro trace gen kafka out.bin --format v2

Traces come in two formats (see :mod:`repro.core.trace`): the
line-oriented v1 text format, which diffs and compresses well, and the
struct-packed v2 binary format the disk trace cache uses (~10x smaller,
loads without parsing).  Reading commands sniff the format from the
file's magic; ``convert`` translates between them losslessly.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from pathlib import Path

from ..core.trace import BINARY_MAGIC, Trace
from ..workloads.apps import app_names, get_profile
from ..workloads.generator import reuse_distance_tail
from ..workloads.registry import available_inputs, get_trace


def _trace_format(path: str) -> str:
    """``"v2"`` when the file carries the binary magic, else ``"v1"``."""
    with open(path, "rb") as stream:
        return "v2" if stream.read(len(BINARY_MAGIC)) == BINARY_MAGIC else "v1"


def _cmd_apps(_: argparse.Namespace) -> int:
    for app in app_names():
        profile = get_profile(app)
        inputs = ",".join(available_inputs(app))
        print(f"{app:12s} mpki={profile.branch_mpki:<5} "
              f"functions={profile.functions:<5} inputs={inputs}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = get_trace(args.app, args.input, args.lookups)
    trace.save(args.output)
    print(f"wrote {len(trace)} lookups ({trace.total_uops} uops) "
          f"to {args.output}")
    return 0


def _cmd_head(args: argparse.Namespace) -> int:
    trace = Trace.load_any(args.trace)
    print("start        uops insts bytes branch mispred")
    for lookup in trace.lookups[: args.count]:
        print(f"{lookup.start:#010x}  {lookup.uops:4d} {lookup.insts:5d} "
              f"{lookup.bytes_len:5d} {int(lookup.terminated_by_branch):6d} "
              f"{int(lookup.mispredicted):7d}")
    return 0


def _histogram(counter: Counter, *, width: int = 40) -> list[str]:
    total = sum(counter.values())
    lines = []
    for key in sorted(counter):
        share = counter[key] / total
        bar = "#" * max(1, round(share * width))
        lines.append(f"  {key:>4}: {bar} {share * 100:.1f}%")
    return lines


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = Trace.load_any(args.trace)
    meta = trace.metadata
    insts = trace.total_instructions
    print(f"app={meta.app} input={meta.input_name} seed={meta.seed}")
    print(f"lookups            : {len(trace)}")
    print(f"micro-ops          : {trace.total_uops} "
          f"({trace.total_uops / max(1, len(trace)):.2f}/PW)")
    print(f"instructions       : {insts}")
    print(f"distinct PW starts : {len(trace.unique_starts())}")
    print(f"branch PWs         : {trace.total_branches} "
          f"({trace.total_branches / max(1, len(trace)) * 100:.1f}%)")
    print(f"mispredict MPKI    : "
          f"{1000 * trace.total_mispredictions / max(1, insts):.2f}")
    sizes = Counter(min(4, (pw.uops + 7) // 8) for pw in trace)
    print("PW size distribution (entries, 4 = 4+):")
    print("\n".join(_histogram(sizes)))
    if args.reuse:
        sample = trace.slice(0, min(len(trace), 8000))
        tail = reuse_distance_tail(sample, threshold=30)
        print(f"reuse distance > 30 (first {len(sample)} lookups): "
              f"{tail * 100:.1f}% of reuses")
    return 0


def _cmd_inspect(args: argparse.Namespace) -> int:
    if args.cache_stats:
        from ..workloads.registry import TRACE_CACHE_CAP, trace_cache_stats

        stats = trace_cache_stats()
        print(f"registry LRU cap   : {TRACE_CACHE_CAP}"
              f"{' (unbounded)' if TRACE_CACHE_CAP <= 0 else ''}")
        print(f"memory-resident    : {stats['cached']}")
        print(f"memory hits        : {stats['memory_hits']}")
        print(f"disk hits          : {stats['disk_hits']}")
        print(f"generated (misses) : {stats['generated']}")
        print(f"LRU evictions      : {stats['evictions']}")
        from ..harness.resilience import global_counters

        sim_fallbacks = {
            name: count
            for name, count in sorted(global_counters().items())
            if name.startswith("sim_fallback:")
        }
        print(f"sim kernel fallbacks: {sum(sim_fallbacks.values())}")
        for name, count in sim_fallbacks.items():
            print(f"  {name.removeprefix('sim_fallback:'):24s}: {count}")
        from ..core.trace import memo_census
        from ..frontend import simd, simd_fused, simd_offline

        census = memo_census()
        online = simd.segment_cache_stats()
        offline = simd_offline.segment_cache_stats()
        fused = simd_fused.fused_cache_stats()
        print(f"simd column memos  : {census['entries']} "
              f"(in {census['traces']} traces, "
              f"{census['evicted']} evicted)")
        print(f"compiled segments  : online {online['entries']} "
              f"({online['evicted']} evicted), "
              f"offline {offline['entries']} "
              f"({offline['evicted']} evicted)")
        print(f"fused drivers      : {fused['fused_fns']} "
              f"({fused['fused_fns_evicted']} evicted), "
              f"sections {fused['fused_sections']} "
              f"({fused['fused_sections_evicted']} evicted)")
        if args.trace is None:
            return 0
    if args.trace is None:
        print("repro-trace inspect: a trace file is required "
              "(or pass --cache-stats)", file=sys.stderr)
        return 2
    fmt = _trace_format(args.trace)
    trace = Trace.load_any(args.trace)
    meta = trace.metadata
    insts = trace.total_instructions
    size = Path(args.trace).stat().st_size
    print(f"format             : {'v2 binary' if fmt == 'v2' else 'v1 text'} "
          f"({size} bytes)")
    print(f"app={meta.app} input={meta.input_name} seed={meta.seed}")
    if meta.description:
        print(f"description        : {meta.description}")
    print(f"lookups            : {len(trace)}")
    print(f"micro-ops          : {trace.total_uops}")
    print(f"instructions       : {insts}")
    print(f"branch PWs         : {trace.total_branches}")
    print(f"mispredict MPKI    : "
          f"{1000 * trace.total_mispredictions / max(1, insts):.2f}")
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    source = _trace_format(args.trace)
    target = args.to or ("v1" if source == "v2" else "v2")
    trace = Trace.load_any(args.trace)
    if target == "v2":
        trace.save_binary(args.output)
    else:
        trace.save(args.output)
    print(f"converted {len(trace)} lookups: {args.trace} ({source}) -> "
          f"{args.output} ({target})")
    return 0


def _cmd_gen(args: argparse.Namespace) -> int:
    trace = get_trace(args.app, args.input, args.lookups)
    if args.format == "v2":
        trace.save_binary(args.output)
    else:
        trace.save(args.output)
    print(f"wrote {len(trace)} lookups ({trace.total_uops} uops) "
          f"to {args.output} ({args.format})")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate and inspect micro-op cache PW traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("apps", help="list available applications")

    generate = commands.add_parser("generate", help="write a trace file")
    generate.add_argument("app")
    generate.add_argument("output")
    generate.add_argument("--input", default="default")
    generate.add_argument("--lookups", type=int, default=None)

    head = commands.add_parser("head", help="print the first lookups")
    head.add_argument("trace")
    head.add_argument("--count", type=int, default=20)

    stats = commands.add_parser("stats", help="summarize a trace file")
    stats.add_argument("trace")
    stats.add_argument("--reuse", action="store_true",
                       help="also compute the reuse-distance tail (slow)")

    inspect = commands.add_parser(
        "inspect", help="metadata + totals of a trace file (any format)"
    )
    inspect.add_argument("trace", nargs="?", default=None)
    inspect.add_argument(
        "--cache-stats", action="store_true",
        help="print registry LRU counters (hits/misses/evictions)",
    )

    convert = commands.add_parser(
        "convert", help="translate a trace between v1 text and v2 binary"
    )
    convert.add_argument("trace")
    convert.add_argument("output")
    convert.add_argument("--to", choices=("v1", "v2"), default=None,
                         help="target format (default: the other one)")

    gen = commands.add_parser(
        "gen", help="export a workload trace to disk"
    )
    gen.add_argument("app")
    gen.add_argument("output")
    gen.add_argument("--input", default="default")
    gen.add_argument("--lookups", type=int, default=None)
    gen.add_argument("--format", choices=("v1", "v2"), default="v2")

    args = parser.parse_args(argv)
    handlers = {
        "apps": _cmd_apps,
        "generate": _cmd_generate,
        "head": _cmd_head,
        "stats": _cmd_stats,
        "inspect": _cmd_inspect,
        "convert": _cmd_convert,
        "gen": _cmd_gen,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
