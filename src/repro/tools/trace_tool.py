"""``repro-trace`` — generate, inspect and summarize PW traces.

Subcommands::

    repro-trace generate kafka out.trace --lookups 40000 --input alt-seed
    repro-trace stats out.trace
    repro-trace head out.trace --count 20
    repro-trace apps

Traces use the line-oriented v1 text format of
:mod:`repro.core.trace`, so they diff and compress well and can be fed
back through :meth:`repro.core.trace.Trace.load` for custom studies.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter

from ..core.trace import Trace
from ..workloads.apps import app_names, get_profile
from ..workloads.generator import reuse_distance_tail
from ..workloads.registry import available_inputs, get_trace


def _cmd_apps(_: argparse.Namespace) -> int:
    for app in app_names():
        profile = get_profile(app)
        inputs = ",".join(available_inputs(app))
        print(f"{app:12s} mpki={profile.branch_mpki:<5} "
              f"functions={profile.functions:<5} inputs={inputs}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    trace = get_trace(args.app, args.input, args.lookups)
    trace.save(args.output)
    print(f"wrote {len(trace)} lookups ({trace.total_uops} uops) "
          f"to {args.output}")
    return 0


def _cmd_head(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    print("start        uops insts bytes branch mispred")
    for lookup in trace.lookups[: args.count]:
        print(f"{lookup.start:#010x}  {lookup.uops:4d} {lookup.insts:5d} "
              f"{lookup.bytes_len:5d} {int(lookup.terminated_by_branch):6d} "
              f"{int(lookup.mispredicted):7d}")
    return 0


def _histogram(counter: Counter, *, width: int = 40) -> list[str]:
    total = sum(counter.values())
    lines = []
    for key in sorted(counter):
        share = counter[key] / total
        bar = "#" * max(1, round(share * width))
        lines.append(f"  {key:>4}: {bar} {share * 100:.1f}%")
    return lines


def _cmd_stats(args: argparse.Namespace) -> int:
    trace = Trace.load(args.trace)
    meta = trace.metadata
    insts = trace.total_instructions
    print(f"app={meta.app} input={meta.input_name} seed={meta.seed}")
    print(f"lookups            : {len(trace)}")
    print(f"micro-ops          : {trace.total_uops} "
          f"({trace.total_uops / max(1, len(trace)):.2f}/PW)")
    print(f"instructions       : {insts}")
    print(f"distinct PW starts : {len(trace.unique_starts())}")
    print(f"branch PWs         : {trace.total_branches} "
          f"({trace.total_branches / max(1, len(trace)) * 100:.1f}%)")
    print(f"mispredict MPKI    : "
          f"{1000 * trace.total_mispredictions / max(1, insts):.2f}")
    sizes = Counter(min(4, (pw.uops + 7) // 8) for pw in trace)
    print("PW size distribution (entries, 4 = 4+):")
    print("\n".join(_histogram(sizes)))
    if args.reuse:
        sample = trace.slice(0, min(len(trace), 8000))
        tail = reuse_distance_tail(sample, threshold=30)
        print(f"reuse distance > 30 (first {len(sample)} lookups): "
              f"{tail * 100:.1f}% of reuses")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Generate and inspect micro-op cache PW traces.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("apps", help="list available applications")

    generate = commands.add_parser("generate", help="write a trace file")
    generate.add_argument("app")
    generate.add_argument("output")
    generate.add_argument("--input", default="default")
    generate.add_argument("--lookups", type=int, default=None)

    head = commands.add_parser("head", help="print the first lookups")
    head.add_argument("trace")
    head.add_argument("--count", type=int, default=20)

    stats = commands.add_parser("stats", help="summarize a trace file")
    stats.add_argument("trace")
    stats.add_argument("--reuse", action="store_true",
                       help="also compute the reuse-distance tail (slow)")

    args = parser.parse_args(argv)
    handlers = {
        "apps": _cmd_apps,
        "generate": _cmd_generate,
        "head": _cmd_head,
        "stats": _cmd_stats,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
