"""``repro experiments`` / ``repro query`` — the durable experiment ledger CLI.

Subcommands::

    repro experiments run fig8 --name nightly        # record while running
    repro experiments run bench --apps kafka         # fast figure-shaped grid
    repro experiments resume 3                       # replay only missing rows
    repro experiments resume nightly --force         # take over a stale run
    repro experiments list                           # lifecycle overview
    repro query experiments --format csv             # same rows, any format
    repro query results 3 --metric uop_miss_rate     # per-request metrics
    repro query delta 3 7                            # A/B across git hashes

``run`` executes an experiment (any ``repro list`` id, or ``bench``)
inside an :class:`~repro.harness.ledger.ExperimentRun`, journaling every
completed chunk into the SQLite store as it lands; ``resume`` replays a
killed or failed run, serving journaled rows with zero re-executions.
``query`` renders the store as table/csv/json — ``delta`` joins two
experiments by cache key, so recording the same figure at two git
hashes gives a per-request regression report.  ``resume`` prints pure
JSON on stdout (scripts parse it); refusals exit with status 2.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from ..errors import ReproError
from ..harness.ledger import Ledger, resume_experiment

#: Metric aliases accepted by ``--metric`` (anything else is looked up
#: as a SimulationStats attribute, so raw counters work too).
DEFAULT_METRIC = "uop_miss_rate"


def _metric_value(stats_payload: dict | None, metric: str) -> float | None:
    """Evaluate ``metric`` against a journaled stats dict.

    The stored payload is the raw ``dataclasses.asdict`` of a
    :class:`~repro.core.stats.SimulationStats` — counters only, no
    derived properties — so rebuild the object and ``getattr`` it:
    that resolves ``uop_miss_rate`` and friends as well as any field.
    """
    if stats_payload is None:
        return None
    from ..harness.runner import RunResult

    stats = RunResult.stats_from_json({"stats": stats_payload})
    value = getattr(stats, metric, None)
    if value is None or not isinstance(value, (int, float)):
        raise ReproError(
            f"unknown metric {metric!r}; use a SimulationStats field or "
            "property (e.g. uop_miss_rate, pw_miss_rate, uops_missed)"
        )
    return float(value)


def _open_ledger(args: argparse.Namespace) -> Ledger:
    ledger = Ledger.open(getattr(args, "ledger", None))
    if ledger is None:
        raise ReproError(
            "experiment ledger is disabled (REPRO_LEDGER=0)"
        )
    return ledger


def _find(ledger: Ledger, token: str):
    row = ledger.find(token)
    if row is None:
        raise ReproError(f"no experiment matches {token!r}")
    return row


def _emit(headers, rows, fmt: str, *, title: str | None = None) -> None:
    from ..harness.reporting import render_rows

    print(render_rows(headers, rows, fmt, title=title))


def _fmt(value: float | None, digits: int = 6) -> str:
    return "" if value is None else f"{value:.{digits}g}"


# -- experiments -----------------------------------------------------------


def _cmd_run(args: argparse.Namespace) -> int:
    from ..harness.experiments import run_recorded

    summary = run_recorded(
        args.figure,
        ledger=args.ledger,
        name=args.name,
        note=args.note,
        apps=tuple(args.apps.split(",")) if args.apps else None,
        policies=tuple(args.policies.split(",")) if args.policies else None,
        trace_len=args.trace_len,
    )
    summary.pop("result", None)  # tables render via `repro <figure>`
    print(json.dumps(summary, indent=2))
    return 0 if summary["state"] in ("COMPLETE", "unrecorded (REPRO_LEDGER=0)") else 1


def _cmd_resume(args: argparse.Namespace) -> int:
    summary = resume_experiment(
        args.experiment,
        path=args.ledger,
        jobs=args.jobs,
        on_error=args.on_error,
        timeout_s=args.timeout,
        force=args.force,
    )
    print(json.dumps(summary, indent=2))
    return 0 if summary["state"] in (None, "COMPLETE") else 1


def _experiment_rows(ledger: Ledger) -> tuple[tuple, list[tuple]]:
    headers = ("id", "name", "state", "done", "requests", "git", "elapsed_s",
               "note")
    rows = []
    for row in ledger.list_experiments():
        state = row["state"]
        if state == "RUNNING" and ledger.is_stale(row):
            state = "RUNNING (stale)"
        rows.append((
            row["id"], row["name"], state, row["done"], row["requests"],
            (row["git_hash"] or "")[:12],
            "" if row["elapsed_s"] is None else f"{row['elapsed_s']:.1f}",
            row["note"],
        ))
    return headers, rows


def _cmd_list(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    try:
        headers, rows = _experiment_rows(ledger)
    finally:
        ledger.close()
    _emit(headers, rows, args.format, title="== experiments ==")
    return 0


# -- query -----------------------------------------------------------------


def _cmd_query_results(args: argparse.Namespace) -> int:
    ledger = _open_ledger(args)
    try:
        row = _find(ledger, args.experiment)
        results = ledger.results_rows(int(row["id"]))
    finally:
        ledger.close()
    headers = ("idx", "app", "policy", "input", "trace_len", "status",
               "attempts", args.metric)
    rows = [
        (entry["idx"], entry["app"], entry["policy"], entry["input"],
         entry["trace_len"], entry["status"], entry["attempts"],
         _fmt(_metric_value(entry["stats"], args.metric)))
        for entry in results
    ]
    _emit(headers, rows, args.format,
          title=f"== experiment {row['id']} ({row['name']}) ==")
    return 0


def _cmd_query_delta(args: argparse.Namespace) -> int:
    """Join two experiments by cache key, diff the metric per request."""
    ledger = _open_ledger(args)
    try:
        row_a = _find(ledger, args.a)
        row_b = _find(ledger, args.b)
        results_a = ledger.results_rows(int(row_a["id"]))
        results_b = ledger.results_rows(int(row_b["id"]))
    finally:
        ledger.close()
    by_key = {entry["cache_key"]: entry for entry in results_b}
    headers = ("app", "policy", "input", "trace_len",
               f"{args.metric}@{row_a['id']}", f"{args.metric}@{row_b['id']}",
               "delta")
    rows = []
    unmatched = 0
    for entry in results_a:
        other = by_key.pop(entry["cache_key"], None)
        if other is None:
            unmatched += 1
            continue
        value_a = _metric_value(entry["stats"], args.metric)
        value_b = _metric_value(other["stats"], args.metric)
        delta = (
            None if value_a is None or value_b is None else value_b - value_a
        )
        rows.append((
            entry["app"], entry["policy"], entry["input"], entry["trace_len"],
            _fmt(value_a), _fmt(value_b),
            "" if delta is None else f"{delta:+.6g}",
        ))
    unmatched += len(by_key)
    title = (
        f"== {row_a['id']} ({(row_a['git_hash'] or '')[:12]}) vs "
        f"{row_b['id']} ({(row_b['git_hash'] or '')[:12]}) =="
    )
    _emit(headers, rows, args.format, title=title)
    if unmatched and args.format == "table":
        print(f"({unmatched} request(s) present in only one experiment)")
    return 0


# -- entry point -----------------------------------------------------------


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ledger",
        help="ledger database path (default REPRO_LEDGER or "
             ".repro-cache/ledger.sqlite)",
    )


def _add_format(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--format", choices=("table", "csv", "json"), default="table",
        help="output rendering (default: table)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Durable experiment ledger: record, resume and query "
                    "experiment runs.",
    )
    top = parser.add_subparsers(dest="group", required=True)

    experiments = top.add_parser(
        "experiments", help="record, resume and list ledger experiments"
    )
    commands = experiments.add_subparsers(dest="command", required=True)

    run = commands.add_parser(
        "run", help="run an experiment under ledger recording"
    )
    run.add_argument(
        "figure",
        help="experiment id (see 'repro list'), or 'bench' for a fast "
             "representative app x policy grid",
    )
    run.add_argument("--name", help="experiment name (default: the figure id)")
    run.add_argument("--note", default="", help="free-form note to store")
    run.add_argument("--apps", help="comma-separated app subset")
    run.add_argument("--policies",
                     help="bench only: comma-separated policy subset")
    run.add_argument("--trace-len", type=int,
                     help="PW lookups per trace (sets REPRO_TRACE_LEN)")
    run.add_argument("--jobs", type=int, help="worker processes")
    run.add_argument("--on-error", choices=("raise", "skip", "retry"))
    run.add_argument("--timeout", type=float,
                     help="per-chunk timeout in seconds")
    _add_common(run)

    resume = commands.add_parser(
        "resume", help="replay the missing rows of a recorded experiment"
    )
    resume.add_argument(
        "experiment", help="experiment id, or latest run with this name"
    )
    resume.add_argument("--jobs", type=int)
    resume.add_argument("--on-error", choices=("raise", "skip", "retry"))
    resume.add_argument("--timeout", type=float)
    resume.add_argument(
        "--force", action="store_true",
        help="take over even a RUNNING experiment with a fresh heartbeat",
    )
    _add_common(resume)

    listing = commands.add_parser("list", help="list recorded experiments")
    _add_common(listing)
    _add_format(listing)

    query = top.add_parser(
        "query", help="render the ledger as table/csv/json"
    )
    query_commands = query.add_subparsers(dest="command", required=True)

    q_experiments = query_commands.add_parser(
        "experiments", help="one row per recorded experiment"
    )
    _add_common(q_experiments)
    _add_format(q_experiments)

    q_results = query_commands.add_parser(
        "results", help="per-request rows of one experiment"
    )
    q_results.add_argument("experiment")
    q_results.add_argument("--metric", default=DEFAULT_METRIC,
                           help=f"stats field/property (default "
                                f"{DEFAULT_METRIC})")
    _add_common(q_results)
    _add_format(q_results)

    q_delta = query_commands.add_parser(
        "delta", help="per-request metric deltas between two experiments"
    )
    q_delta.add_argument("a", help="baseline experiment id or name")
    q_delta.add_argument("b", help="comparison experiment id or name")
    q_delta.add_argument("--metric", default=DEFAULT_METRIC)
    _add_common(q_delta)
    _add_format(q_delta)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    if getattr(args, "apps", None):
        os.environ["REPRO_APPS"] = args.apps
    if getattr(args, "trace_len", None):
        os.environ["REPRO_TRACE_LEN"] = str(args.trace_len)
    if getattr(args, "jobs", None):
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if getattr(args, "on_error", None):
        os.environ["REPRO_ON_ERROR"] = args.on_error
    if getattr(args, "timeout", None):
        os.environ["REPRO_TIMEOUT_S"] = str(args.timeout)

    handlers = {
        ("experiments", "run"): _cmd_run,
        ("experiments", "resume"): _cmd_resume,
        ("experiments", "list"): _cmd_list,
        ("query", "experiments"): _cmd_list,
        ("query", "results"): _cmd_query_results,
        ("query", "delta"): _cmd_query_delta,
    }
    try:
        return handlers[(args.group, args.command)](args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed the pipe early.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    except (ReproError, KeyError) as exc:
        message = exc.args[0] if exc.args else exc
        print(f"repro {args.group}: {message}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
