"""Developer tooling: trace generation and inspection CLIs."""

from .trace_tool import main as trace_tool_main

__all__ = ["trace_tool_main"]
