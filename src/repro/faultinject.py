"""Deterministic, env-gated fault injection for the execution stack.

The resilience layer (:mod:`repro.harness.resilience`,
``harness/parallel.py``) claims to survive worker crashes, hangs,
corrupt cache artifacts and shared-memory failures.  This module makes
those conditions *reproducible on demand* so the chaos suite
(``tests/test_resilience.py``) and ``repro bench --chaos`` can prove
the claim: with no ``REPRO_FAULT_SPEC`` in the environment every hook
is a no-op costing one attribute check.

Spec grammar (``REPRO_FAULT_SPEC``, ``;``-separated faults)::

    task:<n>:crash            worker task #n calls os._exit(1) mid-chunk
    task:<n>:hang[=<secs>]    worker task #n sleeps (default 300s) so the
                              per-chunk timeout fires
    task:<n>:raise            worker task #n raises FaultInjectionError
    artifact:<kind>:corrupt   garble the next <kind>-artifact file read
                              (kind: stats|hitstats|profile|trace|ledger)
    shm:attach:fail           the next worker shared-memory attach fails
    fused:group:raise         the next arm-fused group sweep raises before
                              simulating, so the batch reroutes the group
                              to the per-arm path
    exp:<n>:kill              SIGKILL the experiment process the moment
                              its ledger journal commits result #n — the
                              durable analog of task:crash (the process
                              dies with journaled chunks on disk)
    ledger:rows:corrupt       garble one journaled result row in the
                              experiment ledger before the next resume
                              verifies it (simulating a torn DB write)

Task numbers count the batch's cold (post-dedup, post-cache-probe)
requests in submission order, so a spec names the same simulation every
run.  Each fault fires **exactly once per state directory**: firing
atomically claims a marker file under ``REPRO_FAULT_STATE`` (created
with ``open(..., "x")``), which is what keeps retries convergent — a
crashed task, resubmitted after the pool rebuild, finds its fault
already claimed and completes normally.  Point ``REPRO_FAULT_STATE`` at
a fresh directory per chaos run; when unset, a spec-keyed directory
under the system temp dir is used (stale claims from a previous run
with the same spec then suppress refiring — fine for tests, which pass
an explicit directory).  :func:`reset` removes the claim files of every
plan this process has seen, so chaos runs do not leak ``*.fired``
markers into the temp dir.

Faults only arm inside pool workers, the artifact/shm/fused-sweep
paths, and the experiment-ledger journal/resume hooks; the plain
per-arm serial execution path never injects, so a fault-free serial
run is always available as the bit-identity reference.
"""

from __future__ import annotations

import hashlib
import os
import signal
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from .errors import FaultInjectionError

__all__ = [
    "FaultPlan",
    "active_plan",
    "maybe_corrupt_artifact",
    "maybe_corrupt_ledger_rows",
    "maybe_fail_fused_group",
    "maybe_fail_shm_attach",
    "maybe_kill_experiment",
    "on_worker_task",
    "reset",
    "reset_plan_cache",
]

#: Bytes written over a corrupted artifact: long enough to survive the
#: magic-sniffing in Trace.load_any, invalid in every format.
_GARBAGE = b"\x00repro-fault-injected-corruption\xff" * 4

ARTIFACT_KINDS = ("stats", "hitstats", "profile", "trace", "ledger")


@dataclass(frozen=True, slots=True)
class _Fault:
    """One parsed fault: where it hooks, what it does, once-claim id."""

    kind: str  # "task" | "artifact" | "shm"
    target: str  # task index / artifact kind / "attach"
    action: str  # "crash" | "hang" | "raise" | "corrupt" | "fail"
    arg: float | None = None

    @property
    def claim_id(self) -> str:
        return f"{self.kind}-{self.target}-{self.action}"


def _parse_fault(text: str) -> _Fault:
    parts = text.strip().split(":")
    if len(parts) != 3:
        raise FaultInjectionError(
            f"bad fault {text!r}: expected kind:target:action"
        )
    kind, target, action = (part.strip() for part in parts)
    arg: float | None = None
    if "=" in action:
        action, _, raw = action.partition("=")
        try:
            arg = float(raw)
        except ValueError as exc:
            raise FaultInjectionError(
                f"bad fault argument in {text!r}: {raw!r}"
            ) from exc
    valid = {
        "task": ("crash", "hang", "raise"),
        "artifact": ("corrupt",),
        "shm": ("fail",),
        "fused": ("raise",),
        "exp": ("kill",),
        "ledger": ("corrupt",),
    }
    if kind not in valid:
        raise FaultInjectionError(f"unknown fault kind {kind!r} in {text!r}")
    if action not in valid[kind]:
        raise FaultInjectionError(
            f"fault kind {kind!r} does not support action {action!r}"
        )
    if kind in ("task", "exp"):
        try:
            int(target)
        except ValueError as exc:
            raise FaultInjectionError(
                f"{kind} fault needs an integer index, got {target!r}"
            ) from exc
    if kind == "artifact" and target not in ARTIFACT_KINDS:
        raise FaultInjectionError(
            f"unknown artifact kind {target!r}; choose from {ARTIFACT_KINDS}"
        )
    return _Fault(kind=kind, target=target, action=action, arg=arg)


class FaultPlan:
    """The parsed spec plus the cross-process once-per-fault state."""

    def __init__(self, spec: str, state_dir: Path):
        self.spec = spec
        self.state_dir = state_dir
        self.faults = tuple(
            _parse_fault(part) for part in spec.split(";") if part.strip()
        )

    @classmethod
    def from_env(cls) -> "FaultPlan | None":
        spec = os.environ.get("REPRO_FAULT_SPEC", "").strip()
        if not spec:
            return None
        state = os.environ.get("REPRO_FAULT_STATE", "").strip()
        if not state:
            digest = hashlib.sha256(spec.encode()).hexdigest()[:12]
            state = str(Path(tempfile.gettempdir()) / f"repro-faults-{digest}")
        return cls(spec, Path(state))

    def _claim(self, fault: _Fault) -> bool:
        """Atomically claim one firing; False when already fired.

        ``open(..., "x")`` is the cross-process arbiter: of all workers
        (and the parent) racing to fire one fault, exactly one wins.
        """
        try:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            with open(self.state_dir / f"{fault.claim_id}.fired", "x") as f:
                f.write(f"pid={os.getpid()}\n")
            return True
        except FileExistsError:
            return False
        except OSError:
            # An unwritable state dir must not take the harness down;
            # better to skip injection than to inject unboundedly.
            return False

    def fire_task_faults(self, task_index: int) -> None:
        for fault in self.faults:
            if fault.kind != "task" or int(fault.target) != task_index:
                continue
            if not self._claim(fault):
                continue
            if fault.action == "crash":
                os._exit(1)
            if fault.action == "hang":
                time.sleep(fault.arg if fault.arg is not None else 300.0)
                continue
            raise FaultInjectionError(
                f"injected failure for worker task #{task_index}"
            )

    def corrupt_artifact(self, path: Path, kind: str) -> bool:
        """Garble ``path`` before a read of a ``kind`` artifact; True if hit."""
        for fault in self.faults:
            if fault.kind != "artifact" or fault.target != kind:
                continue
            if not self._claim(fault):
                continue
            try:
                path.write_bytes(_GARBAGE)
            except OSError:
                return False
            return True
        return False

    def fail_shm_attach(self) -> bool:
        for fault in self.faults:
            if fault.kind == "shm" and fault.action == "fail":
                if self._claim(fault):
                    return True
        return False

    def fail_fused_group(self) -> bool:
        for fault in self.faults:
            if fault.kind == "fused" and fault.action == "raise":
                if self._claim(fault):
                    return True
        return False

    def kill_experiment(self, recorded: int) -> None:
        """SIGKILL this process once ``recorded`` reaches the threshold.

        A real SIGKILL (not an exception): finally-blocks, heartbeat
        threads and the SQLite connection all die with the process,
        exactly like an OOM kill mid-experiment.
        """
        for fault in self.faults:
            if fault.kind != "exp" or fault.action != "kill":
                continue
            if recorded < int(fault.target):
                continue
            if self._claim(fault):
                os.kill(os.getpid(), signal.SIGKILL)

    def corrupt_ledger_rows(self, connection, experiment_id: int) -> bool:
        """Garble one journaled result row of ``experiment_id``.

        Emulates a torn write inside the ledger DB file: the row still
        exists but its stats payload no longer matches its sha256, so
        the resume path must detect and re-execute it.
        """
        for fault in self.faults:
            if fault.kind != "ledger" or fault.action != "corrupt":
                continue
            if not self._claim(fault):
                continue
            row = connection.execute(
                "SELECT idx FROM requests WHERE experiment_id = ? "
                "AND status = 'done' ORDER BY idx LIMIT 1",
                (experiment_id,),
            ).fetchone()
            if row is None:
                return False
            connection.execute(
                "UPDATE requests SET stats = ? "
                "WHERE experiment_id = ? AND idx = ?",
                (_GARBAGE.decode("latin1"), experiment_id, row[0]),
            )
            connection.commit()
            return True
        return False


# The plan is cached per (spec, state) pair so the hot hooks cost one
# env read + tuple scan; tests flip the env mid-process, hence the key.
_plan_cache: dict[tuple[str, str], FaultPlan | None] = {}


def reset_plan_cache() -> None:
    """Drop the memoized plan (tests that rewrite the env use this)."""
    _plan_cache.clear()


def reset() -> None:
    """Remove once-per-fault claim files and drop the plan cache.

    Chaos runs that leave ``REPRO_FAULT_STATE`` unset claim their
    faults in a spec-keyed directory under the system temp dir; without
    cleanup those ``*.fired`` markers leak and suppress re-injection on
    the next run with the same spec.  This clears the state of every
    plan this process has instantiated plus the currently active one,
    then drops the plan cache.  Only the claim markers are removed —
    the directory itself is deleted only once empty, so an explicitly
    configured state dir shared with other files is left alone.
    """
    plans = {plan for plan in _plan_cache.values() if plan is not None}
    current = active_plan()
    if current is not None:
        plans.add(current)
    for plan in plans:
        try:
            for claim in plan.state_dir.glob("*.fired"):
                claim.unlink(missing_ok=True)
        except OSError:  # pragma: no cover - unreadable state dir
            continue
        try:
            plan.state_dir.rmdir()
        except OSError:
            pass  # non-empty or already gone; either is fine
    _plan_cache.clear()


def active_plan() -> FaultPlan | None:
    """The current plan, or ``None`` when fault injection is unarmed."""
    key = (
        os.environ.get("REPRO_FAULT_SPEC", ""),
        os.environ.get("REPRO_FAULT_STATE", ""),
    )
    if not key[0].strip():
        return None
    if key not in _plan_cache:
        _plan_cache[key] = FaultPlan.from_env()
    return _plan_cache[key]


def on_worker_task(task_index: int) -> None:
    """Hook: a pool worker is about to execute cold task ``task_index``."""
    plan = active_plan()
    if plan is not None:
        plan.fire_task_faults(task_index)


def maybe_corrupt_artifact(path: Path, kind: str) -> bool:
    """Hook: ``path`` (a ``kind`` artifact) is about to be read."""
    plan = active_plan()
    if plan is None:
        return False
    return plan.corrupt_artifact(Path(path), kind)


def maybe_fail_shm_attach() -> None:
    """Hook: a worker is about to attach a shared-memory trace segment."""
    plan = active_plan()
    if plan is not None and plan.fail_shm_attach():
        raise FaultInjectionError("injected shared-memory attach failure")


def maybe_fail_fused_group() -> None:
    """Hook: an arm-fused group sweep is about to simulate."""
    plan = active_plan()
    if plan is not None and plan.fail_fused_group():
        raise FaultInjectionError("injected fused group sweep failure")


def maybe_kill_experiment(recorded: int) -> None:
    """Hook: an experiment journal just committed its ``recorded``-th result."""
    plan = active_plan()
    if plan is not None:
        plan.kill_experiment(recorded)


def maybe_corrupt_ledger_rows(connection, experiment_id: int) -> bool:
    """Hook: journaled ledger rows are about to be verified for resume."""
    plan = active_plan()
    if plan is None:
        return False
    return plan.corrupt_ledger_rows(connection, experiment_id)
