"""SRRIP: Static Re-Reference Interval Prediction (Jaleel et al., ISCA'10).

Each resident PW carries a 2-bit Re-Reference Prediction Value (RRPV).
Insertions predict a *long* re-reference interval (RRPV = 2); hits
promote to *near-immediate* (RRPV = 0).  Victims are PWs with the
*distant* value (RRPV = 3); when none exists, all RRPVs in the set age
until one does.  This is the policy FURBYS degrades to when its local
miss-pitfall detector fires, so the implementation is shared.
"""

from __future__ import annotations

from typing import Sequence

from ..core.pw import PWLookup, StoredPW
from ..uopcache.replacement import EvictionReason, ReplacementPolicy

#: 2-bit RRPV constants from the paper's hardware description.
RRPV_MAX = 3
RRPV_INSERT = 2
RRPV_HIT = 0


class RRPVTable:
    """RRPV metadata shared by SRRIP-family policies (and FURBYS)."""

    def __init__(self) -> None:
        self._rrpv: dict[int, int] = {}

    def on_insert(self, start: int) -> None:
        self._rrpv[start] = RRPV_INSERT

    def on_hit(self, start: int) -> None:
        self._rrpv[start] = RRPV_HIT

    def on_evict(self, start: int) -> None:
        self._rrpv.pop(start, None)

    def get(self, start: int) -> int:
        return self._rrpv.get(start, RRPV_MAX)

    def set(self, start: int, value: int) -> None:
        self._rrpv[start] = value

    def victim_order(
        self,
        resident: Sequence[StoredPW],
        last_use: dict[int, int] | None = None,
    ) -> list[StoredPW]:
        """Rank residents distant-first, aging the set if necessary.

        Aging mutates the stored RRPVs, as the hardware counter
        increments would.  ``last_use`` optionally breaks RRPV ties in
        LRU order (stale first).
        """
        if not resident:
            return []
        rrpv = self._rrpv
        starts = [pw.start for pw in resident]
        values = [rrpv.get(start, RRPV_MAX) for start in starts]
        current_max = max(values)
        if current_max < RRPV_MAX:
            delta = RRPV_MAX - current_max
            values = [value + delta for value in values]
            for start, value in zip(starts, values):
                rrpv[start] = value
        # Decorate-sort over indices: same stable distant-first order,
        # without re-querying the table per comparison key.
        neg = [-value for value in values]
        if last_use is None:
            order = sorted(range(len(resident)), key=neg.__getitem__)
        else:
            last_use_of = last_use.get
            order = sorted(
                range(len(resident)),
                key=lambda i: (neg[i], last_use_of(starts[i], -1)),
            )
        return [resident[i] for i in order]


class SRRIPPolicy(ReplacementPolicy):
    """Plain SRRIP adapted to PW granularity."""

    name = "srrip"

    def reset(self) -> None:
        self.rrpv = RRPVTable()
        # Direct alias to the RRPV dict: the per-event hooks below fire
        # on every hit/insert/evict, so they update it without the
        # table's method-call indirection.
        self._rrpv_map = self.rrpv._rrpv
        self._last_use: dict[int, int] = {}

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: PWLookup) -> None:
        self._rrpv_map[stored.start] = RRPV_HIT
        self._last_use[stored.start] = now

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: PWLookup) -> None:
        self._rrpv_map[stored.start] = RRPV_HIT
        self._last_use[stored.start] = now

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        self._rrpv_map[stored.start] = RRPV_INSERT
        self._last_use[stored.start] = now

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        self._rrpv_map.pop(stored.start, None)
        self._last_use.pop(stored.start, None)

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        return self.rrpv.victim_order(resident, self._last_use)
