"""FURBYS: the paper's practical micro-op cache replacement policy.

FURBYS (FLACK-based groUping-by-hit-Rate BYpassing-coldness
detecting-miSses, Section V) combines three mechanisms:

1. **Whole-execution weights** — each PW carries a 3-bit weight group
   derived offline from FLACK-simulated hit rates (Jenks natural
   breaks); the victim is the resident PW with the minimum weight
   (a hardware *min module*), ties broken by LRU.
2. **Local miss-pitfall detector** — a per-set record (depth 2 by
   default, Figure 20) of recently evicted PWs; when the weight-based
   victim was itself recently evicted, the set is thrashing on a
   globally-hot-but-locally-cold window, and FURBYS degrades to SRRIP
   for one decision before resuming.
3. **Selective bypass** — an incoming PW whose weight is below the
   minimum resident weight minus ``K`` (= 1, Section V) is not
   inserted, avoiding pollution and saving insertion energy
   (Figure 21 / Figure 14).

Weights arrive with the insertion request (``StoredPW.weight``); PWs
the profile never saw carry no hint and default to weight 0, i.e. cold.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from ..core.pw import PWLookup, StoredPW
from ..uopcache.replacement import (
    BYPASS,
    Decision,
    EvictionReason,
    ReplacementPolicy,
    Victims,
)
from .srrip import RRPVTable


class FurbysPolicy(ReplacementPolicy):
    """FURBYS with configurable ablation knobs.

    Parameters
    ----------
    bypass_enabled:
        The selective-bypass mechanism (Figure 21 toggles this).
    bypass_margin:
        The hyperparameter K; bypass when
        ``incoming_weight < min_resident_weight - K``.
    pitfall_depth:
        Slots in the per-set miss-pitfall detector (Figure 20 sweeps
        this; 0 disables the detector entirely).
    """

    name = "furbys"

    def __init__(
        self,
        *,
        bypass_enabled: bool = True,
        bypass_margin: int = 1,
        bypass_floor: int = 2,
        pitfall_depth: int = 2,
    ) -> None:
        super().__init__()
        self._bypass_enabled = bypass_enabled
        self._bypass_margin = bypass_margin
        self._bypass_floor = bypass_floor
        self._pitfall_depth = pitfall_depth

    def reset(self) -> None:
        self.rrpv = RRPVTable()
        self._last_use: dict[int, int] = {}
        self._pitfall: dict[int, deque[int]] = {}
        self.primary_selections = 0
        self.fallback_selections = 0
        self.bypass_decisions = 0

    # --- helpers -----------------------------------------------------------------

    @staticmethod
    def weight_of(pw: StoredPW) -> int:
        """Effective weight: unhinted PWs behave as the coldest group."""
        return pw.weight if pw.weight is not None else 0

    def _detector(self, set_index: int) -> deque[int]:
        detector = self._pitfall.get(set_index)
        if detector is None:
            detector = deque(maxlen=max(1, self._pitfall_depth))
            self._pitfall[set_index] = detector
        return detector

    # --- event hooks ----------------------------------------------------------------

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: PWLookup) -> None:
        self._last_use[stored.start] = now
        self.rrpv.on_hit(stored.start)

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: PWLookup) -> None:
        self._last_use[stored.start] = now
        self.rrpv.on_hit(stored.start)

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        self._last_use[stored.start] = now
        self.rrpv.on_insert(stored.start)

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        self._last_use.pop(stored.start, None)
        self.rrpv.on_evict(stored.start)

    # --- the decision ------------------------------------------------------------------

    def _furbys_order(self, resident: Sequence[StoredPW]) -> list[StoredPW]:
        return sorted(
            resident,
            key=lambda pw: (self.weight_of(pw), self._last_use.get(pw.start, -1)),
        )

    def should_bypass(self, now: int, set_index: int, incoming: StoredPW,
                      resident: Sequence[StoredPW], need_ways: int) -> bool:
        # The bypass comparison happens during victim search (step 3 of
        # Figure 7), so it only applies when the set is full.
        if not self._bypass_enabled or need_ways <= 0 or not resident:
            return False
        if incoming.weight is None:
            # No hint reached the decoder for this window — there is no
            # profile evidence to justify a bypass.
            return False
        weight = self.weight_of(incoming)
        if weight >= self._bypass_floor:
            # Only *low-weight* PWs are bypass candidates (Section V,
            # "selective bypass of PWs with low weights"): bypassing is
            # a pollution/energy filter for profiled-cold windows, not a
            # general admission tournament.
            return False
        min_weight = min(self.weight_of(pw) for pw in resident)
        if weight < min_weight - self._bypass_margin:
            self.bypass_decisions += 1
            return True
        return False

    def choose_victims(self, now: int, set_index: int, incoming: StoredPW,
                       resident: Sequence[StoredPW], need_ways: int) -> Decision:
        if not resident:
            return Victims([])

        ranked = self._furbys_order(resident)
        use_fallback = False
        if self._pitfall_depth > 0:
            detector = self._detector(set_index)
            if ranked[0].start in detector:
                # The chosen victim was itself evicted from this set just
                # recently — the {A, I}^n thrash of Section V: a window
                # cycles evict→reinsert→evict while a stale (locally
                # cold) high-weight window sits protected.  Degrade to
                # SRRIP for this decision, then resume FURBYS.  (The
                # detector stores the evicted way plus a tag hash; start
                # identity stands in for that pair here.)
                use_fallback = True
        if use_fallback:
            ranked = self.rrpv.victim_order(list(resident), self._last_use)
            self.fallback_selections += 1
        else:
            self.primary_selections += 1

        victims: list[StoredPW] = []
        freed = 0
        for candidate in ranked:
            if freed >= need_ways:
                break
            victims.append(candidate)
            freed += candidate.size
        if freed < need_ways:
            return BYPASS
        if self._pitfall_depth > 0:
            detector = self._detector(set_index)
            if use_fallback:
                detector.clear()
            else:
                for victim in victims:
                    detector.append(victim.start)
        return Victims(victims)
