"""Online replacement policies (the paper's baselines plus FURBYS).

Each policy adapts a published design to the micro-op cache's PW
granularity: victims may span several entries, and insertions can be
bypassed.  The registry maps names used by the experiment harness to
factories.
"""

from typing import Callable

from ..errors import UnknownPolicyError
from ..uopcache.replacement import ReplacementPolicy
from .drrip import DRRIPPolicy
from .furbys import FurbysPolicy
from .ghrp import GHRPPolicy
from .hawkeye import HawkeyePolicy
from .lru import LRUPolicy
from .mockingjay import MockingjayPolicy
from .random_policy import RandomPolicy
from .ship import SHiPPlusPlusPolicy
from .srrip import SRRIPPolicy
from .thermometer import ThermometerPolicy

_FACTORIES: dict[str, Callable[[], ReplacementPolicy]] = {
    "lru": LRUPolicy,
    "random": RandomPolicy,
    "srrip": SRRIPPolicy,
    "drrip": DRRIPPolicy,
    "ship++": SHiPPlusPlusPolicy,
    "ghrp": GHRPPolicy,
    "mockingjay": MockingjayPolicy,
    "hawkeye": HawkeyePolicy,
}


def make_policy(name: str) -> ReplacementPolicy:
    """Instantiate a parameter-free online policy by name.

    Profile-guided policies (``thermometer``, ``furbys``) need profile
    inputs and are constructed through :mod:`repro.profiling` instead.
    """
    try:
        return _FACTORIES[name]()
    except KeyError:
        raise UnknownPolicyError(
            f"unknown policy {name!r}; available: {sorted(_FACTORIES)}"
        ) from None


def online_policy_names() -> tuple[str, ...]:
    """Names of the parameter-free online policies."""
    return tuple(_FACTORIES)


__all__ = [
    "DRRIPPolicy",
    "FurbysPolicy",
    "GHRPPolicy",
    "HawkeyePolicy",
    "LRUPolicy",
    "MockingjayPolicy",
    "RandomPolicy",
    "SHiPPlusPlusPolicy",
    "SRRIPPolicy",
    "ThermometerPolicy",
    "make_policy",
    "online_policy_names",
]
