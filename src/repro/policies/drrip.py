"""DRRIP: Dynamic Re-Reference Interval Prediction (Jaleel et al.,
ISCA'10).

DRRIP set-duels between SRRIP (insert at RRPV 2) and BRRIP (bimodal:
mostly insert at the distant RRPV 3, occasionally at 2 — scan/thrash
resistant).  A handful of *leader sets* are hard-wired to each
component; a saturating policy-selection counter (PSEL) counts which
leader group misses less and steers all follower sets.

The paper's related-work section groups DRRIP with the re-reference
heuristics that "use the recent accesses to predict the future reuse
distance" [45], [71]; it is included here as an additional baseline for
the Figure 5/8-style comparisons and the thrash-heavy synthetic
workloads where plain SRRIP degenerates.
"""

from __future__ import annotations

from typing import Sequence

from ..core.pw import PWLookup, StoredPW
from ..uopcache.replacement import EvictionReason, ReplacementPolicy
from .srrip import RRPV_INSERT, RRPV_MAX, RRPVTable

#: One in this many BRRIP insertions uses the long (not distant) RRPV.
_BRRIP_EPSILON = 32
#: PSEL is a 10-bit saturating counter in the original design.
_PSEL_MAX = 1023
_PSEL_INIT = _PSEL_MAX // 2
#: Leader sets per component (of the 64 sets of the default geometry).
_LEADERS_PER_POLICY = 4


class DRRIPPolicy(ReplacementPolicy):
    """DRRIP adapted to PW granularity."""

    name = "drrip"

    def reset(self) -> None:
        self.rrpv = RRPVTable()
        self._last_use: dict[int, int] = {}
        self._psel = _PSEL_INIT
        self._brrip_tick = 0
        n_sets = self.cache.n_sets if self._cache is not None else 64
        stride = max(1, n_sets // (2 * _LEADERS_PER_POLICY))
        self._srrip_leaders = {i * 2 * stride for i in range(_LEADERS_PER_POLICY)}
        self._brrip_leaders = {
            i * 2 * stride + stride for i in range(_LEADERS_PER_POLICY)
        }

    # --- set-dueling ------------------------------------------------------------

    def _uses_brrip(self, set_index: int) -> bool:
        if set_index in self._brrip_leaders:
            return True
        if set_index in self._srrip_leaders:
            return False
        # Followers: PSEL above the midpoint means SRRIP missed more.
        return self._psel > _PSEL_INIT

    def on_miss(self, now: int, set_index: int, lookup: PWLookup) -> None:
        # Misses in a leader set vote against its policy.
        if set_index in self._srrip_leaders:
            self._psel = min(_PSEL_MAX, self._psel + 1)
        elif set_index in self._brrip_leaders:
            self._psel = max(0, self._psel - 1)

    # --- RRPV maintenance ----------------------------------------------------------

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: PWLookup) -> None:
        self.rrpv.on_hit(stored.start)
        self._last_use[stored.start] = now

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: PWLookup) -> None:
        self.rrpv.on_hit(stored.start)
        self._last_use[stored.start] = now

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        self._last_use[stored.start] = now
        if self._uses_brrip(set_index):
            self._brrip_tick += 1
            if self._brrip_tick % _BRRIP_EPSILON == 0:
                self.rrpv.set(stored.start, RRPV_INSERT)
            else:
                self.rrpv.set(stored.start, RRPV_MAX)
        else:
            self.rrpv.set(stored.start, RRPV_INSERT)

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        self.rrpv.on_evict(stored.start)
        self._last_use.pop(stored.start, None)

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        return self.rrpv.victim_order(resident, self._last_use)
