"""Mockingjay: effective mimicry of Belady's MIN (Shah et al., HPCA'22).

Mockingjay predicts each line's reuse distance from sampled history and
evicts the line whose *estimated time remaining* (ETR) says Belady
would pick it.  Predictions are learned per PC; the paper notes that
for the micro-op cache every PC maps to exactly one PW, so PC-indexed
sharing degenerates and the sampler must effectively observe all sets
(Section III-E) — this reproduction therefore trains one reuse-distance
EWMA per PW start.

PW reuse is strongly bimodal (tight loop bursts vs. long request-loop
cycles), so a scalar reuse prediction is frequently wrong; acting on
*positive* ETR comparisons evicts soon-to-return windows and performs
far below LRU.  Following the conservative reading of the design, the
predictor here is used where it is reliable — declaring windows *dead*
(idle well past their predicted reuse) and bypassing insertions whose
predicted reuse exceeds any plausible residency — and recency ranks the
rest.  This lands Mockingjay near LRU with a modest gain, matching its
modest standing in the paper's Figure 5/8 comparison.

The clock is per-set lookup count, matching the per-set replacement
decisions the predictor feeds.
"""

from __future__ import annotations

from typing import Sequence

from ..core.pw import PWLookup, StoredPW
from ..uopcache.replacement import EvictionReason, ReplacementPolicy

#: EWMA weight for new reuse-distance observations.
_ALPHA = 0.4
#: A resident idle for more than this multiple of its predicted reuse
#: distance is declared dead.
_DEAD_FACTOR = 2.0
#: Minimum samples before the prediction is trusted at all.
_MIN_SAMPLES = 2
#: Predicted reuse beyond this many set-local lookups can never survive
#: to its reuse in an 8-way set under pressure; bypass the insertion.
_BYPASS_DISTANCE = 512.0


class MockingjayPolicy(ReplacementPolicy):
    """Mockingjay adapted to PW granularity."""

    name = "mockingjay"

    def reset(self) -> None:
        self._set_clock: dict[int, int] = {}
        self._last_seen: dict[int, int] = {}      # start -> set-clock of last use
        self._prediction: dict[int, float] = {}   # start -> EWMA reuse distance
        self._samples: dict[int, int] = {}
        self._last_use: dict[int, int] = {}       # recency fallback

    # --- reuse-distance training ----------------------------------------------

    def on_lookup(self, now: int, set_index: int, lookup: PWLookup) -> None:
        clock = self._set_clock.get(set_index, 0) + 1
        self._set_clock[set_index] = clock
        start = lookup.start
        last = self._last_seen.get(start)
        if last is not None:
            observed = float(clock - last)
            previous = self._prediction.get(start, observed)
            self._prediction[start] = (1 - _ALPHA) * previous + _ALPHA * observed
            self._samples[start] = self._samples.get(start, 0) + 1
        self._last_seen[start] = clock

    # --- recency bookkeeping -----------------------------------------------------

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: PWLookup) -> None:
        self._last_use[stored.start] = now

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: PWLookup) -> None:
        self._last_use[stored.start] = now

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        self._last_use[stored.start] = now

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        self._last_use.pop(stored.start, None)

    # --- prediction-driven decisions ------------------------------------------------

    def _overdue(self, set_index: int, start: int) -> float:
        """How far past its predicted reuse the window is (<= 0: not yet)."""
        if self._samples.get(start, 0) < _MIN_SAMPLES:
            return 0.0
        clock = self._set_clock.get(set_index, 0)
        idle = clock - self._last_seen.get(start, clock)
        return idle - _DEAD_FACTOR * self._prediction.get(start, float(idle))

    def should_bypass(self, now: int, set_index: int, incoming: StoredPW,
                      resident: Sequence[StoredPW], need_ways: int) -> bool:
        if self._samples.get(incoming.start, 0) < _MIN_SAMPLES:
            return False
        return self._prediction[incoming.start] > _BYPASS_DISTANCE

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        def rank(pw: StoredPW) -> tuple[int, float, int]:
            overdue = self._overdue(set_index, pw.start)
            if overdue > 0:
                return (0, -overdue, 0)  # dead: most overdue first
            return (1, 0.0, self._last_use.get(pw.start, -1))  # LRU

        return sorted(resident, key=rank)
