"""Least-recently-used replacement — the paper's baseline policy."""

from __future__ import annotations

from typing import Sequence

from ..core.pw import PWLookup, StoredPW
from ..uopcache.replacement import EvictionReason, ReplacementPolicy


class LRUPolicy(ReplacementPolicy):
    """Evict the least-recently-used PW(s); never bypass.

    Recency is tracked per PW start with the lookup index as the clock;
    both full and partial hits refresh recency (the stored window was
    read either way).
    """

    name = "lru"

    def reset(self) -> None:
        self._last_use: dict[int, int] = {}

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: PWLookup) -> None:
        self._last_use[stored.start] = now

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: PWLookup) -> None:
        self._last_use[stored.start] = now

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        self._last_use[stored.start] = now

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        self._last_use.pop(stored.start, None)

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        last_use_of = self._last_use.get
        return sorted(resident, key=lambda pw: last_use_of(pw.start, -1))
