"""Thermometer: profile-guided replacement (Song et al., ISCA'22).

Thermometer profiles an application, classifies entries into *hot*,
*warm* and *cold* by whole-execution hit rate, and embeds the class in
the binary.  Online, cold entries are evicted before warm ones and warm
before hot, with LRU breaking ties.  The paper's critique (Section
III-E) — which FURBYS addresses — is that the static three-class scheme
"lacks the mechanism to adjust to the transient pattern": a globally
hot PW that goes locally cold is never evicted in time.

Use :func:`repro.profiling.hitrate.three_class_profile` to derive the
``classes`` input from a profiling run.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.pw import PWLookup, StoredPW
from ..uopcache.replacement import EvictionReason, ReplacementPolicy

COLD, WARM, HOT = 0, 1, 2


class ThermometerPolicy(ReplacementPolicy):
    """Thermometer adapted to PW granularity.

    ``classes`` maps PW start address to COLD/WARM/HOT; unprofiled PWs
    are treated as cold, as they would be without a binary hint.
    """

    name = "thermometer"

    def __init__(self, classes: Mapping[int, int] | None = None) -> None:
        super().__init__()
        self._classes = dict(classes or {})

    def reset(self) -> None:
        self._last_use: dict[int, int] = {}

    def temperature(self, start: int) -> int:
        return self._classes.get(start, COLD)

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: PWLookup) -> None:
        self._last_use[stored.start] = now

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: PWLookup) -> None:
        self._last_use[stored.start] = now

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        self._last_use[stored.start] = now

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        self._last_use.pop(stored.start, None)

    def should_bypass(self, now: int, set_index: int, incoming: StoredPW,
                      resident: Sequence[StoredPW], need_ways: int) -> bool:
        # A cold insertion never displaces a hot resident set (but free
        # space is always used).
        if need_ways <= 0:
            return False
        if self.temperature(incoming.start) != COLD or not resident:
            return False
        return all(self.temperature(pw.start) == HOT for pw in resident)

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        return sorted(
            resident,
            key=lambda pw: (
                self.temperature(pw.start),
                self._last_use.get(pw.start, -1),
            ),
        )
