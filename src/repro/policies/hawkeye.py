"""Hawkeye: learning from Belady's algorithm (Jain & Lin, ISCA'16).

Hawkeye reconstructs, per set, what Belady's MIN *would have done* on
the recent past (the OPTgen occupancy-vector algorithm) and trains a
PC-indexed predictor from those verdicts: loads that MIN would have
cached are *cache-friendly*, others *cache-averse*.  Friendly
insertions are protected; averse ones are inserted ready to evict.

The paper cites this family ("[43], [63], [78] mimic Belady's algorithm
to generate learning data") and argues it inherits Belady's blind spots
on the micro-op cache — equal costs and exact identity.  This
PW-granularity adaptation keeps those blind spots on purpose: OPTgen
occupancy is entry-weighted but verdicts ignore micro-op counts, and
same-start windows of different lengths share one predictor entry.

Per-set OPTgen uses a sliding window of the last ``8 × ways`` accesses,
the usual Hawkeye configuration.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

from ..core.pw import PWLookup, StoredPW
from ..uopcache.replacement import EvictionReason, ReplacementPolicy
from .srrip import RRPVTable, RRPV_MAX

_PREDICTOR_BITS = 13
_PREDICTOR_SIZE = 1 << _PREDICTOR_BITS
_COUNTER_MAX = 7
_FRIENDLY_THRESHOLD = 4
#: OPTgen window length in set-local accesses, per ways.
_WINDOW_PER_WAY = 8


def _predictor_index(start: int) -> int:
    return ((start >> 4) ^ (start >> 13)) & (_PREDICTOR_SIZE - 1)


class _OptGen:
    """Occupancy-vector reconstruction of MIN for one cache set.

    ``access`` returns MIN's verdict for the *previous* interval of the
    window (True: MIN would have hit this reuse) or None on first use
    within the window.
    """

    def __init__(self, ways: int) -> None:
        self._capacity = ways
        self._window = _WINDOW_PER_WAY * ways
        #: set-local time of the last access per start.
        self._last_access: dict[int, int] = {}
        #: occupancy per set-local time slot within the window.
        self._occupancy: deque[int] = deque(maxlen=self._window)
        self._clock = 0

    def access(self, start: int, size: int) -> bool | None:
        clock = self._clock
        self._clock += 1
        self._occupancy.append(0)
        last = self._last_access.get(start)
        self._last_access[start] = clock
        if last is None or clock - last >= self._window:
            return None
        # Would MIN have kept `start` across [last, clock)? Only if the
        # occupancy never reached capacity over the interval.
        offset = len(self._occupancy) - (clock - last) - 1
        window_slice = list(self._occupancy)
        interval = window_slice[max(0, offset):-1]
        if interval and max(interval) + size > self._capacity:
            return False
        # MIN caches it: charge the interval's occupancy.
        for index in range(max(0, offset), len(window_slice) - 1):
            window_slice[index] += size
        self._occupancy = deque(window_slice, maxlen=self._window)
        return True


class HawkeyePolicy(ReplacementPolicy):
    """Hawkeye adapted to PW granularity."""

    name = "hawkeye"

    def reset(self) -> None:
        self.rrpv = RRPVTable()
        self._last_use: dict[int, int] = {}
        self._predictor = [_FRIENDLY_THRESHOLD] * _PREDICTOR_SIZE
        self._optgen: dict[int, _OptGen] = {}

    # --- OPTgen training ---------------------------------------------------------

    def _optgen_for(self, set_index: int) -> _OptGen:
        optgen = self._optgen.get(set_index)
        if optgen is None:
            optgen = _OptGen(self.cache.ways)
            self._optgen[set_index] = optgen
        return optgen

    def _train(self, start: int, friendly: bool) -> None:
        index = _predictor_index(start)
        if friendly:
            self._predictor[index] = min(_COUNTER_MAX, self._predictor[index] + 1)
        else:
            self._predictor[index] = max(0, self._predictor[index] - 1)

    def _is_friendly(self, start: int) -> bool:
        return self._predictor[_predictor_index(start)] >= _FRIENDLY_THRESHOLD

    def on_lookup(self, now: int, set_index: int, lookup: PWLookup) -> None:
        verdict = self._optgen_for(set_index).access(
            lookup.start, lookup.size(self.cache.config.uops_per_entry)
        )
        if verdict is not None:
            self._train(lookup.start, friendly=verdict)

    # --- RRPV maintenance -----------------------------------------------------------

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: PWLookup) -> None:
        self._last_use[stored.start] = now
        if self._is_friendly(stored.start):
            self.rrpv.on_hit(stored.start)

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: PWLookup) -> None:
        self.on_hit(now, set_index, stored, lookup)

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        self._last_use[stored.start] = now
        if self._is_friendly(stored.start):
            self.rrpv.set(stored.start, 0)
        else:
            self.rrpv.set(stored.start, RRPV_MAX)

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        if (
            reason is EvictionReason.REPLACEMENT
            and self._is_friendly(stored.start)
        ):
            # Evicting a friendly line means the predictor overcommitted.
            self._train(stored.start, friendly=False)
        self.rrpv.on_evict(stored.start)
        self._last_use.pop(stored.start, None)

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        # Averse lines first (they sit at RRPV_MAX); LRU breaks ties.
        return sorted(
            resident,
            key=lambda pw: (
                -self.rrpv.get(pw.start),
                self._last_use.get(pw.start, -1),
            ),
        )
