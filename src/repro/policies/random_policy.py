"""Random replacement — a sanity-check floor for the policy comparison."""

from __future__ import annotations

import random
from typing import Sequence

from ..core.pw import StoredPW
from ..uopcache.replacement import ReplacementPolicy


class RandomPolicy(ReplacementPolicy):
    """Evict uniformly random resident PWs (deterministic via seed)."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._seed = seed

    def reset(self) -> None:
        self._rng = random.Random(self._seed)

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        order = list(resident)
        self._rng.shuffle(order)
        return order
