"""SHiP++: Signature-based Hit Predictor (Young et al., CRC-2 2017).

SHiP learns, per *signature*, whether insertions tend to be re-used.  A
Signature History Counter Table (SHCT) of saturating counters is
indexed by a 14-bit hash of the miss-causing address (for the micro-op
cache: the PW start).  Each resident PW carries its signature and a
reuse bit.  On eviction without reuse the signature's counter is
decremented; on the first reuse it is incremented.  Insertions whose
signature counter is zero are predicted dead and inserted at the
distant RRPV; SHiP++ additionally inserts *confident* signatures at the
near RRPV and never bypasses.
"""

from __future__ import annotations

from typing import Sequence

from ..core.pw import PWLookup, StoredPW
from ..uopcache.replacement import EvictionReason, ReplacementPolicy
from .srrip import RRPV_HIT, RRPV_MAX, RRPVTable

_SHCT_BITS = 14
_SHCT_SIZE = 1 << _SHCT_BITS
_COUNTER_MAX = 7  # 3-bit saturating counters
_COUNTER_INIT = 1
_CONFIDENT = _COUNTER_MAX


def signature_of(start: int) -> int:
    """14-bit signature hash of a PW start address."""
    return ((start >> 4) ^ (start >> 11) ^ (start >> 18)) & (_SHCT_SIZE - 1)


class SHiPPlusPlusPolicy(ReplacementPolicy):
    """SHiP++ adapted to PW granularity."""

    name = "ship++"

    def reset(self) -> None:
        self.rrpv = RRPVTable()
        self._shct = [_COUNTER_INIT] * _SHCT_SIZE
        self._reused: dict[int, bool] = {}
        self._signature: dict[int, int] = {}

    # --- SHCT training ----------------------------------------------------------

    def _train_hit(self, start: int) -> None:
        if not self._reused.get(start, False):
            self._reused[start] = True
            sig = self._signature.get(start, signature_of(start))
            self._shct[sig] = min(_COUNTER_MAX, self._shct[sig] + 1)

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: PWLookup) -> None:
        self.rrpv.on_hit(stored.start)
        self._train_hit(stored.start)

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: PWLookup) -> None:
        self.rrpv.on_hit(stored.start)
        self._train_hit(stored.start)

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        sig = signature_of(stored.start)
        self._signature[stored.start] = sig
        self._reused[stored.start] = False
        counter = self._shct[sig]
        if counter == 0:
            self.rrpv.set(stored.start, RRPV_MAX)  # predicted dead: distant
        elif counter >= _CONFIDENT:
            self.rrpv.set(stored.start, RRPV_HIT)  # confident: near
        else:
            self.rrpv.on_insert(stored.start)

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        if reason is not EvictionReason.UPGRADE and not self._reused.get(
            stored.start, True
        ):
            sig = self._signature.get(stored.start, signature_of(stored.start))
            self._shct[sig] = max(0, self._shct[sig] - 1)
        self.rrpv.on_evict(stored.start)
        self._reused.pop(stored.start, None)
        self._signature.pop(stored.start, None)

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        return self.rrpv.victim_order(resident)
