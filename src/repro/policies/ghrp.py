"""GHRP: Global History Reuse Prediction (Ajorpaz et al., ISCA'18).

GHRP was designed for instruction caches and BTBs: it hashes the PW
address with a global history of recent addresses into signatures, and
trains skewed dead-block predictor tables from eviction/reuse outcomes.
Predicted-dead residents are evicted first (falling back to LRU), and
predicted-dead insertions are bypassed.  The paper finds GHRP to be the
strongest existing online baseline for the micro-op cache (7.81% miss
reduction vs. FURBYS's 14.34%, Figure 8).
"""

from __future__ import annotations

from typing import Sequence

from ..core.pw import PWLookup, StoredPW
from ..uopcache.replacement import EvictionReason, ReplacementPolicy

_HISTORY_LEN = 4
_TABLE_BITS = 12
_TABLE_SIZE = 1 << _TABLE_BITS
_N_TABLES = 3
_COUNTER_MAX = 3
#: Sum-of-counters threshold above which a PW is predicted dead.
_DEAD_THRESHOLD = 6
#: Higher threshold for bypassing (more conservative than eviction).
_BYPASS_THRESHOLD = 8


class GHRPPolicy(ReplacementPolicy):
    """GHRP adapted to PW granularity."""

    name = "ghrp"

    def reset(self) -> None:
        self._history = 0
        self._tables = [[0] * _TABLE_SIZE for _ in range(_N_TABLES)]
        #: signature each resident was inserted under (history-dependent).
        self._sig: dict[int, int] = {}
        self._reused: dict[int, bool] = {}
        self._last_use: dict[int, int] = {}
        #: start -> (signature, time) of a recent bypass, to detect and
        #: untrain wrong bypass predictions (the re-reference would have
        #: been a hit had the window been inserted).
        self._bypassed: dict[int, tuple[int, int]] = {}

    # --- signatures ------------------------------------------------------------

    def _signature(self, start: int) -> int:
        return ((start >> 4) ^ self._history) & 0xFFFFFFFF

    def _indices(self, signature: int) -> tuple[int, int, int]:
        # Unrolled form of (signature >> t*5 ^ signature >> t+7) & mask
        # for t in 0..2 — _predict sits on the victim-ranking hot path.
        mask = _TABLE_SIZE - 1
        return (
            (signature ^ signature >> 7) & mask,
            (signature >> 5 ^ signature >> 8) & mask,
            (signature >> 10 ^ signature >> 9) & mask,
        )

    def _predict(self, signature: int) -> int:
        mask = _TABLE_SIZE - 1
        t0, t1, t2 = self._tables
        return (
            t0[(signature ^ signature >> 7) & mask]
            + t1[(signature >> 5 ^ signature >> 8) & mask]
            + t2[(signature >> 10 ^ signature >> 9) & mask]
        )

    def _train(self, signature: int, dead: bool) -> None:
        tables = self._tables
        for t, i in enumerate(self._indices(signature)):
            counter = tables[t][i]
            if dead:
                tables[t][i] = min(_COUNTER_MAX, counter + 1)
            else:
                tables[t][i] = max(0, counter - 1)

    def _update_history(self, start: int) -> None:
        self._history = ((self._history << 5) ^ (start >> 4)) & 0xFFFFF

    # --- events ------------------------------------------------------------------

    #: A bypassed window re-referenced within this many lookups counts as
    #: a bypass mispredict and untrains the dead prediction.
    _BYPASS_FEEDBACK_WINDOW = 2000

    def on_lookup(self, now: int, set_index: int, lookup: PWLookup) -> None:
        bypassed = self._bypassed.pop(lookup.start, None)
        if bypassed is not None:
            signature, when = bypassed
            if now - when <= self._BYPASS_FEEDBACK_WINDOW:
                self._train(signature, dead=False)
        self._update_history(lookup.start)

    def _on_reuse(self, now: int, stored: StoredPW) -> None:
        self._last_use[stored.start] = now
        if not self._reused.get(stored.start, False):
            self._reused[stored.start] = True
            sig = self._sig.get(stored.start)
            if sig is not None:
                self._train(sig, dead=False)

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: PWLookup) -> None:
        self._on_reuse(now, stored)

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: PWLookup) -> None:
        self._on_reuse(now, stored)

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        self._sig[stored.start] = self._signature(stored.start)
        self._reused[stored.start] = False
        self._last_use[stored.start] = now

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        if reason is not EvictionReason.UPGRADE:
            sig = self._sig.get(stored.start)
            if sig is not None and not self._reused.get(stored.start, True):
                self._train(sig, dead=True)
        self._sig.pop(stored.start, None)
        self._reused.pop(stored.start, None)
        self._last_use.pop(stored.start, None)

    # --- decisions ------------------------------------------------------------------

    def should_bypass(self, now: int, set_index: int, incoming: StoredPW,
                      resident: Sequence[StoredPW], need_ways: int) -> bool:
        # Dead-on-arrival insertions are bypassed even into free space:
        # the prediction says they will not be reused before eviction.
        signature = self._signature(incoming.start)
        if self._predict(signature) >= _BYPASS_THRESHOLD:
            self._bypassed[incoming.start] = (signature, now)
            if len(self._bypassed) > 1 << 16:  # pragma: no cover - bound
                self._bypassed.clear()
            return True
        return False

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        sig_of = self._sig.get
        last_use_of = self._last_use.get
        predict = self._predict

        def rank(pw: StoredPW) -> tuple[int, int]:
            sig = sig_of(pw.start)
            dead = sig is not None and predict(sig) >= _DEAD_THRESHOLD
            # Dead-predicted first; ties broken by LRU.
            return (0 if dead else 1, last_use_of(pw.start, -1))

        return sorted(resident, key=rank)
