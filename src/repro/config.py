"""Simulation configuration (Table I of the paper).

The defaults model the AMD Zen3-like machine the paper simulates with
Scarab: a 3.2 GHz 6-wide out-of-order core with a 4-wide 5-cycle legacy
decoder, a 512-entry 8-way micro-op cache holding up to 8 micro-ops per
entry, and a 32 KiB 8-way L1 instruction cache that the micro-op cache is
inclusive with.  A Zen4-like preset (larger micro-op cache and frontend
structures, Figure 17) is provided as well.

Perfect-structure switches (``perfect_uop_cache`` etc.) implement the
"change the configuration of a single structure to be perfect (always
hit)" methodology of Figure 2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace

from .errors import ConfigurationError

#: Known configuration preset names, in the order they appear in the paper.
PRESETS = ("zen3", "zen4")


@dataclass(frozen=True, slots=True)
class UopCacheConfig:
    """Geometry and behaviour of the micro-op cache.

    ``entries`` is the total number of fixed-size entries; a prediction
    window occupies ``ceil(uops / uops_per_entry)`` consecutive entries
    in one set.  ``ways`` entries of each set can be resident at a time.
    """

    entries: int = 512
    ways: int = 8
    uops_per_entry: int = 8
    #: Cycles lost when the frontend switches between the micro-op cache
    #: path and the legacy decode path (Section II-B: one cycle).
    switch_delay: int = 1
    #: Micro-op cache evictions follow L1i evictions (inclusive) when True.
    inclusive_with_icache: bool = True
    #: Same-start PWs keep the larger window (AMD intermediate-exit-point
    #: behaviour, Section II-D).  Disabled only by the keep-larger
    #: ablation bench, where the latest window always overwrites.
    keep_larger: bool = True
    #: Number of lookups between a miss and the completed insertion of the
    #: decoded PW (the asynchronous-insertion window, Section II-B).  This
    #: tracks the legacy decode pipeline depth.
    insertion_delay: int = 5

    def __post_init__(self) -> None:
        if self.entries <= 0:
            raise ConfigurationError("micro-op cache needs at least one entry")
        if self.ways <= 0:
            raise ConfigurationError("micro-op cache needs at least one way")
        if self.entries % self.ways != 0:
            raise ConfigurationError(
                f"entries ({self.entries}) must be a multiple of ways ({self.ways})"
            )
        if self.uops_per_entry <= 0:
            raise ConfigurationError("uops_per_entry must be positive")
        if self.insertion_delay < 0:
            raise ConfigurationError("insertion_delay cannot be negative")

    @property
    def sets(self) -> int:
        """Number of cache sets."""
        return self.entries // self.ways

    def entries_for_uops(self, uops: int) -> int:
        """Number of entries a PW with ``uops`` micro-ops occupies."""
        if uops <= 0:
            raise ConfigurationError("a prediction window holds at least one uop")
        return math.ceil(uops / self.uops_per_entry)

    @property
    def max_pw_uops(self) -> int:
        """Largest PW (in micro-ops) that fits in one set."""
        return self.ways * self.uops_per_entry


@dataclass(frozen=True, slots=True)
class ICacheConfig:
    """L1 instruction cache geometry (Table I: 32 KiB, 8-way, 64 B lines)."""

    size_bytes: int = 32 * 1024
    ways: int = 8
    line_bytes: int = 64
    latency_cycles: int = 1

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigurationError("icache geometry values must be positive")
        if self.size_bytes % (self.ways * self.line_bytes) != 0:
            raise ConfigurationError("icache size must divide evenly into sets")

    @property
    def sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def lines(self) -> int:
        return self.size_bytes // self.line_bytes


@dataclass(frozen=True, slots=True)
class BranchPredictorConfig:
    """Branch predictor / BTB parameters (Table I)."""

    btb_entries: int = 8192
    btb_ways: int = 4
    ras_entries: int = 32
    ibtb_entries: int = 4096
    #: Modelled conditional-predictor accuracy for a TAGE-SC-L-like
    #: predictor; per-application bias is layered on top of this ceiling.
    base_accuracy: float = 0.995
    misprediction_penalty_cycles: int = 14

    def __post_init__(self) -> None:
        if not 0.0 < self.base_accuracy <= 1.0:
            raise ConfigurationError("base_accuracy must be in (0, 1]")


@dataclass(frozen=True, slots=True)
class CoreConfig:
    """Out-of-order core parameters (Table I)."""

    frequency_ghz: float = 3.2
    issue_width: int = 6
    decode_width: int = 4
    decode_latency_cycles: int = 5
    rob_entries: int = 256
    rs_entries: int = 96

    def __post_init__(self) -> None:
        if self.issue_width <= 0 or self.decode_width <= 0:
            raise ConfigurationError("pipeline widths must be positive")
        if self.decode_latency_cycles < 0:
            raise ConfigurationError("decode latency cannot be negative")


@dataclass(frozen=True, slots=True)
class SimulationConfig:
    """Complete machine configuration for one simulation.

    Compose with :func:`zen3_config` / :func:`zen4_config` and tweak via
    :meth:`with_uop_cache` style helpers or :func:`dataclasses.replace`.
    """

    name: str = "zen3"
    uop_cache: UopCacheConfig = field(default_factory=UopCacheConfig)
    icache: ICacheConfig = field(default_factory=ICacheConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    core: CoreConfig = field(default_factory=CoreConfig)
    #: Perfect-structure switches (Figure 2 methodology).
    perfect_uop_cache: bool = False
    perfect_icache: bool = False
    perfect_btb: bool = False
    perfect_branch_predictor: bool = False

    def with_uop_cache(self, **changes: object) -> "SimulationConfig":
        """Return a copy with the micro-op cache reconfigured."""
        return replace(self, uop_cache=replace(self.uop_cache, **changes))

    def with_perfect(self, structure: str) -> "SimulationConfig":
        """Return a copy with one structure made perfect (always hit).

        ``structure`` is one of ``"uop_cache"``, ``"icache"``, ``"btb"``,
        ``"branch_predictor"``.
        """
        flag = f"perfect_{structure}"
        if not hasattr(self, flag):
            raise ConfigurationError(f"unknown structure {structure!r}")
        return replace(self, **{flag: True})

    def scaled_uop_cache(self, factor: float) -> "SimulationConfig":
        """Return a copy with the micro-op cache capacity scaled.

        Scaling changes the number of sets (associativity is preserved),
        mirroring the ISO-performance experiment of Figure 12.  The result
        is rounded to the nearest whole number of sets.
        """
        sets = max(1, round(self.uop_cache.sets * factor))
        return self.with_uop_cache(entries=sets * self.uop_cache.ways)


def zen3_config() -> SimulationConfig:
    """The paper's default machine (Table I)."""
    return SimulationConfig(name="zen3")


def zen4_config() -> SimulationConfig:
    """AMD Zen4-like frontend used for the Figure 17 sensitivity test.

    Zen4 enlarges the micro-op cache to 6.75k micro-ops (here: 864
    8-uop entries in 8 ways), the BTB, and the issue width.
    """
    return SimulationConfig(
        name="zen4",
        uop_cache=UopCacheConfig(entries=864, ways=8),
        icache=ICacheConfig(size_bytes=32 * 1024, ways=8),
        branch=BranchPredictorConfig(btb_entries=2 * 8192, ibtb_entries=8192),
        core=CoreConfig(issue_width=8, decode_width=4, decode_latency_cycles=4),
    )


def preset(name: str) -> SimulationConfig:
    """Look up a configuration preset by name (``zen3`` or ``zen4``)."""
    factories = {"zen3": zen3_config, "zen4": zen4_config}
    try:
        return factories[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; expected one of {PRESETS}"
        ) from None
