"""Command-line interface: regenerate any table or figure.

Examples::

    repro list                 # available experiments
    repro fig8                 # FURBYS miss-reduction table
    repro fig10 --apps kafka   # FLACK ablation on one app
    repro fig8 --jobs 4        # fan cold runs out over 4 workers
    repro bench                # time a batch serial vs parallel
    repro bench --micro        # per-stage single-run microbenchmark
    repro bench --micro --baseline benchmarks/microbench_baseline.json
    repro bench --stage policy_build   # policy construction only
    repro bench --stage trace_build    # trace construction only
    repro bench --stage offline_sim    # offline/profile-guided kernel arms
    repro bench --stage fused_sim      # arm-fused sweep vs per-arm kernels
    repro bench --profile      # cProfile one cold run
    repro bench --chaos        # fault-injection smoke (crash/hang/corrupt)
    repro bench --chaos-resume # SIGKILL an experiment mid-run, resume it
    repro fig8 --on-error skip # keep partial results on worker failures
    repro trace inspect t.bin  # trace files: inspect / convert / gen
    repro experiments run fig8 # record the run in the durable ledger
    repro experiments resume 3 # replay only the missing requests
    repro query delta 3 7      # per-request metric deltas between runs
    repro all                  # everything (long)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from .harness.experiments import EXPERIMENTS
from .harness.reporting import (
    bar_chart, format_batch_report, format_failure, format_table,
)


def _bench(args: argparse.Namespace) -> int:
    """Time a representative cold batch serial vs. parallel."""
    from .harness.bench import (
        BENCH_APPS, BENCH_POLICIES, chaos_smoke, compare_serial_parallel,
        representative_requests,
    )

    apps = tuple(args.apps.split(",")) if args.apps else BENCH_APPS
    policies = (
        tuple(args.policies.split(",")) if args.policies else BENCH_POLICIES
    )

    if args.chaos_resume:
        from .harness.bench import chaos_resume_proof

        outcome = chaos_resume_proof()
        print(json.dumps(outcome, indent=2))
        return 0 if outcome["passed"] else 1

    if args.chaos:
        kwargs = {}
        if args.apps:
            kwargs["apps"] = apps
        if args.policies:
            kwargs["policies"] = policies
        if args.trace_len:
            kwargs["trace_len"] = args.trace_len
        if args.jobs:
            kwargs["jobs"] = args.jobs
        if args.timeout:
            kwargs["timeout_s"] = args.timeout
        outcome = chaos_smoke(**kwargs)
        print(json.dumps(outcome, indent=2))
        ok = outcome["identical_results"] and outcome["faults_accounted"]
        return 0 if ok else 1

    if args.profile:
        from .harness.microbench import profile_run

        print(profile_run(
            apps[0], policies[0],
            trace_len=args.trace_len or 20_000,
        ))
        return 0

    if args.stage:
        if args.stage == "policy_build":
            from .harness.microbench import policy_build_batch

            outcome = policy_build_batch(
                apps, policies, trace_len=args.trace_len or 20_000
            )
        elif args.stage == "trace_build":
            from .harness.microbench import trace_build_batch

            outcome = trace_build_batch(
                apps, trace_len=args.trace_len or 20_000,
                repeats=args.repeats,
            )
        elif args.stage == "frontend_sim":
            from .harness.microbench import frontend_sim_batch

            outcome = frontend_sim_batch(
                apps, policies, trace_len=args.trace_len or 20_000,
                repeats=args.repeats,
            )
        elif args.stage == "offline_sim":
            from .harness.microbench import (
                OFFLINE_BENCH_POLICIES, offline_sim_batch,
            )

            outcome = offline_sim_batch(
                apps,
                policies if args.policies else OFFLINE_BENCH_POLICIES,
                trace_len=args.trace_len or 20_000,
                repeats=args.repeats,
            )
        elif args.stage == "fused_sim":
            from .harness.microbench import (
                FUSED_BENCH_POLICIES, fused_sim_batch,
            )

            outcome = fused_sim_batch(
                apps,
                policies if args.policies else FUSED_BENCH_POLICIES,
                trace_len=args.trace_len or 20_000,
                repeats=args.repeats,
            )
        else:
            print(f"unknown --stage {args.stage!r}; 'policy_build', "
                  "'trace_build', 'frontend_sim', 'offline_sim' and "
                  "'fused_sim' are available",
                  file=sys.stderr)
            return 2
        text = json.dumps(outcome, indent=2)
        print(text)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
        if args.baseline:
            from .harness.microbench import check_baseline

            with open(args.baseline) as handle:
                baseline = json.load(handle)
            ok, message = check_baseline(
                outcome["aggregate"], baseline["aggregate"],
                tolerance=args.tolerance,
            )
            print(message, file=sys.stderr)
            if not ok:
                return 1
        if args.stage in ("frontend_sim", "offline_sim", "fused_sim"):
            return 0 if outcome["aggregate"]["identical_results"] else 1
        return 0

    if args.micro:
        from .harness.microbench import check_baseline, microbench_batch

        outcome = microbench_batch(
            apps, policies,
            trace_len=args.trace_len or 20_000,
            repeats=args.repeats,
        )
        text = json.dumps(outcome, indent=2)
        print(text)
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text + "\n")
        if args.baseline:
            with open(args.baseline) as handle:
                baseline = json.load(handle)
            ok, message = check_baseline(
                outcome["aggregate"], baseline["aggregate"],
                tolerance=args.tolerance,
            )
            print(message, file=sys.stderr)
            if not ok:
                return 1
        return 0 if outcome["aggregate"]["identical_results"] else 1

    requests = representative_requests(apps=apps, trace_len=args.trace_len)
    outcome = compare_serial_parallel(requests, jobs=args.jobs)
    print(json.dumps(outcome, indent=2))
    return 0 if outcome["identical_results"] else 1


def _render(name: str) -> str:
    experiment = EXPERIMENTS[name]
    started = time.time()
    result = experiment()
    elapsed = time.time() - started
    parts = [format_table(result["headers"], result["rows"],
                          title=f"== {name} ==")]
    for key, value in result.items():
        if key in ("headers", "rows"):
            continue
        if (
            isinstance(value, dict)
            and value
            and all(isinstance(v, float) for v in value.values())
        ):
            parts.append(bar_chart(
                [(str(k), v) for k, v in value.items()], title=f"{key}:"
            ))
        else:
            parts.append(f"{key}: {value}")
    from .harness.parallel import last_batch_report

    report = last_batch_report()
    if report is not None:
        parts.append(format_batch_report(report))
    parts.append(f"[{elapsed:.1f}s]")
    return "\n".join(parts)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        # Trace-file utilities have their own subcommand tree (shared
        # with the standalone ``repro-trace`` entry point).
        from .tools.trace_tool import main as trace_main

        return trace_main(argv[1:])
    if argv and argv[0] in ("experiments", "query"):
        # The durable experiment ledger (record / resume / query) also
        # has its own subcommand tree.
        from .tools.ledger_tool import main as ledger_main

        return ledger_main(argv)
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the FLACK/FURBYS micro-op cache replacement "
                    "experiments (HPCA 2025).",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (see 'repro list'), 'list', 'bench', or 'all'",
    )
    parser.add_argument(
        "--apps",
        help="comma-separated application subset (sets REPRO_APPS)",
    )
    parser.add_argument(
        "--trace-len", type=int,
        help="PW lookups per trace (sets REPRO_TRACE_LEN; needs fresh process "
             "caches to take effect on already-generated traces)",
    )
    parser.add_argument(
        "--jobs", type=int,
        help="worker processes for cold simulation batches (sets REPRO_JOBS; "
             "1 = serial, default REPRO_JOBS or the machine's cpu count)",
    )
    parser.add_argument(
        "--on-error", choices=("raise", "skip", "retry"),
        help="batch failure mode (sets REPRO_ON_ERROR): raise = fail fast, "
             "skip = keep partial results, retry = retry transient faults",
    )
    parser.add_argument(
        "--timeout", type=float,
        help="per-chunk timeout in seconds for parallel batches "
             "(sets REPRO_TIMEOUT_S; hung workers are terminated and the "
             "chunk is retried/rerouted)",
    )
    parser.add_argument(
        "--micro", action="store_true",
        help="bench only: per-stage single-run microbenchmark "
             "(trace gen / policy build / prepare / pipeline / hooks)",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="bench only: fault-injection smoke — inject a worker crash, "
             "a hang and a corrupt cache artifact into a batch and verify "
             "bit-identical results vs a clean serial run",
    )
    parser.add_argument(
        "--chaos-resume", action="store_true",
        help="bench only: end-to-end ledger proof — SIGKILL a recorded "
             "experiment mid-batch (plus a worker crash, a hang and a "
             "torn ledger row), resume it, and verify bit-identical "
             "stats with zero re-execution of journaled requests",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="bench only: cProfile one cold run (first app x first policy)",
    )
    parser.add_argument(
        "--stage",
        help="bench only: time a single stage instead of full runs "
             "('policy_build': policy construction with its per-stage "
             "breakdown; 'trace_build': cold trace construction — no "
             "simulation loops either way; 'frontend_sim': kernel vs "
             "fastloop vs reference simulation arms; 'offline_sim': the "
             "same over the offline/profile-guided policies; 'fused_sim': "
             "one arm-fused sweep vs the per-arm kernels)",
    )
    parser.add_argument(
        "--policies",
        help="bench only: comma-separated policy subset for --micro/--profile",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="bench only: loop repetitions per --micro timing (best-of)",
    )
    parser.add_argument(
        "--baseline",
        help="bench only: microbench JSON to guard against (exit 1 when "
             "lookups/s falls more than --tolerance below it)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.30,
        help="bench only: allowed fractional regression vs --baseline",
    )
    parser.add_argument(
        "--output",
        help="bench only: also write the --micro report to this file",
    )
    args = parser.parse_args(argv)

    if args.apps:
        os.environ["REPRO_APPS"] = args.apps
    if args.trace_len:
        os.environ["REPRO_TRACE_LEN"] = str(args.trace_len)
    if args.jobs:
        os.environ["REPRO_JOBS"] = str(args.jobs)
    if args.on_error:
        os.environ["REPRO_ON_ERROR"] = args.on_error
    if args.timeout:
        os.environ["REPRO_TIMEOUT_S"] = str(args.timeout)

    if args.experiment == "bench":
        return _bench(args)
    if args.experiment == "list":
        for name in EXPERIMENTS:
            print(name)
        return 0

    from .harness.parallel import BatchExecutionError

    try:
        if args.experiment == "all":
            for name in EXPERIMENTS:
                print(_render(name))
                print()
            return 0
        if args.experiment not in EXPERIMENTS:
            print(f"unknown experiment {args.experiment!r}; try 'repro list'",
                  file=sys.stderr)
            return 2
        print(_render(args.experiment))
    except BatchExecutionError as exc:
        print(format_failure(exc), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
