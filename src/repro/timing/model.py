"""Analytic IPC model.

The paper's IPC effects are small and indirect (Section VI-C): a 14.34%
micro-op cache miss reduction buys only ~0.5% IPC, because (a) the
decoupled frontend hides most decode latency behind queueing, (b) the
low-latency benefit only materializes when the frontend is restarting
after a branch miss, and (c) one PW per cycle caps fetch bandwidth.
Replicating that requires an *exposure* model, not a full cycle-level
core: frontend penalty cycles are accumulated from the event counts the
behavioural simulator produces and only a calibrated fraction of them
(``frontend_exposure``) lands on the critical path; mispredictions and
BTB resteers are fully exposed.

This is the "miss reduction only partially translates into performance
gain" behaviour the paper reports, with the same ordering across
policies — which is what Figures 11 and 12 need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config import SimulationConfig
from ..core.stats import SimulationStats

#: Fraction of frontend supply-*bandwidth* cycles that are
#: performance-critical (the decoupled frontend and micro-op queue hide
#: the rest).  Calibrated so the miss-reduction→IPC conversion ratio
#: matches the paper's (14.34% misses → ~0.49% IPC, Section VI-C).
DEFAULT_FRONTEND_EXPOSURE = 0.12
#: Fraction of switch/pipeline-fill bubbles that are critical: these
#: latency (not bandwidth) events overlap the micro-op queue drain
#: except right after a frontend restart (Section VI-C: "the benefit of
#: this low latency can only be translated into frontend throughput
#: when the frontend recovers from a branch miss").
DEFAULT_BUBBLE_EXPOSURE = 0.02
#: Frontend resteer penalty for a BTB miss (cycles).
BTB_RESTEER_CYCLES = 8


@dataclass(frozen=True, slots=True)
class TimingResult:
    """Cycle accounting for one simulated run."""

    instructions: int
    cycles: float
    backend_cycles: float
    frontend_penalty_cycles: float
    flush_cycles: float

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    def speedup_vs(self, baseline: "TimingResult") -> float:
        """Relative IPC speedup (0.005 = +0.5%)."""
        if baseline.ipc == 0:
            return 0.0
        return self.ipc / baseline.ipc - 1.0


class TimingModel:
    """Estimate cycles/IPC from simulation statistics."""

    def __init__(
        self,
        config: SimulationConfig,
        *,
        frontend_exposure: float = DEFAULT_FRONTEND_EXPOSURE,
        bubble_exposure: float = DEFAULT_BUBBLE_EXPOSURE,
    ) -> None:
        self.config = config
        self.frontend_exposure = frontend_exposure
        self.bubble_exposure = bubble_exposure

    def evaluate(self, stats: SimulationStats) -> TimingResult:
        core = self.config.core
        uop_cfg = self.config.uop_cache

        # Backend bound: issue width over all micro-ops.
        backend = stats.uops_total / core.issue_width

        # Frontend supply path:
        #  * micro-op cache path: one PW per cycle;
        #  * legacy path: decode-width-limited, plus pipeline fill on
        #    every switch to the legacy pipe, plus the 1-cycle switch
        #    overhead each way (Section II-B).
        uop_path = stats.pw_hits + stats.pw_partial_hits
        decoded_insts = stats.decoder_uops / 1.1  # uops->insts (avg cracking)
        legacy = math.ceil(decoded_insts / core.decode_width)
        switches = stats.path_switches * uop_cfg.switch_delay
        to_legacy_switches = stats.path_switches / 2.0
        fills = to_legacy_switches * core.decode_latency_cycles
        frontend_penalty = (
            self.frontend_exposure * (uop_path + legacy)
            + self.bubble_exposure * (switches + fills)
        )

        flushes = (
            stats.mispredictions * self.config.branch.misprediction_penalty_cycles
            + stats.btb_misses * BTB_RESTEER_CYCLES
        )

        cycles = backend + frontend_penalty + flushes
        return TimingResult(
            instructions=stats.instructions,
            cycles=cycles,
            backend_cycles=backend,
            frontend_penalty_cycles=frontend_penalty,
            flush_cycles=flushes,
        )
