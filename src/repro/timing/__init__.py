"""Analytic timing model (IPC estimation from frontend event counts)."""

from .model import TimingModel, TimingResult

__all__ = ["TimingModel", "TimingResult"]
