"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A simulation or workload configuration is inconsistent.

    Examples: a prediction window larger than its cache set, a zero-way
    cache with a non-zero entry count, or an unknown preset name.
    """


class TraceError(ReproError):
    """A trace file or in-memory trace is malformed."""


class UnknownWorkloadError(ReproError):
    """The requested application is not in the workload registry."""


class UnknownPolicyError(ReproError):
    """The requested replacement policy is not registered."""


class OfflinePolicyError(ReproError):
    """An offline policy received inconsistent future information."""


class FlowError(ReproError):
    """The min-cost-flow solver was given an infeasible problem."""


class ProfilingError(ReproError):
    """The FURBYS profiling pipeline was misused.

    Raised, for example, when hints are requested before the profiling
    steps that produce them have run.
    """


class ArtifactError(ReproError):
    """A cached on-disk artifact failed validation.

    Raised by the quarantine path in :mod:`repro.harness.artifacts` when
    a disk-cache entry (simulation stats, profiling hit-stats/profile
    JSON, or a v2 binary trace) is corrupt, truncated, or fails its
    checksum.  Callers treat it as a cache miss: the offending file is
    renamed to ``*.corrupt`` (never silently deleted) and the artifact
    is recomputed, with the event counted in the resilience fallback
    counters (:func:`repro.harness.resilience.global_counters`).
    """


class FaultInjectionError(ReproError):
    """An error deliberately raised by the fault-injection harness.

    Only ever raised when ``REPRO_FAULT_SPEC`` arms
    :mod:`repro.faultinject`; classified as *retryable* by
    :class:`repro.harness.resilience.RetryPolicy`, so injected faults
    exercise exactly the retry machinery that real transient failures
    would.
    """
