"""Exception hierarchy for the repro package.

Every error raised by this package derives from :class:`ReproError` so
callers can catch package failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """A simulation or workload configuration is inconsistent.

    Examples: a prediction window larger than its cache set, a zero-way
    cache with a non-zero entry count, or an unknown preset name.
    """


class TraceError(ReproError):
    """A trace file or in-memory trace is malformed."""


class UnknownWorkloadError(ReproError):
    """The requested application is not in the workload registry."""


class UnknownPolicyError(ReproError):
    """The requested replacement policy is not registered."""


class OfflinePolicyError(ReproError):
    """An offline policy received inconsistent future information."""


class FlowError(ReproError):
    """The min-cost-flow solver was given an infeasible problem."""


class ProfilingError(ReproError):
    """The FURBYS profiling pipeline was misused.

    Raised, for example, when hints are requested before the profiling
    steps that produce them have run.
    """
