"""Opt-in wall-clock attribution for policy-construction stages.

Policy construction spans several layers (future index, interval
decomposition, admission planning, flow solving, profiling simulation,
hint building) that the ``policy_build_s`` aggregate of
:mod:`repro.harness.microbench` lumps together.  Each stage wraps its
work in :func:`timed`; when no capture is active (the normal case —
every experiment run) the wrapper is a no-op, so the instrumentation
costs nothing on the hot path.  ``repro bench --micro`` and
``repro bench --stage policy_build`` activate :func:`capture` around
policy construction and report the per-stage breakdown.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter
from typing import Iterator

#: The active collector, or None when capture is off.
_active: dict[str, float] | None = None
#: Per-stage invocation counts of the active capture.
_counts: dict[str, int] | None = None


def record(stage: str, seconds: float) -> None:
    """Attribute ``seconds`` to ``stage`` in the active capture (if any)."""
    if _active is not None:
        _active[stage] = _active.get(stage, 0.0) + seconds
        _counts[stage] = _counts.get(stage, 0) + 1  # type: ignore[index]


@contextmanager
def timed(stage: str) -> Iterator[None]:
    """Time the enclosed block into ``stage`` when a capture is active."""
    if _active is None:
        yield
        return
    started = perf_counter()
    try:
        yield
    finally:
        record(stage, perf_counter() - started)


@contextmanager
def capture() -> Iterator[dict[str, float]]:
    """Collect stage timings for the enclosed block.

    Yields the (live) ``stage -> seconds`` dict; on exit it additionally
    holds ``<stage>_calls`` count entries.  Captures do not nest — an
    inner capture simply redirects recording until it exits.
    """
    global _active, _counts
    saved, saved_counts = _active, _counts
    _active, _counts = {}, {}
    try:
        yield _active
    finally:
        for stage, count in _counts.items():
            _active[f"{stage}_calls"] = count
        _active, _counts = saved, saved_counts
