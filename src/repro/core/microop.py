"""Micro-op record.

The simulator mostly works at prediction-window granularity for speed,
but a :class:`MicroOp` record exists so examples and tests can reason
about the contents of a window (e.g. when modelling partial hits, hint
injection into branch micro-ops, or entry packing).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class UopKind(Enum):
    """Coarse micro-op categories relevant to the frontend model."""

    ALU = "alu"
    LOAD = "load"
    STORE = "store"
    BRANCH = "branch"
    NOP = "nop"


@dataclass(frozen=True, slots=True)
class MicroOp:
    """A single decoded micro-operation.

    ``pc`` is the address of the parent x86 instruction; several
    micro-ops may share one ``pc`` (complex instructions crack into
    multiple micro-ops).
    """

    pc: int
    kind: UopKind = UopKind.ALU
    #: True for the last micro-op of its parent instruction.
    ends_instruction: bool = True

    @property
    def is_branch(self) -> bool:
        return self.kind is UopKind.BRANCH
