"""Core data model: micro-ops, prediction windows, traces, statistics."""

from .microop import MicroOp
from .pw import PWLookup, StoredPW, pw_size
from .trace import Trace, TraceMetadata
from .stats import AccessOutcome, MissBreakdown, SimulationStats

__all__ = [
    "MicroOp",
    "PWLookup",
    "StoredPW",
    "pw_size",
    "Trace",
    "TraceMetadata",
    "AccessOutcome",
    "MissBreakdown",
    "SimulationStats",
]
