"""Prediction windows: the unit of micro-op cache lookups and storage.

A prediction window (PW) starts at the target of a control-flow change
and ends at a predicted-taken branch or an icache line boundary
(Section II-B of the paper).  A PW is looked up by its *start address*;
two dynamic PWs can share a start address but differ in length when the
terminating conditional branch is sometimes taken and sometimes not
(Section II-D), which is what makes *partial hits* possible.

Terminology from the paper used throughout this package:

``cost``
    number of micro-ops in the PW — the penalty (decoder work) of a miss.
``size``
    number of micro-op cache entries the PW occupies,
    ``ceil(cost / uops_per_entry)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TraceError


def pw_size(uops: int, uops_per_entry: int) -> int:
    """Entries occupied by a PW of ``uops`` micro-ops (its *size*)."""
    # Integer ceiling division; equivalent to math.ceil for positive
    # ints but allocation-free on the simulation hot path.
    return -(-uops // uops_per_entry)


@dataclass(frozen=True, slots=True)
class PWLookup:
    """One dynamic micro-op cache lookup.

    Attributes
    ----------
    start:
        Byte address of the first instruction — the cache tag.
    uops:
        Micro-ops the frontend needs from this window (the PW *cost*).
    insts:
        x86 instructions covered (for IPC accounting).
    bytes_len:
        Byte footprint (for icache interaction and inclusivity).
    terminated_by_branch:
        True when the window ends on a predicted-taken branch; False when
        it ends on an icache line boundary.
    contains_branch:
        True when any instruction in the window is a branch (terminating
        or internal not-taken).  Only such PWs can carry FURBYS hints in
        a branch's reserved bits; the paper notes "most PWs end with a
        branch or contain at least a branch".
    mispredicted:
        True when the terminating branch was mispredicted (used by the
        timing model to account flush penalties).
    """

    start: int
    uops: int
    insts: int
    bytes_len: int
    terminated_by_branch: bool = True
    contains_branch: bool = True
    mispredicted: bool = False

    def __post_init__(self) -> None:
        if self.uops <= 0:
            raise TraceError(f"PW at {self.start:#x} has no micro-ops")
        if self.insts <= 0:
            raise TraceError(f"PW at {self.start:#x} covers no instructions")
        if self.bytes_len <= 0:
            raise TraceError(f"PW at {self.start:#x} has no byte footprint")

    def size(self, uops_per_entry: int) -> int:
        """Number of cache entries this PW occupies."""
        return pw_size(self.uops, uops_per_entry)

    @property
    def end(self) -> int:
        """First byte address past this PW."""
        return self.start + self.bytes_len

    def overlaps_line(self, line_start: int, line_bytes: int) -> bool:
        """Whether the PW's byte range intersects an icache line."""
        return self.start < line_start + line_bytes and line_start < self.end


@dataclass(slots=True)
class StoredPW:
    """A PW as resident in the micro-op cache.

    Mutable because policies update recency/metadata in place and a
    partial hit can grow a stored window (keep-larger rule).
    """

    start: int
    uops: int
    insts: int
    bytes_len: int
    size: int
    #: Weight group assigned by FURBYS hints (None when unhinted).
    weight: int | None = None
    #: Way slots occupied within the cache set (assigned at insertion);
    #: ``slots[0]`` is the way id the miss-pitfall detector records.
    slots: tuple[int, ...] = ()
    #: Icache line numbers the PW spans (filled by the cache when the
    #: PW is mapped into the inclusivity reverse map).
    lines: range = range(0)

    @classmethod
    def from_lookup(cls, lookup: PWLookup, uops_per_entry: int) -> "StoredPW":
        return cls(
            start=lookup.start,
            uops=lookup.uops,
            insts=lookup.insts,
            bytes_len=lookup.bytes_len,
            size=lookup.size(uops_per_entry),
        )

    @property
    def end(self) -> int:
        return self.start + self.bytes_len

    def covers(self, lookup: PWLookup) -> bool:
        """Whether this stored window fully serves ``lookup``.

        Per AMD's intermediate-exit-point behaviour (Section II-D), a
        stored window serves any same-start lookup needing at most as
        many micro-ops.
        """
        return self.start == lookup.start and self.uops >= lookup.uops

    def overlaps_line(self, line_start: int, line_bytes: int) -> bool:
        return self.start < line_start + line_bytes and line_start < self.end
