"""Simulation statistics and miss accounting.

The paper defines the miss rate at *micro-op* granularity
(Section II-C): the output of the micro-op cache is a stream of
micro-ops, so a missed PW costs as many misses as it has micro-ops.
:class:`SimulationStats` tracks both PW-level and micro-op-level
counters, plus the activity counters the power model consumes
(decoder micro-ops, icache accesses, micro-op cache reads/writes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class AccessOutcome(Enum):
    """Result of one micro-op cache lookup."""

    HIT = "hit"
    PARTIAL_HIT = "partial_hit"
    MISS = "miss"


class MissClass(Enum):
    """Classic 3C classification of misses (Section III-B)."""

    COLD = "cold"
    CAPACITY = "capacity"
    CONFLICT = "conflict"


@dataclass(slots=True)
class MissBreakdown:
    """Micro-op misses split by 3C class."""

    cold: int = 0
    capacity: int = 0
    conflict: int = 0

    @property
    def total(self) -> int:
        return self.cold + self.capacity + self.conflict

    def fraction(self, klass: MissClass) -> float:
        if self.total == 0:
            return 0.0
        return getattr(self, klass.value) / self.total

    def add(self, klass: MissClass, uops: int) -> None:
        setattr(self, klass.value, getattr(self, klass.value) + uops)


@dataclass(slots=True)
class SimulationStats:
    """Counters produced by one simulation run.

    The micro-op-level miss rate (``uop_miss_rate``) is the paper's
    headline metric; ``miss_reduction_vs`` compares two runs the way
    Figures 5/8/10 do.
    """

    # --- lookup outcomes (PW granularity) ---
    lookups: int = 0
    pw_hits: int = 0
    pw_partial_hits: int = 0
    pw_misses: int = 0

    # --- micro-op granularity ---
    uops_total: int = 0
    uops_hit: int = 0
    uops_missed: int = 0

    # --- insertion path ---
    insertions: int = 0
    insertion_attempts: int = 0
    bypasses: int = 0
    evictions: int = 0
    evicted_entries: int = 0
    inclusive_invalidations: int = 0

    # --- instruction stream (timing / power inputs) ---
    instructions: int = 0
    branches: int = 0
    mispredictions: int = 0
    #: Frontend switches between micro-op cache and legacy decode path.
    path_switches: int = 0

    # --- structure activity (power-model inputs) ---
    icache_accesses: int = 0
    icache_misses: int = 0
    decoder_uops: int = 0
    uop_cache_reads: int = 0
    uop_cache_writes: int = 0
    btb_accesses: int = 0
    btb_misses: int = 0

    # --- replacement-policy introspection (Section VI-C) ---
    policy_victim_selections: int = 0
    fallback_victim_selections: int = 0

    miss_breakdown: MissBreakdown = field(default_factory=MissBreakdown)

    @property
    def uop_miss_rate(self) -> float:
        """Missed micro-ops / total micro-ops (the paper's metric)."""
        if self.uops_total == 0:
            return 0.0
        return self.uops_missed / self.uops_total

    @property
    def uop_hit_rate(self) -> float:
        return 1.0 - self.uop_miss_rate

    @property
    def pw_miss_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return (self.pw_misses + self.pw_partial_hits) / self.lookups

    @property
    def bypass_fraction(self) -> float:
        """Fraction of insertion attempts that were bypassed."""
        if self.insertion_attempts == 0:
            return 0.0
        return self.bypasses / self.insertion_attempts

    @property
    def policy_coverage(self) -> float:
        """Fraction of victim selections made by the primary policy.

        For FURBYS this is the replacement-coverage statistic of
        Section VI-C (~88.7% in the paper, remainder from the SRRIP
        pitfall fallback).
        """
        total = self.policy_victim_selections + self.fallback_victim_selections
        if total == 0:
            return 1.0
        return self.policy_victim_selections / total

    def miss_reduction_vs(self, baseline: "SimulationStats") -> float:
        """Relative micro-op miss reduction against a baseline run.

        Positive values mean fewer misses than the baseline; e.g. 0.14
        reproduces the paper's "14.34% miss reduction over LRU".
        """
        if baseline.uops_missed == 0:
            return 0.0
        return 1.0 - self.uops_missed / baseline.uops_missed

    def merge(self, other: "SimulationStats") -> None:
        """Accumulate another run's counters into this one (in place)."""
        for name in (
            "lookups", "pw_hits", "pw_partial_hits", "pw_misses",
            "uops_total", "uops_hit", "uops_missed",
            "insertions", "insertion_attempts", "bypasses",
            "evictions", "evicted_entries", "inclusive_invalidations",
            "instructions", "branches", "mispredictions", "path_switches",
            "icache_accesses", "icache_misses", "decoder_uops",
            "uop_cache_reads", "uop_cache_writes",
            "btb_accesses", "btb_misses",
            "policy_victim_selections", "fallback_victim_selections",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.miss_breakdown.cold += other.miss_breakdown.cold
        self.miss_breakdown.capacity += other.miss_breakdown.capacity
        self.miss_breakdown.conflict += other.miss_breakdown.conflict
