"""Trace containers and (de)serialization.

A :class:`Trace` is the simulated analogue of an Intel PT recording
(STEP 1 of the FURBYS procedure, Figure 6): the dynamic sequence of
prediction-window lookups the frontend issues, plus enough metadata to
drive the timing and power models.

Two backing representations share the one façade:

* an **object list** of :class:`~repro.core.pw.PWLookup` (the reference
  representation every consumer was written against), and
* packed **columns** (:class:`TraceColumns`): five parallel stdlib
  ``array`` columns — starts, uops, insts, byte lengths and a flag
  bitmask — at ~21 bytes per lookup instead of ~10x that for a
  ``PWLookup`` object.  Aggregates (:meth:`Trace._totals`),
  :meth:`Trace.prepared` and the offline future index run single tight
  passes over the columns; the object list is materialized lazily only
  when a consumer (the simulation pipeline) actually indexes lookups.

``REPRO_TRACE_FASTPATH=0`` restores the reference path end-to-end:
generation emits objects, no columnar backing, no binary disk trace
cache, no shared-memory fan-out.

Traces serialize to two interchangeable formats:

* **v1** — a line-oriented text format (diffs and compresses well),
  mirroring the artifact's ``datacenterTrace`` directory:

  .. code-block:: text

      #repro-trace v1
      #app=kafka input=default instructions=123456
      start uops insts bytes branch mispred
      40001000 6 5 24 1 0
      ...

* **v2** — a struct-packed little-endian binary format (the disk trace
  cache and shared-memory fan-out payload): a magic line, a JSON
  metadata block, then the five columns back to back.  See
  :meth:`Trace.dump_binary`.
"""

from __future__ import annotations

import io
import json
import os
import struct
import sys
import weakref
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Hashable, Iterable, Iterator, Sequence

from ..errors import TraceError
from .pw import PWLookup

_HEADER = "#repro-trace v1"
#: First bytes of a v2 binary trace; kept newline-terminated and ASCII
#: so ``file``/``head`` on a trace file still identify it.
BINARY_MAGIC = b"#repro-trace v2\n"

#: Chunk size for streaming binary-trace reads and checksums (a
#: multiple of every column itemsize, so chunks split on item bounds).
_READ_CHUNK_BYTES = 8 << 20

#: Flag bits of the packed per-lookup bitmask column.
FLAG_TERMINATED = 1
FLAG_CONTAINS = 2
FLAG_MISPREDICTED = 4

# Column typecodes (u64 starts, u32 counts, u8 flags).  CPython
# guarantees these itemsizes on every supported platform; the assert
# turns an exotic-platform surprise into a loud import error instead of
# a silently incompatible binary format.
_START_CODE, _COUNT_CODE, _FLAG_CODE = "Q", "I", "B"
assert array(_START_CODE).itemsize == 8 and array(_COUNT_CODE).itemsize == 4
_LOOKUP_BYTES = 8 + 4 + 4 + 4 + 1


def trace_fastpath_enabled() -> bool:
    """Whether the columnar trace engine is active (default: yes).

    ``REPRO_TRACE_FASTPATH=0`` restores the reference path end-to-end:
    object-emitting trace generation, no columnar backing store, no
    binary disk trace cache and no shared-memory fan-out.  The trace
    benchmark (``scripts/bench_trace_engine.py``) uses it to time the
    before arm.
    """
    return os.environ.get("REPRO_TRACE_FASTPATH", "1") != "0"


def callable_token(fn: Callable) -> Hashable:
    """A stable memo-key identity for a callable.

    Memo keys (:meth:`Trace.prepared`, :meth:`Trace.memo` callers) used
    to embed the function object itself, which pinned closures for the
    trace's lifetime and made equivalent references of one module-level
    function look distinct.  Instead:

    * module-level functions map to ``("fn", module, qualname)`` — a
      stable geometry identifier, so equivalent references share one
      cached pass and nothing is pinned;
    * bound methods are kept as-is (they compare by ``(self, func)``,
      and a weakref would die with the transient method object);
    * closures and lambdas become a :class:`weakref.ref` — same-object
      cache hits without extending the callable's lifetime.
    """
    if getattr(fn, "__self__", None) is not None:
        return fn
    if getattr(fn, "__closure__", None) is None:
        qualname = getattr(fn, "__qualname__", "<lambda>")
        module = getattr(fn, "__module__", None)
        if module and "<locals>" not in qualname and "<lambda>" not in qualname:
            return ("fn", module, qualname)
    try:
        return weakref.ref(fn)
    except TypeError:
        return fn


class TraceColumns:
    """Packed columnar backing store for a lookup sequence.

    Five parallel stdlib ``array`` columns; the flag column packs the
    three booleans of a :class:`PWLookup` into one byte
    (:data:`FLAG_TERMINATED` | :data:`FLAG_CONTAINS` |
    :data:`FLAG_MISPREDICTED`).  The trace generator appends into the
    columns directly; everything else reads them through the
    :class:`Trace` façade.
    """

    __slots__ = ("starts", "uops", "insts", "bytes_len", "flags")

    def __init__(
        self,
        starts: array | None = None,
        uops: array | None = None,
        insts: array | None = None,
        bytes_len: array | None = None,
        flags: array | None = None,
    ) -> None:
        self.starts = starts if starts is not None else array(_START_CODE)
        self.uops = uops if uops is not None else array(_COUNT_CODE)
        self.insts = insts if insts is not None else array(_COUNT_CODE)
        self.bytes_len = bytes_len if bytes_len is not None else array(_COUNT_CODE)
        self.flags = flags if flags is not None else array(_FLAG_CODE)
        n = len(self.starts)
        if not (
            len(self.uops) == len(self.insts)
            == len(self.bytes_len) == len(self.flags) == n
        ):
            raise TraceError("trace columns are not parallel")

    def __len__(self) -> int:
        return len(self.starts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceColumns):
            return NotImplemented
        return (
            self.starts == other.starts
            and self.uops == other.uops
            and self.insts == other.insts
            and self.bytes_len == other.bytes_len
            and self.flags == other.flags
        )

    @classmethod
    def from_lookups(cls, lookups: Sequence[PWLookup]) -> "TraceColumns":
        try:
            return cls(
                array(_START_CODE, (pw.start for pw in lookups)),
                array(_COUNT_CODE, (pw.uops for pw in lookups)),
                array(_COUNT_CODE, (pw.insts for pw in lookups)),
                array(_COUNT_CODE, (pw.bytes_len for pw in lookups)),
                array(_FLAG_CODE, (
                    (FLAG_TERMINATED if pw.terminated_by_branch else 0)
                    | (FLAG_CONTAINS if pw.contains_branch else 0)
                    | (FLAG_MISPREDICTED if pw.mispredicted else 0)
                    for pw in lookups
                )),
            )
        except OverflowError as exc:
            raise TraceError(f"lookup field out of column range: {exc}") from exc

    def materialize(self) -> list[PWLookup]:
        """The equivalent :class:`PWLookup` list (validates every row)."""
        return [
            PWLookup(
                start=start,
                uops=uops,
                insts=insts,
                bytes_len=bytes_len,
                terminated_by_branch=bool(flag & FLAG_TERMINATED),
                contains_branch=bool(flag & FLAG_CONTAINS),
                mispredicted=bool(flag & FLAG_MISPREDICTED),
            )
            for start, uops, insts, bytes_len, flag in zip(
                self.starts, self.uops, self.insts, self.bytes_len, self.flags
            )
        ]

    def totals(self) -> tuple[int, int, int, int]:
        """``(uops, insts, branches, mispredictions)`` in one pass."""
        flag_bytes = self.flags.tobytes()
        branches = mispredictions = 0
        # Flags only take 8 values; per-value C-level byte counts beat a
        # Python loop over the column by two orders of magnitude.
        for value in range(8):
            count = flag_bytes.count(value)
            if count:
                if value & FLAG_TERMINATED:
                    branches += count
                if value & FLAG_MISPREDICTED:
                    mispredictions += count
        return sum(self.uops), sum(self.insts), branches, mispredictions

    def slice(self, start: int, stop: int | None = None) -> "TraceColumns":
        return TraceColumns(
            self.starts[start:stop], self.uops[start:stop],
            self.insts[start:stop], self.bytes_len[start:stop],
            self.flags[start:stop],
        )

    # --- binary payload ------------------------------------------------------

    @staticmethod
    def payload_size(n: int) -> int:
        """Exact byte size of the packed payload for ``n`` lookups."""
        return _LOOKUP_BYTES * n

    def to_payload(self) -> bytes:
        """The five columns back to back, little-endian."""
        columns = (self.starts, self.uops, self.insts, self.bytes_len, self.flags)
        if sys.byteorder == "big":  # pragma: no cover - exotic platform
            swapped = []
            for column in columns:
                column = array(column.typecode, column)
                column.byteswap()
                swapped.append(column)
            columns = tuple(swapped)
        return b"".join(column.tobytes() for column in columns)

    @classmethod
    def from_payload(cls, buffer, n: int) -> "TraceColumns":
        """Rebuild columns from a :meth:`to_payload` byte block.

        Accepts any buffer (bytes, memoryview, shared-memory view); the
        column data is copied out, so the source buffer can be released
        immediately afterwards.
        """
        view = memoryview(buffer)
        if len(view) != cls.payload_size(n):
            raise TraceError(
                f"binary trace payload is {len(view)} bytes, expected "
                f"{cls.payload_size(n)} for {n} lookups"
            )
        columns = []
        offset = 0
        for code in (_START_CODE, _COUNT_CODE, _COUNT_CODE, _COUNT_CODE,
                     _FLAG_CODE):
            column = array(code)
            size = column.itemsize * n
            column.frombytes(view[offset:offset + size])
            if sys.byteorder == "big":  # pragma: no cover - exotic platform
                column.byteswap()
            offset += size
            columns.append(column)
        return cls(*columns)


@dataclass(slots=True)
class PreparedTrace:
    """Per-lookup derived data under one cache geometry.

    Built once by :meth:`Trace.prepared` and consumed by the frontend
    pipeline's hot loop so per-lookup quantities that only depend on
    the (PW, geometry) pair — micro-op cache set index, entry size,
    icache line count of the full byte range — are computed once per
    *unique* PW instead of on every dynamic lookup.  All sequences are
    parallel to ``lookups``.
    """

    lookups: list[PWLookup]
    #: Micro-op cache set index of each lookup's start address.
    set_indices: list[int]
    #: Cache entries the lookup occupies (``pw_size`` under geometry).
    entry_sizes: list[int]
    #: Icache lines covering the full ``[start, end)`` byte range.
    line_counts: list[int]


#: Every constructed trace, weakly held — the census below never pins
#: one.  Keyed by id() because Trace is equality-comparable (unhashable);
#: a dead entry's reused id simply overwrites the vacated slot.
_live_traces: "weakref.WeakValueDictionary[int, Trace]" = \
    weakref.WeakValueDictionary()


#: Cumulative count of memo entries evicted via :func:`drop_simd_memos`.
_memo_evictions = 0


def drop_simd_memos() -> int:
    """Evict every live trace's simd column-pass memos; returns count.

    The packed kernel columns are by far the largest per-trace memo
    (tens of MB per (trace, geometry) pair at figure scale), and they
    key on tuples starting with ``"simd"``.  The registry LRU holds
    traces alive across :func:`repro.workloads.registry.clear_trace_cache`
    callers that still pin a trace reference, so a cache clear must
    drop the memos directly rather than rely on the traces dying.
    """
    global _memo_evictions
    dropped = 0
    for trace in list(_live_traces.values()):
        stale = [key for key in trace._derived
                 if isinstance(key, tuple) and key and key[0] == "simd"]
        for key in stale:
            del trace._derived[key]
        dropped += len(stale)
    _memo_evictions += dropped
    return dropped


def memo_census() -> dict[str, int]:
    """Memory-resident per-trace memo entries, across all live traces.

    Memoized derived data (:meth:`Trace.memo` artifacts such as the
    columnar future index and the simd kernel columns, plus
    :meth:`Trace.prepared` results) lives only in each trace's
    ``_derived`` dict, so it is released exactly when the trace itself
    is.  After :func:`repro.harness.runner.clear_memory_cache` drops the
    registry LRU (and ``gc.collect()`` clears any cycles), the census
    returns to zero unless a caller still pins a trace — the regression
    check for memo leaks.
    """
    traces = entries = 0
    for trace in list(_live_traces.values()):
        held = len(trace._derived)
        if held:
            traces += 1
            entries += held
    return {"traces": traces, "entries": entries,
            "evicted": _memo_evictions}


@dataclass(frozen=True, slots=True)
class TraceMetadata:
    """Provenance of a trace: which app, which input, how it was made."""

    app: str = "unknown"
    input_name: str = "default"
    seed: int = 0
    description: str = ""


class Trace:
    """A dynamic PW lookup sequence with provenance metadata.

    Backed by either a ``PWLookup`` list or packed columns (see the
    module docstring); ``lookups`` materializes the object list lazily
    from columns, and ``columns`` packs the object list lazily on first
    (de)serialization or fan-out use.  Derived aggregates
    (``total_uops`` & friends) and geometry-specific precomputations
    (:meth:`prepared`) are memoized in ``_derived``, keyed by the
    lookup-sequence length so appends invalidate them automatically.
    Callers that mutate ``lookups`` *in place without changing its
    length* must call :meth:`invalidate_derived`.
    """

    __slots__ = ("metadata", "_lookups", "_columns", "_derived", "__weakref__")

    def __init__(
        self,
        lookups: list[PWLookup] | None = None,
        metadata: TraceMetadata | None = None,
        *,
        columns: TraceColumns | None = None,
    ) -> None:
        if lookups is not None and columns is not None:
            raise TraceError("construct a Trace from lookups or columns, not both")
        if lookups is None and columns is None:
            lookups = []
        self._lookups = lookups
        self._columns = columns
        self.metadata = metadata if metadata is not None else TraceMetadata()
        self._derived: dict = {}
        _live_traces[id(self)] = self

    @property
    def lookups(self) -> list[PWLookup]:
        lookups = self._lookups
        if lookups is None:
            lookups = self._lookups = self._columns.materialize()
        return lookups

    @property
    def columns(self) -> TraceColumns:
        """The packed columns, (re)built when absent or stale.

        The length guard mirrors ``_derived``: columns packed before an
        append are rebuilt from the grown object list.
        """
        columns = self._columns
        lookups = self._lookups
        if columns is None or (lookups is not None and len(lookups) != len(columns)):
            columns = self._columns = TraceColumns.from_lookups(self.lookups)
        return columns

    def has_columns(self) -> bool:
        """Whether current packed columns exist (no repack needed)."""
        columns = self._columns
        return columns is not None and (
            self._lookups is None or len(self._lookups) == len(columns)
        )

    def __len__(self) -> int:
        lookups = self._lookups
        return len(lookups) if lookups is not None else len(self._columns)

    def __iter__(self) -> Iterator[PWLookup]:
        return iter(self.lookups)

    def __getitem__(self, index: int) -> PWLookup:
        return self.lookups[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return self.metadata == other.metadata and self.lookups == other.lookups

    def __repr__(self) -> str:
        meta = self.metadata
        backing = "columnar" if self.has_columns() else "objects"
        return (
            f"Trace(app={meta.app!r}, input={meta.input_name!r}, "
            f"lookups={len(self)}, backing={backing})"
        )

    # Keep pickles (process-pool workers, disk snapshots) free of the
    # derived caches: prepared()'s keys may hold unpicklable weakrefs.
    # Column-backed traces ship their packed arrays (compact and cheap
    # to unpickle) instead of 45k PWLookup objects.
    def __getstate__(self):
        if self._lookups is None:
            c = self._columns
            return ("cols", self.metadata,
                    (c.starts, c.uops, c.insts, c.bytes_len, c.flags))
        return (self._lookups, self.metadata)

    def __setstate__(self, state) -> None:
        self._derived = {}
        _live_traces[id(self)] = self
        if len(state) == 3 and state[0] == "cols":
            _, self.metadata, columns = state
            self._columns = TraceColumns(*columns)
            self._lookups = None
        else:
            self._lookups, self.metadata = state
            self._columns = None

    # --- derived properties -------------------------------------------------

    def invalidate_derived(self) -> None:
        """Drop memoized aggregates after in-place lookup mutation."""
        self._derived.clear()
        if self._lookups is not None:
            # Packed columns no longer match the mutated objects.
            self._columns = None

    def memo(self, key: Hashable, build: Callable[[], object]):
        """Memoize ``build()`` on this trace, invalidated by appends.

        The same length-guard convention as :meth:`prepared`: entries
        are keyed by ``(len(lookups), value)`` so growing the trace
        drops them automatically.  Offline policies use this to share
        per-trace artifacts (future indices, interval decompositions)
        across policy instances.  Callers embedding callables in ``key``
        should wrap them with :func:`callable_token` so closures are not
        pinned for the trace's lifetime.
        """
        n = len(self)
        cached = self._derived.get(key)
        if cached is not None and cached[0] == n:
            return cached[1]
        value = build()
        self._derived[key] = (n, value)
        return value

    def _totals(self) -> tuple[int, int, int, int]:
        n = len(self)
        cached = self._derived.get("totals")
        if cached is not None and cached[0] == n:
            return cached[1]
        if self._lookups is None:
            totals = self._columns.totals()
        else:
            uops = insts = branches = mispredictions = 0
            for pw in self._lookups:
                uops += pw.uops
                insts += pw.insts
                if pw.terminated_by_branch:
                    branches += 1
                if pw.mispredicted:
                    mispredictions += 1
            totals = (uops, insts, branches, mispredictions)
        self._derived["totals"] = (n, totals)
        return totals

    @property
    def total_uops(self) -> int:
        return self._totals()[0]

    @property
    def total_instructions(self) -> int:
        return self._totals()[1]

    @property
    def total_branches(self) -> int:
        return self._totals()[2]

    @property
    def total_mispredictions(self) -> int:
        return self._totals()[3]

    @property
    def branch_mpki(self) -> float:
        """Branches per kilo-instruction — comparable to Table II."""
        _, insts, branches, _ = self._totals()
        if insts == 0:
            return 0.0
        return 1000.0 * branches / insts

    def prepared(
        self,
        *,
        n_sets: int,
        uops_per_entry: int,
        line_bytes: int,
        set_index_fn: Callable[[int, int], int],
    ) -> PreparedTrace:
        """Per-lookup derived data under the given cache geometry.

        Interns the computation per unique PW: the set index and line
        count are computed once per distinct ``(start, bytes_len)`` and
        the entry size once per distinct ``uops``, then broadcast to
        every dynamic occurrence.  ``set_index_fn`` must be pure (all
        shipped index functions are).  The result is memoized per
        geometry — keyed through :func:`callable_token`, so equivalent
        references of one index function share a single pass and the
        callable is not pinned — and several policies simulating the
        same trace share it.
        """
        key = ("prepared", n_sets, uops_per_entry, line_bytes,
               callable_token(set_index_fn))
        n = len(self)
        cached = self._derived.get(key)
        if cached is not None and cached[0] == n:
            return cached[1]
        set_index_of: dict[int, int] = {}
        size_of: dict[int, int] = {}
        lines_of: dict[tuple[int, int], int] = {}
        set_indices: list[int] = []
        entry_sizes: list[int] = []
        line_counts: list[int] = []
        if self.has_columns():
            # Tight pass over the packed columns: the three derived
            # quantities only need (start, uops, bytes_len), so no
            # PWLookup attribute access (or materialization) is needed.
            columns = self._columns
            rows = zip(columns.starts, columns.uops, columns.bytes_len)
        else:
            rows = ((pw.start, pw.uops, pw.bytes_len) for pw in self.lookups)
        for start, uops, bytes_len in rows:
            idx = set_index_of.get(start)
            if idx is None:
                idx = set_index_of[start] = set_index_fn(start, n_sets)
            set_indices.append(idx)
            size = size_of.get(uops)
            if size is None:
                size = size_of[uops] = -(-uops // uops_per_entry)
            entry_sizes.append(size)
            span = (start, bytes_len)
            n_lines = lines_of.get(span)
            if n_lines is None:
                end = start + bytes_len
                n_lines = (end - 1) // line_bytes - start // line_bytes + 1
                lines_of[span] = n_lines
            line_counts.append(n_lines)
        prepared = PreparedTrace(
            self.lookups, set_indices, entry_sizes, line_counts
        )
        self._derived[key] = (n, prepared)
        return prepared

    def unique_starts(self) -> set[int]:
        """Distinct PW start addresses (static code footprint in PWs)."""
        if self.has_columns():
            return set(self._columns.starts)
        return {pw.start for pw in self.lookups}

    def slice(self, start: int, stop: int | None = None) -> "Trace":
        """A sub-trace sharing metadata (useful for warmup splits)."""
        if self._lookups is None:
            return Trace(
                columns=self._columns.slice(start, stop), metadata=self.metadata
            )
        return Trace(self.lookups[start:stop], self.metadata)

    # --- serialization -------------------------------------------------------

    def dump(self, stream: io.TextIOBase) -> None:
        """Write the trace in the v1 text format."""
        meta = self.metadata
        stream.write(f"{_HEADER}\n")
        stream.write(
            f"#app={meta.app} input={meta.input_name} seed={meta.seed}\n"
        )
        stream.write("start uops insts bytes branch contbr mispred\n")
        for pw in self.lookups:
            stream.write(
                f"{pw.start:x} {pw.uops} {pw.insts} {pw.bytes_len} "
                f"{int(pw.terminated_by_branch)} {int(pw.contains_branch)} "
                f"{int(pw.mispredicted)}\n"
            )

    def save(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            self.dump(handle)

    @classmethod
    def parse(cls, stream: Iterable[str]) -> "Trace":
        """Read a trace in the v1 text format."""
        lines = iter(stream)
        try:
            header = next(lines).rstrip("\n")
        except StopIteration:
            raise TraceError("empty trace stream") from None
        if header != _HEADER:
            raise TraceError(f"bad trace header: {header!r}")
        meta = TraceMetadata()
        try:
            meta_line = next(lines).rstrip("\n")
        except StopIteration:
            raise TraceError("trace truncated before metadata") from None
        if meta_line.startswith("#"):
            fields = dict(
                part.split("=", 1)
                for part in meta_line.lstrip("#").split()
                if "=" in part
            )
            meta = TraceMetadata(
                app=fields.get("app", "unknown"),
                input_name=fields.get("input", "default"),
                seed=int(fields.get("seed", "0")),
            )
            try:
                next(lines)  # column header line
            except StopIteration:
                raise TraceError("trace truncated before column header") from None
        lookups: list[PWLookup] = []
        for lineno, line in enumerate(lines, start=4):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (6, 7):
                raise TraceError(f"line {lineno}: expected 6-7 fields, got {len(parts)}")
            try:
                terminated = bool(int(parts[4]))
                if len(parts) == 7:
                    contains = bool(int(parts[5]))
                    mispredicted = bool(int(parts[6]))
                else:  # legacy 6-field rows: infer from termination
                    contains = terminated
                    mispredicted = bool(int(parts[5]))
                lookups.append(
                    PWLookup(
                        start=int(parts[0], 16),
                        uops=int(parts[1]),
                        insts=int(parts[2]),
                        bytes_len=int(parts[3]),
                        terminated_by_branch=terminated,
                        contains_branch=contains,
                        mispredicted=mispredicted,
                    )
                )
            except ValueError as exc:
                raise TraceError(f"line {lineno}: {exc}") from exc
        return cls(lookups, meta)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.parse(handle)

    # --- v2 binary serialization ---------------------------------------------

    def dump_binary(self, stream) -> None:
        """Write the trace in the v2 binary format.

        Layout (all integers little-endian)::

            #repro-trace v2\\n          magic line (16 bytes)
            u32 meta_len | u64 n       fixed header
            meta_len bytes             metadata as UTF-8 JSON
            8n | 4n | 4n | 4n | n      starts, uops, insts, bytes, flags
        """
        meta = self.metadata
        meta_json = json.dumps({
            "app": meta.app, "input": meta.input_name,
            "seed": meta.seed, "description": meta.description,
        }).encode("utf-8")
        columns = self.columns
        stream.write(BINARY_MAGIC)
        stream.write(struct.pack("<IQ", len(meta_json), len(columns)))
        stream.write(meta_json)
        for column in (columns.starts, columns.uops, columns.insts,
                       columns.bytes_len, columns.flags):
            if sys.byteorder == "big":  # pragma: no cover - exotic platform
                column = array(column.typecode, column)
                column.byteswap()
            # Column by column, chunk by chunk: never one payload-sized
            # bytes object in memory (see parse_binary).
            step = _READ_CHUNK_BYTES // column.itemsize
            for i in range(0, len(column), step):
                stream.write(column[i:i + step].tobytes())

    def save_binary(self, path: str | Path) -> None:
        with open(path, "wb") as handle:
            self.dump_binary(handle)

    @classmethod
    def parse_binary(cls, stream) -> "Trace":
        """Read a trace in the v2 binary format (see :meth:`dump_binary`).

        Truncated or corrupt streams raise :class:`TraceError`; per-row
        validity (positive uops/insts/bytes) is checked lazily when the
        lookups materialize, as for in-memory columnar traces.
        """

        def read_exact(size: int, what: str) -> bytes:
            data = stream.read(size)
            if len(data) != size:
                raise TraceError(f"binary trace truncated in {what}")
            return data

        magic = stream.read(len(BINARY_MAGIC))
        if magic != BINARY_MAGIC:
            raise TraceError(f"bad binary trace magic: {magic[:16]!r}")
        meta_len, n = struct.unpack("<IQ", read_exact(12, "header"))
        if n > 2**48:
            raise TraceError(f"implausible binary trace length {n}")
        try:
            fields = json.loads(read_exact(meta_len, "metadata"))
            if not isinstance(fields, dict):
                raise ValueError("metadata is not an object")
            meta = TraceMetadata(
                app=str(fields.get("app", "unknown")),
                input_name=str(fields.get("input", "default")),
                seed=int(fields.get("seed", 0)),
                description=str(fields.get("description", "")),
            )
        except ValueError as exc:
            raise TraceError(f"corrupt binary trace metadata: {exc}") from exc
        def read_column(code: str, what: str) -> array:
            # Stream each column in bounded chunks instead of one
            # payload-sized read: a 10M-lookup trace is a 210MB payload,
            # and the monolithic read would hold it alongside the column
            # copies.  Peak transient memory here is one chunk.
            column = array(code)
            remaining = column.itemsize * n
            pending = b""
            while remaining:
                data = stream.read(min(remaining, _READ_CHUNK_BYTES))
                if not data:
                    raise TraceError(f"binary trace truncated in {what}")
                remaining -= len(data)
                if pending:
                    data, pending = pending + data, b""
                cut = len(data) - len(data) % column.itemsize
                column.frombytes(data[:cut])
                pending = data[cut:]
            if pending:  # pragma: no cover - only a misbehaving stream
                raise TraceError(f"binary trace truncated in {what}")
            if sys.byteorder == "big":  # pragma: no cover - exotic platform
                column.byteswap()
            return column

        columns = TraceColumns(
            read_column(_START_CODE, "starts"),
            read_column(_COUNT_CODE, "uops"),
            read_column(_COUNT_CODE, "insts"),
            read_column(_COUNT_CODE, "bytes_len"),
            read_column(_FLAG_CODE, "flags"),
        )
        if stream.read(1):
            raise TraceError("binary trace has trailing bytes")
        return cls(columns=columns, metadata=meta)

    @classmethod
    def load_binary(cls, path: str | Path) -> "Trace":
        with open(path, "rb") as handle:
            return cls.parse_binary(handle)

    @classmethod
    def load_any(cls, path: str | Path) -> "Trace":
        """Load a trace file in either format, sniffing the magic line."""
        with open(path, "rb") as handle:
            magic = handle.read(len(BINARY_MAGIC))
        if magic == BINARY_MAGIC:
            return cls.load_binary(path)
        return cls.load(path)

    @classmethod
    def from_lookups(
        cls, lookups: Sequence[PWLookup], app: str = "synthetic"
    ) -> "Trace":
        """Convenience constructor used heavily by tests."""
        return cls(list(lookups), TraceMetadata(app=app))
