"""Trace containers and (de)serialization.

A :class:`Trace` is the simulated analogue of an Intel PT recording
(STEP 1 of the FURBYS procedure, Figure 6): the dynamic sequence of
prediction-window lookups the frontend issues, plus enough metadata to
drive the timing and power models.

Traces serialize to a simple line-oriented text format so they can be
saved, shipped, and diffed — mirroring the artifact's
``datacenterTrace`` directory:

.. code-block:: text

    #repro-trace v1
    #app=kafka input=default instructions=123456
    start uops insts bytes branch mispred
    40001000 6 5 24 1 0
    ...
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Hashable, Iterable, Iterator, Sequence

from ..errors import TraceError
from .pw import PWLookup

_HEADER = "#repro-trace v1"


@dataclass(slots=True)
class PreparedTrace:
    """Per-lookup derived data under one cache geometry.

    Built once by :meth:`Trace.prepared` and consumed by the frontend
    pipeline's hot loop so per-lookup quantities that only depend on
    the (PW, geometry) pair — micro-op cache set index, entry size,
    icache line count of the full byte range — are computed once per
    *unique* PW instead of on every dynamic lookup.  All sequences are
    parallel to ``lookups``.
    """

    lookups: list[PWLookup]
    #: Micro-op cache set index of each lookup's start address.
    set_indices: list[int]
    #: Cache entries the lookup occupies (``pw_size`` under geometry).
    entry_sizes: list[int]
    #: Icache lines covering the full ``[start, end)`` byte range.
    line_counts: list[int]


@dataclass(frozen=True, slots=True)
class TraceMetadata:
    """Provenance of a trace: which app, which input, how it was made."""

    app: str = "unknown"
    input_name: str = "default"
    seed: int = 0
    description: str = ""


@dataclass(slots=True)
class Trace:
    """A dynamic PW lookup sequence with provenance metadata.

    Derived aggregates (``total_uops`` & friends) and geometry-specific
    precomputations (:meth:`prepared`) are memoized in ``_derived``,
    keyed by the lookup-list length so appends invalidate them
    automatically.  Callers that mutate ``lookups`` *in place without
    changing its length* must call :meth:`invalidate_derived`.
    """

    lookups: list[PWLookup]
    metadata: TraceMetadata = field(default_factory=TraceMetadata)
    _derived: dict = field(default_factory=dict, repr=False, compare=False)

    def __len__(self) -> int:
        return len(self.lookups)

    def __iter__(self) -> Iterator[PWLookup]:
        return iter(self.lookups)

    def __getitem__(self, index: int) -> PWLookup:
        return self.lookups[index]

    # Keep pickles (process-pool workers, disk snapshots) free of the
    # derived caches: prepared()'s keys may hold unpicklable closures.
    def __getstate__(self):
        return (self.lookups, self.metadata)

    def __setstate__(self, state) -> None:
        self.lookups, self.metadata = state
        self._derived = {}

    # --- derived properties -------------------------------------------------

    def invalidate_derived(self) -> None:
        """Drop memoized aggregates after in-place lookup mutation."""
        self._derived.clear()

    def memo(self, key: Hashable, build: Callable[[], object]):
        """Memoize ``build()`` on this trace, invalidated by appends.

        The same length-guard convention as :meth:`prepared`: entries
        are keyed by ``(len(lookups), value)`` so growing the trace
        drops them automatically.  Offline policies use this to share
        per-trace artifacts (future indices, interval decompositions)
        across policy instances.
        """
        n = len(self.lookups)
        cached = self._derived.get(key)
        if cached is not None and cached[0] == n:
            return cached[1]
        value = build()
        self._derived[key] = (n, value)
        return value

    def _totals(self) -> tuple[int, int, int, int]:
        n = len(self.lookups)
        cached = self._derived.get("totals")
        if cached is not None and cached[0] == n:
            return cached[1]
        uops = insts = branches = mispredictions = 0
        for pw in self.lookups:
            uops += pw.uops
            insts += pw.insts
            if pw.terminated_by_branch:
                branches += 1
            if pw.mispredicted:
                mispredictions += 1
        totals = (uops, insts, branches, mispredictions)
        self._derived["totals"] = (n, totals)
        return totals

    @property
    def total_uops(self) -> int:
        return self._totals()[0]

    @property
    def total_instructions(self) -> int:
        return self._totals()[1]

    @property
    def total_branches(self) -> int:
        return self._totals()[2]

    @property
    def total_mispredictions(self) -> int:
        return self._totals()[3]

    @property
    def branch_mpki(self) -> float:
        """Branches per kilo-instruction — comparable to Table II."""
        _, insts, branches, _ = self._totals()
        if insts == 0:
            return 0.0
        return 1000.0 * branches / insts

    def prepared(
        self,
        *,
        n_sets: int,
        uops_per_entry: int,
        line_bytes: int,
        set_index_fn: Callable[[int, int], int],
    ) -> PreparedTrace:
        """Per-lookup derived data under the given cache geometry.

        Interns the computation per unique PW: the set index and line
        count are computed once per distinct ``(start, bytes_len)`` and
        the entry size once per distinct ``uops``, then broadcast to
        every dynamic occurrence.  ``set_index_fn`` must be pure (all
        shipped index functions are).  The result is memoized per
        geometry, so several policies simulating the same trace share
        one pass.
        """
        key = ("prepared", n_sets, uops_per_entry, line_bytes, set_index_fn)
        n = len(self.lookups)
        cached = self._derived.get(key)
        if cached is not None and cached[0] == n:
            return cached[1]
        set_index_of: dict[int, int] = {}
        size_of: dict[int, int] = {}
        lines_of: dict[tuple[int, int], int] = {}
        set_indices: list[int] = []
        entry_sizes: list[int] = []
        line_counts: list[int] = []
        for pw in self.lookups:
            start = pw.start
            idx = set_index_of.get(start)
            if idx is None:
                idx = set_index_of[start] = set_index_fn(start, n_sets)
            set_indices.append(idx)
            uops = pw.uops
            size = size_of.get(uops)
            if size is None:
                size = size_of[uops] = -(-uops // uops_per_entry)
            entry_sizes.append(size)
            span = (start, pw.bytes_len)
            n_lines = lines_of.get(span)
            if n_lines is None:
                end = start + pw.bytes_len
                n_lines = (end - 1) // line_bytes - start // line_bytes + 1
                lines_of[span] = n_lines
            line_counts.append(n_lines)
        prepared = PreparedTrace(
            self.lookups, set_indices, entry_sizes, line_counts
        )
        self._derived[key] = (n, prepared)
        return prepared

    def unique_starts(self) -> set[int]:
        """Distinct PW start addresses (static code footprint in PWs)."""
        return {pw.start for pw in self.lookups}

    def slice(self, start: int, stop: int | None = None) -> "Trace":
        """A sub-trace sharing metadata (useful for warmup splits)."""
        return Trace(self.lookups[start:stop], self.metadata)

    # --- serialization -------------------------------------------------------

    def dump(self, stream: io.TextIOBase) -> None:
        """Write the trace in the v1 text format."""
        meta = self.metadata
        stream.write(f"{_HEADER}\n")
        stream.write(
            f"#app={meta.app} input={meta.input_name} seed={meta.seed}\n"
        )
        stream.write("start uops insts bytes branch contbr mispred\n")
        for pw in self.lookups:
            stream.write(
                f"{pw.start:x} {pw.uops} {pw.insts} {pw.bytes_len} "
                f"{int(pw.terminated_by_branch)} {int(pw.contains_branch)} "
                f"{int(pw.mispredicted)}\n"
            )

    def save(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            self.dump(handle)

    @classmethod
    def parse(cls, stream: Iterable[str]) -> "Trace":
        """Read a trace in the v1 text format."""
        lines = iter(stream)
        try:
            header = next(lines).rstrip("\n")
        except StopIteration:
            raise TraceError("empty trace stream") from None
        if header != _HEADER:
            raise TraceError(f"bad trace header: {header!r}")
        meta = TraceMetadata()
        try:
            meta_line = next(lines).rstrip("\n")
        except StopIteration:
            raise TraceError("trace truncated before metadata") from None
        if meta_line.startswith("#"):
            fields = dict(
                part.split("=", 1)
                for part in meta_line.lstrip("#").split()
                if "=" in part
            )
            meta = TraceMetadata(
                app=fields.get("app", "unknown"),
                input_name=fields.get("input", "default"),
                seed=int(fields.get("seed", "0")),
            )
            try:
                next(lines)  # column header line
            except StopIteration:
                raise TraceError("trace truncated before column header") from None
        lookups: list[PWLookup] = []
        for lineno, line in enumerate(lines, start=4):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (6, 7):
                raise TraceError(f"line {lineno}: expected 6-7 fields, got {len(parts)}")
            try:
                terminated = bool(int(parts[4]))
                if len(parts) == 7:
                    contains = bool(int(parts[5]))
                    mispredicted = bool(int(parts[6]))
                else:  # legacy 6-field rows: infer from termination
                    contains = terminated
                    mispredicted = bool(int(parts[5]))
                lookups.append(
                    PWLookup(
                        start=int(parts[0], 16),
                        uops=int(parts[1]),
                        insts=int(parts[2]),
                        bytes_len=int(parts[3]),
                        terminated_by_branch=terminated,
                        contains_branch=contains,
                        mispredicted=mispredicted,
                    )
                )
            except ValueError as exc:
                raise TraceError(f"line {lineno}: {exc}") from exc
        return cls(lookups, meta)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.parse(handle)

    @classmethod
    def from_lookups(
        cls, lookups: Sequence[PWLookup], app: str = "synthetic"
    ) -> "Trace":
        """Convenience constructor used heavily by tests."""
        return cls(list(lookups), TraceMetadata(app=app))
