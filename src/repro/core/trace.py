"""Trace containers and (de)serialization.

A :class:`Trace` is the simulated analogue of an Intel PT recording
(STEP 1 of the FURBYS procedure, Figure 6): the dynamic sequence of
prediction-window lookups the frontend issues, plus enough metadata to
drive the timing and power models.

Traces serialize to a simple line-oriented text format so they can be
saved, shipped, and diffed — mirroring the artifact's
``datacenterTrace`` directory:

.. code-block:: text

    #repro-trace v1
    #app=kafka input=default instructions=123456
    start uops insts bytes branch mispred
    40001000 6 5 24 1 0
    ...
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..errors import TraceError
from .pw import PWLookup

_HEADER = "#repro-trace v1"


@dataclass(frozen=True, slots=True)
class TraceMetadata:
    """Provenance of a trace: which app, which input, how it was made."""

    app: str = "unknown"
    input_name: str = "default"
    seed: int = 0
    description: str = ""


@dataclass(slots=True)
class Trace:
    """A dynamic PW lookup sequence with provenance metadata."""

    lookups: list[PWLookup]
    metadata: TraceMetadata = field(default_factory=TraceMetadata)

    def __len__(self) -> int:
        return len(self.lookups)

    def __iter__(self) -> Iterator[PWLookup]:
        return iter(self.lookups)

    def __getitem__(self, index: int) -> PWLookup:
        return self.lookups[index]

    # --- derived properties -------------------------------------------------

    @property
    def total_uops(self) -> int:
        return sum(pw.uops for pw in self.lookups)

    @property
    def total_instructions(self) -> int:
        return sum(pw.insts for pw in self.lookups)

    @property
    def total_branches(self) -> int:
        return sum(1 for pw in self.lookups if pw.terminated_by_branch)

    @property
    def total_mispredictions(self) -> int:
        return sum(1 for pw in self.lookups if pw.mispredicted)

    @property
    def branch_mpki(self) -> float:
        """Branches per kilo-instruction — comparable to Table II."""
        insts = self.total_instructions
        if insts == 0:
            return 0.0
        return 1000.0 * self.total_branches / insts

    def unique_starts(self) -> set[int]:
        """Distinct PW start addresses (static code footprint in PWs)."""
        return {pw.start for pw in self.lookups}

    def slice(self, start: int, stop: int | None = None) -> "Trace":
        """A sub-trace sharing metadata (useful for warmup splits)."""
        return Trace(self.lookups[start:stop], self.metadata)

    # --- serialization -------------------------------------------------------

    def dump(self, stream: io.TextIOBase) -> None:
        """Write the trace in the v1 text format."""
        meta = self.metadata
        stream.write(f"{_HEADER}\n")
        stream.write(
            f"#app={meta.app} input={meta.input_name} seed={meta.seed}\n"
        )
        stream.write("start uops insts bytes branch contbr mispred\n")
        for pw in self.lookups:
            stream.write(
                f"{pw.start:x} {pw.uops} {pw.insts} {pw.bytes_len} "
                f"{int(pw.terminated_by_branch)} {int(pw.contains_branch)} "
                f"{int(pw.mispredicted)}\n"
            )

    def save(self, path: str | Path) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            self.dump(handle)

    @classmethod
    def parse(cls, stream: Iterable[str]) -> "Trace":
        """Read a trace in the v1 text format."""
        lines = iter(stream)
        try:
            header = next(lines).rstrip("\n")
        except StopIteration:
            raise TraceError("empty trace stream") from None
        if header != _HEADER:
            raise TraceError(f"bad trace header: {header!r}")
        meta = TraceMetadata()
        try:
            meta_line = next(lines).rstrip("\n")
        except StopIteration:
            raise TraceError("trace truncated before metadata") from None
        if meta_line.startswith("#"):
            fields = dict(
                part.split("=", 1)
                for part in meta_line.lstrip("#").split()
                if "=" in part
            )
            meta = TraceMetadata(
                app=fields.get("app", "unknown"),
                input_name=fields.get("input", "default"),
                seed=int(fields.get("seed", "0")),
            )
            try:
                next(lines)  # column header line
            except StopIteration:
                raise TraceError("trace truncated before column header") from None
        lookups: list[PWLookup] = []
        for lineno, line in enumerate(lines, start=4):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (6, 7):
                raise TraceError(f"line {lineno}: expected 6-7 fields, got {len(parts)}")
            try:
                terminated = bool(int(parts[4]))
                if len(parts) == 7:
                    contains = bool(int(parts[5]))
                    mispredicted = bool(int(parts[6]))
                else:  # legacy 6-field rows: infer from termination
                    contains = terminated
                    mispredicted = bool(int(parts[5]))
                lookups.append(
                    PWLookup(
                        start=int(parts[0], 16),
                        uops=int(parts[1]),
                        insts=int(parts[2]),
                        bytes_len=int(parts[3]),
                        terminated_by_branch=terminated,
                        contains_branch=contains,
                        mispredicted=mispredicted,
                    )
                )
            except ValueError as exc:
                raise TraceError(f"line {lineno}: {exc}") from exc
        return cls(lookups, meta)

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        with open(path, "r", encoding="utf-8") as handle:
            return cls.parse(handle)

    @classmethod
    def from_lookups(
        cls, lookups: Sequence[PWLookup], app: str = "synthetic"
    ) -> "Trace":
        """Convenience constructor used heavily by tests."""
        return cls(list(lookups), TraceMetadata(app=app))
