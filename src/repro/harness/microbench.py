"""Per-stage microbenchmark of a single simulation run.

``repro bench`` times the whole representative batch; this module
answers the finer question — *where does one run spend its time?* — by
timing each stage of :func:`~repro.harness.runner.execute` separately:

* **trace generation** (CFG walk in :mod:`repro.workloads.generator`),
* **policy construction** (for offline policies this is the future
  index plus the FOO/FLACK flow-solver pass; for FURBYS the profiling
  simulation including Jenks classification),
* **trace preparation** (:meth:`~repro.core.trace.Trace.prepared`,
  the per-unique-PW derivation the fast loop runs on),
* the **fast pipeline loop** (:meth:`FrontendPipeline.run`),
* the **reference loop** (:meth:`FrontendPipeline.run_reference`,
  the unoptimized per-``step()`` baseline), and
* **policy callbacks** (time inside the policy's observation and
  decision hooks, measured with a delegating proxy in a separate
  instrumented run so the clean timings are undisturbed).

Loop timings are best-of-``repeats`` — on a noisy shared host the
minimum is the defensible estimate of the true cost.  Every arm's
:class:`~repro.core.stats.SimulationStats` are compared field-by-field
so a timing harness bug that changes results cannot go unnoticed.

Used by ``repro bench --micro`` / ``--profile`` and the CI microbench
smoke step (:func:`check_baseline` against
``benchmarks/microbench_baseline.json``).
"""

from __future__ import annotations

import cProfile
import dataclasses
import io
import pstats
from dataclasses import dataclass
from time import perf_counter
from typing import Sequence

from .. import stagetimer
from ..frontend.pipeline import FrontendPipeline
from ..uopcache.replacement import ReplacementPolicy
from ..workloads.registry import build_app_trace, get_profile, get_trace
from .bench import BENCH_APPS, BENCH_POLICIES
from .runner import RunRequest, _build_policy_and_hints

_HOOK_NAMES = (
    "on_lookup", "on_hit", "on_partial_hit", "on_miss",
    "on_insert", "on_evict", "should_bypass", "choose_victims",
)


class _TimedPolicy(ReplacementPolicy):
    """Delegating proxy that attributes wall-clock time to policy hooks.

    Every hook forwards to the wrapped policy, so decisions (and hence
    simulation results) are unchanged; only the time spent inside the
    hooks is accumulated.  Because the proxy overrides all hooks, the
    pipeline's skip-unobserved-hooks fast path is disabled for the
    instrumented run — which is exactly what we want: the no-op calls
    it would have skipped cost (and therefore time) nothing real.
    """

    def __init__(self, inner: ReplacementPolicy) -> None:
        super().__init__()
        self._inner = inner
        self.name = inner.name
        self.hook_seconds = 0.0
        self.hook_calls = 0

    def attach(self, cache) -> None:
        self._cache = cache
        self._inner.attach(cache)

    def __getattr__(self, item):
        # Harness introspection (e.g. FURBYS selection counters) reads
        # attributes off the pipeline's policy; forward to the real one.
        return getattr(self._inner, item)


def _make_timed_hook(name: str):
    def hook(self, *args, **kwargs):
        inner_hook = getattr(self._inner, name)
        started = perf_counter()
        result = inner_hook(*args, **kwargs)
        self.hook_seconds += perf_counter() - started
        self.hook_calls += 1
        return result

    hook.__name__ = name
    return hook


for _name in _HOOK_NAMES:
    setattr(_TimedPolicy, _name, _make_timed_hook(_name))


@dataclass(slots=True)
class MicrobenchResult:
    """Per-stage timings of one (app, policy) run."""

    app: str
    policy: str
    trace_len: int
    warmup: int
    repeats: int
    trace_gen_s: float
    policy_build_s: float
    #: stage -> seconds (and ``<stage>_calls`` counts) inside policy
    #: construction, from :mod:`repro.stagetimer`; empty for online
    #: policies, which build in constant time.
    policy_build_stages: dict
    prepare_s: float
    pipeline_s: float
    #: stage -> seconds inside the fast pipeline run (``frontend_sim``
    #: dispatch; ``sim_kernel`` when the vectorized kernel ran), from
    #: :mod:`repro.stagetimer` — the kernel vs. reference attribution.
    sim_stages: dict
    reference_s: float
    policy_hooks_s: float
    policy_hook_calls: int
    lookups_per_s: float
    reference_lookups_per_s: float
    speedup_vs_reference: float
    identical_to_reference: bool

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


def microbench_run(
    app: str,
    policy: str = "lru",
    *,
    trace_len: int = 20_000,
    warmup: int = 0,
    config: str = "zen3",
    repeats: int = 3,
) -> MicrobenchResult:
    """Time every stage of one simulation; see the module docstring."""
    request = RunRequest(
        app=app, policy=policy, trace_len=trace_len, warmup=warmup,
        config=config,
    )
    sim_config = request.build_config()

    # Stage: trace generation (deliberately bypasses the trace cache —
    # the point is to measure the CFG walk, not a dict lookup).
    started = perf_counter()
    trace = build_app_trace(get_profile(app), request.input_name, trace_len)
    trace_gen_s = perf_counter() - started

    # Stage: policy construction (future index + admission planning for
    # the offline policies, profiling simulation + Jenks for FURBYS),
    # with the per-stage breakdown captured from the stage timers.
    with stagetimer.capture() as build_stages:
        started = perf_counter()
        built_policy, hints = _build_policy_and_hints(request, sim_config, trace)
        policy_build_s = perf_counter() - started

    # Stage: prepared-trace derivation.  The freshly built trace has an
    # empty memo, so this times the real per-unique-PW pass; later
    # pipeline arms then share the memoized result, exactly as repeated
    # policy runs on one trace do in the experiment harness.
    probe = FrontendPipeline(sim_config, built_policy, hints=hints)
    started = perf_counter()
    trace.prepared(
        n_sets=probe.uop_cache.n_sets,
        uops_per_entry=sim_config.uop_cache.uops_per_entry,
        line_bytes=sim_config.icache.line_bytes,
        set_index_fn=probe.uop_cache._set_index,
    )
    prepare_s = perf_counter() - started

    # Stage: fast pipeline loop (best of ``repeats``).  Rebuilding the
    # pipeline re-attaches the policy, which resets its per-run state.
    stats = None
    pipeline_s = float("inf")
    sim_stages: dict = {}
    for _ in range(max(1, repeats)):
        pipeline = FrontendPipeline(sim_config, built_policy, hints=hints)
        with stagetimer.capture() as run_stages:
            started = perf_counter()
            stats = pipeline.run(trace, warmup=warmup)
            elapsed = perf_counter() - started
        if elapsed < pipeline_s:
            pipeline_s = elapsed
            sim_stages = dict(run_stages)

    # Stage: reference loop (the per-step() baseline the fast loop must
    # stay bit-identical to).
    reference_stats = None
    reference_s = float("inf")
    for _ in range(max(1, repeats)):
        pipeline = FrontendPipeline(sim_config, built_policy, hints=hints)
        started = perf_counter()
        reference_stats = pipeline.run_reference(trace, warmup=warmup)
        reference_s = min(reference_s, perf_counter() - started)

    # Stage: policy callbacks, via a separate instrumented run.
    timed = _TimedPolicy(built_policy)
    pipeline = FrontendPipeline(sim_config, timed, hints=hints)
    timed_stats = pipeline.run(trace, warmup=warmup)

    identical = (
        dataclasses.asdict(stats) == dataclasses.asdict(reference_stats)
        == dataclasses.asdict(timed_stats)
    )
    return MicrobenchResult(
        app=app,
        policy=policy,
        trace_len=trace_len,
        warmup=warmup,
        repeats=repeats,
        trace_gen_s=trace_gen_s,
        policy_build_s=policy_build_s,
        policy_build_stages={
            stage: (round(v, 6) if isinstance(v, float) else v)
            for stage, v in build_stages.items()
        },
        prepare_s=prepare_s,
        pipeline_s=pipeline_s,
        sim_stages={
            stage: (round(v, 6) if isinstance(v, float) else v)
            for stage, v in sim_stages.items()
        },
        reference_s=reference_s,
        policy_hooks_s=timed.hook_seconds,
        policy_hook_calls=timed.hook_calls,
        lookups_per_s=trace_len / pipeline_s,
        reference_lookups_per_s=trace_len / reference_s,
        speedup_vs_reference=reference_s / pipeline_s,
        identical_to_reference=identical,
    )


def microbench_batch(
    apps: Sequence[str] = BENCH_APPS,
    policies: Sequence[str] = BENCH_POLICIES,
    *,
    trace_len: int = 20_000,
    warmup: int = 0,
    config: str = "zen3",
    repeats: int = 3,
) -> dict:
    """Microbench every (app, policy) pair; returns a JSON-able report.

    The aggregate ``lookups_per_s`` (total lookups over total fast-loop
    time) is the number the CI smoke step guards with
    :func:`check_baseline`.  ``degraded_fallbacks`` snapshots the
    resilience fallback counters accumulated during the bench (shm /
    disk-write / quarantine events), so a bench that silently degraded
    is distinguishable from a clean one; ``sim_fallbacks`` carries the
    informational ``sim_fallback:*`` counters (runs that used the
    reference loop instead of a vectorized kernel) separately.
    """
    from . import resilience

    fallback_snapshot = resilience.global_counters()
    results = [
        microbench_run(
            app, policy, trace_len=trace_len, warmup=warmup,
            config=config, repeats=repeats,
        )
        for app in apps
        for policy in policies
    ]
    counter_deltas = resilience.counters_since(fallback_snapshot)
    total_pipeline_s = sum(r.pipeline_s for r in results)
    total_reference_s = sum(r.reference_s for r in results)
    total_build_s = sum(r.policy_build_s for r in results)
    total_trace_s = sum(r.trace_gen_s for r in results)
    total_lookups = trace_len * len(results)
    # The offline + profile-guided subset gets its own throughput so
    # the committed baseline can gate the offline kernel separately.
    from .runner import OFFLINE_POLICIES, PROFILE_POLICIES

    offline_names = set(OFFLINE_POLICIES) | set(PROFILE_POLICIES)
    offline_runs = [r for r in results if r.policy in offline_names]
    offline_pipeline_s = sum(r.pipeline_s for r in offline_runs)
    aggregate = {
        "runs": len(results),
        "trace_len": trace_len,
        "total_lookups": total_lookups,
        "total_pipeline_s": round(total_pipeline_s, 4),
        "total_reference_s": round(total_reference_s, 4),
        "trace_gen_s": round(total_trace_s, 4),
        "policy_build_s": round(total_build_s, 4),
        "prepare_s": round(sum(r.prepare_s for r in results), 4),
        "policy_hooks_s": round(sum(r.policy_hooks_s for r in results), 4),
        "lookups_per_s": round(total_lookups / total_pipeline_s, 1),
        # Policy-construction throughput, the same normalization as
        # lookups_per_s so one floor-style baseline guards it too.
        "policy_build_lookups_per_s": (
            round(total_lookups / total_build_s, 1) if total_build_s else None
        ),
        # Trace-construction throughput (cold CFG walks), same
        # normalization again for the baseline gate.
        "trace_build_lookups_per_s": (
            round(total_lookups / total_trace_s, 1) if total_trace_s else None
        ),
        # Fast-loop throughput over the offline + profile-guided arms
        # only (None when the batch has no such arm).
        "offline_sim_lookups_per_s": (
            round(trace_len * len(offline_runs) / offline_pipeline_s, 1)
            if offline_pipeline_s else None
        ),
        "speedup_vs_reference": round(total_reference_s / total_pipeline_s, 3),
        "identical_results": all(r.identical_to_reference for r in results),
        "degraded_fallbacks": {
            name: count for name, count in counter_deltas.items()
            if not name.startswith("sim_fallback:")
        },
        # Simulations that ran the reference loop instead of a kernel
        # (bit-identical, informational) — the instrumented policy-hook
        # arm always lands here, since the timing proxy is not a kernel
        # policy type.
        "sim_fallbacks": {
            name: count for name, count in counter_deltas.items()
            if name.startswith("sim_fallback:")
        },
    }
    return {"results": [r.to_json() for r in results], "aggregate": aggregate}


def policy_build_run(
    app: str,
    policy: str,
    *,
    trace_len: int = 20_000,
    config: str = "zen3",
) -> dict:
    """Time policy construction alone, with the stage breakdown.

    Unlike :func:`microbench_run` this pulls the trace from the shared
    registry cache, so a batch over several policies measures exactly
    what the experiment harness pays: the first offline policy builds
    the shared artifacts, later ones reuse them.
    """
    request = RunRequest(
        app=app, policy=policy, trace_len=trace_len, config=config
    )
    sim_config = request.build_config()
    trace = get_trace(app, request.input_name, trace_len)
    with stagetimer.capture() as stages:
        started = perf_counter()
        _build_policy_and_hints(request, sim_config, trace)
        build_s = perf_counter() - started
    return {
        "app": app,
        "policy": policy,
        "trace_len": trace_len,
        "policy_build_s": round(build_s, 4),
        "stages": {
            stage: (round(v, 6) if isinstance(v, float) else v)
            for stage, v in stages.items()
        },
    }


def policy_build_batch(
    apps: Sequence[str] = BENCH_APPS,
    policies: Sequence[str] = BENCH_POLICIES,
    *,
    trace_len: int = 20_000,
    config: str = "zen3",
) -> dict:
    """Policy-construction-only bench (``repro bench --stage policy_build``).

    Skips the simulation loops entirely; per-(app, policy) build times
    plus an aggregate in the same shape :func:`check_baseline` reads.
    """
    results = [
        policy_build_run(app, policy, trace_len=trace_len, config=config)
        for app in apps
        for policy in policies
    ]
    total_build_s = sum(r["policy_build_s"] for r in results)
    total_lookups = trace_len * len(results)
    stage_totals: dict[str, float | int] = {}
    for r in results:
        for stage, v in r["stages"].items():
            stage_totals[stage] = stage_totals.get(stage, 0) + v
    aggregate = {
        "runs": len(results),
        "trace_len": trace_len,
        "total_lookups": total_lookups,
        "policy_build_s": round(total_build_s, 4),
        "policy_build_lookups_per_s": (
            round(total_lookups / total_build_s, 1) if total_build_s else None
        ),
        "stages": {
            stage: (round(v, 4) if isinstance(v, float) else v)
            for stage, v in stage_totals.items()
        },
    }
    return {"results": results, "aggregate": aggregate}


def trace_build_run(
    app: str,
    *,
    input_name: str = "default",
    trace_len: int = 20_000,
    repeats: int = 3,
) -> dict:
    """Time cold trace construction alone, with the stage breakdown.

    Bypasses both the registry cache and the disk trace cache so every
    repeat pays the full CFG walk; ``stages`` carries the
    :mod:`repro.stagetimer` split (``cfg_build`` / ``trace_setup`` /
    ``trace_pilot`` / ``trace_walk``) from the best repeat.
    """
    profile = get_profile(app)
    best_s = float("inf")
    best_stages: dict = {}
    for _ in range(max(1, repeats)):
        with stagetimer.capture() as stages:
            started = perf_counter()
            build_app_trace(profile, input_name, trace_len)
            elapsed = perf_counter() - started
        if elapsed < best_s:
            best_s = elapsed
            best_stages = dict(stages)
    return {
        "app": app,
        "input": input_name,
        "trace_len": trace_len,
        "trace_build_s": round(best_s, 4),
        "trace_build_lookups_per_s": round(trace_len / best_s, 1),
        "stages": {
            stage: (round(v, 6) if isinstance(v, float) else v)
            for stage, v in best_stages.items()
        },
    }


def trace_build_batch(
    apps: Sequence[str] = BENCH_APPS,
    *,
    trace_len: int = 20_000,
    repeats: int = 3,
) -> dict:
    """Trace-construction-only bench (``repro bench --stage trace_build``).

    Per-app cold build times plus an aggregate in the same shape
    :func:`check_baseline` reads.
    """
    results = [
        trace_build_run(app, trace_len=trace_len, repeats=repeats)
        for app in apps
    ]
    total_build_s = sum(r["trace_build_s"] for r in results)
    total_lookups = trace_len * len(results)
    stage_totals: dict[str, float | int] = {}
    for r in results:
        for stage, v in r["stages"].items():
            stage_totals[stage] = stage_totals.get(stage, 0) + v
    aggregate = {
        "runs": len(results),
        "trace_len": trace_len,
        "total_lookups": total_lookups,
        "trace_build_s": round(total_build_s, 4),
        "trace_build_lookups_per_s": (
            round(total_lookups / total_build_s, 1) if total_build_s else None
        ),
        "stages": {
            stage: (round(v, 4) if isinstance(v, float) else v)
            for stage, v in stage_totals.items()
        },
    }
    return {"results": results, "aggregate": aggregate}


def frontend_sim_run(
    app: str,
    policy: str,
    *,
    trace_len: int = 20_000,
    config: str = "zen3",
    repeats: int = 3,
) -> dict:
    """Time the simulation loops alone, with the stage breakdown.

    Pulls the trace from the shared registry cache and pre-derives the
    prepared columns, so the three arms measure pure simulation:

    * ``kernel_s``    — :meth:`FrontendPipeline.run` with the
      :mod:`repro.frontend.simd` kernel enabled (the default path);
      ``stages`` carries the ``frontend_sim`` / ``sim_kernel`` split
      from the best repeat.
    * ``fastloop_s``  — the same entry point under
      ``REPRO_SIM_FASTPATH=0`` (the prepared-trace loop).
    * ``reference_s`` — :meth:`FrontendPipeline.run_reference`.
    """
    import os

    request = RunRequest(
        app=app, policy=policy, trace_len=trace_len, config=config
    )
    sim_config = request.build_config()
    trace = get_trace(app, request.input_name, trace_len)
    built_policy, hints = _build_policy_and_hints(request, sim_config, trace)
    probe = FrontendPipeline(sim_config, built_policy, hints=hints)
    trace.prepared(
        n_sets=probe.uop_cache.n_sets,
        uops_per_entry=sim_config.uop_cache.uops_per_entry,
        line_bytes=sim_config.icache.line_bytes,
        set_index_fn=probe.uop_cache._set_index,
    )

    kernel_stats = None
    kernel_s = float("inf")
    kernel_stages: dict = {}
    for _ in range(max(1, repeats)):
        pipeline = FrontendPipeline(sim_config, built_policy, hints=hints)
        with stagetimer.capture() as run_stages:
            started = perf_counter()
            kernel_stats = pipeline.run(trace)
            elapsed = perf_counter() - started
        if elapsed < kernel_s:
            kernel_s = elapsed
            kernel_stages = dict(run_stages)

    saved = os.environ.get("REPRO_SIM_FASTPATH")
    os.environ["REPRO_SIM_FASTPATH"] = "0"
    try:
        fastloop_stats = None
        fastloop_s = float("inf")
        for _ in range(max(1, repeats)):
            pipeline = FrontendPipeline(sim_config, built_policy, hints=hints)
            started = perf_counter()
            fastloop_stats = pipeline.run(trace)
            fastloop_s = min(fastloop_s, perf_counter() - started)
    finally:
        if saved is None:
            del os.environ["REPRO_SIM_FASTPATH"]
        else:
            os.environ["REPRO_SIM_FASTPATH"] = saved

    reference_stats = None
    reference_s = float("inf")
    for _ in range(max(1, repeats)):
        pipeline = FrontendPipeline(sim_config, built_policy, hints=hints)
        started = perf_counter()
        reference_stats = pipeline.run_reference(trace)
        reference_s = min(reference_s, perf_counter() - started)

    identical = (
        dataclasses.asdict(kernel_stats)
        == dataclasses.asdict(fastloop_stats)
        == dataclasses.asdict(reference_stats)
    )
    return {
        "app": app,
        "policy": policy,
        "trace_len": trace_len,
        "kernel_s": round(kernel_s, 4),
        "fastloop_s": round(fastloop_s, 4),
        "reference_s": round(reference_s, 4),
        "kernel_lookups_per_s": round(trace_len / kernel_s, 1),
        "speedup_vs_fastloop": round(fastloop_s / kernel_s, 3),
        "speedup_vs_reference": round(reference_s / kernel_s, 3),
        "identical_results": identical,
        "stages": {
            stage: (round(v, 6) if isinstance(v, float) else v)
            for stage, v in kernel_stages.items()
        },
    }


def frontend_sim_batch(
    apps: Sequence[str] = BENCH_APPS,
    policies: Sequence[str] = BENCH_POLICIES,
    *,
    trace_len: int = 20_000,
    config: str = "zen3",
    repeats: int = 3,
) -> dict:
    """Simulation-only bench (``repro bench --stage frontend_sim``).

    Per-(app, policy) kernel vs. fastloop vs. reference timings plus an
    aggregate in the same shape :func:`check_baseline` reads.
    """
    results = [
        frontend_sim_run(
            app, policy, trace_len=trace_len, config=config, repeats=repeats
        )
        for app in apps
        for policy in policies
    ]
    total_kernel_s = sum(r["kernel_s"] for r in results)
    total_fastloop_s = sum(r["fastloop_s"] for r in results)
    total_reference_s = sum(r["reference_s"] for r in results)
    total_lookups = trace_len * len(results)
    stage_totals: dict[str, float | int] = {}
    for r in results:
        for stage, v in r["stages"].items():
            stage_totals[stage] = stage_totals.get(stage, 0) + v
    aggregate = {
        "runs": len(results),
        "trace_len": trace_len,
        "total_lookups": total_lookups,
        "kernel_s": round(total_kernel_s, 4),
        "fastloop_s": round(total_fastloop_s, 4),
        "reference_s": round(total_reference_s, 4),
        "kernel_lookups_per_s": round(total_lookups / total_kernel_s, 1),
        "speedup_vs_fastloop": round(total_fastloop_s / total_kernel_s, 3),
        "speedup_vs_reference": round(total_reference_s / total_kernel_s, 3),
        "identical_results": all(r["identical_results"] for r in results),
        "stages": {
            stage: (round(v, 4) if isinstance(v, float) else v)
            for stage, v in stage_totals.items()
        },
    }
    return {"results": results, "aggregate": aggregate}


#: Offline + profile-guided arms the ``offline_sim`` stage times by
#: default: the optimal baselines (Belady, FOO), the paper's best
#: offline policy (FLACK) and both practical profile-guided policies.
OFFLINE_BENCH_POLICIES = ("belady", "foo-ohr", "flack", "furbys",
                          "thermometer")


def offline_sim_run(
    app: str,
    policy: str,
    *,
    trace_len: int = 20_000,
    config: str = "zen3",
    repeats: int = 3,
) -> dict:
    """:func:`frontend_sim_run` for one offline / profile-guided arm.

    Same three arms (kernel / fastloop / reference); policy
    construction — the future index, flow solver or profiling replay —
    happens once up front and is excluded from all three timings.
    """
    return frontend_sim_run(
        app, policy, trace_len=trace_len, config=config, repeats=repeats
    )


def offline_sim_batch(
    apps: Sequence[str] = BENCH_APPS,
    policies: Sequence[str] = OFFLINE_BENCH_POLICIES,
    *,
    trace_len: int = 20_000,
    config: str = "zen3",
    repeats: int = 3,
) -> dict:
    """Offline-simulation bench (``repro bench --stage offline_sim``).

    The ``frontend_sim`` shape over the offline + profile-guided arms;
    the aggregate additionally carries ``offline_sim_lookups_per_s``
    (same value as ``kernel_lookups_per_s``) so the committed baseline
    can gate the offline kernel separately from the online one.
    """
    report = frontend_sim_batch(
        apps, policies, trace_len=trace_len, config=config, repeats=repeats
    )
    aggregate = report["aggregate"]
    aggregate["offline_sim_lookups_per_s"] = aggregate["kernel_lookups_per_s"]
    return report


#: Mixed online + offline/profile-guided arms the ``fused_sim`` stage
#: sweeps by default — serving both families from one pass over the
#: shared columns is the fused path's whole point.
FUSED_BENCH_POLICIES = ("lru", "srrip", "ghrp", "belady", "flack",
                        "furbys")


def fused_sim_run(
    app: str,
    policies: Sequence[str] = FUSED_BENCH_POLICIES,
    *,
    trace_len: int = 20_000,
    config: str = "zen3",
    repeats: int = 3,
) -> dict:
    """Time one arm-fused sweep against the per-arm solo kernels.

    All arms' policies are built once up front (excluded from both
    timings, like the other sim stages); then:

    * ``fused_s``   — :func:`repro.frontend.simd_fused.run_group` over
      fresh pipelines for every arm, best of ``repeats``; ``stages``
      carries the ``frontend_sim`` / ``sim_fused`` split.
    * ``per_arm_s`` — the same arms through their individual
      :meth:`FrontendPipeline.run` kernels, best of ``repeats``.

    Both paths share the memoized trace columns, so the comparison is
    pure sweep time.  Results are compared field by field; a fused
    sweep that diverges from the per-arm kernels fails the bench.
    """
    from ..frontend import simd_fused

    requests = [
        RunRequest(app=app, policy=policy, trace_len=trace_len,
                   config=config)
        for policy in policies
    ]
    sim_config = requests[0].build_config()
    trace = get_trace(app, requests[0].input_name, trace_len)
    arms = [
        _build_policy_and_hints(request, sim_config, trace)
        for request in requests
    ]

    def _pipelines() -> list[FrontendPipeline]:
        # Rebuilding re-attaches each policy, resetting per-run state.
        return [
            FrontendPipeline(sim_config, built_policy, hints=hints)
            for built_policy, hints in arms
        ]

    fused_stats = None
    fused_s = float("inf")
    fused_stages: dict = {}
    for _ in range(max(1, repeats)):
        pipelines = _pipelines()
        with stagetimer.capture() as run_stages:
            started = perf_counter()
            fused_stats = simd_fused.run_group(pipelines, trace, 0)
            elapsed = perf_counter() - started
        if elapsed < fused_s:
            fused_s = elapsed
            fused_stages = dict(run_stages)

    per_arm_stats = None
    per_arm_s = float("inf")
    for _ in range(max(1, repeats)):
        pipelines = _pipelines()
        started = perf_counter()
        per_arm_stats = [pipeline.run(trace) for pipeline in pipelines]
        per_arm_s = min(per_arm_s, perf_counter() - started)

    identical = (
        [dataclasses.asdict(s) for s in fused_stats]
        == [dataclasses.asdict(s) for s in per_arm_stats]
    )
    lookups = trace_len * len(policies)
    return {
        "app": app,
        "policies": list(policies),
        "arms": len(policies),
        "trace_len": trace_len,
        "fused_s": round(fused_s, 4),
        "per_arm_s": round(per_arm_s, 4),
        "fused_sim_lookups_per_s": round(lookups / fused_s, 1),
        "speedup_vs_per_arm": round(per_arm_s / fused_s, 3),
        "identical_results": identical,
        "stages": {
            stage: (round(v, 6) if isinstance(v, float) else v)
            for stage, v in fused_stages.items()
        },
    }


def fused_sim_batch(
    apps: Sequence[str] = BENCH_APPS,
    policies: Sequence[str] = FUSED_BENCH_POLICIES,
    *,
    trace_len: int = 20_000,
    config: str = "zen3",
    repeats: int = 3,
) -> dict:
    """Arm-fused sweep bench (``repro bench --stage fused_sim``).

    One fused group per app (all ``policies`` as its arms) against the
    per-arm kernels, plus an aggregate whose
    ``fused_sim_lookups_per_s`` (total arm-lookups served over total
    fused sweep time) the committed baseline gates via
    :func:`check_baseline`.
    """
    results = [
        fused_sim_run(
            app, policies, trace_len=trace_len, config=config,
            repeats=repeats,
        )
        for app in apps
    ]
    total_fused_s = sum(r["fused_s"] for r in results)
    total_per_arm_s = sum(r["per_arm_s"] for r in results)
    total_lookups = trace_len * len(policies) * len(results)
    stage_totals: dict[str, float | int] = {}
    for r in results:
        for stage, v in r["stages"].items():
            stage_totals[stage] = stage_totals.get(stage, 0) + v
    aggregate = {
        "runs": len(results),
        "arms": len(policies),
        "trace_len": trace_len,
        "total_lookups": total_lookups,
        "fused_s": round(total_fused_s, 4),
        "per_arm_s": round(total_per_arm_s, 4),
        "fused_sim_lookups_per_s": (
            round(total_lookups / total_fused_s, 1) if total_fused_s
            else None
        ),
        "speedup_vs_per_arm": (
            round(total_per_arm_s / total_fused_s, 3) if total_fused_s
            else None
        ),
        "identical_results": all(r["identical_results"] for r in results),
        "stages": {
            stage: (round(v, 4) if isinstance(v, float) else v)
            for stage, v in stage_totals.items()
        },
    }
    return {"results": results, "aggregate": aggregate}


def profile_run(
    app: str,
    policy: str = "lru",
    *,
    trace_len: int = 20_000,
    warmup: int = 0,
    config: str = "zen3",
    top: int = 30,
) -> str:
    """cProfile one cold run end-to-end; returns the cumulative report.

    Profiles trace generation, policy construction and the fast
    pipeline loop together — the same work a cold
    :func:`~repro.harness.runner.execute` does — so hot-path
    regressions show up with their callers attached.
    """
    request = RunRequest(
        app=app, policy=policy, trace_len=trace_len, warmup=warmup,
        config=config,
    )
    sim_config = request.build_config()
    profiler = cProfile.Profile()
    profiler.enable()
    trace = build_app_trace(get_profile(app), request.input_name, trace_len)
    built_policy, hints = _build_policy_and_hints(request, sim_config, trace)
    pipeline = FrontendPipeline(sim_config, built_policy, hints=hints)
    pipeline.run(trace, warmup=warmup)
    profiler.disable()
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats("cumulative").print_stats(top)
    return stream.getvalue()


def check_baseline(
    aggregate: dict, baseline: dict, tolerance: float = 0.30
) -> tuple[bool, str]:
    """Compare a microbench aggregate against a committed baseline.

    Fails when any throughput both sides carry falls more than
    ``tolerance`` below the baseline's, or when any run's results
    diverged from the reference loop.  The default 30% slack absorbs
    shared-runner noise while still catching a real hot-path
    regression (the optimizations this guards are each >30%).

    The gated throughputs are ``lookups_per_s`` (fast pipeline loop),
    ``policy_build_lookups_per_s``, ``trace_build_lookups_per_s``,
    ``offline_sim_lookups_per_s`` and ``fused_sim_lookups_per_s`` —
    keys absent from either side are skipped, so one committed
    baseline file serves both the ``--micro`` aggregate and the
    per-stage aggregates (``--stage offline_sim`` / ``fused_sim``),
    each of which carries its own subset.
    """
    if not aggregate.get("identical_results", True):
        return False, "microbench: fast loop diverged from the reference loop"
    parts = []
    for key, label in (
        ("lookups_per_s", ""),
        ("policy_build_lookups_per_s", "policy build"),
        ("trace_build_lookups_per_s", "trace build"),
        ("offline_sim_lookups_per_s", "offline sim"),
        ("fused_sim_lookups_per_s", "fused sim"),
    ):
        baseline_rate = baseline.get(key)
        current_rate = aggregate.get(key)
        if not baseline_rate or current_rate is None:
            continue
        rate_floor = baseline_rate * (1.0 - tolerance)
        prefix = f"{label} at " if label else ""
        if current_rate < rate_floor:
            return False, (
                f"microbench: {prefix}{current_rate:.0f} lookups/s "
                f"is below the regression floor {rate_floor:.0f} "
                f"(baseline {baseline_rate:.0f} - {tolerance:.0%})"
            )
        shown = f"{label} " if label else ""
        parts.append(
            f"{shown}{current_rate:.0f} lookups/s >= floor {rate_floor:.0f} "
            f"(baseline {baseline_rate:.0f} - {tolerance:.0%})"
        )
    if not parts:
        return False, (
            "microbench: the aggregate and baseline share no throughput "
            "keys to compare"
        )
    return True, "microbench: " + "; ".join(parts)
