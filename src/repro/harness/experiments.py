"""One experiment function per table/figure of the paper.

Every function returns a dict with ``headers``/``rows`` (ready for
:func:`~repro.harness.reporting.format_table`) plus experiment-specific
summary fields.  Workload scope defaults to all 11 applications and can
be narrowed with the ``REPRO_APPS`` environment variable (comma list)
for smoke runs.

See DESIGN.md §5 for the experiment index and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from __future__ import annotations

import os
import time
from collections import defaultdict

from ..config import preset
from ..core.stats import SimulationStats
from ..power.mcpat import CorePowerModel
from ..power.ppw import performance_per_watt, ppw_gain
from ..profiling import profile_application
from ..profiling.hints import build_hints
from ..timing.model import TimingModel
from ..workloads.apps import app_names
from ..workloads.registry import DEFAULT_TRACE_LEN, get_trace
from .parallel import run_many
from .reporting import mean, percent
from .runner import RunRequest, run

#: Policies of the Figure 5/8/11 comparisons, display order.
COMPARISON_POLICIES = (
    "srrip", "ship++", "mockingjay", "ghrp", "thermometer", "furbys",
)
#: Offline reference policies.
OFFLINE_REFERENCES = ("foo-ohr", "belady", "flack")


def selected_apps() -> tuple[str, ...]:
    """Applications in scope (REPRO_APPS narrows for smoke runs)."""
    override = os.environ.get("REPRO_APPS")
    if not override:
        return app_names()
    chosen = tuple(name.strip() for name in override.split(",") if name.strip())
    return chosen or app_names()


def _baseline_request(app: str, **kwargs) -> RunRequest:
    return RunRequest(app=app, policy="lru", **kwargs)


def _baseline(app: str, **kwargs) -> SimulationStats:
    return run(_baseline_request(app, **kwargs))


def _run_map(
    requests: dict, on_error: str | None = None
) -> dict[object, SimulationStats]:
    """Execute a keyed request dict as one batch, results under the keys.

    This is how every figure goes through the batch engine: build all
    requests first, one :func:`run_many` call, then assemble the table
    from the returned stats.  ``on_error`` defaults to the environment
    (``REPRO_ON_ERROR``); with ``"skip"``, failed requests are dropped
    from the mapping — callers then render the rows they have, and the
    failures stay itemized in ``last_batch_report().faults``.
    """
    keys = list(requests)
    stats = run_many([requests[key] for key in keys], on_error=on_error)
    return {
        key: stat for key, stat in zip(keys, stats) if stat is not None
    }


# --------------------------------------------------------------------------
# Table I / Table II
# --------------------------------------------------------------------------

def tab1_parameters() -> dict:
    """Table I: the simulated machine configuration."""
    config = preset("zen3")
    rows = [
        ("CPU", f"{config.core.frequency_ghz}GHz, {config.core.issue_width}-wide OoO, "
                f"{config.core.rob_entries}-entry ROB, {config.core.rs_entries}-entry RS"),
        ("Decoder", f"{config.core.decode_width}-wide, "
                    f"{config.core.decode_latency_cycles}-cycle latency"),
        ("Branch", f"{config.branch.btb_entries}-entry {config.branch.btb_ways}-way BTB, "
                   f"{config.branch.ras_entries}-entry RAS, "
                   f"{config.branch.ibtb_entries}-entry IBTB"),
        ("Micro-op cache", f"{config.uop_cache.entries}-entry, {config.uop_cache.ways}-way, "
                           f"{config.uop_cache.uops_per_entry} uops/entry, "
                           f"inclusive={config.uop_cache.inclusive_with_icache}, "
                           f"{config.uop_cache.switch_delay}-cycle switch"),
        ("L1i", f"{config.icache.size_bytes // 1024}KiB, {config.icache.ways}-way, "
                f"{config.icache.line_bytes}B lines"),
    ]
    return {"headers": ("Parameter", "Value"), "rows": rows}


def tab2_workloads() -> dict:
    """Table II: applications with measured vs. target branch MPKI."""
    from ..workloads.apps import get_profile

    rows = []
    for app in selected_apps():
        trace = get_trace(app)
        measured = 1000.0 * trace.total_mispredictions / max(1, trace.total_instructions)
        profile = get_profile(app)
        rows.append((
            app, profile.description, f"{profile.branch_mpki:.2f}",
            f"{measured:.2f}", len(trace.unique_starts()),
        ))
    return {
        "headers": ("App", "Description", "MPKI (paper)", "MPKI (measured)",
                    "PW starts"),
        "rows": rows,
    }


# --------------------------------------------------------------------------
# Section III-B: miss classification
# --------------------------------------------------------------------------

def miss_classification() -> dict:
    """Cold/capacity/conflict split under LRU and FLACK (Section III-B)."""
    rows = []
    sums = defaultdict(float)
    apps = selected_apps()
    stats_by = _run_map({
        (app, policy): RunRequest(app=app, policy=policy, classify_misses=True)
        for app in apps
        for policy in ("lru", "flack")
    })
    for app in apps:
        lru = stats_by[(app, "lru")]
        flack = stats_by[(app, "flack")]
        row = [app]
        for stats, tag in ((lru, "lru"), (flack, "flack")):
            breakdown = stats.miss_breakdown
            total = max(1, breakdown.total)
            row += [f"{breakdown.cold / total:.3f}",
                    f"{breakdown.capacity / total:.3f}",
                    f"{breakdown.conflict / total:.3f}"]
            sums[f"{tag}_cold"] += breakdown.cold / total
            sums[f"{tag}_cap"] += breakdown.capacity / total
            sums[f"{tag}_conf"] += breakdown.conflict / total
        row.append(percent(flack.miss_reduction_vs(lru)))
        rows.append(tuple(row))
    n = len(apps)
    return {
        "headers": ("App", "LRU cold", "LRU cap", "LRU conf",
                    "FLACK cold", "FLACK cap", "FLACK conf", "FLACK red."),
        "rows": rows,
        "lru_capacity_fraction": sums["lru_cap"] / n,
        "lru_conflict_fraction": sums["lru_conf"] / n,
        "lru_cold_fraction": sums["lru_cold"] / n,
    }


# --------------------------------------------------------------------------
# Figure 2: perfect structures
# --------------------------------------------------------------------------

def fig2_perfect_structures() -> dict:
    """PPW gain of making one structure perfect (Figure 2)."""
    structures = ("uop_cache", "icache", "btb", "branch_predictor")
    rows = []
    sums = defaultdict(float)
    apps = selected_apps()
    requests: dict = {(app, None): _baseline_request(app) for app in apps}
    requests.update({
        (app, structure): RunRequest(app=app, policy="lru", perfect=(structure,))
        for app in apps
        for structure in structures
    })
    stats_by = _run_map(requests)
    config = preset("zen3")
    for app in apps:
        base = stats_by[(app, None)]
        row = [app]
        for structure in structures:
            gain = ppw_gain(config, stats_by[(app, structure)], base)
            sums[structure] += gain
            row.append(percent(gain))
        rows.append(tuple(row))
    summary = {s: sums[s] / len(apps) for s in structures}
    return {
        "headers": ("App", "perfect uop$", "perfect L1i", "perfect BTB",
                    "perfect BP"),
        "rows": rows,
        "mean_gains": summary,
    }


# --------------------------------------------------------------------------
# Figures 5 and 8: miss reductions
# --------------------------------------------------------------------------

def _miss_reduction_matrix(policies: tuple[str, ...], **req_kwargs) -> dict:
    rows = []
    sums = defaultdict(float)
    apps = selected_apps()
    stats_by = _run_map({
        (app, policy): RunRequest(app=app, policy=policy, **req_kwargs)
        for app in apps
        for policy in ("lru", *policies)
    })
    for app in apps:
        base = stats_by[(app, "lru")]
        row = [app]
        for policy in policies:
            reduction = stats_by[(app, policy)].miss_reduction_vs(base)
            sums[policy] += reduction
            row.append(percent(reduction, 1))
        rows.append(tuple(row))
    means = {policy: sums[policy] / len(apps) for policy in policies}
    return {
        "headers": ("App", *policies),
        "rows": rows,
        "mean_reductions": means,
    }


def fig5_existing_policies() -> dict:
    """Existing policies vs. the FLACK bound (Figure 5)."""
    return _miss_reduction_matrix(
        ("srrip", "ship++", "mockingjay", "ghrp", "thermometer", "flack")
    )


def fig8_furbys_miss() -> dict:
    """FURBYS miss reduction vs. every baseline (Figure 8)."""
    result = _miss_reduction_matrix((*COMPARISON_POLICIES, "flack"))
    means = result["mean_reductions"]
    flack = means.get("flack", 0.0)
    furbys = means.get("furbys", 0.0)
    result["furbys_fraction_of_flack"] = furbys / flack if flack else 0.0
    best_existing = max(
        (means[p] for p in COMPARISON_POLICIES if p != "furbys"), default=0.0
    )
    result["furbys_vs_best_existing"] = (
        furbys / best_existing if best_existing > 0 else float("inf")
    )
    return result


# --------------------------------------------------------------------------
# Figure 9 / Figure 17: performance-per-watt
# --------------------------------------------------------------------------

def _ppw_matrix(config_name: str) -> dict:
    config = preset(config_name)
    model = CorePowerModel(config)
    policies = COMPARISON_POLICIES
    rows = []
    sums = defaultdict(float)
    apps = selected_apps()
    stats_by = _run_map({
        (app, policy): RunRequest(app=app, policy=policy, config=config_name)
        for app in apps
        for policy in ("lru", *policies)
    })
    for app in apps:
        base = stats_by[(app, "lru")]
        row = [app]
        for policy in policies:
            gain = ppw_gain(config, stats_by[(app, policy)], base, model=model)
            sums[policy] += gain
            row.append(percent(gain))
        rows.append(tuple(row))
    return {
        "headers": ("App", *policies),
        "rows": rows,
        "mean_gains": {p: sums[p] / len(apps) for p in policies},
    }


def fig9_furbys_ppw() -> dict:
    """Performance-per-watt gains over LRU (Figure 9)."""
    return _ppw_matrix("zen3")


def fig17_zen4() -> dict:
    """PPW gains under the Zen4 frontend configuration (Figure 17)."""
    return _ppw_matrix("zen4")


# --------------------------------------------------------------------------
# Figure 10: FLACK ablation
# --------------------------------------------------------------------------

def fig10_flack_ablation() -> dict:
    """FOO → A → A+VC → A+VC+SB ladder vs. Belady, perfect icache."""
    steps = ("foo-ohr", "flack[A]", "flack[A+VC]", "flack[A+VC+SB]", "belady")
    result = _miss_reduction_matrix(steps, perfect=("icache",))
    means = result["mean_reductions"]
    result["flack_minus_belady"] = (
        means["flack[A+VC+SB]"] - means["belady"]
    )
    return result


# --------------------------------------------------------------------------
# Figure 11: IPC speedup
# --------------------------------------------------------------------------

def fig11_ipc() -> dict:
    """IPC speedup over LRU (Figure 11)."""
    config = preset("zen3")
    timing = TimingModel(config)
    policies = (*COMPARISON_POLICIES, "flack")
    rows = []
    sums = defaultdict(float)
    apps = selected_apps()
    stats_by = _run_map({
        (app, policy): RunRequest(app=app, policy=policy)
        for app in apps
        for policy in ("lru", *policies)
    })
    for app in apps:
        base = timing.evaluate(stats_by[(app, "lru")])
        row = [app]
        for policy in policies:
            result = timing.evaluate(stats_by[(app, policy)])
            speedup = result.speedup_vs(base)
            sums[policy] += speedup
            row.append(percent(speedup))
        rows.append(tuple(row))
    means = {p: sums[p] / len(apps) for p in policies}
    furbys, flack = means.get("furbys", 0.0), means.get("flack", 0.0)
    return {
        "headers": ("App", *policies),
        "rows": rows,
        "mean_speedups": means,
        "furbys_fraction_of_flack": furbys / flack if flack else 0.0,
    }


# --------------------------------------------------------------------------
# Figure 12: ISO-performance
# --------------------------------------------------------------------------

def fig12_iso_performance(
    scales: tuple[float, ...] = (1.0, 1.25, 1.5, 1.75, 2.0)
) -> dict:
    """LRU at scaled capacities vs. FURBYS at 512 entries (Figure 12)."""
    config = preset("zen3")
    timing = TimingModel(config)
    rows = []
    equivalents = []
    apps = selected_apps()

    def scaled_entries(scale: float) -> int:
        entries = round(config.uop_cache.entries * scale / config.uop_cache.ways)
        return entries * config.uop_cache.ways

    requests: dict = {}
    for app in apps:
        requests[(app, "base")] = _baseline_request(app)
        requests[(app, "furbys")] = RunRequest(app=app, policy="furbys")
        for scale in scales[1:]:
            requests[(app, scale)] = RunRequest(
                app=app, policy="lru", cache_entries=scaled_entries(scale)
            )
    stats_by = _run_map(requests)
    for app in apps:
        base = stats_by[(app, "base")]
        furbys = stats_by[(app, "furbys")]
        furbys_red = furbys.miss_reduction_vs(base)
        furbys_ipc = timing.evaluate(furbys).speedup_vs(timing.evaluate(base))
        row = [app, percent(furbys_red, 1)]
        equivalent = scales[-1]
        for scale in scales[1:]:
            reduction = stats_by[(app, scale)].miss_reduction_vs(base)
            row.append(percent(reduction, 1))
            if reduction >= furbys_red and scale < equivalent:
                equivalent = scale
        equivalents.append(equivalent)
        row.append(f"{equivalent:.2f}x")
        rows.append(tuple(row))
        del furbys_ipc
    return {
        "headers": ("App", "FURBYS@1x",
                    *[f"LRU@{s}x" for s in scales[1:]], "ISO size"),
        "rows": rows,
        "mean_equivalent_scale": mean(equivalents),
    }


# --------------------------------------------------------------------------
# Figures 13 and 14: energy
# --------------------------------------------------------------------------

def fig13_energy_breakdown(app: str = "clang") -> dict:
    """Per-core energy breakdown on one app (Figure 13)."""
    config = preset("zen3")
    model = CorePowerModel(config)
    base, furbys = run_many([
        _baseline_request(app), RunRequest(app=app, policy="furbys"),
    ])
    reference = model.breakdown(base, uop_cache_present=False)
    lru = model.breakdown(base)
    improved = model.breakdown(furbys)
    rows = []
    for name, bd in (("no uop cache", reference), ("LRU uop cache", lru),
                     ("FURBYS uop cache", improved)):
        rows.append((
            name,
            f"{bd.fraction('decoder'):.3f}",
            f"{bd.fraction('icache'):.3f}",
            f"{bd.fraction('uop_cache'):.3f}",
            f"{bd.fraction('backend_other') + bd.fraction('branch'):.3f}",
            f"{bd.total / reference.total:.3f}",
        ))
    return {
        "headers": ("Configuration", "decoder", "icache", "uop$", "other",
                    "energy vs no-uop$"),
        "rows": rows,
        "lru_saving": 1.0 - lru.total / reference.total,
        "furbys_extra_saving": 1.0 - improved.total / lru.total,
    }


def fig14_energy_reduction() -> dict:
    """Where FURBYS's energy reduction comes from (Figure 14)."""
    config = preset("zen3")
    model = CorePowerModel(config)
    component_sums: dict[str, float] = defaultdict(float)
    rows = []
    apps = selected_apps()
    stats_by = _run_map({
        (app, policy): RunRequest(app=app, policy=policy)
        for app in apps
        for policy in ("lru", "furbys")
    })
    for app in apps:
        base_bd = model.breakdown(stats_by[(app, "lru")])
        furbys_bd = model.breakdown(stats_by[(app, "furbys")])
        deltas = {
            name: base_bd.as_dict()[name] - furbys_bd.as_dict()[name]
            for name in base_bd.as_dict()
        }
        total_saved = sum(deltas.values())
        row = [app]
        for name in ("decoder", "icache", "uop_cache"):
            share = deltas[name] / total_saved if total_saved > 0 else 0.0
            component_sums[name] += share
            row.append(f"{share:.2f}")
        row.append(f"{total_saved / base_bd.total * 100:+.2f}%")
        rows.append(tuple(row))
    n = len(apps)
    return {
        "headers": ("App", "decoder share", "icache share", "uop$ share",
                    "total saving"),
        "rows": rows,
        "mean_shares": {k: v / n for k, v in component_sums.items()},
    }


# --------------------------------------------------------------------------
# Figure 15: offline profile sources
# --------------------------------------------------------------------------

def fig15_profile_sources() -> dict:
    """FURBYS trained on Belady/FOO/FLACK decisions (Figure 15)."""
    sources = ("belady", "foo", "flack")
    rows = []
    sums = defaultdict(float)
    apps = selected_apps()
    requests: dict = {(app, None): _baseline_request(app) for app in apps}
    requests.update({
        (app, source): RunRequest(app=app, policy="furbys", profile_source=source)
        for app in apps
        for source in sources
    })
    stats_by = _run_map(requests)
    for app in apps:
        base = stats_by[(app, None)]
        row = [app]
        for source in sources:
            reduction = stats_by[(app, source)].miss_reduction_vs(base)
            sums[source] += reduction
            row.append(percent(reduction, 1))
        rows.append(tuple(row))
    means = {s: sums[s] / len(apps) for s in sources}
    return {
        "headers": ("App", *[f"profile={s}" for s in sources]),
        "rows": rows,
        "mean_reductions": means,
        "flack_advantage_over_belady": means["flack"] - means["belady"],
        "flack_advantage_over_foo": means["flack"] - means["foo"],
    }


# --------------------------------------------------------------------------
# Figure 16: size / associativity sensitivity
# --------------------------------------------------------------------------

def fig16_size_assoc(
    entry_counts: tuple[int, ...] = (256, 512, 1024, 2048),
    way_counts: tuple[int, ...] = (4, 16),
) -> dict:
    """FURBYS vs. the strongest baselines across geometries (Figure 16)."""
    rows = []
    configs: list[tuple[str, dict]] = []
    for entries in entry_counts:
        configs.append((f"{entries}e/8w", {"cache_entries": entries}))
    for ways in way_counts:
        configs.append((f"512e/{ways}w", {"cache_ways": ways}))
    gaps = []
    apps = selected_apps()
    stats_by = _run_map({
        (app, label, policy): RunRequest(app=app, policy=policy, **overrides)
        for app in apps
        for label, overrides in configs
        for policy in ("lru", "furbys", "ghrp")
    })
    for app in apps:
        row = [app]
        for label, overrides in configs:
            base = stats_by[(app, label, "lru")]
            furbys_red = stats_by[(app, label, "furbys")].miss_reduction_vs(base)
            ghrp_red = stats_by[(app, label, "ghrp")].miss_reduction_vs(base)
            gaps.append(furbys_red - ghrp_red)
            row.append(f"{furbys_red * 100:+.1f}/{ghrp_red * 100:+.1f}")
        rows.append(tuple(row))
    return {
        "headers": ("App", *[f"{label} (FURBYS/GHRP %)" for label, _ in configs]),
        "rows": rows,
        "mean_gap_over_ghrp": mean(gaps),
    }


# --------------------------------------------------------------------------
# Figure 18: cross-validation
# --------------------------------------------------------------------------

def fig18_cross_validation(
    train_inputs: tuple[str, ...] = ("default", "alt-seed"),
    test_input: str = "mixed-load",
) -> dict:
    """Train the profile on some inputs, evaluate on another (Figure 18)."""
    rows = []
    ratios = []
    cross_reductions = []
    apps = selected_apps()
    requests: dict = {}
    for app in apps:
        requests[(app, "base")] = _baseline_request(app, input_name=test_input)
        requests[(app, "same")] = RunRequest(
            app=app, policy="furbys", input_name=test_input
        )
        requests[(app, "cross")] = RunRequest(
            app=app, policy="furbys", input_name=test_input,
            profile_inputs=train_inputs,
        )
    stats_by = _run_map(requests)
    for app in apps:
        base = stats_by[(app, "base")]
        same_red = stats_by[(app, "same")].miss_reduction_vs(base)
        cross_red = stats_by[(app, "cross")].miss_reduction_vs(base)
        ratio = cross_red / same_red if same_red > 0 else 0.0
        ratios.append(ratio)
        cross_reductions.append(cross_red)
        rows.append((app, percent(same_red, 1), percent(cross_red, 1),
                     f"{ratio:.2f}"))
    return {
        "headers": ("App", "same-input red.", "cross-input red.",
                    "cross/same"),
        "rows": rows,
        "mean_ratio": mean(ratios),
        "mean_cross_reduction": mean(cross_reductions),
    }


# --------------------------------------------------------------------------
# Figure 19: weight-group bits
# --------------------------------------------------------------------------

def fig19_weight_groups(bit_widths: tuple[int, ...] = (1, 2, 3, 4, 6, 8)) -> dict:
    """Miss reduction vs. hint width (Figure 19)."""
    rows = []
    sums = defaultdict(float)
    apps = selected_apps()
    requests: dict = {(app, None): _baseline_request(app) for app in apps}
    requests.update({
        (app, bits): RunRequest(app=app, policy="furbys", hint_bits=bits)
        for app in apps
        for bits in bit_widths
    })
    stats_by = _run_map(requests)
    for app in apps:
        base = stats_by[(app, None)]
        row = [app]
        for bits in bit_widths:
            reduction = stats_by[(app, bits)].miss_reduction_vs(base)
            sums[bits] += reduction
            row.append(percent(reduction, 1))
        rows.append(tuple(row))
    return {
        "headers": ("App", *[f"{b} bits" for b in bit_widths]),
        "rows": rows,
        "mean_by_bits": {b: sums[b] / len(apps) for b in bit_widths},
    }


# --------------------------------------------------------------------------
# Figure 20: pitfall detector depth
# --------------------------------------------------------------------------

def fig20_pitfall_depth(depths: tuple[int, ...] = (0, 1, 2, 4, 8)) -> dict:
    """Miss reduction vs. miss-pitfall detector depth (Figure 20)."""
    rows = []
    sums = defaultdict(float)
    apps = selected_apps()
    requests: dict = {(app, None): _baseline_request(app) for app in apps}
    requests.update({
        (app, depth): RunRequest(
            app=app, policy="furbys", furbys_pitfall_depth=depth
        )
        for app in apps
        for depth in depths
    })
    stats_by = _run_map(requests)
    for app in apps:
        base = stats_by[(app, None)]
        row = [app]
        for depth in depths:
            reduction = stats_by[(app, depth)].miss_reduction_vs(base)
            sums[depth] += reduction
            row.append(percent(reduction, 1))
        rows.append(tuple(row))
    return {
        "headers": ("App", *[f"depth {d}" for d in depths]),
        "rows": rows,
        "mean_by_depth": {d: sums[d] / len(apps) for d in depths},
    }


# --------------------------------------------------------------------------
# Figure 21 + Section VI-C: bypass and coverage
# --------------------------------------------------------------------------

def fig21_bypass() -> dict:
    """FURBYS with and without the bypass mechanism (Figure 21)."""
    rows = []
    deltas = []
    bypass_fractions = []
    apps = selected_apps()
    requests: dict = {}
    for app in apps:
        requests[(app, "base")] = _baseline_request(app)
        requests[(app, True)] = RunRequest(
            app=app, policy="furbys", furbys_bypass=True
        )
        requests[(app, False)] = RunRequest(
            app=app, policy="furbys", furbys_bypass=False
        )
    stats_by = _run_map(requests)
    for app in apps:
        base = stats_by[(app, "base")]
        on = stats_by[(app, True)]
        off = stats_by[(app, False)]
        red_on = on.miss_reduction_vs(base)
        red_off = off.miss_reduction_vs(base)
        deltas.append(red_on - red_off)
        bypass_fractions.append(on.bypass_fraction)
        rows.append((app, percent(red_on, 1), percent(red_off, 1),
                     percent(red_on - red_off, 2), f"{on.bypass_fraction:.2f}"))
    return {
        "headers": ("App", "bypass on", "bypass off", "delta",
                    "bypassed insertions"),
        "rows": rows,
        "mean_delta": mean(deltas),
        "mean_bypass_fraction": mean(bypass_fractions),
    }


def sec6c_coverage() -> dict:
    """Replacement coverage: FURBYS vs. SRRIP-fallback decisions."""
    rows = []
    coverages = []
    apps = selected_apps()
    all_stats = run_many(
        [RunRequest(app=app, policy="furbys") for app in apps]
    )
    for app, stats in zip(apps, all_stats):
        coverages.append(stats.policy_coverage)
        rows.append((app, f"{stats.policy_coverage:.3f}",
                     f"{stats.bypass_fraction:.3f}"))
    return {
        "headers": ("App", "FURBYS victim coverage", "bypass fraction"),
        "rows": rows,
        "mean_coverage": mean(coverages),
    }


# --------------------------------------------------------------------------
# Figure 22: hit rate by hotness class
# --------------------------------------------------------------------------

def fig22_hotness(app: str = "kafka") -> dict:
    """Per-policy hit rate over PW hotness deciles on one app (Figure 22)."""
    from ..frontend.pipeline import FrontendPipeline
    from ..offline.flack import FLACKPolicy
    from ..policies import make_policy
    from ..policies.furbys import FurbysPolicy

    config = preset("zen3")
    trace = get_trace(app)
    warmup = len(trace) // 3

    def hit_stats_for(policy, hints=None):
        pipeline = FrontendPipeline(config, policy, hints=hints,
                                    record_hit_rates=True)
        pipeline.run(trace, warmup=warmup)
        assert pipeline.pw_hit_stats is not None
        return pipeline.pw_hit_stats

    profile = profile_application(trace, config)
    runs = {
        "lru": hit_stats_for(make_policy("lru")),
        "srrip": hit_stats_for(make_policy("srrip")),
        "furbys": hit_stats_for(FurbysPolicy(), hints=profile.hints),
        "flack": hit_stats_for(FLACKPolicy(trace, config.uop_cache)),
    }
    # Sort PWs by total access volume (hot -> cold), split into deciles.
    reference = runs["lru"]
    ranked = sorted(reference, key=lambda s: -reference[s][1])
    deciles = 10
    rows = []
    for d in range(deciles):
        lo = len(ranked) * d // deciles
        hi = len(ranked) * (d + 1) // deciles
        bucket = ranked[lo:hi]
        row = [f"{d * 10}-{(d + 1) * 10}%"]
        for name, stats in runs.items():
            hit = sum(stats.get(s, (0, 0))[0] for s in bucket)
            total = sum(stats.get(s, (0, 1))[1] for s in bucket)
            row.append(f"{hit / max(1, total):.3f}")
        rows.append(tuple(row))
    return {
        "headers": ("Access-rank decile", *runs.keys()),
        "rows": rows,
        "app": app,
    }


# --------------------------------------------------------------------------
# Section VII: non-inclusive micro-op cache
# --------------------------------------------------------------------------

def sec7_noninclusive() -> dict:
    """IPC speedup with a non-inclusive micro-op cache (Section VII)."""
    config = preset("zen3")
    timing = TimingModel(config)
    rows = []
    inclusive_speedups = []
    noninclusive_speedups = []
    apps = selected_apps()
    stats_by = _run_map({
        (app, policy, inclusive): RunRequest(
            app=app, policy=policy, inclusive=inclusive
        )
        for app in apps
        for policy in ("lru", "furbys")
        for inclusive in (True, False)
    })
    for app in apps:
        base_incl = timing.evaluate(stats_by[(app, "lru", True)])
        furbys_incl = timing.evaluate(stats_by[(app, "furbys", True)])
        base_non = timing.evaluate(stats_by[(app, "lru", False)])
        furbys_non = timing.evaluate(stats_by[(app, "furbys", False)])
        s_incl = furbys_incl.speedup_vs(base_incl)
        s_non = furbys_non.speedup_vs(base_non)
        inclusive_speedups.append(s_incl)
        noninclusive_speedups.append(s_non)
        rows.append((app, percent(s_incl), percent(s_non)))
    return {
        "headers": ("App", "inclusive IPC gain", "non-inclusive IPC gain"),
        "rows": rows,
        "mean_inclusive": mean(inclusive_speedups),
        "mean_noninclusive": mean(noninclusive_speedups),
    }


# --------------------------------------------------------------------------
# Ablation benches beyond the paper (DESIGN.md §6)
# --------------------------------------------------------------------------

def abl_jenks_vs_uniform() -> dict:
    """Jenks natural breaks vs. equal-width hit-rate binning."""
    from ..frontend.pipeline import FrontendPipeline
    from ..policies.furbys import FurbysPolicy

    config = preset("zen3")
    rows = []
    deltas = []
    apps = selected_apps()
    stats_by = _run_map({
        (app, policy): RunRequest(app=app, policy=policy)
        for app in apps
        for policy in ("lru", "furbys")
    })
    for app in apps:
        trace = get_trace(app)
        warmup = len(trace) // 3
        base = stats_by[(app, "lru")]
        profile = profile_application(trace, config)
        # Equal-width binning of the same hit rates.
        uniform_hints = {
            start: min(7, int(rate * 8))
            for start, rate in profile.hit_rates.items()
            if start in profile.hints
        }
        def evaluate(hints):
            pipeline = FrontendPipeline(config, FurbysPolicy(), hints=hints)
            return pipeline.run(trace, warmup=warmup)
        jenks_red = stats_by[(app, "furbys")].miss_reduction_vs(base)
        uniform_red = evaluate(uniform_hints).miss_reduction_vs(base)
        deltas.append(jenks_red - uniform_red)
        rows.append((app, percent(jenks_red, 1), percent(uniform_red, 1)))
    return {
        "headers": ("App", "Jenks", "equal-width"),
        "rows": rows,
        "mean_jenks_advantage": mean(deltas),
    }


def abl_weight_scope() -> dict:
    """Per-set vs. global weight computation."""
    rows = []
    deltas = []
    apps = selected_apps()
    requests: dict = {(app, "base"): _baseline_request(app) for app in apps}
    requests.update({
        (app, scope): RunRequest(app=app, policy="furbys", weight_scope=scope)
        for app in apps
        for scope in ("per_set", "global")
    })
    stats_by = _run_map(requests)
    for app in apps:
        base = stats_by[(app, "base")]
        r_set = stats_by[(app, "per_set")].miss_reduction_vs(base)
        r_glob = stats_by[(app, "global")].miss_reduction_vs(base)
        deltas.append(r_set - r_glob)
        rows.append((app, percent(r_set, 1), percent(r_glob, 1)))
    return {
        "headers": ("App", "per-set", "global"),
        "rows": rows,
        "mean_per_set_advantage": mean(deltas),
    }


def abl_extended_baselines() -> dict:
    """Beyond-the-paper baselines: DRRIP set-dueling and Hawkeye.

    Both belong to the related-work families the paper argues inherit
    Belady's blind spots on the micro-op cache (Section VIII); this
    bench verifies they land in the same near-LRU band as the Figure 5
    policies rather than closing the FURBYS gap.
    """
    result = _miss_reduction_matrix(("drrip", "hawkeye", "furbys"))
    means = result["mean_reductions"]
    result["furbys_beats_extended"] = (
        means["furbys"] >= max(means["drrip"], means["hawkeye"])
    )
    return result


def abl_keep_larger() -> dict:
    """Keep-larger rule for overlapping PWs, on vs off (DESIGN.md §6).

    With the rule off, the latest same-start window always overwrites
    the resident one, so intermediate exit points are repeatedly lost
    and re-decoded.
    """
    rows = []
    deltas = []
    apps = selected_apps()
    stats_by = _run_map({
        (app, policy, keep): RunRequest(app=app, policy=policy, keep_larger=keep)
        for app in apps
        for policy in ("lru", "furbys")
        for keep in (True, False)
    })
    for app in apps:
        base_on = stats_by[(app, "lru", True)]
        base_off = stats_by[(app, "lru", False)]
        on = stats_by[(app, "furbys", True)].miss_reduction_vs(base_on)
        off = stats_by[(app, "furbys", False)].miss_reduction_vs(base_off)
        lru_delta = base_off.uops_missed / max(1, base_on.uops_missed) - 1.0
        deltas.append(lru_delta)
        rows.append((app, percent(on, 1), percent(off, 1),
                     percent(lru_delta, 2)))
    return {
        "headers": ("App", "FURBYS (keep-larger)", "FURBYS (overwrite)",
                    "LRU miss delta when off"),
        "rows": rows,
        "mean_lru_miss_delta_when_off": mean(deltas),
    }


def abl_async_window(delays: tuple[int, ...] = (0, 2, 5, 10)) -> dict:
    """Decode-pipeline depth (asynchrony window) sensitivity (DESIGN.md §6).

    Longer insertion delays turn short-reuse lookups into unavoidable
    misses; FLACK's asynchrony handling should degrade more gracefully
    than LRU.
    """
    rows = []
    lru_by_delay = defaultdict(list)
    flack_by_delay = defaultdict(list)
    apps = selected_apps()
    stats_by = _run_map({
        (app, policy, delay): RunRequest(
            app=app, policy=policy, insertion_delay=delay
        )
        for app in apps
        for policy in ("lru", "flack")
        for delay in delays
    })
    for app in apps:
        row = [app]
        for delay in delays:
            lru = stats_by[(app, "lru", delay)]
            flack = stats_by[(app, "flack", delay)]
            lru_by_delay[delay].append(lru.uop_miss_rate)
            flack_by_delay[delay].append(flack.uop_miss_rate)
            row.append(f"{lru.uop_miss_rate:.3f}/{flack.uop_miss_rate:.3f}")
        rows.append(tuple(row))
    return {
        "headers": ("App", *[f"delay {d} (LRU/FLACK)" for d in delays]),
        "rows": rows,
        "mean_lru_by_delay": {d: mean(v) for d, v in lru_by_delay.items()},
        "mean_flack_by_delay": {d: mean(v) for d, v in flack_by_delay.items()},
    }


def abl_online_scale(trace_len: int = 1_000_000) -> dict:
    """Online policies at production scale: 1M-lookup traces (extension).

    The paper's data-center recordings are hundreds of millions of
    micro-ops; the default experiment length trades that for iteration
    speed.  With the columnar trace engine and the vectorized
    simulation kernel (:mod:`repro.frontend.simd`) million-lookup
    traces are cheap enough to be this figure's *default* scale, so it
    re-checks the Figure 5 online-policy ordering (SRRIP/GHRP/random
    vs. LRU) at ~22x the default length, where warmup transients have
    fully decayed and capacity pressure is closer to the deployments.

    ``REPRO_TRACE_LEN`` still wins when set, so smoke runs stay
    smoke-sized.
    """
    if os.environ.get("REPRO_TRACE_LEN"):
        trace_len = DEFAULT_TRACE_LEN
    result = _miss_reduction_matrix(
        ("srrip", "random", "ghrp"), trace_len=trace_len
    )
    result["trace_len"] = trace_len
    return result


def abl_offline_scale(trace_len: int = 1_000_000) -> dict:
    """Offline + profile-guided arms at 1M-lookup scale (extension).

    Companion to :func:`abl_online_scale` for the paper's headline
    arms: the Belady bound, FLACK and the deployable FURBYS /
    Thermometer policies.  These were previously too slow to run at
    production scale — each lookup pays future-index or hint/RRPV
    bookkeeping on top of the cache model — but the offline kernel
    specializations (:mod:`repro.frontend.simd_offline`) replay them
    columnar, so million-lookup traces are this figure's default.
    It re-checks the FLACK-bound / FURBYS / Thermometer miss-reduction
    ordering (Figures 5 and 8) at ~22x the default length.

    ``REPRO_TRACE_LEN`` still wins when set, so smoke runs stay
    smoke-sized.
    """
    if os.environ.get("REPRO_TRACE_LEN"):
        trace_len = DEFAULT_TRACE_LEN
    result = _miss_reduction_matrix(
        ("belady", "flack", "furbys", "thermometer"), trace_len=trace_len
    )
    result["trace_len"] = trace_len
    return result


#: Registry used by the CLI and the bench harness.
EXPERIMENTS = {
    "tab1": tab1_parameters,
    "tab2": tab2_workloads,
    "miss-classes": miss_classification,
    "fig2": fig2_perfect_structures,
    "fig5": fig5_existing_policies,
    "fig8": fig8_furbys_miss,
    "fig9": fig9_furbys_ppw,
    "fig10": fig10_flack_ablation,
    "fig11": fig11_ipc,
    "fig12": fig12_iso_performance,
    "fig13": fig13_energy_breakdown,
    "fig14": fig14_energy_reduction,
    "fig15": fig15_profile_sources,
    "fig16": fig16_size_assoc,
    "fig17": fig17_zen4,
    "fig18": fig18_cross_validation,
    "fig19": fig19_weight_groups,
    "fig20": fig20_pitfall_depth,
    "fig21": fig21_bypass,
    "fig22": fig22_hotness,
    "sec6c": sec6c_coverage,
    "sec7": sec7_noninclusive,
    "abl-jenks": abl_jenks_vs_uniform,
    "abl-scope": abl_weight_scope,
    "abl-keep-larger": abl_keep_larger,
    "abl-async": abl_async_window,
    "abl-extended": abl_extended_baselines,
    "abl-online-scale": abl_online_scale,
    "abl-offline-scale": abl_offline_scale,
}


def run_recorded(
    figure: str,
    *,
    ledger: str | None = None,
    name: str | None = None,
    note: str = "",
    apps: tuple[str, ...] | None = None,
    policies: tuple[str, ...] | None = None,
    trace_len: int | None = None,
) -> dict:
    """Run one experiment under a durable ledger recording.

    Every ``run_many`` issued by the experiment journals into a new
    ledger row (see :mod:`repro.harness.ledger`); the returned summary
    carries the experiment id so ``repro experiments resume <id>`` can
    pick up an interrupted run.  ``figure`` is any :data:`EXPERIMENTS`
    key, or the special name ``"bench"`` — a representative
    app x policy grid (honouring ``apps``/``policies``/``trace_len``)
    that the chaos-resume proof and tests use as a fast, figure-shaped
    workload.
    """
    from .ledger import ExperimentRun

    if figure != "bench" and figure not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {figure!r}; try 'repro list' or 'bench'"
        )
    started = time.perf_counter()
    with ExperimentRun(name or figure, path=ledger, note=note) as record:
        if figure == "bench":
            from .bench import BENCH_APPS, BENCH_POLICIES, representative_requests

            requests = representative_requests(
                apps=apps or BENCH_APPS,
                policies=policies or BENCH_POLICIES,
                trace_len=trace_len,
            )
            run_many(requests)
            result = None
        else:
            result = EXPERIMENTS[figure]()
    from .parallel import last_batch_report

    report = last_batch_report()
    summary = {
        "id": record.experiment_id,
        "name": name or figure,
        "state": record.state,
        "elapsed_s": round(time.perf_counter() - started, 3),
    }
    if record.ledger is None:
        summary["state"] = "unrecorded (REPRO_LEDGER=0)"
    if report is not None:
        summary["requests"] = report.requests
        summary["unique"] = report.unique
        summary["executed"] = report.executed
        summary["faults"] = report.faults.to_json()
    if result is not None:
        summary["result"] = result
    return summary
