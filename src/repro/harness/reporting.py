"""Plain-text rendering of experiment results.

Each experiment returns rows of plain Python values; these helpers
render them as aligned ASCII tables, which is what the benches print
(the paper's figures, as rows/series).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def percent(value: float, digits: int = 2) -> str:
    """Format a ratio as a signed percentage string."""
    return f"{value * 100:+.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_rows(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    fmt: str = "table",
    *,
    title: str | None = None,
) -> str:
    """Render rows as ``table`` (aligned ASCII), ``csv``, or ``json``.

    The ledger query CLI funnels every listing through this so the same
    rows can feed a terminal, a spreadsheet, or a script.  ``json``
    emits a list of objects keyed by header; ``csv`` quotes per RFC via
    the stdlib writer.  ``title`` is only used by the table format.
    """
    if fmt == "table":
        return format_table(headers, rows, title=title)
    materialized = [list(row) for row in rows]
    if fmt == "csv":
        import csv
        import io

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(headers)
        writer.writerows(materialized)
        return buffer.getvalue().rstrip("\n")
    if fmt == "json":
        import json

        return json.dumps(
            [dict(zip(headers, row)) for row in materialized], indent=2
        )
    raise ValueError(f"unknown format {fmt!r}; expected table, csv, or json")


def bar_chart(
    items: Sequence[tuple[str, float]],
    *,
    width: int = 44,
    unit: str = "%",
    scale: float = 100.0,
    title: str | None = None,
) -> str:
    """Render labelled values as a horizontal ASCII bar chart.

    Negative values draw left of the axis.  ``scale`` converts raw
    values into the displayed unit (default: ratios → percent), so the
    mean-gain dictionaries the experiments return plot directly::

        bar_chart(sorted(result["mean_reductions"].items()))
    """
    if not items:
        return title or ""
    label_width = max(len(label) for label, _ in items)
    magnitude = max(abs(value) for _, value in items) or 1.0
    lines = [title] if title else []
    for label, value in items:
        length = round(abs(value) / magnitude * width)
        bar = ("-" if value < 0 else "#") * length
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value * scale:+.2f}{unit}"
        )
    return "\n".join(lines)


def format_batch_report(report) -> str:
    """Summary of a :class:`~repro.harness.parallel.BatchReport`.

    One line for a clean batch; when any fault counter is non-zero a
    second line itemizes the taxonomy (crashed / timed-out / retried /
    skipped / corrupt artifacts / degraded fallbacks) so degradations
    are never silent.
    """
    served = (
        f"{report.memory_hits} memory + {report.disk_hits} disk hits, "
        f"{report.executed} executed"
    )
    fan_out = (
        f"{report.chunks} chunks on {report.jobs} jobs"
        if report.chunks
        else f"serial ({report.jobs} job)" if report.jobs == 1 else f"{report.jobs} jobs"
    )
    line = (
        f"batch: {report.requests} requests ({report.unique} unique) | "
        f"{served} | {fan_out} | {report.elapsed_s:.1f}s"
    )
    faults = getattr(report, "faults", None)
    if faults is None:
        return line
    sim_fallbacks = getattr(faults, "sim_fallbacks", None) or {}
    if faults.total_faults == 0 and faults.retried == 0 and not sim_fallbacks:
        return line
    parts = []
    for label, count in (
        ("crashed", faults.crashed),
        ("timed-out", faults.timed_out),
        ("retried", faults.retried),
        ("skipped", faults.skipped),
        ("corrupt-artifacts", faults.corrupt_artifacts),
    ):
        if count:
            parts.append(f"{count} {label}")
    if faults.degraded_fallbacks:
        breakdown = ", ".join(
            f"{name}={count}" for name, count in sorted(faults.fallbacks.items())
        )
        parts.append(f"{faults.degraded_fallbacks} degraded fallbacks ({breakdown})")
    if sim_fallbacks:
        breakdown = ", ".join(
            f"{name.removeprefix('sim_fallback:')}={count}"
            for name, count in sorted(sim_fallbacks.items())
        )
        parts.append(
            f"{sum(sim_fallbacks.values())} sim kernel fallbacks ({breakdown})"
        )
    return line + "\nfaults: " + " | ".join(parts)


def format_failure(exc) -> str:
    """Readable failure block for a
    :class:`~repro.harness.parallel.BatchExecutionError`.

    Shows the full failing request, how many attempts it got, and the
    worker traceback the error chained — everything needed to reproduce
    the failure with a single serial run.
    """
    lines = [
        "=" * 64,
        "batch execution failed",
        f"  request : {getattr(exc, 'request', None)!r}",
        f"  attempts: {getattr(exc, 'attempts', 1)}",
        "-" * 64,
    ]
    detail = getattr(exc, "detail", "") or str(exc)
    lines.append(detail.rstrip("\n"))
    lines.append("=" * 64)
    return "\n".join(lines)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for speedup summaries)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
