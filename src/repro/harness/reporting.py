"""Plain-text rendering of experiment results.

Each experiment returns rows of plain Python values; these helpers
render them as aligned ASCII tables, which is what the benches print
(the paper's figures, as rows/series).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def percent(value: float, digits: int = 2) -> str:
    """Format a ratio as a signed percentage string."""
    return f"{value * 100:+.{digits}f}%"


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render an aligned ASCII table."""
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def bar_chart(
    items: Sequence[tuple[str, float]],
    *,
    width: int = 44,
    unit: str = "%",
    scale: float = 100.0,
    title: str | None = None,
) -> str:
    """Render labelled values as a horizontal ASCII bar chart.

    Negative values draw left of the axis.  ``scale`` converts raw
    values into the displayed unit (default: ratios → percent), so the
    mean-gain dictionaries the experiments return plot directly::

        bar_chart(sorted(result["mean_reductions"].items()))
    """
    if not items:
        return title or ""
    label_width = max(len(label) for label, _ in items)
    magnitude = max(abs(value) for _, value in items) or 1.0
    lines = [title] if title else []
    for label, value in items:
        length = round(abs(value) / magnitude * width)
        bar = ("-" if value < 0 else "#") * length
        lines.append(
            f"{label.ljust(label_width)} | {bar} {value * scale:+.2f}{unit}"
        )
    return "\n".join(lines)


def format_batch_report(report) -> str:
    """One-line summary of a :class:`~repro.harness.parallel.BatchReport`."""
    served = (
        f"{report.memory_hits} memory + {report.disk_hits} disk hits, "
        f"{report.executed} executed"
    )
    fan_out = (
        f"{report.chunks} chunks on {report.jobs} jobs"
        if report.chunks
        else f"serial ({report.jobs} job)" if report.jobs == 1 else f"{report.jobs} jobs"
    )
    return (
        f"batch: {report.requests} requests ({report.unique} unique) | "
        f"{served} | {fan_out} | {report.elapsed_s:.1f}s"
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for speedup summaries)."""
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def mean(values: Sequence[float]) -> float:
    if not values:
        return 0.0
    return sum(values) / len(values)
