"""Shared offline-artifact store for profile-guided policies.

FURBYS and Thermometer both start from the same expensive artifact: a
full trace replay under an offline policy with per-PW hit recording
(:func:`repro.profiling.hitrate.collect_hit_stats`).  A batch that
evaluates both — every headline figure does — used to pay for that
replay once per policy; this module memoizes it per profiling key so
the second consumer (and every FURBYS hint-width/scope variant, which
only changes the cheap clustering step) reuses the recorded stats.

Two layers:

* an in-process cache (cleared by :func:`clear_artifact_caches`, which
  :func:`repro.harness.runner.clear_memory_cache` calls);
* a disk cache next to the simulation-result cache (``.repro-cache/``,
  disabled by ``REPRO_CACHE=0``), written atomically via a per-process
  tmp file + :func:`os.replace` so parallel workers sharing the
  directory can never observe a truncated entry.

Keys hash everything that shapes the artifact: the training trace
identity ``(app, input, trace_len)``, the offline decision ``source``,
and the cache geometry (config preset plus every uop-cache override);
profiles additionally include the hint parameters ``(n_bits, scope)``.

Every artifact is integrity-checked on load: JSON entries embed a
``sha256`` over their canonical payload, binary traces get a
``*.sha256`` sidecar over the file bytes.  A corrupt, truncated or
checksum-failing entry is **quarantined** — renamed to ``*.corrupt``
for post-mortem instead of silently deleted — via an internal
:class:`~repro.errors.ArtifactError`, counted in the resilience
fallback counters, and treated as a cache miss so the artifact is
recomputed.  Failed disk writes are likewise counted (``disk_write``)
rather than silently swallowed.  :mod:`repro.faultinject` hooks the
load paths so the chaos suite can corrupt a named artifact kind on
demand.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

from .. import faultinject
from ..config import SimulationConfig
from ..errors import ArtifactError
from ..profiling.pipeline import FurbysProfile, profile_application
from ..workloads.registry import get_trace
from . import resilience

#: start -> (uops hit, uops requested) over the whole profiling replay.
HitStats = dict[int, tuple[int, int]]

_hitstats_cache: dict[str, HitStats] = {}
_profile_cache: dict[str, FurbysProfile] = {}


def _disk_cache_dir() -> Path | None:
    """Root of the on-disk cache; ``None`` when disabled or unwritable."""
    if os.environ.get("REPRO_CACHE", "1") == "0":
        return None
    root = Path(os.environ.get("REPRO_CACHE_DIR", ".repro-cache"))
    try:
        root.mkdir(parents=True, exist_ok=True)
    except OSError:
        return None
    return root


def clear_artifact_caches() -> None:
    """Drop in-process profiling artifacts (tests use this)."""
    _hitstats_cache.clear()
    _profile_cache.clear()


def _digest(payload: object) -> str:
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()[:24]


def _payload_checksum(payload: dict) -> str:
    """Canonical sha256 over a JSON payload, excluding the checksum field."""
    canonical = json.dumps(
        {k: v for k, v in payload.items() if k != "sha256"}, sort_keys=True
    )
    return hashlib.sha256(canonical.encode()).hexdigest()


def quarantine(path: Path, reason: str) -> ArtifactError:
    """Set a corrupt artifact aside (``*.corrupt``) and account for it.

    Returns the :class:`~repro.errors.ArtifactError` describing the
    event so load paths can ``raise quarantine(...)`` and probe paths
    can swallow it as a counted cache miss.  The file is renamed, never
    deleted, so a corruption bug leaves evidence behind.
    """
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:
        path_note = f"{path} (rename to {target.name} failed)"
    else:
        path_note = f"{path} (quarantined as {target.name})"
    resilience.note_fallback("corrupt_artifact")
    return ArtifactError(f"corrupt artifact at {path_note}: {reason}")


def load_validated_json(path: Path, kind: str) -> dict:
    """Read and integrity-check one JSON artifact.

    Raises :class:`~repro.errors.ArtifactError` (after quarantining the
    file) for unreadable, unparseable or checksum-failing entries.
    Entries written before checksums carry no ``sha256`` field; rather
    than accepting them unverified forever, they are upgraded in place
    — rewritten atomically with an embedded checksum (counted as
    ``note:cache_upgraded``) so integrity checking applies from the
    next read onward.
    """
    faultinject.maybe_corrupt_artifact(path, kind)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise ArtifactError(f"unreadable {kind} artifact {path}: {exc}") from exc
    try:
        # UnicodeDecodeError is a ValueError: garbage bytes quarantine too.
        payload = json.loads(data.decode("utf-8"))
        if not isinstance(payload, dict):
            raise ValueError("payload is not a JSON object")
    except ValueError as exc:
        raise quarantine(path, f"invalid JSON ({exc})") from exc
    expected = payload.get("sha256")
    if expected is None:
        _store_json(path, payload)
        resilience.note_fallback("note:cache_upgraded")
    elif _payload_checksum(payload) != expected:
        raise quarantine(path, f"{kind} checksum mismatch")
    return payload


def probe_json(path: Path, kind: str) -> dict | None:
    """Validated read of a cache entry; corrupt entries become misses."""
    try:
        return load_validated_json(path, kind)
    except ArtifactError:
        return None


def _store_json(path: Path, payload: dict) -> None:
    payload = dict(payload)
    payload["sha256"] = _payload_checksum(payload)
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
    except OSError:
        resilience.note_fallback("disk_write")
        tmp.unlink(missing_ok=True)


def _trace_sidecar(path: Path) -> Path:
    return path.with_name(path.name + ".sha256")


class _HashingWriter:
    """Tee writer: forwards to a stream while folding a sha256.

    Lets :func:`store_cached_trace` checksum exactly the bytes it
    writes without ever materializing the whole payload (a 10M-lookup
    trace is a 210MB file).
    """

    def __init__(self, handle):
        self._handle = handle
        self.digest = hashlib.sha256()

    def write(self, data) -> int:
        self.digest.update(data)
        return self._handle.write(data)


class _HashingReader:
    """Tee reader: forwards reads while folding a sha256.

    The mirror of :class:`_HashingWriter` for the load side: the
    chunked v2 trace parse consumes the file through this tee, so the
    ``*.sha256`` sidecar is verified over exactly the bytes parsed in
    the same single streaming pass — no separate whole-file checksum
    read, and no window for the file to change between the checksum
    pass and the parse.
    """

    def __init__(self, handle):
        self._handle = handle
        self.digest = hashlib.sha256()

    def read(self, size: int = -1) -> bytes:
        data = self._handle.read(size)
        if data:
            self.digest.update(data)
        return data

    def drain(self) -> None:
        """Fold any bytes past the parsed payload (there should be none,
        but the sidecar covers the whole file)."""
        while self.read(1 << 20):
            pass


def load_cached_trace(
    app: str, input_name: str, n_lookups: int, version: str
) -> "Trace | None":
    """Probe the disk trace cache for a generated workload trace.

    Returns ``None`` on a miss or when caching is disabled.  A stored
    file that is truncated, unparseable, fails its ``*.sha256`` sidecar
    checksum, or disagrees with the requested identity is quarantined
    (renamed to ``*.corrupt``) and treated as a miss; sidecar-less
    files from before checksumming are validated structurally only.
    """
    disk = _disk_cache_dir()
    if disk is None:
        return None
    key = _digest(["trace", app, input_name, n_lookups, version])
    path = disk / f"trace-{key}.bin"
    if not path.exists():
        return None
    from ..core.trace import Trace, TraceError

    faultinject.maybe_corrupt_artifact(path, "trace")
    sidecar = _trace_sidecar(path)
    try:
        expected = sidecar.read_text().strip()
    except OSError:
        expected = None
    try:
        # The parse streams the file in bounded chunks — a 10M-lookup
        # trace never exists as one bytes object — and the tee reader
        # folds the sidecar checksum over those same chunked reads, so
        # verification costs no second pass over the file.
        with open(path, "rb") as handle:
            reader = _HashingReader(handle)
            trace = Trace.parse_binary(reader)
            reader.drain()
        if expected and reader.digest.hexdigest() != expected:
            raise ArtifactError("binary trace checksum mismatch")
        if len(trace) != n_lookups or trace.metadata.app != app:
            raise ArtifactError(
                f"binary trace identity mismatch (app={trace.metadata.app!r}, "
                f"n={len(trace)}, expected app={app!r}, n={n_lookups})"
            )
    except OSError:
        return None
    except (ArtifactError, TraceError) as exc:
        quarantine(path, str(exc))
        sidecar.unlink(missing_ok=True)
        return None
    return trace


def store_cached_trace(
    trace: "Trace", app: str, input_name: str, n_lookups: int, version: str
) -> None:
    """Persist a generated trace in the v2 binary format (atomic).

    The file bytes are checksummed into a ``*.sha256`` sidecar so
    :func:`load_cached_trace` can detect bit-rot that still parses.
    A failed write is counted (``disk_write``) and leaves no partial
    entry behind.
    """
    disk = _disk_cache_dir()
    if disk is None:
        return
    key = _digest(["trace", app, input_name, n_lookups, version])
    path = disk / f"trace-{key}.bin"
    tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
    try:
        with open(tmp, "wb") as handle:
            writer = _HashingWriter(handle)
            trace.dump_binary(writer)
        os.replace(tmp, path)
        sidecar = _trace_sidecar(path)
        sidecar_tmp = sidecar.with_name(f"{sidecar.name}.{os.getpid()}.tmp")
        sidecar_tmp.write_text(writer.digest.hexdigest() + "\n")
        os.replace(sidecar_tmp, sidecar)
    except OSError:
        resilience.note_fallback("disk_write")
        tmp.unlink(missing_ok=True)


def profiling_geometry(
    config_name: str,
    *,
    cache_entries: int | None,
    cache_ways: int | None,
    insertion_delay: int | None,
    inclusive: bool,
    keep_larger: bool,
    perfect: tuple[str, ...],
) -> list:
    """The geometry part of a profiling key: every knob that can change
    what the offline profiling replay observes."""
    return [
        config_name, cache_entries, cache_ways, insertion_delay,
        inclusive, keep_larger, sorted(perfect),
    ]


def shared_hit_stats(
    app: str,
    input_name: str,
    trace_len: int,
    config: SimulationConfig,
    *,
    source: str,
    geometry: list,
) -> HitStats:
    """Per-PW hit stats for one training trace, computed at most once.

    Callers must not mutate the returned mapping.
    """
    key = _digest(["hitstats", app, input_name, trace_len, source, geometry])
    cached = _hitstats_cache.get(key)
    if cached is not None:
        return cached
    disk = _disk_cache_dir()
    path = disk / f"hitstats-{key}.json" if disk is not None else None
    if path is not None and path.exists():
        raw = probe_json(path, "hitstats")
        if raw is not None and "stats" in raw:
            stats: HitStats = {
                int(start): (int(pair[0]), int(pair[1]))
                for start, pair in raw["stats"].items()
            }
            _hitstats_cache[key] = stats
            return stats
    from ..profiling.hitrate import collect_hit_stats

    trace = get_trace(app, input_name, trace_len)
    stats = collect_hit_stats(trace, config, source=source)
    _hitstats_cache[key] = stats
    if path is not None:
        _store_json(path, {
            "app": app, "input": input_name, "trace_len": trace_len,
            "source": source, "geometry": geometry,
            "stats": {str(start): list(pair) for start, pair in stats.items()},
        })
    return stats


def shared_profile(
    app: str,
    input_name: str,
    trace_len: int,
    config: SimulationConfig,
    *,
    source: str,
    n_bits: int,
    scope: str,
    geometry: list,
) -> FurbysProfile:
    """A single-input FURBYS profile, sharing the profiling replay.

    The hit-stats artifact is shared across hint widths, weight scopes
    and with Thermometer; only the clustering step is parameterized.
    Multi-input merges happen in memory (see the runner), so the disk
    layer stays a flat per-input store.
    """
    key = _digest([
        "profile", app, input_name, trace_len, source, n_bits, scope,
        geometry,
    ])
    cached = _profile_cache.get(key)
    if cached is not None:
        return cached
    disk = _disk_cache_dir()
    path = disk / f"profile-{key}.json" if disk is not None else None
    if path is not None and path.exists():
        raw = probe_json(path, "profile")
        if raw is not None and "hints" in raw:
            profile = FurbysProfile(
                hints={int(s): int(w) for s, w in raw["hints"].items()},
                hit_rates={
                    int(s): float(r) for s, r in raw["hit_rates"].items()
                },
                source=raw["source"],
                n_bits=int(raw["n_bits"]),
                scope=raw["scope"],
                sample_counts={
                    int(s): int(c) for s, c in raw["sample_counts"].items()
                },
            )
            _profile_cache[key] = profile
            return profile
    stats = shared_hit_stats(
        app, input_name, trace_len, config, source=source, geometry=geometry
    )
    trace = get_trace(app, input_name, trace_len)
    profile = profile_application(
        trace, config, source=source, n_bits=n_bits, scope=scope,
        hit_stats=stats,
    )
    _profile_cache[key] = profile
    if path is not None:
        _store_json(path, {
            "app": app, "input": input_name, "trace_len": trace_len,
            "source": source, "n_bits": n_bits, "scope": scope,
            "geometry": geometry,
            "hints": {str(s): w for s, w in profile.hints.items()},
            "hit_rates": {str(s): r for s, r in profile.hit_rates.items()},
            "sample_counts": {
                str(s): c for s, c in profile.sample_counts.items()
            },
        })
    return profile
