"""Memoized simulation runner: one entry point for every experiment.

Every figure/table bench expresses its work as :class:`RunRequest`
objects and calls :func:`run`.  Results are memoized in-process and on
disk (``.repro-cache/`` at the repository/working directory), because
the figures share most of their runs — every figure needs the per-app
LRU baseline, several share the default FURBYS deployment, and so on.
Set ``REPRO_CACHE=0`` to disable the disk layer.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass, field

from ..config import SimulationConfig, preset
from ..core.stats import MissBreakdown, SimulationStats
from ..core.trace import Trace
from ..errors import UnknownPolicyError
from ..frontend.pipeline import FrontendPipeline
from ..offline.belady import BeladyPolicy
from ..offline.flack import FLACKPolicy
from ..offline.foo import FOOPolicy
from ..offline.future import fast_path_enabled
from ..policies import make_policy, online_policy_names
from ..policies.furbys import FurbysPolicy
from ..policies.thermometer import ThermometerPolicy
from ..profiling import FurbysProfile, profile_application
from ..profiling.hitrate import three_class_profile
from ..workloads.registry import DEFAULT_TRACE_LEN, clear_trace_cache, get_trace
from .artifacts import (
    _disk_cache_dir,
    _store_json,
    clear_artifact_caches,
    probe_json,
    profiling_geometry,
    quarantine,
    shared_hit_stats,
    shared_profile,
)

#: Names accepted by RunRequest.policy, beyond the online registry.
OFFLINE_POLICIES = (
    "belady", "foo-ohr", "foo-bhr",
    "flack", "flack[foo]", "flack[A]", "flack[A+VC]", "flack[A+VC+SB]",
)
PROFILE_POLICIES = ("furbys", "thermometer")


@dataclass(frozen=True, slots=True)
class RunRequest:
    """One fully specified simulation."""

    app: str
    policy: str = "lru"
    input_name: str = "default"
    config: str = "zen3"
    #: Structures made perfect (Figure 2): subset of
    #: ("uop_cache", "icache", "btb", "branch_predictor").
    perfect: tuple[str, ...] = ()
    #: Micro-op cache geometry overrides (None = preset values).
    cache_entries: int | None = None
    cache_ways: int | None = None
    insertion_delay: int | None = None
    inclusive: bool = True
    keep_larger: bool = True
    trace_len: int | None = None
    warmup: int | None = None
    classify_misses: bool = False
    # --- profile-guided policy inputs ---
    profile_source: str = "flack"
    #: Training inputs for the profile (FURBYS / Thermometer); empty
    #: means "profile on the evaluated input" (the paper's main setup).
    profile_inputs: tuple[str, ...] = ()
    hint_bits: int = 3
    weight_scope: str = "per_set"
    furbys_bypass: bool = True
    furbys_pitfall_depth: int = 2

    def resolved_trace_len(self) -> int:
        return self.trace_len if self.trace_len is not None else DEFAULT_TRACE_LEN

    def resolved_warmup(self) -> int:
        if self.warmup is not None:
            return self.warmup
        return self.resolved_trace_len() // 3

    def build_config(self) -> SimulationConfig:
        config = preset(self.config)
        changes: dict[str, object] = {}
        if self.cache_entries is not None:
            changes["entries"] = self.cache_entries
        if self.cache_ways is not None:
            changes["ways"] = self.cache_ways
        if self.insertion_delay is not None:
            changes["insertion_delay"] = self.insertion_delay
        if not self.inclusive:
            changes["inclusive_with_icache"] = False
        if not self.keep_larger:
            changes["keep_larger"] = False
        if changes:
            config = config.with_uop_cache(**changes)
        for structure in self.perfect:
            config = config.with_perfect(structure)
        return config

    def cache_key(self) -> str:
        payload = dataclasses.asdict(self)
        # Resolve environment-dependent defaults so a cached result is
        # only reused for the exact trace geometry it was computed on
        # (REPRO_TRACE_LEN changes must not serve stale entries).
        payload["trace_len"] = self.resolved_trace_len()
        payload["warmup"] = self.resolved_warmup()
        text = json.dumps(payload, sort_keys=True, default=list)
        return hashlib.sha256(text.encode()).hexdigest()[:24]

    @classmethod
    def from_json(cls, payload: dict) -> "RunRequest":
        """Rebuild a request from its JSON form (the experiment ledger
        stores requests with resolved trace geometry, so the rebuilt
        request hashes to the same cache key in any environment)."""
        data = dict(payload)
        for name in ("perfect", "profile_inputs"):
            data[name] = tuple(data.get(name) or ())
        return cls(**data)


@dataclass(slots=True)
class RunResult:
    """Stats plus the request that produced them."""

    request: RunRequest
    stats: SimulationStats

    def to_json(self) -> dict:
        stats = dataclasses.asdict(self.stats)
        return {"request": dataclasses.asdict(self.request), "stats": stats}

    @classmethod
    def stats_from_json(cls, payload: dict) -> SimulationStats:
        raw = dict(payload["stats"])
        breakdown = MissBreakdown(**raw.pop("miss_breakdown"))
        return SimulationStats(miss_breakdown=breakdown, **raw)


# --- caches -----------------------------------------------------------------

_memory_cache: dict[str, SimulationStats] = {}
_profile_cache: dict[str, FurbysProfile] = {}
_thermo_cache: dict[str, dict[int, int]] = {}


def clear_memory_cache() -> None:
    """Drop every in-process memoized layer (tests use this).

    Beyond the result/profile/artifact/trace caches this also evicts
    the simd column-pass memos still held by live traces (the registry
    LRU keeps traces alive for callers holding references, so their
    ``_derived`` entries would otherwise survive a "cache clear") and
    the compiled specialized-segment caches, fused drivers included.
    Each eviction is counted — ``repro trace inspect --cache-stats``
    reports the cumulative totals.
    """
    from ..core.trace import drop_simd_memos
    from ..frontend import simd, simd_fused, simd_offline

    _memory_cache.clear()
    _profile_cache.clear()
    _thermo_cache.clear()
    clear_artifact_caches()
    clear_trace_cache()
    drop_simd_memos()
    simd.clear_segment_cache()
    simd_offline.clear_segment_caches()
    simd_fused.clear_fused_caches()


# --- policy construction -----------------------------------------------------

def _canonical_profile_inputs(request: RunRequest) -> tuple[str, ...]:
    """Profile inputs in canonical (sorted) order.

    The profile cache key hashes the sorted input set, so the merge
    must also happen in sorted order — otherwise two orderings of the
    same set would share one cache entry while producing
    order-dependent merged profiles.
    """
    inputs = request.profile_inputs or (request.input_name,)
    return tuple(sorted(inputs))


def _request_geometry(request: RunRequest) -> list:
    return profiling_geometry(
        request.config,
        cache_entries=request.cache_entries,
        cache_ways=request.cache_ways,
        insertion_delay=request.insertion_delay,
        inclusive=request.inclusive,
        keep_larger=request.keep_larger,
        perfect=request.perfect,
    )


def _profile_for(request: RunRequest, config: SimulationConfig) -> FurbysProfile:
    inputs = _canonical_profile_inputs(request)
    key = json.dumps(
        [request.app, list(inputs), request.profile_source, request.hint_bits,
         request.weight_scope, _request_geometry(request),
         request.resolved_trace_len()],
        sort_keys=False,
    )
    cached = _profile_cache.get(key)
    if cached is not None:
        return cached
    if fast_path_enabled():
        # Per-input profiles come from the shared artifact store (one
        # profiling replay per training trace, reused by Thermometer
        # and across hint parameters); merges stay in memory.
        profiles = [
            shared_profile(
                request.app, name, request.resolved_trace_len(), config,
                source=request.profile_source,
                n_bits=request.hint_bits,
                scope=request.weight_scope,
                geometry=_request_geometry(request),
            )
            for name in inputs
        ]
    else:
        profiles = [
            profile_application(
                get_trace(request.app, name, request.resolved_trace_len()),
                config,
                source=request.profile_source,
                n_bits=request.hint_bits,
                scope=request.weight_scope,
            )
            for name in inputs
        ]
    profile = profiles[0] if len(profiles) == 1 else profiles[0].merged_with(
        *profiles[1:]
    )
    _profile_cache[key] = profile
    return profile


def _build_policy_and_hints(
    request: RunRequest, config: SimulationConfig, trace: Trace
):
    name = request.policy
    if name in online_policy_names():
        return make_policy(name), None
    if name == "belady":
        return BeladyPolicy(trace), None
    if name in ("foo-ohr", "foo-bhr"):
        return FOOPolicy(trace, config.uop_cache, objective=name[-3:]), None
    if name.startswith("flack"):
        flags = dict(async_aware=True, variable_cost=True, selective_bypass=True)
        if name.startswith("flack[") and name.endswith("]"):
            feature_set = name[6:-1]
            flags = dict(
                async_aware="A" in feature_set.split("+"),
                variable_cost="VC" in feature_set.split("+"),
                selective_bypass="SB" in feature_set.split("+"),
            )
            if feature_set == "foo":
                flags = dict(
                    async_aware=False, variable_cost=False, selective_bypass=False
                )
        return FLACKPolicy(trace, config.uop_cache, **flags), None
    if name == "furbys":
        profile = _profile_for(request, config)
        policy = FurbysPolicy(
            bypass_enabled=request.furbys_bypass,
            pitfall_depth=request.furbys_pitfall_depth,
        )
        return policy, profile.hints
    if name == "thermometer":
        inputs = _canonical_profile_inputs(request)
        key = json.dumps([request.app, list(inputs), request.profile_source,
                          _request_geometry(request),
                          request.resolved_trace_len()])
        classes = _thermo_cache.get(key)
        if classes is None:
            profile_trace = get_trace(
                request.app, inputs[0], request.resolved_trace_len()
            )
            rates = None
            if fast_path_enabled():
                # Reuse FURBYS's profiling replay: same trace, source
                # and geometry -> same hit stats, different clustering.
                stats = shared_hit_stats(
                    request.app, inputs[0], request.resolved_trace_len(),
                    config,
                    source=request.profile_source,
                    geometry=_request_geometry(request),
                )
                rates = {
                    start: (hit / total if total else 0.0)
                    for start, (hit, total) in stats.items()
                }
            classes = three_class_profile(
                profile_trace, config,
                source=request.profile_source, hit_rates=rates,
            )
            _thermo_cache[key] = classes
        return ThermometerPolicy(classes), None
    raise UnknownPolicyError(
        f"unknown policy {request.policy!r}; online={online_policy_names()}, "
        f"offline={OFFLINE_POLICIES}, profile-guided={PROFILE_POLICIES}"
    )


# --- the runner -----------------------------------------------------------------

def cached_stats(request: RunRequest, key: str | None = None) -> SimulationStats | None:
    """Probe the memory then disk cache; ``None`` on a full miss.

    A disk hit is promoted into the memory layer.  Disk entries are
    integrity-checked (embedded ``sha256`` when present); corrupt,
    truncated or checksum-failing entries are quarantined as
    ``*.corrupt`` — counted, never silently deleted — and the run is
    recomputed.
    """
    key = key or request.cache_key()
    cached = _memory_cache.get(key)
    if cached is not None:
        return cached
    disk = _disk_cache_dir()
    if disk is not None:
        path = disk / f"{key}.json"
        if path.exists():
            payload = probe_json(path, "stats")
            if payload is not None:
                try:
                    stats = RunResult.stats_from_json(payload)
                except (ValueError, KeyError, TypeError) as exc:
                    quarantine(path, f"undecodable stats payload ({exc})")
                else:
                    _memory_cache[key] = stats
                    return stats
    return None


def store_stats(
    request: RunRequest, stats: SimulationStats, key: str | None = None
) -> None:
    """Write a result into both cache layers.

    The disk write goes to a per-process ``.tmp`` file first and is
    published with an atomic :func:`os.replace`, so concurrent writers
    of the same key (parallel workers sharing ``.repro-cache/``) and
    interrupted processes can never leave a truncated entry behind.
    The payload embeds a ``sha256`` checksum that :func:`cached_stats`
    verifies; a failed write is counted as a ``disk_write`` fallback.
    """
    key = key or request.cache_key()
    _memory_cache[key] = stats
    disk = _disk_cache_dir()
    if disk is None:
        return
    _store_json(disk / f"{key}.json", RunResult(request, stats).to_json())


def execute(request: RunRequest) -> SimulationStats:
    """Compute one simulation, bypassing the result caches.

    Trace and profile construction still go through their own
    process-local caches, which is what makes grouping same-app
    requests onto one worker cheap.
    """
    config = request.build_config()
    trace = get_trace(request.app, request.input_name, request.resolved_trace_len())
    policy, hints = _build_policy_and_hints(request, config, trace)
    pipeline = FrontendPipeline(
        config, policy, hints=hints, classify_misses=request.classify_misses
    )
    return pipeline.run(trace, warmup=request.resolved_warmup())


def run(request: RunRequest) -> SimulationStats:
    """Execute (or recall) one simulation."""
    key = request.cache_key()
    stats = cached_stats(request, key)
    if stats is None:
        stats = execute(request)
        store_stats(request, stats, key)
    return stats
