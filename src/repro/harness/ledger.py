"""Durable experiment ledger: a crash-safe SQLite run store with resume.

Every figure run today recomputes from scratch, and a SIGKILL or OOM
mid-experiment loses the whole run — PR 5's retry/timeout machinery
only protects *individual batches* inside one live process.  This
module adds the missing durability layer, fuzzbench-style: a named
experiment is a row in a WAL-mode SQLite database
(``REPRO_LEDGER``, default ``.repro-cache/ledger.sqlite``) with

* the request specs (resolved trace geometry included, so a resume is
  immune to env drift), config preset, git hash, ``REPRO_*`` env
  snapshot and timings;
* one row per unique request, journaled **as each chunk lands** in the
  batch engine — append-only, one atomic transaction per chunk, with a
  sha256 over the serialized stats so torn DB writes are detectable;
* the batch's :class:`~repro.harness.resilience.FaultReport`;
* a lifecycle state machine::

      PENDING -> RUNNING -> COMPLETE
                        \\-> INTERRUPTED   (ctrl-C / stale takeover)
                        \\-> FAILED        (exception, or pending rows left)

A heartbeat thread stamps the experiment row every
``REPRO_HEARTBEAT_S`` seconds while RUNNING; a new process finding a
RUNNING row whose heartbeat is older than three beats may take it over
(``resume --force`` skips the staleness check).  :func:`resume_experiment`
rebuilds the recorded requests, verifies every journaled row's
checksum (corrupt rows are demoted to pending and counted as
``corrupt_artifact``), seeds the runner's memory cache with the valid
results — so the batch engine serves them with **zero re-executions**,
visible in ``BatchReport.memory_hits`` — and replays only the missing
rows.  Results are bit-identical to an uninterrupted run because every
simulation is deterministic; ``repro bench --chaos-resume`` proves it
end to end under SIGKILL + crash + hang + row corruption.

Recording is opt-in per scope: :func:`run_batch` journals only while an
:class:`ExperimentRun` context is active (installed by
``repro experiments run/resume``), so plain figure runs never touch
SQLite.  Ledger write failures degrade gracefully (``ledger_write``
fallback counter); a corrupt ledger *file* is quarantined like any
other artifact and a fresh one is started.

The ``repro query`` CLI (:mod:`repro.tools.ledger_tool`) renders the
store as table/csv/json and diffs per-request metrics between two
recorded runs — e.g. the same figure at two git hashes.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sqlite3
import subprocess
import threading
import time
from pathlib import Path

from .. import faultinject
from ..errors import ReproError
from . import resilience
from .runner import RunRequest, RunResult, _memory_cache

__all__ = [
    "ExperimentJournal",
    "ExperimentRun",
    "Ledger",
    "STATES",
    "active_journal",
    "heartbeat_seconds",
    "ledger_path",
    "resume_experiment",
]

STATES = ("PENDING", "RUNNING", "INTERRUPTED", "COMPLETE", "FAILED")

#: A RUNNING experiment is considered stale (eligible for takeover)
#: once its heartbeat is older than this many beat periods.
STALE_BEATS = 3

_SCHEMA = """
CREATE TABLE IF NOT EXISTS experiments (
    id           INTEGER PRIMARY KEY AUTOINCREMENT,
    name         TEXT NOT NULL,
    state        TEXT NOT NULL DEFAULT 'PENDING',
    git_hash     TEXT NOT NULL DEFAULT '',
    created_at   REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    elapsed_s    REAL,
    heartbeat_at REAL,
    heartbeat_s  REAL,
    owner_pid    INTEGER,
    env          TEXT NOT NULL DEFAULT '{}',
    note         TEXT NOT NULL DEFAULT ''
);
CREATE TABLE IF NOT EXISTS requests (
    experiment_id INTEGER NOT NULL,
    idx           INTEGER NOT NULL,
    cache_key     TEXT NOT NULL,
    request       TEXT NOT NULL,
    status        TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    stats         TEXT,
    sha256        TEXT,
    updated_at    REAL,
    PRIMARY KEY (experiment_id, idx)
);
CREATE INDEX IF NOT EXISTS requests_by_key
    ON requests (experiment_id, cache_key);
CREATE TABLE IF NOT EXISTS faults (
    experiment_id INTEGER NOT NULL,
    recorded_at   REAL NOT NULL,
    payload       TEXT NOT NULL
);
"""


def ledger_path(path: str | os.PathLike | None = None) -> Path | None:
    """The ledger DB path: explicit arg > ``REPRO_LEDGER`` > default.

    ``REPRO_LEDGER=0`` disables recording entirely (``None``).
    """
    if path is not None:
        return Path(path)
    env = os.environ.get("REPRO_LEDGER", "").strip()
    if env == "0":
        return None
    if env:
        return Path(env)
    return Path(".repro-cache") / "ledger.sqlite"


def heartbeat_seconds() -> float:
    """Heartbeat period (``REPRO_HEARTBEAT_S``, default 5s, floor 0.2s)."""
    raw = os.environ.get("REPRO_HEARTBEAT_S", "").strip()
    try:
        value = float(raw) if raw else 5.0
    except ValueError:
        value = 5.0
    return max(0.2, value)


def _git_hash() -> str:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=10.0,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 else "unknown"


def _request_payload(request: RunRequest) -> dict:
    """Request JSON with env-dependent defaults resolved.

    Storing the resolved ``trace_len``/``warmup`` makes a resumed run
    independent of the resuming process's ``REPRO_TRACE_LEN``.
    """
    payload = dataclasses.asdict(request)
    payload["trace_len"] = request.resolved_trace_len()
    payload["warmup"] = request.resolved_warmup()
    return payload


def _stats_text(stats) -> str:
    return json.dumps(dataclasses.asdict(stats), sort_keys=True)


def _stats_digest(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class Ledger:
    """One open connection to the experiment store.

    Parent-process only; workers never touch the ledger.  All writes
    happen in explicit transactions (``with self._db``), so a SIGKILL
    between chunks can never leave a half-journaled chunk behind —
    WAL-mode SQLite guarantees the last committed transaction survives.
    """

    def __init__(self, path: Path, connection: sqlite3.Connection):
        self.path = path
        self._db = connection

    # -- lifecycle -------------------------------------------------------------

    @classmethod
    def open(cls, path: str | os.PathLike | None = None) -> "Ledger | None":
        """Open (creating or recovering) the store; ``None`` when disabled.

        A file that is not a valid SQLite database — bit rot, a torn
        page, injected corruption — is quarantined as ``*.corrupt``
        (with its WAL sidecars removed) and a fresh store is started;
        the event is counted, never silent.
        """
        resolved = ledger_path(path)
        if resolved is None:
            return None
        try:
            resolved.parent.mkdir(parents=True, exist_ok=True)
        except OSError:
            resilience.note_fallback("ledger_write")
            return None
        if resolved.exists():
            faultinject.maybe_corrupt_artifact(resolved, "ledger")
        try:
            return cls(resolved, cls._connect(resolved))
        except sqlite3.DatabaseError as exc:
            from .artifacts import quarantine

            quarantine(resolved, f"ledger is not a readable database ({exc})")
            for suffix in ("-wal", "-shm"):
                Path(str(resolved) + suffix).unlink(missing_ok=True)
            return cls(resolved, cls._connect(resolved))

    @staticmethod
    def _connect(path: Path) -> sqlite3.Connection:
        db = sqlite3.connect(path, timeout=30.0)
        try:
            db.row_factory = sqlite3.Row
            db.execute("PRAGMA journal_mode=WAL")
            db.execute("PRAGMA synchronous=NORMAL")
            check = db.execute("PRAGMA quick_check").fetchone()[0]
            if check != "ok":
                raise sqlite3.DatabaseError(f"quick_check: {check}")
            db.executescript(_SCHEMA)
            db.commit()
        except sqlite3.DatabaseError:
            db.close()
            raise
        return db

    def close(self) -> None:
        try:
            self._db.close()
        except sqlite3.Error:  # pragma: no cover - close never really fails
            pass

    # -- experiment rows -------------------------------------------------------

    def create_experiment(self, name: str, note: str = "") -> int:
        env = {
            key: value for key, value in sorted(os.environ.items())
            if key.startswith("REPRO_")
        }
        with self._db:
            cursor = self._db.execute(
                "INSERT INTO experiments"
                " (name, state, git_hash, created_at, env, note)"
                " VALUES (?, 'PENDING', ?, ?, ?, ?)",
                (name, _git_hash(), time.time(),
                 json.dumps(env, sort_keys=True), note),
            )
        return int(cursor.lastrowid)

    def mark_running(self, experiment_id: int) -> None:
        now = time.time()
        with self._db:
            self._db.execute(
                "UPDATE experiments SET state = 'RUNNING', started_at = ?,"
                " heartbeat_at = ?, heartbeat_s = ?, owner_pid = ?"
                " WHERE id = ?",
                (now, now, heartbeat_seconds(), os.getpid(), experiment_id),
            )

    def set_state(self, experiment_id: int, state: str) -> None:
        with self._db:
            self._db.execute(
                "UPDATE experiments SET state = ? WHERE id = ?",
                (state, experiment_id),
            )

    def finish(self, experiment_id: int, state: str) -> None:
        now = time.time()
        with self._db:
            self._db.execute(
                "UPDATE experiments SET state = ?, finished_at = ?,"
                " elapsed_s = ? - COALESCE(started_at, ?) WHERE id = ?",
                (state, now, now, now, experiment_id),
            )

    def experiment(self, experiment_id: int) -> sqlite3.Row | None:
        return self._db.execute(
            "SELECT * FROM experiments WHERE id = ?", (experiment_id,)
        ).fetchone()

    def find(self, token: str) -> sqlite3.Row | None:
        """Resolve an experiment by id, or latest-by-name."""
        text = str(token).strip()
        if text.isdigit():
            return self.experiment(int(text))
        return self._db.execute(
            "SELECT * FROM experiments WHERE name = ?"
            " ORDER BY id DESC LIMIT 1",
            (text,),
        ).fetchone()

    def list_experiments(self) -> list[dict]:
        rows = self._db.execute(
            "SELECT e.*,"
            " (SELECT COUNT(*) FROM requests r"
            "   WHERE r.experiment_id = e.id) AS requests,"
            " (SELECT COUNT(*) FROM requests r"
            "   WHERE r.experiment_id = e.id AND r.status = 'done') AS done"
            " FROM experiments e ORDER BY e.id"
        ).fetchall()
        return [dict(row) for row in rows]

    def is_stale(self, row: sqlite3.Row) -> bool:
        """Whether a RUNNING experiment's owner looks dead.

        Stale = no heartbeat for :data:`STALE_BEATS` periods of the
        *recorded* beat interval (each run stores its own period, so a
        fast-beating test run goes stale quickly while a default run
        gets the full grace window).
        """
        if row["state"] != "RUNNING":
            return False
        beat = row["heartbeat_at"]
        if beat is None:
            return True
        period = row["heartbeat_s"] or 5.0
        return (time.time() - beat) > max(STALE_BEATS * period, 1.0)

    # -- request rows ----------------------------------------------------------

    def register_requests(
        self, experiment_id: int, pairs: list[tuple[str, RunRequest]]
    ) -> None:
        """Append rows for cache keys this experiment has not seen yet.

        Idempotent: an experiment spanning several ``run_many`` calls
        registers each batch as it arrives, and a resume re-registers
        the same keys harmlessly.
        """
        existing = {
            row["cache_key"] for row in self._db.execute(
                "SELECT cache_key FROM requests WHERE experiment_id = ?",
                (experiment_id,),
            )
        }
        fresh: list[tuple[str, RunRequest]] = []
        for key, request in pairs:
            if key in existing:
                continue
            existing.add(key)
            fresh.append((key, request))
        if not fresh:
            return
        next_idx = self._db.execute(
            "SELECT COALESCE(MAX(idx) + 1, 0) FROM requests"
            " WHERE experiment_id = ?",
            (experiment_id,),
        ).fetchone()[0]
        now = time.time()
        with self._db:
            self._db.executemany(
                "INSERT INTO requests"
                " (experiment_id, idx, cache_key, request, status, updated_at)"
                " VALUES (?, ?, ?, ?, 'pending', ?)",
                [
                    (experiment_id, next_idx + offset, key,
                     json.dumps(_request_payload(request), sort_keys=True),
                     now)
                    for offset, (key, request) in enumerate(fresh)
                ],
            )

    def record_results(
        self, experiment_id: int, batch: list[tuple[str, RunRequest, object]]
    ) -> None:
        """Journal one chunk's results in a single atomic transaction."""
        now = time.time()
        with self._db:
            for key, _request, stats in batch:
                text = _stats_text(stats)
                self._db.execute(
                    "UPDATE requests SET status = 'done', stats = ?,"
                    " sha256 = ?, attempts = attempts + 1, updated_at = ?"
                    " WHERE experiment_id = ? AND cache_key = ?"
                    " AND status != 'done'",
                    (text, _stats_digest(text), now, experiment_id, key),
                )

    def done_keys(self, experiment_id: int) -> set[str]:
        return {
            row["cache_key"] for row in self._db.execute(
                "SELECT cache_key FROM requests"
                " WHERE experiment_id = ? AND status = 'done'",
                (experiment_id,),
            )
        }

    def request_count(self, experiment_id: int) -> int:
        return self._db.execute(
            "SELECT COUNT(*) FROM requests WHERE experiment_id = ?",
            (experiment_id,),
        ).fetchone()[0]

    def pending_count(self, experiment_id: int) -> int:
        return self._db.execute(
            "SELECT COUNT(*) FROM requests"
            " WHERE experiment_id = ? AND status != 'done'",
            (experiment_id,),
        ).fetchone()[0]

    def stored_requests(
        self, experiment_id: int
    ) -> list[tuple[str, RunRequest]]:
        """Every recorded request, rebuilt, in journal (idx) order."""
        rows = self._db.execute(
            "SELECT cache_key, request FROM requests"
            " WHERE experiment_id = ? ORDER BY idx",
            (experiment_id,),
        ).fetchall()
        return [
            (row["cache_key"], RunRequest.from_json(json.loads(row["request"])))
            for row in rows
        ]

    def journaled_stats(self, experiment_id: int) -> dict[str, object]:
        """Verified journaled results, keyed by cache key.

        Each done row's stats payload is re-hashed against its stored
        sha256 and decoded; rows failing either check are demoted back
        to pending (counted as ``corrupt_artifact``) so the resume
        re-executes exactly them.  The fault-injection hook runs first,
        so the chaos suite can tear a row here on demand.
        """
        faultinject.maybe_corrupt_ledger_rows(self._db, experiment_id)
        rows = self._db.execute(
            "SELECT idx, cache_key, stats, sha256 FROM requests"
            " WHERE experiment_id = ? AND status = 'done' ORDER BY idx",
            (experiment_id,),
        ).fetchall()
        verified: dict[str, object] = {}
        demoted: list[int] = []
        for row in rows:
            text = row["stats"] or ""
            if _stats_digest(text) != (row["sha256"] or ""):
                demoted.append(row["idx"])
                continue
            try:
                stats = RunResult.stats_from_json({"stats": json.loads(text)})
            except (ValueError, KeyError, TypeError):
                demoted.append(row["idx"])
                continue
            verified[row["cache_key"]] = stats
        if demoted:
            resilience.note_fallback("corrupt_artifact", len(demoted))
            with self._db:
                self._db.executemany(
                    "UPDATE requests SET status = 'pending', stats = NULL,"
                    " sha256 = NULL WHERE experiment_id = ? AND idx = ?",
                    [(experiment_id, idx) for idx in demoted],
                )
        return verified

    def results_rows(self, experiment_id: int) -> list[dict]:
        """Per-request rows with the request identity and stats decoded."""
        rows = self._db.execute(
            "SELECT idx, cache_key, request, status, attempts, stats"
            " FROM requests WHERE experiment_id = ? ORDER BY idx",
            (experiment_id,),
        ).fetchall()
        out = []
        for row in rows:
            request = json.loads(row["request"])
            stats = None
            if row["status"] == "done" and row["stats"]:
                try:
                    stats = json.loads(row["stats"])
                except ValueError:
                    stats = None
            out.append({
                "idx": row["idx"],
                "cache_key": row["cache_key"],
                "app": request.get("app"),
                "policy": request.get("policy"),
                "input": request.get("input_name"),
                "trace_len": request.get("trace_len"),
                "status": row["status"],
                "attempts": row["attempts"],
                "request": request,
                "stats": stats,
            })
        return out

    # -- fault reports ---------------------------------------------------------

    def record_faults(self, experiment_id: int, payload: dict) -> None:
        with self._db:
            self._db.execute(
                "INSERT INTO faults (experiment_id, recorded_at, payload)"
                " VALUES (?, ?, ?)",
                (experiment_id, time.time(),
                 json.dumps(payload, sort_keys=True, default=str)),
            )

    def fault_rows(self, experiment_id: int) -> list[dict]:
        rows = self._db.execute(
            "SELECT recorded_at, payload FROM faults"
            " WHERE experiment_id = ? ORDER BY recorded_at",
            (experiment_id,),
        ).fetchall()
        return [
            {"recorded_at": row["recorded_at"],
             "payload": json.loads(row["payload"])}
            for row in rows
        ]


class ExperimentJournal:
    """Parent-side chunk journal for one RUNNING experiment.

    The batch engine calls :meth:`register` once per batch (after
    dedup), :meth:`record` as each result lands, and :meth:`commit` at
    chunk boundaries — so each committed transaction is exactly one
    chunk's worth of new results.  Already-journaled keys are skipped,
    which is what makes the resume's zero-re-execution guarantee
    auditable: ``recorded`` counts only results this process computed.
    """

    def __init__(self, ledger: Ledger, experiment_id: int):
        self.ledger = ledger
        self.experiment_id = experiment_id
        self._done = ledger.done_keys(experiment_id)
        self._pending: list[tuple[str, RunRequest, object]] = []
        self.recorded = 0

    def register(self, pairs: list[tuple[str, RunRequest]]) -> None:
        try:
            self.ledger.register_requests(self.experiment_id, pairs)
        except sqlite3.Error:
            resilience.note_fallback("ledger_write")

    def record(self, key: str, request: RunRequest, stats) -> None:
        if stats is None or key in self._done:
            return
        self._done.add(key)
        self._pending.append((key, request, stats))

    def commit(self) -> None:
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        try:
            self.ledger.record_results(self.experiment_id, batch)
        except sqlite3.Error:
            resilience.note_fallback("ledger_write")
            self._done.difference_update(key for key, _, _ in batch)
            return
        self.recorded += len(batch)
        faultinject.maybe_kill_experiment(self.recorded)


_active: ExperimentJournal | None = None


def active_journal() -> ExperimentJournal | None:
    """The journal of the enclosing :class:`ExperimentRun`, if any."""
    return _active


class _Heartbeat(threading.Thread):
    """Stamps the experiment row every period on its own connection."""

    def __init__(self, path: Path, experiment_id: int, period: float):
        super().__init__(name="repro-ledger-heartbeat", daemon=True)
        self._path = path
        self._experiment_id = experiment_id
        self._period = period
        self._halt = threading.Event()

    def run(self) -> None:  # pragma: no cover - exercised via integration
        try:
            db = sqlite3.connect(self._path, timeout=30.0)
        except sqlite3.Error:
            return
        try:
            while not self._halt.wait(self._period):
                try:
                    db.execute(
                        "UPDATE experiments SET heartbeat_at = ? WHERE id = ?",
                        (time.time(), self._experiment_id),
                    )
                    db.commit()
                except sqlite3.Error:
                    resilience.note_fallback("ledger_write")
        finally:
            db.close()

    def stop(self) -> None:
        self._halt.set()
        self.join(timeout=5.0)


class ExperimentRun:
    """Context manager that records an experiment while it runs.

    Inside the ``with`` block every :func:`~repro.harness.parallel.run_batch`
    journals into this experiment.  On exit the final state is chosen
    from the outcome: ``COMPLETE`` when every registered row is done,
    ``INTERRUPTED`` on ctrl-C, ``FAILED`` otherwise.  With the ledger
    disabled (``REPRO_LEDGER=0``) the context is a transparent no-op.
    """

    def __init__(
        self,
        name: str | None = None,
        *,
        path: str | os.PathLike | None = None,
        note: str = "",
        ledger: Ledger | None = None,
        experiment_id: int | None = None,
    ):
        self.name = name
        self.note = note
        self._path = path
        self.ledger = ledger
        self.experiment_id = experiment_id
        self.journal: ExperimentJournal | None = None
        self.state: str | None = None
        self._beat: _Heartbeat | None = None

    def __enter__(self) -> "ExperimentRun":
        global _active
        if self.ledger is None:
            self.ledger = Ledger.open(self._path)
        if self.ledger is None:
            return self
        if self.experiment_id is None:
            self.experiment_id = self.ledger.create_experiment(
                self.name or "experiment", note=self.note
            )
        self.ledger.mark_running(self.experiment_id)
        self.journal = ExperimentJournal(self.ledger, self.experiment_id)
        self._beat = _Heartbeat(
            self.ledger.path, self.experiment_id, heartbeat_seconds()
        )
        self._beat.start()
        _active = self.journal
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        if self.journal is None:
            return False
        _active = None
        try:
            self.journal.commit()
        finally:
            if self._beat is not None:
                self._beat.stop()
        from .parallel import last_batch_report

        report = last_batch_report()
        if report is not None:
            try:
                self.ledger.record_faults(
                    self.experiment_id, report.faults.to_json()
                )
            except sqlite3.Error:
                resilience.note_fallback("ledger_write")
        if exc_type is None:
            pending = self.ledger.pending_count(self.experiment_id)
            self.state = "COMPLETE" if pending == 0 else "FAILED"
        elif issubclass(exc_type, (KeyboardInterrupt, SystemExit)):
            self.state = "INTERRUPTED"
        else:
            self.state = "FAILED"
        self.ledger.finish(self.experiment_id, self.state)
        self.ledger.close()
        return False


def resume_experiment(
    token: str,
    *,
    path: str | os.PathLike | None = None,
    jobs: int | None = None,
    on_error: str | None = None,
    timeout_s: float | None = None,
    force: bool = False,
) -> dict:
    """Replay the missing/failed requests of a recorded experiment.

    Journaled rows are checksum-verified and served through the
    runner's memory cache (0 re-executions — ``re_executed`` in the
    returned summary counts only truly cold runs, straight from
    ``BatchReport.executed``); corrupt rows are demoted and recomputed.
    A RUNNING experiment with a fresh heartbeat is refused unless
    ``force``; a stale one is marked INTERRUPTED and taken over.
    Because every simulation is deterministic, the merged results are
    bit-identical to an uninterrupted run.
    """
    ledger = Ledger.open(path)
    if ledger is None:
        raise ReproError(
            "experiment ledger is disabled (REPRO_LEDGER=0); nothing to resume"
        )
    row = ledger.find(token)
    if row is None:
        ledger.close()
        raise ReproError(f"no experiment matches {token!r}")
    experiment_id = int(row["id"])
    total = ledger.request_count(experiment_id)
    if row["state"] == "COMPLETE":
        done = len(ledger.done_keys(experiment_id))
        ledger.close()
        return {
            "id": experiment_id, "name": row["name"], "state": "COMPLETE",
            "resumed": False, "requests": total, "ledger_served": done,
            "re_executed": 0,
        }
    counters_before = resilience.global_counters()
    if row["state"] == "RUNNING":
        if not force and not ledger.is_stale(row):
            ledger.close()
            raise ReproError(
                f"experiment {experiment_id} is RUNNING with a fresh "
                "heartbeat (owner pid "
                f"{row['owner_pid']}); pass force to take it over"
            )
        resilience.note_fallback("note:ledger_takeover")
        ledger.set_state(experiment_id, "INTERRUPTED")
    stored = ledger.journaled_stats(experiment_id)
    pairs = ledger.stored_requests(experiment_id)
    for key, stats in stored.items():
        _memory_cache[key] = stats
    from .parallel import run_batch

    # Takeover/demotion notes accrued above predate run_batch's own
    # counter snapshot, so fold that delta into the report explicitly.
    pre_batch = resilience.counters_since(counters_before)
    started = time.perf_counter()
    with ExperimentRun(
        row["name"], ledger=ledger, experiment_id=experiment_id
    ) as record:
        _stats, report = run_batch(
            [request for _, request in pairs],
            jobs=jobs, on_error=on_error, timeout_s=timeout_s,
        )
    report.faults.merge_counters(pre_batch)
    return {
        "id": experiment_id,
        "name": row["name"],
        "state": record.state,
        "resumed": True,
        "requests": total,
        "ledger_served": len(stored),
        "re_executed": report.executed,
        "memory_hits": report.memory_hits,
        "disk_hits": report.disk_hits,
        "elapsed_s": round(time.perf_counter() - started, 3),
        "faults": report.faults.to_json(),
    }
