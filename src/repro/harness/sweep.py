"""Parameter-sweep helpers over the memoized runner.

Thin conveniences used by the ISO-performance (Figure 12) and
size/associativity (Figure 16) studies and by downstream scripts that
want "policy X across geometries" without writing the request loops by
hand.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from ..core.stats import SimulationStats
from .runner import RunRequest, run


def capacity_sweep(
    app: str,
    policy: str,
    entry_counts: Iterable[int],
    *,
    base: RunRequest | None = None,
) -> dict[int, SimulationStats]:
    """Run one policy across micro-op cache capacities."""
    template = base or RunRequest(app=app, policy=policy)
    template = replace(template, app=app, policy=policy)
    return {
        entries: run(replace(template, cache_entries=entries))
        for entries in entry_counts
    }


def associativity_sweep(
    app: str,
    policy: str,
    way_counts: Iterable[int],
    *,
    base: RunRequest | None = None,
) -> dict[int, SimulationStats]:
    """Run one policy across micro-op cache associativities."""
    template = base or RunRequest(app=app, policy=policy)
    template = replace(template, app=app, policy=policy)
    return {
        ways: run(replace(template, cache_ways=ways))
        for ways in way_counts
    }


def iso_capacity(
    app: str,
    reference_policy: str = "furbys",
    baseline_policy: str = "lru",
    scales: Iterable[float] = (1.25, 1.5, 1.75, 2.0),
    *,
    base_entries: int = 512,
    ways: int = 8,
    trace_len: int | None = None,
) -> float | None:
    """Smallest capacity scale at which the baseline matches the policy.

    Returns None when even the largest sweep point falls short (the
    paper's Postgres case: FURBYS beats LRU at 2x capacity).
    """
    baseline = run(RunRequest(app=app, policy=baseline_policy,
                              trace_len=trace_len))
    reference = run(RunRequest(app=app, policy=reference_policy,
                               trace_len=trace_len))
    target = reference.miss_reduction_vs(baseline)
    for scale in sorted(scales):
        entries = round(base_entries * scale / ways) * ways
        scaled = run(RunRequest(app=app, policy=baseline_policy,
                                cache_entries=entries, trace_len=trace_len))
        if scaled.miss_reduction_vs(baseline) >= target:
            return scale
    return None
