"""Parameter-sweep helpers over the batch execution engine.

Thin conveniences used by the ISO-performance (Figure 12) and
size/associativity (Figure 16) studies and by downstream scripts that
want "policy X across geometries" without writing the request loops by
hand.  Each sweep builds its full request list and hands it to
:func:`~repro.harness.parallel.run_many` as one batch.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable

from ..core.stats import SimulationStats
from .parallel import run_many
from .runner import RunRequest


def _geometry_sweep(
    app: str,
    policy: str,
    field_name: str,
    values: Iterable[int],
    base: RunRequest | None,
    on_error: str | None,
) -> dict[int, SimulationStats]:
    if base is None:
        template = RunRequest(app=app, policy=policy)
    else:
        template = replace(base, app=app, policy=policy)
    points = list(values)
    stats = run_many(
        [replace(template, **{field_name: value}) for value in points],
        on_error=on_error,
    )
    # Under on_error="skip" a failed sweep point comes back as None;
    # omit it so callers see a sparse-but-honest curve instead of
    # crashing on arithmetic with None.
    return {
        point: stat for point, stat in zip(points, stats) if stat is not None
    }


def capacity_sweep(
    app: str,
    policy: str,
    entry_counts: Iterable[int],
    *,
    base: RunRequest | None = None,
    on_error: str | None = None,
) -> dict[int, SimulationStats]:
    """Run one policy across micro-op cache capacities.

    ``on_error`` follows :func:`~repro.harness.parallel.run_batch`
    semantics; with ``"skip"``, failed points are omitted from the
    returned mapping (itemized in ``last_batch_report().faults``).
    """
    return _geometry_sweep(
        app, policy, "cache_entries", entry_counts, base, on_error
    )


def associativity_sweep(
    app: str,
    policy: str,
    way_counts: Iterable[int],
    *,
    base: RunRequest | None = None,
    on_error: str | None = None,
) -> dict[int, SimulationStats]:
    """Run one policy across micro-op cache associativities.

    ``on_error`` follows :func:`~repro.harness.parallel.run_batch`
    semantics; with ``"skip"``, failed points are omitted from the
    returned mapping (itemized in ``last_batch_report().faults``).
    """
    return _geometry_sweep(
        app, policy, "cache_ways", way_counts, base, on_error
    )


def iso_capacity(
    app: str,
    reference_policy: str = "furbys",
    baseline_policy: str = "lru",
    scales: Iterable[float] = (1.25, 1.5, 1.75, 2.0),
    *,
    base_entries: int = 512,
    ways: int = 8,
    trace_len: int | None = None,
) -> float | None:
    """Smallest capacity scale at which the baseline matches the policy.

    Returns None when even the largest sweep point falls short (the
    paper's Postgres case: FURBYS beats LRU at 2x capacity).
    """
    points = sorted(scales)
    requests = [
        RunRequest(app=app, policy=baseline_policy, trace_len=trace_len),
        RunRequest(app=app, policy=reference_policy, trace_len=trace_len),
    ]
    for scale in points:
        entries = round(base_entries * scale / ways) * ways
        requests.append(RunRequest(
            app=app, policy=baseline_policy,
            cache_entries=entries, trace_len=trace_len,
        ))
    baseline, reference, *scaled = run_many(requests)
    target = reference.miss_reduction_vs(baseline)
    for scale, stats in zip(points, scaled):
        if stats.miss_reduction_vs(baseline) >= target:
            return scale
    return None
