"""Retry policy, fault taxonomy and fallback accounting.

Three pieces, consumed by the batch engine (``harness/parallel.py``)
and the artifact store (``harness/artifacts.py``):

* :class:`RetryPolicy` — how many attempts a failing simulation gets,
  which exception classes are worth retrying (transient infrastructure
  failures yes, deterministic configuration errors no), and a
  deterministic seeded-jitter backoff so two runs of the same batch
  sleep identically;
* :class:`FaultReport` — the per-batch fault taxonomy: crashed /
  timed-out / retried / skipped / corrupt-artifact / degraded-fallback
  counters plus an itemized failure list, attached to every
  :class:`~repro.harness.parallel.BatchReport`;
* the **global fallback counters** — every place the stack degrades
  gracefully (shared-memory export/attach/cleanup failures, disk-cache
  write failures, quarantined artifacts) calls :func:`note_fallback`
  instead of silently passing, so ``last_batch_report()`` can account
  for each one.  Counters are process-local; worker processes ship
  their deltas back with each chunk result and the parent merges them.
"""

from __future__ import annotations

import dataclasses
import hashlib
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from ..errors import (
    ArtifactError,
    ConfigurationError,
    FaultInjectionError,
    FlowError,
    OfflinePolicyError,
    ProfilingError,
    TraceError,
    UnknownPolicyError,
    UnknownWorkloadError,
)

__all__ = [
    "FaultReport",
    "RetryPolicy",
    "global_counters",
    "note_fallback",
    "reset_counters",
]

#: Transient failures: the environment (a killed worker, a torn cache
#: file, an exhausted /dev/shm) may well have healed by the next attempt.
RETRYABLE_TYPES = (
    BrokenProcessPool,
    TimeoutError,
    ConnectionError,
    OSError,
    MemoryError,
    FaultInjectionError,
    ArtifactError,
    TraceError,
)

#: Deterministic failures: the same request will fail the same way
#: forever, so burning attempts on them only delays the report.
NON_RETRYABLE_TYPES = (
    UnknownPolicyError,
    UnknownWorkloadError,
    ConfigurationError,
    OfflinePolicyError,
    FlowError,
    ProfilingError,
)

_RETRYABLE_NAMES = frozenset(t.__name__ for t in RETRYABLE_TYPES)


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """How the batch engine retries a failing unit of work.

    ``delay_for`` is exponential backoff with *deterministic* jitter:
    the jitter fraction is derived by hashing ``(seed, key, attempt)``,
    so a given request backs off identically across runs — determinism
    is the house rule even for failure handling.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    backoff: float = 2.0
    jitter: float = 0.5
    seed: int = 0

    def is_retryable(self, exc: BaseException) -> bool:
        """Classify a caught exception (parent-side failures)."""
        if isinstance(exc, NON_RETRYABLE_TYPES):
            return False
        return isinstance(exc, RETRYABLE_TYPES)

    def is_retryable_name(self, type_name: str) -> bool:
        """Classify by exception type name (worker failures arrive as
        formatted text, not live objects).  Unknown names are treated
        as non-retryable: a deterministic simulation raising the same
        programming error three times helps nobody."""
        return type_name in _RETRYABLE_NAMES

    def delay_for(self, attempt: int, key: str = "") -> float:
        """Seconds to sleep before retry number ``attempt`` (1-based)."""
        if attempt < 1:
            return 0.0
        base = self.base_delay_s * (self.backoff ** (attempt - 1))
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}".encode()
        ).digest()
        fraction = int.from_bytes(digest[:8], "little") / 2**64
        return base * (1.0 + self.jitter * fraction)


@dataclass(slots=True)
class FaultReport:
    """Per-batch fault taxonomy; all-zero on a clean batch."""

    #: Worker processes that died mid-chunk (``BrokenProcessPool``).
    crashed: int = 0
    #: Chunks abandoned because their per-chunk timeout expired.
    timed_out: int = 0
    #: Extra execution attempts beyond each request's first.
    retried: int = 0
    #: Requests given up on under ``on_error="skip"`` (``None`` result).
    skipped: int = 0
    #: Disk artifacts that failed validation and were quarantined.
    corrupt_artifacts: int = 0
    #: Silent-degradation events (shm/disk fallbacks), from the global
    #: counters — see :func:`note_fallback`.
    degraded_fallbacks: int = 0
    #: fallback site -> count, the breakdown behind degraded_fallbacks.
    fallbacks: dict = field(default_factory=dict)
    #: ``sim_fallback:<policy>:<reason>`` -> count: simulations that ran
    #: the reference loop instead of a vectorized kernel.  Informational
    #: (the results are bit-identical, only slower), so excluded from
    #: :attr:`total_faults`.
    sim_fallbacks: dict = field(default_factory=dict)
    #: ``sim_fused:<what>`` -> count: requests/groups served by the
    #: arm-fused sweep (informational; bit-identical, only faster).
    fused: dict = field(default_factory=dict)
    #: ``note:<what>`` -> count: observability notes that are not
    #: degradations (a legacy cache entry upgraded in place, a stale
    #: RUNNING experiment taken over); excluded from :attr:`total_faults`.
    notes: dict = field(default_factory=dict)
    #: Itemized skipped/failed requests: ``{"request", "error", "attempts"}``.
    failures: list = field(default_factory=list)

    def merge_counters(self, deltas: dict) -> None:
        """Fold a fallback-counter delta (e.g. from a worker) in."""
        for name, count in deltas.items():
            if count <= 0:
                continue
            if name == "corrupt_artifact":
                self.corrupt_artifacts += count
            elif name.startswith("sim_fallback:"):
                self.sim_fallbacks[name] = (
                    self.sim_fallbacks.get(name, 0) + count
                )
            elif name.startswith("sim_fused:"):
                self.fused[name] = self.fused.get(name, 0) + count
            elif name.startswith("note:"):
                self.notes[name] = self.notes.get(name, 0) + count
            else:
                self.fallbacks[name] = self.fallbacks.get(name, 0) + count
                self.degraded_fallbacks += count

    @property
    def total_faults(self) -> int:
        return (
            self.crashed + self.timed_out + self.skipped
            + self.corrupt_artifacts + self.degraded_fallbacks
        )

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


# --- global fallback counters ------------------------------------------------
#
# Process-local accounting of every graceful degradation.  Names in use:
#   shm_export      parent could not stage a trace in shared memory
#   shm_attach      worker could not attach/decode a shared segment
#   shm_cleanup     parent could not close/unlink a segment
#   disk_write      a cache write failed (entry simply not persisted)
#   corrupt_artifact  a disk artifact failed validation (quarantined)
#   sim_fallback:<policy>:<reason>
#                   a simulation ran the reference loop instead of a
#                   vectorized kernel (bit-identical, only slower);
#                   <policy> is "fused" when an arm-fused group sweep
#                   rerouted to the per-arm path
#   sim_fused:served / sim_fused:groups
#                   requests / groups the arm-fused sweep completed
#                   (bit-identical, only faster)
#   ledger_write    an experiment-ledger write failed (the run proceeds,
#                   that chunk is simply not journaled)
#   note:cache_upgraded
#                   a legacy checksum-less JSON cache entry was
#                   rewritten with an embedded sha256 on read
#   note:ledger_takeover
#                   a stale RUNNING experiment was marked INTERRUPTED
#                   and taken over by a resume

_counters: dict[str, int] = {}


def note_fallback(name: str, count: int = 1) -> None:
    """Record one graceful degradation (visible, not silent)."""
    _counters[name] = _counters.get(name, 0) + count


def global_counters() -> dict[str, int]:
    """Snapshot of this process's fallback counters (copy)."""
    return dict(_counters)


def counters_since(snapshot: dict[str, int]) -> dict[str, int]:
    """Positive deltas of the current counters vs. ``snapshot``."""
    current = global_counters()
    return {
        name: count - snapshot.get(name, 0)
        for name, count in current.items()
        if count - snapshot.get(name, 0) > 0
    }


def reset_counters() -> None:
    """Zero the fallback counters (tests and bench arms use this)."""
    _counters.clear()
