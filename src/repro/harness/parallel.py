"""Parallel batch execution engine over the memoized runner.

Every figure/table is a fan-out of independent simulations, so the
experiments hand their full :class:`~repro.harness.runner.RunRequest`
list to :func:`run_many` instead of looping over ``run()``:

1. **dedup** — requests are collapsed by ``cache_key()`` (figures share
   baselines heavily);
2. **cache probe** — memory/disk hits are served inline in the parent;
3. **fan-out** — the remaining cold runs are grouped by
   ``(app, input, trace_len)`` so each trace is materialized once: the
   parent builds (or disk-loads) it, publishes the packed columns via
   ``multiprocessing.shared_memory``, and workers on the
   :class:`~concurrent.futures.ProcessPoolExecutor` copy the columns
   straight out of the segment instead of regenerating the trace or
   unpickling tens of thousands of ``PWLookup`` objects (with
   ``REPRO_TRACE_FASTPATH=0``, or if shared memory is unavailable,
   workers re-derive traces as before);
4. **write-back** — worker results are stored into both cache layers in
   the parent, so memoization semantics are unchanged.

Within each worker the shared offline-artifact store
(:mod:`repro.harness.artifacts`) collapses the per-policy offline work
further: FURBYS and Thermometer requests for one training trace share a
single profiling replay, FLACK ablation variants share the trace's
future index and interval decomposition, and profiling artifacts
persist to the same ``.repro-cache/`` directory (atomically, so
concurrent workers may race on a key but never corrupt it), priming
later batches even across processes.

``jobs=1`` (or ``REPRO_JOBS=1``) takes a plain serial path, which keeps
debugging and coverage simple.  Traces, profiles and the simulation
itself are deterministic, so parallel results are bit-identical to
serial ones — the test suite asserts this.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.stats import SimulationStats
from ..core.trace import Trace, TraceColumns, TraceMetadata, trace_fastpath_enabled
from .runner import RunRequest, _memory_cache, cached_stats, run, store_stats

#: (app, input, trace_len) -> (shm name, n_lookups, metadata fields).
TraceDescriptors = dict[tuple[str, str, int], tuple[str, int, tuple]]

__all__ = [
    "BatchExecutionError",
    "BatchReport",
    "last_batch_report",
    "resolve_jobs",
    "run_batch",
    "run_many",
]


@dataclass(slots=True)
class BatchReport:
    """Per-batch accounting: where each request was served from."""

    requests: int = 0
    unique: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    executed: int = 0
    jobs: int = 1
    chunks: int = 0
    elapsed_s: float = 0.0

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


class BatchExecutionError(RuntimeError):
    """A simulation failed inside a batch; carries the offending request."""

    def __init__(self, request: RunRequest, detail: str):
        super().__init__(f"simulation failed for {request!r}:\n{detail}")
        self.request = request
        self.detail = detail


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit arg, else ``REPRO_JOBS``, else cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            jobs = int(env)
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def _chunk_cold_requests(
    requests: Sequence[RunRequest], jobs: int
) -> list[list[RunRequest]]:
    """Group requests into worker chunks that maximize trace reuse.

    Requests sharing ``(app, input, trace_len)`` re-derive the same
    trace (and, for profile-guided policies, mostly the same profile),
    so they are kept on one worker.  Groups larger than the batch can
    keep ``jobs`` workers busy are split in half until there are enough
    chunks, largest-first so the pool schedules long chunks earliest.
    """
    groups: dict[tuple[str, str, int], list[RunRequest]] = {}
    for request in requests:
        key = (request.app, request.input_name, request.resolved_trace_len())
        groups.setdefault(key, []).append(request)
    chunks = list(groups.values())
    while len(chunks) < jobs:
        chunks.sort(key=len, reverse=True)
        largest = chunks[0]
        if len(largest) < 2:
            break
        mid = len(largest) // 2
        chunks[0:1] = [largest[:mid], largest[mid:]]
    chunks.sort(key=len, reverse=True)
    return chunks


def _export_traces(
    cold: Sequence[RunRequest],
) -> tuple[TraceDescriptors, list]:
    """Build each distinct cold trace once and stage it in shared memory.

    The parent pays generation (or a disk-cache load) for each distinct
    ``(app, input, trace_len)`` and publishes the packed columns as one
    ``multiprocessing.shared_memory`` segment, so workers copy columns
    out of the segment instead of re-deriving 45k ``PWLookup`` objects
    per chunk.  Any ``OSError`` (e.g. ``/dev/shm`` unavailable) degrades
    silently to the old regenerate-in-worker behaviour — the disk trace
    cache usually still absorbs it.

    Returns the descriptors plus the open segments; the caller must
    close and unlink the segments once the pool has drained.
    """
    descriptors: TraceDescriptors = {}
    segments: list = []
    if not trace_fastpath_enabled():
        return descriptors, segments
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - stdlib always has it
        return descriptors, segments
    from ..workloads.registry import get_trace

    keys = {
        (request.app, request.input_name, request.resolved_trace_len())
        for request in cold
    }
    for app, input_name, trace_len in sorted(keys):
        trace = get_trace(app, input_name, trace_len)
        columns = trace.columns
        payload = columns.to_payload()
        if not payload:
            continue
        try:
            segment = shared_memory.SharedMemory(create=True, size=len(payload))
        except OSError:
            continue
        segment.buf[: len(payload)] = payload
        segments.append(segment)
        meta = trace.metadata
        descriptors[(app, input_name, trace_len)] = (
            segment.name,
            len(columns),
            (meta.app, meta.input_name, meta.seed, meta.description),
        )
    return descriptors, segments


def _release_segments(segments: list) -> None:
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone
            pass


def _attach_traces(descriptors: TraceDescriptors) -> None:
    """Worker side: copy shared-memory traces into the registry cache.

    Under the default ``fork`` start method the parent's trace cache is
    inherited and seeding is a no-op; under ``spawn`` (or after a cache
    clear) this is what saves regeneration.  A missing/renamed segment
    just falls back to normal generation.
    """
    if not descriptors:
        return
    from multiprocessing import resource_tracker, shared_memory

    from ..workloads.registry import seed_trace_cache

    def _no_register(name: str, rtype: str) -> None:
        # Python <= 3.12 SharedMemory registers even plain attaches with
        # the resource tracker, which double-books segments the parent
        # owns (and, under spawn, unlinks them when this worker exits).
        if rtype != "shared_memory":  # pragma: no cover - only shm here
            _register(name, rtype)

    for (app, input_name, trace_len), (name, n, meta) in descriptors.items():
        _register = resource_tracker.register
        resource_tracker.register = _no_register
        try:
            segment = shared_memory.SharedMemory(name=name)
        except (OSError, ValueError):
            continue
        finally:
            resource_tracker.register = _register
        try:
            columns = TraceColumns.from_payload(segment.buf, n)
        except Exception:
            segment.close()
            continue
        segment.close()
        trace = Trace(columns=columns, metadata=TraceMetadata(*meta))
        seed_trace_cache(app, input_name, trace_len, trace)


def _simulate_chunk(
    requests: list[RunRequest],
    trace_descriptors: TraceDescriptors | None = None,
) -> list[tuple[str, object]]:
    """Worker entry point: run each request, never raise.

    Runs inside a pool process; traces arrive over shared memory (see
    :func:`_export_traces`) when available, otherwise they are rebuilt
    from the request (they are deterministic) and cached per worker, so
    same-app requests grouped onto this worker pay trace construction
    at most once.  Exceptions are shipped back as formatted text so the
    parent can attach the offending request.
    """
    if trace_descriptors:
        try:
            _attach_traces(trace_descriptors)
        except Exception:
            pass  # sharing is an optimization; generation still works
    out: list[tuple[str, object]] = []
    for request in requests:
        try:
            out.append(("ok", run(request)))
        except Exception:
            out.append(("err", traceback.format_exc()))
    return out


_last_report: BatchReport | None = None


def last_batch_report() -> BatchReport | None:
    """The report of the most recent :func:`run_many` / :func:`run_batch`."""
    return _last_report


def run_batch(
    requests: Iterable[RunRequest], jobs: int | None = None
) -> tuple[list[SimulationStats], BatchReport]:
    """Like :func:`run_many`, returning the :class:`BatchReport` too."""
    global _last_report
    requests = list(requests)
    jobs = resolve_jobs(jobs)
    report = BatchReport(requests=len(requests), jobs=jobs)
    started = time.perf_counter()

    # 1. dedup, preserving request order for the result list.
    order: list[str] = []
    unique: dict[str, RunRequest] = {}
    for request in requests:
        key = request.cache_key()
        order.append(key)
        unique.setdefault(key, request)
    report.unique = len(unique)

    # 2. serve cache hits inline.
    results: dict[str, SimulationStats] = {}
    cold: list[tuple[str, RunRequest]] = []
    for key, request in unique.items():
        in_memory = key in _memory_cache
        stats = cached_stats(request, key)
        if stats is not None:
            results[key] = stats
            if in_memory:
                report.memory_hits += 1
            else:
                report.disk_hits += 1
        else:
            cold.append((key, request))
    report.executed = len(cold)

    # 3. execute the cold remainder (serial fallback or process fan-out),
    # 4. writing worker results back into both cache layers here.
    if cold and jobs == 1:
        for key, request in cold:
            try:
                results[key] = run(request)
            except Exception as exc:
                raise BatchExecutionError(
                    request, f"{type(exc).__name__}: {exc}"
                ) from exc
    elif cold:
        chunks = _chunk_cold_requests([request for _, request in cold], jobs)
        report.chunks = len(chunks)
        descriptors, segments = _export_traces([request for _, request in cold])
        try:
            with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
                futures = {
                    pool.submit(_simulate_chunk, chunk, descriptors): chunk
                    for chunk in chunks
                }
                for future in as_completed(futures):
                    for request, (status, payload) in zip(
                        futures[future], future.result()
                    ):
                        if status == "err":
                            raise BatchExecutionError(request, str(payload))
                        key = request.cache_key()
                        store_stats(request, payload, key)
                        results[key] = payload
        finally:
            _release_segments(segments)

    report.elapsed_s = time.perf_counter() - started
    _last_report = report
    return [results[key] for key in order], report


def run_many(
    requests: Iterable[RunRequest], jobs: int | None = None
) -> list[SimulationStats]:
    """Execute a batch of simulations, results in request order.

    Duplicate requests are simulated once; every request's stats are
    bit-identical to what serial ``run()`` would produce.  The batch
    accounting is available via :func:`last_batch_report`.
    """
    results, _ = run_batch(requests, jobs=jobs)
    return results
