"""Parallel batch execution engine over the memoized runner.

Every figure/table is a fan-out of independent simulations, so the
experiments hand their full :class:`~repro.harness.runner.RunRequest`
list to :func:`run_many` instead of looping over ``run()``:

1. **dedup** — requests are collapsed by ``cache_key()`` (figures share
   baselines heavily);
2. **cache probe** — memory/disk hits are served inline in the parent;
3. **fan-out** — the remaining cold runs are grouped by
   ``(app, input, trace_len)`` so one worker re-derives each trace (and
   any FURBYS/Thermometer profile) once, then executed on a
   :class:`~concurrent.futures.ProcessPoolExecutor`;
4. **write-back** — worker results are stored into both cache layers in
   the parent, so memoization semantics are unchanged.

Within each worker the shared offline-artifact store
(:mod:`repro.harness.artifacts`) collapses the per-policy offline work
further: FURBYS and Thermometer requests for one training trace share a
single profiling replay, FLACK ablation variants share the trace's
future index and interval decomposition, and profiling artifacts
persist to the same ``.repro-cache/`` directory (atomically, so
concurrent workers may race on a key but never corrupt it), priming
later batches even across processes.

``jobs=1`` (or ``REPRO_JOBS=1``) takes a plain serial path, which keeps
debugging and coverage simple.  Traces, profiles and the simulation
itself are deterministic, so parallel results are bit-identical to
serial ones — the test suite asserts this.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..core.stats import SimulationStats
from .runner import RunRequest, _memory_cache, cached_stats, run, store_stats

__all__ = [
    "BatchExecutionError",
    "BatchReport",
    "last_batch_report",
    "resolve_jobs",
    "run_batch",
    "run_many",
]


@dataclass(slots=True)
class BatchReport:
    """Per-batch accounting: where each request was served from."""

    requests: int = 0
    unique: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    executed: int = 0
    jobs: int = 1
    chunks: int = 0
    elapsed_s: float = 0.0

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


class BatchExecutionError(RuntimeError):
    """A simulation failed inside a batch; carries the offending request."""

    def __init__(self, request: RunRequest, detail: str):
        super().__init__(f"simulation failed for {request!r}:\n{detail}")
        self.request = request
        self.detail = detail


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit arg, else ``REPRO_JOBS``, else cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            jobs = int(env)
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def _chunk_cold_requests(
    requests: Sequence[RunRequest], jobs: int
) -> list[list[RunRequest]]:
    """Group requests into worker chunks that maximize trace reuse.

    Requests sharing ``(app, input, trace_len)`` re-derive the same
    trace (and, for profile-guided policies, mostly the same profile),
    so they are kept on one worker.  Groups larger than the batch can
    keep ``jobs`` workers busy are split in half until there are enough
    chunks, largest-first so the pool schedules long chunks earliest.
    """
    groups: dict[tuple[str, str, int], list[RunRequest]] = {}
    for request in requests:
        key = (request.app, request.input_name, request.resolved_trace_len())
        groups.setdefault(key, []).append(request)
    chunks = list(groups.values())
    while len(chunks) < jobs:
        chunks.sort(key=len, reverse=True)
        largest = chunks[0]
        if len(largest) < 2:
            break
        mid = len(largest) // 2
        chunks[0:1] = [largest[:mid], largest[mid:]]
    chunks.sort(key=len, reverse=True)
    return chunks


def _simulate_chunk(requests: list[RunRequest]) -> list[tuple[str, object]]:
    """Worker entry point: run each request, never raise.

    Runs inside a pool process; traces/profiles are rebuilt there from
    the request (they are deterministic) and cached per worker, so
    same-app requests grouped onto this worker pay trace generation
    once.  Exceptions are shipped back as formatted text so the parent
    can attach the offending request.
    """
    out: list[tuple[str, object]] = []
    for request in requests:
        try:
            out.append(("ok", run(request)))
        except Exception:
            out.append(("err", traceback.format_exc()))
    return out


_last_report: BatchReport | None = None


def last_batch_report() -> BatchReport | None:
    """The report of the most recent :func:`run_many` / :func:`run_batch`."""
    return _last_report


def run_batch(
    requests: Iterable[RunRequest], jobs: int | None = None
) -> tuple[list[SimulationStats], BatchReport]:
    """Like :func:`run_many`, returning the :class:`BatchReport` too."""
    global _last_report
    requests = list(requests)
    jobs = resolve_jobs(jobs)
    report = BatchReport(requests=len(requests), jobs=jobs)
    started = time.perf_counter()

    # 1. dedup, preserving request order for the result list.
    order: list[str] = []
    unique: dict[str, RunRequest] = {}
    for request in requests:
        key = request.cache_key()
        order.append(key)
        unique.setdefault(key, request)
    report.unique = len(unique)

    # 2. serve cache hits inline.
    results: dict[str, SimulationStats] = {}
    cold: list[tuple[str, RunRequest]] = []
    for key, request in unique.items():
        in_memory = key in _memory_cache
        stats = cached_stats(request, key)
        if stats is not None:
            results[key] = stats
            if in_memory:
                report.memory_hits += 1
            else:
                report.disk_hits += 1
        else:
            cold.append((key, request))
    report.executed = len(cold)

    # 3. execute the cold remainder (serial fallback or process fan-out),
    # 4. writing worker results back into both cache layers here.
    if cold and jobs == 1:
        for key, request in cold:
            try:
                results[key] = run(request)
            except Exception as exc:
                raise BatchExecutionError(
                    request, f"{type(exc).__name__}: {exc}"
                ) from exc
    elif cold:
        chunks = _chunk_cold_requests([request for _, request in cold], jobs)
        report.chunks = len(chunks)
        with ProcessPoolExecutor(max_workers=min(jobs, len(chunks))) as pool:
            futures = {pool.submit(_simulate_chunk, chunk): chunk for chunk in chunks}
            for future in as_completed(futures):
                for request, (status, payload) in zip(futures[future], future.result()):
                    if status == "err":
                        raise BatchExecutionError(request, str(payload))
                    key = request.cache_key()
                    store_stats(request, payload, key)
                    results[key] = payload

    report.elapsed_s = time.perf_counter() - started
    _last_report = report
    return [results[key] for key in order], report


def run_many(
    requests: Iterable[RunRequest], jobs: int | None = None
) -> list[SimulationStats]:
    """Execute a batch of simulations, results in request order.

    Duplicate requests are simulated once; every request's stats are
    bit-identical to what serial ``run()`` would produce.  The batch
    accounting is available via :func:`last_batch_report`.
    """
    results, _ = run_batch(requests, jobs=jobs)
    return results
