"""Parallel batch execution engine over the memoized runner.

Every figure/table is a fan-out of independent simulations, so the
experiments hand their full :class:`~repro.harness.runner.RunRequest`
list to :func:`run_many` instead of looping over ``run()``:

1. **dedup** — requests are collapsed by ``cache_key()`` (figures share
   baselines heavily);
2. **cache probe** — memory/disk hits are served inline in the parent;
3. **fan-out** — the remaining cold runs are grouped by
   ``(app, input, trace_len)`` so each trace is materialized once: the
   parent builds (or disk-loads) it, publishes the packed columns via
   ``multiprocessing.shared_memory``, and workers on the
   :class:`~concurrent.futures.ProcessPoolExecutor` copy the columns
   straight out of the segment instead of regenerating the trace or
   unpickling tens of thousands of ``PWLookup`` objects (with
   ``REPRO_TRACE_FASTPATH=0``, or if shared memory is unavailable,
   workers re-derive traces as before);
4. **write-back** — worker results are stored into both cache layers in
   the parent, so memoization semantics are unchanged.

Before any cold request runs per-arm, the **arm-fused prepass**
(:func:`_fused_prepass` — in the parent for ``jobs=1``, per chunk in
the workers otherwise) groups requests that share a trace and geometry
and advances all of their policy arms in one
:func:`repro.frontend.simd_fused.run_group` sweep, bit-identical to
the per-arm kernels.  ``REPRO_SIM_FUSE=0`` disables it end-to-end;
ineligible arms and failed groups reroute to the per-arm path with a
``sim_fallback:fused:<reason>`` counter, and served work is counted
under ``sim_fused:*`` in the batch report.

Within each worker the shared offline-artifact store
(:mod:`repro.harness.artifacts`) collapses the per-policy offline work
further: FURBYS and Thermometer requests for one training trace share a
single profiling replay, FLACK ablation variants share the trace's
future index and interval decomposition, and profiling artifacts
persist to the same ``.repro-cache/`` directory (atomically, so
concurrent workers may race on a key but never corrupt it), priming
later batches even across processes.

``jobs=1`` (or ``REPRO_JOBS=1``) takes a plain serial path, which keeps
debugging and coverage simple.  Traces, profiles and the simulation
itself are deterministic, so parallel results are bit-identical to
serial ones — the test suite asserts this.

Failure handling (:mod:`repro.harness.resilience`) wraps all of the
above.  ``on_error`` selects the contract:

* ``"raise"`` (default) — fail fast: the first failure aborts the batch
  with a :class:`BatchExecutionError` carrying the offending request,
  attempt count and the worker's traceback;
* ``"retry"`` — transient failures (a crashed worker process, a chunk
  timeout, a torn cache artifact — see
  :data:`~repro.harness.resilience.RETRYABLE_TYPES`) are retried per
  the :class:`~repro.harness.resilience.RetryPolicy`: the pool is
  rebuilt after a ``BrokenProcessPool``, surviving cold work is
  resubmitted as singleton chunks, and a request's **final** attempt is
  rerouted to the serial path in the parent so a persistent error
  surfaces with a clean local traceback;
* ``"skip"`` — like ``"retry"``, but exhausted (or deterministic)
  failures yield ``None`` in that request's result slot instead of
  raising, with every skip itemized in ``BatchReport.faults`` — a sweep
  returns its 95% of good results instead of dying.

Per-chunk timeouts (``timeout_s`` / ``REPRO_TIMEOUT_S``) bound hung
workers; an expired chunk counts as ``timed_out``, its pool is torn
down (hung processes terminated) and its requests re-enter the retry
loop.  Deterministic chaos coverage for all of this lives in
``tests/test_resilience.py`` and ``repro bench --chaos``, driven by
:mod:`repro.faultinject`.

When an experiment recording context is active
(:mod:`repro.harness.ledger`, installed by ``repro experiments
run/resume``), the batch additionally journals durably: unique
requests are registered in the ledger up front and every landed chunk
is committed as one atomic SQLite transaction, so a process killed
mid-batch can be resumed with only its missing requests re-executed.
"""

from __future__ import annotations

import dataclasses
import os
import time
import traceback
from struct import error as struct_error
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .. import faultinject
from ..core.stats import SimulationStats
from ..core.trace import Trace, TraceColumns, TraceMetadata, trace_fastpath_enabled
from ..errors import FaultInjectionError, ReproError, TraceError
from ..frontend import simd_fused
from . import resilience
from .ledger import active_journal
from .resilience import FaultReport, RetryPolicy
from .runner import RunRequest, _memory_cache, cached_stats, run, store_stats

#: (app, input, trace_len) -> (shm name, n_lookups, metadata fields).
TraceDescriptors = dict[tuple[str, str, int], tuple[str, int, tuple]]

__all__ = [
    "BatchExecutionError",
    "BatchReport",
    "last_batch_report",
    "resolve_jobs",
    "resolve_on_error",
    "run_batch",
    "run_many",
]

ON_ERROR_MODES = ("raise", "skip", "retry")


@dataclass(slots=True)
class BatchReport:
    """Per-batch accounting: where each request was served from."""

    requests: int = 0
    unique: int = 0
    memory_hits: int = 0
    disk_hits: int = 0
    executed: int = 0
    jobs: int = 1
    chunks: int = 0
    elapsed_s: float = 0.0
    on_error: str = "raise"
    #: Crash/timeout/retry/skip/corruption/fallback taxonomy; all-zero
    #: on a clean batch.
    faults: FaultReport = field(default_factory=FaultReport)

    def to_json(self) -> dict:
        return dataclasses.asdict(self)


class BatchExecutionError(RuntimeError):
    """A simulation failed inside a batch; carries the offending request.

    ``request`` is the failing :class:`RunRequest`, ``attempts`` how
    many executions were tried before giving up, and ``detail`` the full
    worker traceback text (or local traceback for serial failures) —
    everything :func:`repro.harness.reporting.format_failure` needs to
    print a readable failure block.
    """

    def __init__(self, request: RunRequest, detail: str, attempts: int = 1):
        super().__init__(
            f"simulation failed after {attempts} attempt(s) for "
            f"{request!r}:\n{detail}"
        )
        self.request = request
        self.detail = detail
        self.attempts = attempts


def resolve_jobs(jobs: int | None = None) -> int:
    """Worker count: explicit arg, else ``REPRO_JOBS``, else cpu count."""
    if jobs is None:
        env = os.environ.get("REPRO_JOBS", "").strip()
        if env:
            jobs = int(env)
        else:
            jobs = os.cpu_count() or 1
    return max(1, int(jobs))


def resolve_on_error(on_error: str | None = None) -> str:
    """Failure mode: explicit arg, else ``REPRO_ON_ERROR``, else raise."""
    if on_error is None:
        on_error = os.environ.get("REPRO_ON_ERROR", "").strip() or "raise"
    if on_error not in ON_ERROR_MODES:
        raise ReproError(
            f"unknown on_error mode {on_error!r}; choose from {ON_ERROR_MODES}"
        )
    return on_error


def _resolve_timeout(timeout_s: float | None) -> float | None:
    """Per-chunk timeout: explicit arg, else ``REPRO_TIMEOUT_S``, else off."""
    if timeout_s is None:
        env = os.environ.get("REPRO_TIMEOUT_S", "").strip()
        if env:
            timeout_s = float(env)
    if timeout_s is not None and timeout_s <= 0:
        return None
    return timeout_s


def _chunk_cold_requests(
    requests: Sequence[RunRequest], jobs: int
) -> list[list[RunRequest]]:
    """Group requests into worker chunks that maximize trace reuse.

    Requests sharing ``(app, input, trace_len)`` re-derive the same
    trace (and, for profile-guided policies, mostly the same profile),
    so they are kept on one worker.  Groups larger than the batch can
    keep ``jobs`` workers busy are split in half until there are enough
    chunks, largest-first so the pool schedules long chunks earliest.
    """
    groups: dict[tuple[str, str, int], list[RunRequest]] = {}
    for request in requests:
        key = (request.app, request.input_name, request.resolved_trace_len())
        groups.setdefault(key, []).append(request)
    chunks = list(groups.values())
    while len(chunks) < jobs:
        chunks.sort(key=len, reverse=True)
        largest = chunks[0]
        if len(largest) < 2:
            break
        mid = len(largest) // 2
        chunks[0:1] = [largest[:mid], largest[mid:]]
    chunks.sort(key=len, reverse=True)
    return chunks


def _export_traces(
    cold: Sequence[RunRequest],
) -> tuple[TraceDescriptors, list]:
    """Build each distinct cold trace once and stage it in shared memory.

    The parent pays generation (or a disk-cache load) for each distinct
    ``(app, input, trace_len)`` and publishes the packed columns as one
    ``multiprocessing.shared_memory`` segment, so workers copy columns
    out of the segment instead of re-deriving 45k ``PWLookup`` objects
    per chunk.  A failed segment allocation (e.g. ``/dev/shm``
    unavailable or full) degrades to the old regenerate-in-worker
    behaviour — counted as an ``shm_export`` fallback, never silent.

    Returns the descriptors plus the open segments; the caller must
    close and unlink the segments once the pool has drained.
    """
    descriptors: TraceDescriptors = {}
    segments: list = []
    if not trace_fastpath_enabled():
        return descriptors, segments
    try:
        from multiprocessing import shared_memory
    except ImportError:  # pragma: no cover - stdlib always has it
        return descriptors, segments
    from ..workloads.registry import get_trace

    keys = {
        (request.app, request.input_name, request.resolved_trace_len())
        for request in cold
    }
    for app, input_name, trace_len in sorted(keys):
        trace = get_trace(app, input_name, trace_len)
        columns = trace.columns
        payload = columns.to_payload()
        if not payload:
            continue
        try:
            segment = shared_memory.SharedMemory(create=True, size=len(payload))
        except OSError:
            resilience.note_fallback("shm_export")
            continue
        segment.buf[: len(payload)] = payload
        segments.append(segment)
        meta = trace.metadata
        descriptors[(app, input_name, trace_len)] = (
            segment.name,
            len(columns),
            (meta.app, meta.input_name, meta.seed, meta.description),
        )
    return descriptors, segments


def _release_segments(segments: list) -> None:
    for segment in segments:
        try:
            segment.close()
            segment.unlink()
        except OSError:  # pragma: no cover - already gone
            resilience.note_fallback("shm_cleanup")


def _attach_traces(descriptors: TraceDescriptors) -> None:
    """Worker side: copy shared-memory traces into the registry cache.

    Under the default ``fork`` start method the parent's trace cache is
    inherited and seeding is a no-op; under ``spawn`` (or after a cache
    clear) this is what saves regeneration.  A missing/renamed segment
    or an undecodable payload counts an ``shm_attach`` fallback and the
    worker falls back to normal generation.
    """
    if not descriptors:
        return
    faultinject.maybe_fail_shm_attach()
    from multiprocessing import resource_tracker, shared_memory

    from ..workloads.registry import seed_trace_cache

    def _no_register(name: str, rtype: str) -> None:
        # Python <= 3.12 SharedMemory registers even plain attaches with
        # the resource tracker, which double-books segments the parent
        # owns (and, under spawn, unlinks them when this worker exits).
        if rtype != "shared_memory":  # pragma: no cover - only shm here
            _register(name, rtype)

    for (app, input_name, trace_len), (name, n, meta) in descriptors.items():
        _register = resource_tracker.register
        resource_tracker.register = _no_register
        try:
            segment = shared_memory.SharedMemory(name=name)
        except (OSError, ValueError):
            resilience.note_fallback("shm_attach")
            continue
        finally:
            resource_tracker.register = _register
        try:
            columns = TraceColumns.from_payload(segment.buf, n)
        except (ValueError, TraceError, struct_error):
            resilience.note_fallback("shm_attach")
            segment.close()
            continue
        segment.close()
        trace = Trace(columns=columns, metadata=TraceMetadata(*meta))
        seed_trace_cache(app, input_name, trace_len, trace)


# --- arm-fused group prepass --------------------------------------------------


def _fused_group_key(request: RunRequest) -> tuple:
    """Group identity for the fused sweep: everything but the policy.

    Requests that agree on all of these share one trace, one config and
    one warmup split, which is exactly what
    :func:`repro.frontend.simd_fused.run_group` requires; the policy
    and its profile inputs may differ freely between arms.
    """
    return (
        request.app, request.input_name, request.config, request.perfect,
        request.cache_entries, request.cache_ways, request.insertion_delay,
        request.inclusive, request.keep_larger, request.classify_misses,
        request.resolved_trace_len(), request.resolved_warmup(),
    )


def _run_fused_group(group, results):
    """Try one geometry-uniform group fused; return the unserved pairs.

    Never raises: any failure — an unsupported arm mix, an injected
    fault, a genuine simulation error — reroutes the whole group to the
    established per-arm path (which re-raises real errors under its own
    retry semantics), counted as ``sim_fallback:fused:<reason>``.
    """
    from ..frontend.pipeline import FrontendPipeline
    from ..frontend.simd import fallback_reason
    from ..policies import make_policy
    from ..workloads.registry import get_trace
    from .runner import _build_policy_and_hints

    first = group[0][1]
    remaining = []
    try:
        config = first.build_config()
        trace = get_trace(
            first.app, first.input_name, first.resolved_trace_len()
        )
        # Probe config-level eligibility with a throwaway LRU pipeline
        # before paying any offline-policy solves for the group.
        probe = FrontendPipeline(
            config, make_policy("lru"), classify_misses=first.classify_misses
        )
        reason = fallback_reason(probe)
        if reason is not None:
            resilience.note_fallback(f"sim_fallback:fused:{reason}")
            return group
        eligible = []
        pipelines = []
        for key, request in group:
            policy, hints = _build_policy_and_hints(request, config, trace)
            pipeline = FrontendPipeline(
                config, policy, hints=hints,
                classify_misses=request.classify_misses,
            )
            arm_reason = fallback_reason(pipeline)
            if arm_reason is None:
                eligible.append((key, request))
                pipelines.append(pipeline)
            else:
                resilience.note_fallback(f"sim_fallback:fused:{arm_reason}")
                remaining.append((key, request))
        if len(eligible) < 2:
            return group
        faultinject.maybe_fail_fused_group()
        stats_list = simd_fused.run_group(
            pipelines, trace, first.resolved_warmup()
        )
    except simd_fused.FusedUnsupported as exc:
        resilience.note_fallback(f"sim_fallback:fused:{exc.reason}")
        return group
    except Exception:
        resilience.note_fallback("sim_fallback:fused:error")
        return group
    for (key, request), stats in zip(eligible, stats_list):
        store_stats(request, stats, key)
        if results is not None:
            results[key] = stats
    resilience.note_fallback("sim_fused:groups")
    resilience.note_fallback("sim_fused:served", len(eligible))
    return remaining


def _fused_prepass(
    cold: list[tuple[str, RunRequest]],
    results: dict[str, SimulationStats | None] | None = None,
) -> list[tuple[str, RunRequest]]:
    """Serve multi-arm groups of cold requests via the fused sweep.

    Requests sharing a trace and geometry (policies free to differ)
    advance together through one
    :func:`repro.frontend.simd_fused.run_group` pass; results land in
    both cache layers exactly as the per-arm path writes them, and in
    ``results`` when given.  Returns the pairs the sweep did not serve
    — singleton groups, ineligible arms, or whole groups whose fused
    run failed — preserving the original submission order.
    """
    if len(cold) < 2 or not simd_fused.fuse_enabled():
        return cold
    groups: dict[tuple, list[tuple[str, RunRequest]]] = {}
    for pair in cold:
        groups.setdefault(_fused_group_key(pair[1]), []).append(pair)
    unserved: set[str] = set()
    for group in groups.values():
        if len(group) < 2:
            unserved.update(key for key, _ in group)
        else:
            unserved.update(key for key, _ in _run_fused_group(group, results))
    return [pair for pair in cold if pair[0] in unserved]


def _simulate_chunk(
    requests: list[RunRequest],
    trace_descriptors: TraceDescriptors | None = None,
    task_indices: list[int] | None = None,
) -> tuple[list[tuple[str, object]], dict[str, int]]:
    """Worker entry point: run each request, never raise.

    Runs inside a pool process; traces arrive over shared memory (see
    :func:`_export_traces`) when available, otherwise they are rebuilt
    from the request (they are deterministic) and cached per worker, so
    same-app requests grouped onto this worker pay trace construction
    at most once.  Exceptions are shipped back as the exception type
    name plus formatted traceback text so the parent can classify
    retryability and attach the offending request.  The second return
    value is this chunk's fallback-counter delta (shm attach failures,
    quarantined artifacts, ...) for the parent's
    :class:`~repro.harness.resilience.FaultReport`.

    ``task_indices`` are the batch-wide cold-task numbers of each
    request, consumed by the fault-injection hooks (and by nothing
    else) so ``REPRO_FAULT_SPEC`` can name a specific simulation.
    """
    counters_before = resilience.global_counters()
    if trace_descriptors:
        try:
            _attach_traces(trace_descriptors)
        except (OSError, ValueError, TraceError, FaultInjectionError):
            # Sharing is an optimization; generation still works.
            resilience.note_fallback("shm_attach")
    if task_indices is None:
        task_indices = list(range(len(requests)))
    # Arm-fused prepass: requests of this chunk that share a trace and
    # geometry advance together; the per-request loop below then serves
    # them from the memory cache (keeping per-task fault injection and
    # error shipping exactly where they were).
    pairs = []
    for request in requests:
        key = request.cache_key()
        if cached_stats(request, key) is None:
            pairs.append((key, request))
    _fused_prepass(pairs)
    out: list[tuple[str, object]] = []
    for index, request in zip(task_indices, requests):
        try:
            faultinject.on_worker_task(index)
            out.append(("ok", run(request)))
        except Exception as exc:
            out.append(("err", {
                "type": type(exc).__name__,
                "traceback": traceback.format_exc(),
            }))
    return out, resilience.counters_since(counters_before)


_last_report: BatchReport | None = None


def last_batch_report() -> BatchReport | None:
    """The report of the most recent :func:`run_many` / :func:`run_batch`."""
    return _last_report


@dataclass(slots=True)
class _PendingTask:
    """One cold request's execution state across attempts."""

    key: str
    request: RunRequest
    index: int  # batch-wide cold-task number (fault-injection identity)
    attempts: int = 0
    error_type: str = ""
    detail: str = ""
    state: str = "pending"  # pending | serial | done | failed


class _PoolExecutor:
    """The retry-aware fan-out: rounds of chunk submission over
    (re)built process pools, with per-chunk deadlines."""

    def __init__(
        self,
        cold: list[tuple[str, RunRequest]],
        jobs: int,
        report: BatchReport,
        on_error: str,
        retry_policy: RetryPolicy,
        timeout_s: float | None,
        results: dict[str, SimulationStats | None],
        journal=None,
    ):
        self.tasks = [
            _PendingTask(key=key, request=request, index=i)
            for i, (key, request) in enumerate(cold)
        ]
        self.jobs = jobs
        self.report = report
        self.on_error = on_error
        self.retry_policy = retry_policy
        self.timeout_s = timeout_s
        self.results = results
        self.journal = journal
        self.serial_queue: list[_PendingTask] = []

    # -- failure classification ------------------------------------------------

    def _finalize_failure(self, task: _PendingTask) -> None:
        task.state = "failed"
        if self.on_error == "skip":
            self.report.faults.skipped += 1
            self.report.faults.failures.append({
                "request": repr(task.request),
                "error": task.error_type,
                "attempts": task.attempts,
            })
            self.results[task.key] = None
            return
        raise BatchExecutionError(
            task.request, task.detail, attempts=task.attempts
        )

    def _note_attempt_failure(
        self, task: _PendingTask, error_type: str, detail: str
    ) -> None:
        """One execution attempt of ``task`` failed; decide its future."""
        task.attempts += 1
        task.error_type = error_type
        task.detail = detail
        if self.on_error == "raise":
            raise BatchExecutionError(
                task.request, detail, attempts=task.attempts
            )
        retryable = self.retry_policy.is_retryable_name(error_type)
        if not retryable or task.attempts >= self.retry_policy.max_attempts:
            self._finalize_failure(task)
            return
        self.report.faults.retried += 1
        if task.attempts >= self.retry_policy.max_attempts - 1:
            # Reserve the last attempt for the serial path: a failure
            # there produces a clean local traceback, and a parent-side
            # run cannot be lost to another worker crash.
            task.state = "serial"
            self.serial_queue.append(task)
        else:
            task.state = "pending"

    def _record_success(self, task: _PendingTask, stats: SimulationStats) -> None:
        store_stats(task.request, stats, task.key)
        self.results[task.key] = stats
        task.state = "done"
        if self.journal is not None:
            self.journal.record(task.key, task.request, stats)

    # -- rounds ---------------------------------------------------------------

    def _run_round(self, pending: list[_PendingTask], first: bool,
                   descriptors: TraceDescriptors) -> None:
        if first:
            request_chunks = _chunk_cold_requests(
                [task.request for task in pending], self.jobs
            )
            by_request = {task.request: task for task in pending}
            chunks = [[by_request[r] for r in chunk] for chunk in request_chunks]
        else:
            # Retry rounds resubmit singleton chunks so one bad request
            # cannot take innocent chunk-mates down with it again.
            chunks = [[task] for task in pending]
        self.report.chunks += len(chunks)
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(chunks)))
        abandon = False
        pool_broken = False
        try:
            futures = {}
            deadlines: dict = {}
            submitted = time.monotonic()
            for chunk in chunks:
                future = pool.submit(
                    _simulate_chunk,
                    [task.request for task in chunk],
                    descriptors,
                    [task.index for task in chunk],
                )
                futures[future] = chunk
                deadlines[future] = (
                    submitted + self.timeout_s if self.timeout_s else None
                )
            not_done = set(futures)
            while not_done:
                timeout = None
                if self.timeout_s:
                    next_deadline = min(deadlines[f] for f in not_done)
                    timeout = max(0.0, next_deadline - time.monotonic())
                done, not_done = wait(
                    not_done, timeout=timeout, return_when=FIRST_COMPLETED
                )
                for future in done:
                    chunk = futures[future]
                    try:
                        chunk_results, counter_delta = future.result()
                    except BrokenProcessPool:
                        if not pool_broken:
                            pool_broken = True
                            self.report.faults.crashed += 1
                        for task in chunk:
                            self._note_attempt_failure(
                                task, "BrokenProcessPool",
                                "worker process crashed mid-chunk "
                                "(BrokenProcessPool); results of this "
                                "chunk's attempt were lost",
                            )
                        continue
                    self.report.faults.merge_counters(counter_delta)
                    for task, (status, payload) in zip(chunk, chunk_results):
                        if status == "ok":
                            self._record_success(task, payload)
                        else:
                            self._note_attempt_failure(
                                task, payload["type"], payload["traceback"]
                            )
                    if self.journal is not None:
                        # One atomic ledger transaction per landed chunk:
                        # a SIGKILL between chunks loses at most the
                        # in-flight chunk, never a committed one.
                        self.journal.commit()
                if pool_broken:
                    abandon = True
                elif not_done and self.timeout_s:
                    now = time.monotonic()
                    for future in [
                        f for f in list(not_done)
                        if deadlines[f] is not None and now >= deadlines[f]
                    ]:
                        chunk = futures[future]
                        if future.cancel():
                            # Never started (queued behind a slow chunk):
                            # not a failure, just resubmit next round.
                            not_done.discard(future)
                            continue
                        self.report.faults.timed_out += 1
                        not_done.discard(future)
                        abandon = True
                        for task in chunk:
                            self._note_attempt_failure(
                                task, "TimeoutError",
                                f"chunk exceeded its {self.timeout_s}s "
                                "timeout (worker hung); abandoned",
                            )
                if abandon:
                    break
        finally:
            if abandon or pool_broken:
                self._teardown(pool)
            else:
                pool.shutdown(wait=True)

    @staticmethod
    def _teardown(pool: ProcessPoolExecutor) -> None:
        """Abandon a pool that contains hung or crashed workers.

        The process list must be snapshotted *before* ``shutdown()``:
        CPython drops ``_processes`` to ``None`` there even with
        ``wait=False``, so reading it afterwards would leave hung
        workers alive — and the interpreter's atexit hook would then
        block on the pool's management thread until the hang ended.
        """
        processes = getattr(pool, "_processes", None) or {}
        if isinstance(processes, dict):  # a list while the pool is breaking
            processes = list(processes.values())
        else:
            processes = list(processes)
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            # SIGKILL, not SIGTERM: the chunk's results are already
            # written off, and a hung worker must not outlive the round.
            try:
                process.kill()
            except (OSError, AttributeError):  # pragma: no cover - racing exit
                pass
        for process in processes:
            try:
                process.join(timeout=5.0)
            except (OSError, AttributeError, ValueError):  # pragma: no cover
                pass

    def _run_serial_queue(self) -> None:
        for task in self.serial_queue:
            time.sleep(
                min(self.retry_policy.delay_for(task.attempts, task.key), 1.0)
            )
            try:
                stats = run(task.request)
                self.results[task.key] = stats
                task.state = "done"
                if self.journal is not None:
                    self.journal.record(task.key, task.request, stats)
                    self.journal.commit()
            except Exception as exc:
                task.attempts += 1
                task.error_type = type(exc).__name__
                task.detail = traceback.format_exc()
                self._finalize_failure(task)

    def execute(self) -> None:
        descriptors, segments = _export_traces(
            [task.request for task in self.tasks]
        )
        try:
            first = True
            rounds = 0
            max_rounds = 3 * max(1, self.retry_policy.max_attempts) + 3
            while True:
                pending = [t for t in self.tasks if t.state == "pending"]
                if not pending:
                    break
                rounds += 1
                if rounds > max_rounds:  # pragma: no cover - safety valve
                    raise ReproError(
                        f"batch did not converge after {rounds} pool rounds; "
                        f"{len(pending)} request(s) still pending"
                    )
                if not first:
                    time.sleep(min(max(
                        self.retry_policy.delay_for(t.attempts, t.key)
                        for t in pending
                    ), 1.0))
                self._run_round(pending, first, descriptors)
                first = False
            self._run_serial_queue()
        finally:
            _release_segments(segments)


def _run_serial(
    cold: list[tuple[str, RunRequest]],
    report: BatchReport,
    on_error: str,
    retry_policy: RetryPolicy,
    results: dict[str, SimulationStats | None],
    journal=None,
) -> None:
    for key, request in cold:
        attempts = 0
        while True:
            attempts += 1
            try:
                stats = run(request)
                results[key] = stats
                if journal is not None:
                    journal.record(key, request, stats)
                    journal.commit()
                break
            except Exception as exc:
                detail = traceback.format_exc()
                if on_error == "raise":
                    raise BatchExecutionError(
                        request, detail, attempts=attempts
                    ) from exc
                if (
                    retry_policy.is_retryable(exc)
                    and attempts < retry_policy.max_attempts
                ):
                    report.faults.retried += 1
                    time.sleep(retry_policy.delay_for(attempts, key))
                    continue
                if on_error == "skip":
                    report.faults.skipped += 1
                    report.faults.failures.append({
                        "request": repr(request),
                        "error": type(exc).__name__,
                        "attempts": attempts,
                    })
                    results[key] = None
                    break
                raise BatchExecutionError(
                    request, detail, attempts=attempts
                ) from exc


def run_batch(
    requests: Iterable[RunRequest],
    jobs: int | None = None,
    *,
    on_error: str | None = None,
    retry_policy: RetryPolicy | None = None,
    timeout_s: float | None = None,
) -> tuple[list[SimulationStats | None], BatchReport]:
    """Like :func:`run_many`, returning the :class:`BatchReport` too.

    See the module docstring for the ``on_error`` / retry / timeout
    semantics; under ``on_error="skip"`` a failed request's result slot
    is ``None`` and the failure is itemized in ``report.faults``.
    """
    global _last_report
    requests = list(requests)
    jobs = resolve_jobs(jobs)
    on_error = resolve_on_error(on_error)
    retry_policy = retry_policy or RetryPolicy()
    timeout_s = _resolve_timeout(timeout_s)
    report = BatchReport(requests=len(requests), jobs=jobs, on_error=on_error)
    counters_before = resilience.global_counters()
    started = time.perf_counter()

    # 1. dedup, preserving request order for the result list.
    order: list[str] = []
    unique: dict[str, RunRequest] = {}
    for request in requests:
        key = request.cache_key()
        order.append(key)
        unique.setdefault(key, request)
    report.unique = len(unique)

    # When an experiment recording context is active (repro experiments
    # run/resume), every unique request is registered up front and each
    # landed chunk is journaled — see repro.harness.ledger.
    journal = active_journal()
    if journal is not None:
        journal.register(list(unique.items()))

    # 2. serve cache hits inline.
    results: dict[str, SimulationStats | None] = {}
    cold: list[tuple[str, RunRequest]] = []
    for key, request in unique.items():
        in_memory = key in _memory_cache
        stats = cached_stats(request, key)
        if stats is not None:
            results[key] = stats
            if in_memory:
                report.memory_hits += 1
            else:
                report.disk_hits += 1
            if journal is not None:
                journal.record(key, request, stats)
        else:
            cold.append((key, request))
    report.executed = len(cold)
    if journal is not None:
        journal.commit()

    # 3. execute the cold remainder (serial fallback or process fan-out),
    # 4. writing worker results back into both cache layers here.  The
    # serial path runs the arm-fused prepass in the parent; pool workers
    # run it per chunk inside _simulate_chunk.
    if cold and jobs == 1:
        cold = _fused_prepass(cold, results)
        if journal is not None:
            for key, stats in results.items():
                if stats is not None:
                    journal.record(key, unique[key], stats)
            journal.commit()
        if cold:
            _run_serial(cold, report, on_error, retry_policy, results, journal)
    elif cold:
        _PoolExecutor(
            cold, jobs, report, on_error, retry_policy, timeout_s, results,
            journal,
        ).execute()
    if journal is not None:
        journal.commit()

    # Parent-side graceful degradations during this batch (quarantined
    # cache entries, failed disk writes, shm export issues) land in the
    # report too; worker-side deltas were merged per chunk.
    report.faults.merge_counters(resilience.counters_since(counters_before))
    report.elapsed_s = time.perf_counter() - started
    _last_report = report
    return [results[key] for key in order], report


def run_many(
    requests: Iterable[RunRequest],
    jobs: int | None = None,
    *,
    on_error: str | None = None,
    retry_policy: RetryPolicy | None = None,
    timeout_s: float | None = None,
) -> list[SimulationStats | None]:
    """Execute a batch of simulations, results in request order.

    Duplicate requests are simulated once; every request's stats are
    bit-identical to what serial ``run()`` would produce.  The batch
    accounting is available via :func:`last_batch_report`.  Under
    ``on_error="skip"`` (argument or ``REPRO_ON_ERROR``), failed
    requests yield ``None`` slots instead of aborting the batch.
    """
    results, _ = run_batch(
        requests, jobs=jobs, on_error=on_error, retry_policy=retry_policy,
        timeout_s=timeout_s,
    )
    return results
