"""Experiment harness: memoized runs, figure/table experiments, reports."""

from .runner import RunRequest, run
from .reporting import format_table, percent

__all__ = ["RunRequest", "run", "format_table", "percent"]
