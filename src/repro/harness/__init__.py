"""Experiment harness: memoized runs, batch engine, experiments, reports."""

from .parallel import BatchExecutionError, BatchReport, run_batch, run_many
from .reporting import format_batch_report, format_table, percent
from .runner import RunRequest, run

__all__ = [
    "BatchExecutionError",
    "BatchReport",
    "RunRequest",
    "format_batch_report",
    "format_table",
    "percent",
    "run",
    "run_batch",
    "run_many",
]
