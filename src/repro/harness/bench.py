"""Serial-vs-parallel timing of a representative figure batch.

Used by ``repro bench`` and ``scripts/bench_parallel.py`` to make the
batch engine's win (or lack of it — e.g. on a single-core host)
observable: the same cold-cache request list is executed through
:func:`~repro.harness.parallel.run_batch` with ``jobs=N`` and ``jobs=1``
and the wall-clock times, cache counters, and a result-determinism
check are reported as one JSON-able dict.
"""

from __future__ import annotations

import dataclasses
import os
import time

from ..workloads.registry import clear_trace_cache
from .parallel import resolve_jobs, run_batch
from .runner import RunRequest, clear_memory_cache

#: Policies of the default bench batch: the Figure 5/8 comparison mix.
BENCH_POLICIES = ("lru", "srrip", "ghrp", "flack", "furbys")
BENCH_APPS = ("kafka", "clang", "postgres")


def representative_requests(
    apps: tuple[str, ...] = BENCH_APPS,
    policies: tuple[str, ...] = BENCH_POLICIES,
    trace_len: int | None = None,
) -> list[RunRequest]:
    """A figure-shaped batch: every policy on every app."""
    return [
        RunRequest(app=app, policy=policy, trace_len=trace_len)
        for app in apps
        for policy in policies
    ]


def _cold_start() -> None:
    clear_memory_cache()
    clear_trace_cache()


def compare_serial_parallel(
    requests: list[RunRequest], jobs: int | None = None
) -> dict:
    """Time one cold batch with ``jobs`` workers vs. the serial path.

    The disk cache is disabled and the in-process caches are cleared
    before each arm so both start cold; the parallel arm runs first so
    its forked workers cannot inherit traces warmed by the serial arm.
    Results of the two arms are compared field-by-field.
    """
    jobs = resolve_jobs(jobs)
    saved = os.environ.get("REPRO_CACHE")
    os.environ["REPRO_CACHE"] = "0"
    try:
        _cold_start()
        started = time.perf_counter()
        parallel_stats, parallel_report = run_batch(requests, jobs=jobs)
        parallel_s = time.perf_counter() - started

        _cold_start()
        started = time.perf_counter()
        serial_stats, serial_report = run_batch(requests, jobs=1)
        serial_s = time.perf_counter() - started
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE", None)
        else:
            os.environ["REPRO_CACHE"] = saved

    identical = all(
        dataclasses.asdict(a) == dataclasses.asdict(b)
        for a, b in zip(parallel_stats, serial_stats)
    )
    return {
        "requests": len(requests),
        "unique": serial_report.unique,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "identical_results": identical,
        "parallel_report": parallel_report.to_json(),
        "serial_report": serial_report.to_json(),
    }
