"""Serial-vs-parallel timing of a representative figure batch.

Used by ``repro bench`` and ``scripts/bench_parallel.py`` to make the
batch engine's win (or lack of it — e.g. on a single-core host)
observable: the same cold-cache request list is executed through
:func:`~repro.harness.parallel.run_batch` with ``jobs=N`` and ``jobs=1``
and the wall-clock times, cache counters, and a result-determinism
check are reported as one JSON-able dict.
"""

from __future__ import annotations

import dataclasses
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from .. import faultinject
from ..workloads.registry import clear_trace_cache, get_trace
from .parallel import resolve_jobs, run_batch
from .runner import RunRequest, clear_memory_cache

#: Policies of the default bench batch: the Figure 5/8 comparison mix.
BENCH_POLICIES = ("lru", "srrip", "ghrp", "flack", "furbys")
BENCH_APPS = ("kafka", "clang", "postgres")


def representative_requests(
    apps: tuple[str, ...] = BENCH_APPS,
    policies: tuple[str, ...] = BENCH_POLICIES,
    trace_len: int | None = None,
) -> list[RunRequest]:
    """A figure-shaped batch: every policy on every app."""
    return [
        RunRequest(app=app, policy=policy, trace_len=trace_len)
        for app in apps
        for policy in policies
    ]


def _cold_start() -> None:
    clear_memory_cache()
    clear_trace_cache()


def compare_serial_parallel(
    requests: list[RunRequest], jobs: int | None = None
) -> dict:
    """Time one cold batch with ``jobs`` workers vs. the serial path.

    The disk cache is disabled and the in-process caches are cleared
    before each arm so both start cold; the parallel arm runs first so
    its forked workers cannot inherit traces warmed by the serial arm.
    Results of the two arms are compared field-by-field.
    """
    jobs = resolve_jobs(jobs)
    saved = os.environ.get("REPRO_CACHE")
    os.environ["REPRO_CACHE"] = "0"
    try:
        _cold_start()
        started = time.perf_counter()
        parallel_stats, parallel_report = run_batch(requests, jobs=jobs)
        parallel_s = time.perf_counter() - started

        _cold_start()
        started = time.perf_counter()
        serial_stats, serial_report = run_batch(requests, jobs=1)
        serial_s = time.perf_counter() - started
    finally:
        if saved is None:
            os.environ.pop("REPRO_CACHE", None)
        else:
            os.environ["REPRO_CACHE"] = saved

    identical = all(
        dataclasses.asdict(a) == dataclasses.asdict(b)
        for a, b in zip(parallel_stats, serial_stats)
    )
    return {
        "requests": len(requests),
        "unique": serial_report.unique,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "serial_s": round(serial_s, 3),
        "parallel_s": round(parallel_s, 3),
        "speedup": round(serial_s / parallel_s, 3) if parallel_s > 0 else None,
        "identical_results": identical,
        "parallel_report": parallel_report.to_json(),
        "serial_report": serial_report.to_json(),
    }


_CHAOS_ENV = (
    "REPRO_CACHE", "REPRO_CACHE_DIR", "REPRO_FAULT_SPEC", "REPRO_FAULT_STATE",
)


def chaos_smoke(
    apps: tuple[str, ...] = ("kafka", "clang"),
    policies: tuple[str, ...] = BENCH_POLICIES,
    trace_len: int = 6_000,
    jobs: int | None = None,
    timeout_s: float = 60.0,
) -> dict:
    """Prove the fault-tolerance claim end to end (``repro bench --chaos``).

    Runs a two-figure-shaped batch twice: once serially with no faults
    (the reference), then in parallel under ``on_error="retry"`` with
    three injected faults — one worker crash, one worker hang (long
    enough that the per-chunk timeout must fire), and one corrupted
    disk-cached trace artifact.  Passes when the chaotic run's results
    are bit-identical to the clean serial run *and* every injected
    fault shows up in the batch's fault counters.

    The crash targets task 0 and the hang task 1: chunk-mates, executed
    sequentially by one worker, so the crash always precedes the hang —
    the crash is observed in round one (``BrokenProcessPool``), and the
    hang first fires on the round-two singleton resubmission, where the
    per-chunk timeout must catch it.  The trace cache is pre-warmed in
    a private directory so the corruption fault has a real artifact to
    garble; fault once-state lives in a fresh directory so repeated
    invocations re-inject.
    """
    requests = representative_requests(
        apps=apps, policies=policies, trace_len=trace_len
    )
    jobs = max(2, resolve_jobs(jobs)) if jobs is not None else 2
    spec = "task:0:crash;task:1:hang=900;artifact:trace:corrupt"
    state_dir = tempfile.mkdtemp(prefix="repro-chaos-state-")
    cache_dir = tempfile.mkdtemp(prefix="repro-chaos-cache-")
    saved = {name: os.environ.get(name) for name in _CHAOS_ENV}
    try:
        # Fault-free serial reference, no caches in play.
        os.environ["REPRO_CACHE"] = "0"
        os.environ.pop("REPRO_FAULT_SPEC", None)
        os.environ.pop("REPRO_FAULT_STATE", None)
        faultinject.reset_plan_cache()
        _cold_start()
        started = time.perf_counter()
        serial_stats, serial_report = run_batch(requests, jobs=1)
        serial_s = time.perf_counter() - started

        # Chaos arm: private disk cache, trace entries pre-warmed so
        # the artifact fault has something to corrupt.
        os.environ["REPRO_CACHE"] = "1"
        os.environ["REPRO_CACHE_DIR"] = cache_dir
        _cold_start()
        for request in requests:
            get_trace(
                request.app, request.input_name, request.resolved_trace_len()
            )
        _cold_start()

        os.environ["REPRO_FAULT_SPEC"] = spec
        os.environ["REPRO_FAULT_STATE"] = state_dir
        faultinject.reset_plan_cache()
        started = time.perf_counter()
        chaos_stats, chaos_report = run_batch(
            requests, jobs=jobs, on_error="retry", timeout_s=timeout_s
        )
        chaos_s = time.perf_counter() - started
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        faultinject.reset()
        _cold_start()
        shutil.rmtree(state_dir, ignore_errors=True)
        shutil.rmtree(cache_dir, ignore_errors=True)

    identical = len(chaos_stats) == len(serial_stats) and all(
        a is not None
        and b is not None
        and dataclasses.asdict(a) == dataclasses.asdict(b)
        for a, b in zip(chaos_stats, serial_stats)
    )
    faults = chaos_report.faults
    accounted = (
        faults.crashed >= 1
        and faults.timed_out >= 1
        and faults.corrupt_artifacts >= 1
        and faults.retried >= 2
    )
    return {
        "requests": len(requests),
        "jobs": jobs,
        "spec": spec,
        "timeout_s": timeout_s,
        "serial_s": round(serial_s, 3),
        "chaos_s": round(chaos_s, 3),
        "identical_results": identical,
        "faults_accounted": accounted,
        "chaos_report": chaos_report.to_json(),
        "serial_report": serial_report.to_json(),
    }


_RESUME_ENV = _CHAOS_ENV + ("REPRO_LEDGER", "REPRO_HEARTBEAT_S")


def _ledger_cli(argv: list[str], env: dict, timeout: float) -> subprocess.CompletedProcess:
    """Run ``repro <argv>`` as a subprocess with ``src`` on PYTHONPATH."""
    src = str(Path(__file__).resolve().parents[2])
    merged = dict(os.environ)
    merged.update(env)
    merged["PYTHONPATH"] = (
        src + os.pathsep + merged["PYTHONPATH"]
        if merged.get("PYTHONPATH") else src
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, timeout=timeout, env=merged,
    )


def chaos_resume_proof(
    apps: tuple[str, ...] = ("kafka", "clang"),
    policies: tuple[str, ...] = BENCH_POLICIES,
    trace_len: int = 2_000,
    timeout_s: float = 6.0,
) -> dict:
    """End-to-end ledger durability proof (``repro bench --chaos-resume``).

    Three arms against one private ledger database:

    1. **Reference** — the ``bench`` request grid recorded cleanly
       in-process (experiment ``ref``).
    2. **Chaos** — the same grid via a real ``repro experiments run``
       subprocess with a worker crash, a worker hang (caught by the
       per-chunk timeout) *and* ``exp:<n>:kill`` armed: the parent
       SIGKILLs itself inside the journal commit that lands the final
       result, so every row is journaled but the experiment dies
       RUNNING — heartbeat thread, SQLite connection and all, exactly
       like an OOM kill.
    3. **Resume** — after the heartbeat goes stale, ``repro experiments
       resume`` in a second subprocess with ``ledger:rows:corrupt``
       armed, tearing one journaled row mid-takeover.

    Passes when the kill/crash/hang claims all fired, the resume served
    every intact row from the ledger with zero re-execution (exactly
    one row — the torn one — is recomputed), the final per-request
    stats are bit-identical to the reference experiment, and ``repro
    query delta`` reports zero delta on every request.  Disk caches are
    off throughout (``REPRO_CACHE=0``), so the ledger is the only thing
    standing between the SIGKILL and a from-scratch rerun.
    """
    total = len(apps) * len(policies)
    spec = f"task:0:crash;task:1:hang=12;exp:{total}:kill"
    state_dir = tempfile.mkdtemp(prefix="repro-chaos-resume-state-")
    ledger_dir = tempfile.mkdtemp(prefix="repro-chaos-resume-ledger-")
    db_path = os.path.join(ledger_dir, "ledger.sqlite")
    saved = {name: os.environ.get(name) for name in _RESUME_ENV}
    outcome: dict = {
        "requests": total, "spec": spec, "timeout_s": timeout_s,
    }
    try:
        # Arm 1: clean in-process reference recording.
        os.environ["REPRO_CACHE"] = "0"
        for name in ("REPRO_FAULT_SPEC", "REPRO_FAULT_STATE"):
            os.environ.pop(name, None)
        faultinject.reset_plan_cache()
        _cold_start()
        from .experiments import run_recorded

        reference = run_recorded(
            "bench", ledger=db_path, name="ref",
            apps=apps, policies=policies, trace_len=trace_len,
        )
        outcome["reference"] = reference

        # Arm 2: recorded run in a subprocess, SIGKILLed by the final
        # journal commit (plus one crash and one timed-out hang).
        chaos_env = {
            "REPRO_CACHE": "0",
            "REPRO_FAULT_SPEC": spec,
            "REPRO_FAULT_STATE": state_dir,
            "REPRO_HEARTBEAT_S": "0.2",
        }
        run_argv = [
            "experiments", "run", "bench", "--name", "chaos",
            "--ledger", db_path, "--apps", ",".join(apps),
            "--policies", ",".join(policies),
            "--trace-len", str(trace_len), "--jobs", "2",
            "--on-error", "retry", "--timeout", str(timeout_s),
        ]
        started = time.perf_counter()
        chaos = _ledger_cli(run_argv, chaos_env, timeout=300.0)
        outcome["chaos_s"] = round(time.perf_counter() - started, 3)
        outcome["sigkilled"] = chaos.returncode == -signal.SIGKILL
        outcome["claims_fired"] = {
            claim: os.path.exists(
                os.path.join(state_dir, f"{claim}.fired")
            )
            for claim in ("task-0-crash", "task-1-hang", f"exp-{total}-kill")
        }

        from .ledger import Ledger

        ledger = Ledger.open(db_path)
        row = ledger.find("chaos")
        chaos_id = int(row["id"]) if row is not None else None
        outcome["state_after_kill"] = row["state"] if row is not None else None
        outcome["journaled_before_resume"] = (
            len(ledger.done_keys(chaos_id)) if chaos_id is not None else 0
        )
        ledger.close()

        # Arm 3: wait out the (fast) heartbeat staleness window, then
        # resume in a second subprocess with one torn row injected.
        time.sleep(1.6)
        resume_env = {
            "REPRO_CACHE": "0",
            "REPRO_FAULT_SPEC": "ledger:rows:corrupt",
            "REPRO_FAULT_STATE": state_dir,
        }
        resume = _ledger_cli(
            ["experiments", "resume", "chaos", "--ledger", db_path,
             "--jobs", "1"],
            resume_env, timeout=300.0,
        )
        outcome["resume_exit"] = resume.returncode
        try:
            summary = json.loads(resume.stdout)
        except ValueError:
            summary = {"stdout": resume.stdout, "stderr": resume.stderr}
        outcome["resume"] = summary

        # Verdicts: the torn row is the only re-execution, the takeover
        # was noted, and the merged rows match the reference bit for bit.
        journaled = outcome["journaled_before_resume"]
        served = summary.get("ledger_served")
        outcome["zero_reexecution_of_journaled"] = (
            summary.get("state") == "COMPLETE"
            and served == journaled - 1
            and summary.get("re_executed") == total - served
            and summary.get("memory_hits") == served
        )
        notes = (summary.get("faults") or {}).get("notes") or {}
        outcome["takeover_noted"] = bool(notes.get("note:ledger_takeover"))

        ledger = Ledger.open(db_path)
        ref_rows = {
            entry["cache_key"]: entry["stats"]
            for entry in ledger.results_rows(int(reference["id"]))
        }
        chaos_rows = {
            entry["cache_key"]: entry["stats"]
            for entry in ledger.results_rows(chaos_id)
        } if chaos_id is not None else {}
        ledger.close()
        outcome["identical_results"] = (
            len(ref_rows) == total
            and ref_rows == chaos_rows
            and None not in ref_rows.values()
        )

        # The query CLI ties it off: per-request deltas, all zero.
        delta = _ledger_cli(
            ["query", "delta", str(reference["id"]), str(chaos_id),
             "--ledger", db_path, "--format", "json"],
            {"REPRO_CACHE": "0"}, timeout=120.0,
        )
        try:
            delta_rows = json.loads(delta.stdout)
        except ValueError:
            delta_rows = []
        outcome["query_delta_ok"] = (
            delta.returncode == 0
            and len(delta_rows) == total
            and all(entry["delta"] == "+0" for entry in delta_rows)
        )
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
        faultinject.reset()
        _cold_start()
        shutil.rmtree(state_dir, ignore_errors=True)
        shutil.rmtree(ledger_dir, ignore_errors=True)

    outcome["passed"] = bool(
        outcome.get("sigkilled")
        and all(outcome.get("claims_fired", {}).values())
        and outcome.get("state_after_kill") == "RUNNING"
        and outcome.get("journaled_before_resume") == total
        and outcome.get("zero_reexecution_of_journaled")
        and outcome.get("takeover_noted")
        and outcome.get("identical_results")
        and outcome.get("query_delta_ok")
    )
    return outcome
