"""Simulated Intel PT collection and PW-lookup recording (STEP 1-2).

In production, FURBYS profiles applications with Intel PT — a hardware
branch trace with ≤1% overhead that data centers already collect — and
reconstructs the dynamic micro-op stream from the binary.  Here the
workload generator plays the role of the traced application, so "PT
collection" is trace construction; the functions below keep the
pipeline's stages explicit and give tests a place to assert STEP-2
semantics (a zero-size micro-op cache observes every lookup as a miss,
exposing the raw PW lookup sequence independent of replacement).
"""

from __future__ import annotations

from ..core.pw import PWLookup
from ..core.trace import Trace
from ..workloads.registry import get_trace


def simulate_pt_collection(
    app: str, input_name: str = "default", n_lookups: int | None = None
) -> Trace:
    """STEP 1: collect an execution trace of an application input.

    Stands in for ``perf record -e intel_pt//`` plus binary-guided
    micro-op reconstruction; returns the dynamic PW lookup trace.
    """
    return get_trace(app, input_name, n_lookups)


def record_lookup_sequence(trace: Trace) -> list[PWLookup]:
    """STEP 2: the PW lookup sequence a size-0 micro-op cache observes.

    With no capacity, every lookup misses, is accumulated, and fails to
    insert — so the insertion stream equals the lookup stream,
    independent of any replacement policy.  In this reproduction the
    trace already *is* that sequence; the function exists so the
    pipeline stages match Figure 6 one-for-one (and so tests can verify
    the equivalence claim against an actual zero-capacity run).
    """
    return list(trace.lookups)
