"""FURBYS profiling pipeline (Figure 6, STEP 1-7).

Turns a trace (simulated Intel PT recording) into per-PW weight-group
hints by replaying the trace under FLACK, measuring whole-execution hit
rates, clustering them with Jenks natural breaks, and injecting the
3-bit group into each PW's terminating branch.
"""

from .hints import HintMap, build_hints
from .hitrate import collect_hit_rates, collect_hit_stats, three_class_profile
from .jenks import jenks_breaks, jenks_group
from .pipeline import FurbysProfile, make_furbys, profile_application
from .ptrace import record_lookup_sequence, simulate_pt_collection

__all__ = [
    "HintMap",
    "build_hints",
    "collect_hit_rates",
    "collect_hit_stats",
    "three_class_profile",
    "jenks_breaks",
    "jenks_group",
    "FurbysProfile",
    "make_furbys",
    "profile_application",
    "record_lookup_sequence",
    "simulate_pt_collection",
]
