"""Jenks natural breaks (Fisher's optimal 1-D classification).

FURBYS groups PWs into 8 weight classes by whole-execution hit rate
using Jenks natural breaks, which "determines the optimal arrangement
of values into distinct classes by minimizing within-class variance and
maximizing between-class variance" (Section V).

The exact algorithm is the Fisher/Jenks dynamic program — equivalent to
optimal one-dimensional k-means on sum-of-squared-error.  It is
O(k·n²); to keep profiling fast at trace scale, inputs larger than
``max_points`` are first aggregated into a weighted quantization, which
leaves the break positions essentially unchanged for the smooth hit-
rate distributions seen here (the DP below supports weights natively).
"""

from __future__ import annotations

import numpy as np

from ..errors import ProfilingError


def _quantize(values: np.ndarray, max_points: int) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate sorted values into at most ``max_points`` weighted points."""
    lo, hi = float(values[0]), float(values[-1])
    if hi <= lo:
        return np.array([lo]), np.array([float(len(values))])
    edges = np.linspace(lo, hi, max_points + 1)
    bins = np.clip(np.searchsorted(edges, values, side="right") - 1, 0, max_points - 1)
    counts = np.bincount(bins, minlength=max_points).astype(float)
    sums = np.bincount(bins, weights=values, minlength=max_points)
    mask = counts > 0
    return sums[mask] / counts[mask], counts[mask]


def jenks_breaks(
    values: list[float] | np.ndarray,
    n_classes: int,
    *,
    max_points: int = 384,
) -> list[float]:
    """Optimal class break values (upper bounds of each class).

    Returns ``n_classes`` ascending break values; a value ``v`` belongs
    to the first class whose break is ``>= v``.  With fewer distinct
    values than classes, the distinct values themselves become breaks
    (padded with the maximum).
    """
    if n_classes <= 0:
        raise ProfilingError("n_classes must be positive")
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ProfilingError("cannot compute breaks of an empty sequence")
    data = np.sort(data)
    points, weights = (
        _quantize(data, max_points) if data.size > max_points else (
            data.astype(float), np.ones(data.size)
        )
    )
    n = points.size
    k = min(n_classes, n)

    # Prefix sums for O(1) weighted SSE of any segment [i, j).
    w = np.concatenate([[0.0], np.cumsum(weights)])
    wx = np.concatenate([[0.0], np.cumsum(weights * points)])
    wxx = np.concatenate([[0.0], np.cumsum(weights * points * points)])

    # DP over (classes, points): cost[c][j] = best SSE for first j points
    # in c classes; split[c][j] = start of the last class.  The split
    # search over i is vectorized: every candidate is the same float64
    # expression the scalar loop evaluated, and argmin returns the first
    # minimum exactly as the strict `<` scan did, so break positions are
    # unchanged.  (Quantized weights are >= 1, so segment weights are
    # always positive and the divisions are safe.)
    infinity = float("inf")
    cost = np.full((k + 1, n + 1), infinity)
    split = np.zeros((k + 1, n + 1), dtype=np.intp)
    cost[0, 0] = 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        for c in range(1, k + 1):
            prev = cost[c - 1]
            lo = c - 1
            # Candidate matrix over (row: last-class end j, col: split i).
            i = np.arange(lo, n)
            j = np.arange(c, n + 1)[:, None]
            weight = w[j] - w[i]
            mean = (wx[j] - wx[i]) / weight
            candidate = prev[i] + ((wxx[j] - wxx[i]) - weight * mean * mean)
            # Entries with i >= j are not real splits; the garbage
            # computed for them (weight <= 0) is masked to +inf so the
            # row-wise first-minimum is taken over valid splits only.
            candidate = np.where(i < j, candidate, infinity)
            best = candidate.argmin(axis=1)
            rows = np.arange(candidate.shape[0])
            cost[c, c:] = candidate[rows, best]
            split[c, c:] = best + lo

    # Recover break values (upper bound of each class).
    breaks: list[float] = []
    j = n
    for c in range(k, 0, -1):
        breaks.append(float(points[j - 1]))
        j = int(split[c, j])
    breaks.reverse()
    while len(breaks) < n_classes:
        breaks.append(breaks[-1])
    return breaks


def jenks_group(value: float, breaks: list[float]) -> int:
    """Class index (0 = lowest) of ``value`` under ``breaks``."""
    for index, bound in enumerate(breaks):
        if value <= bound:
            return index
    return len(breaks) - 1
