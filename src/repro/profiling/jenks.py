"""Jenks natural breaks (Fisher's optimal 1-D classification).

FURBYS groups PWs into 8 weight classes by whole-execution hit rate
using Jenks natural breaks, which "determines the optimal arrangement
of values into distinct classes by minimizing within-class variance and
maximizing between-class variance" (Section V).

The exact algorithm is the Fisher/Jenks dynamic program — equivalent to
optimal one-dimensional k-means on sum-of-squared-error.  It is
O(k·n²); to keep profiling fast at trace scale, inputs larger than
``max_points`` are first aggregated into a weighted quantization, which
leaves the break positions essentially unchanged for the smooth hit-
rate distributions seen here (the DP below supports weights natively).
"""

from __future__ import annotations

import numpy as np

from ..errors import ProfilingError


def _quantize(values: np.ndarray, max_points: int) -> tuple[np.ndarray, np.ndarray]:
    """Aggregate sorted values into at most ``max_points`` weighted points."""
    lo, hi = float(values[0]), float(values[-1])
    if hi <= lo:
        return np.array([lo]), np.array([float(len(values))])
    edges = np.linspace(lo, hi, max_points + 1)
    bins = np.clip(np.searchsorted(edges, values, side="right") - 1, 0, max_points - 1)
    counts = np.bincount(bins, minlength=max_points).astype(float)
    sums = np.bincount(bins, weights=values, minlength=max_points)
    mask = counts > 0
    return sums[mask] / counts[mask], counts[mask]


def jenks_breaks(
    values: list[float] | np.ndarray,
    n_classes: int,
    *,
    max_points: int = 384,
) -> list[float]:
    """Optimal class break values (upper bounds of each class).

    Returns ``n_classes`` ascending break values; a value ``v`` belongs
    to the first class whose break is ``>= v``.  With fewer distinct
    values than classes, the distinct values themselves become breaks
    (padded with the maximum).
    """
    if n_classes <= 0:
        raise ProfilingError("n_classes must be positive")
    data = np.asarray(values, dtype=float)
    if data.size == 0:
        raise ProfilingError("cannot compute breaks of an empty sequence")
    data = np.sort(data)
    points, weights = (
        _quantize(data, max_points) if data.size > max_points else (
            data.astype(float), np.ones(data.size)
        )
    )
    n = points.size
    k = min(n_classes, n)

    # Prefix sums for O(1) weighted SSE of any segment [i, j).
    w = np.concatenate([[0.0], np.cumsum(weights)])
    wx = np.concatenate([[0.0], np.cumsum(weights * points)])
    wxx = np.concatenate([[0.0], np.cumsum(weights * points * points)])

    def sse(i: int, j: int) -> float:
        weight = w[j] - w[i]
        if weight <= 0:
            return 0.0
        mean = (wx[j] - wx[i]) / weight
        return (wxx[j] - wxx[i]) - weight * mean * mean

    # DP over (classes, points): cost[c][j] = best SSE for first j points
    # in c classes; split[c][j] = start of the last class.
    infinity = float("inf")
    cost = [[infinity] * (n + 1) for _ in range(k + 1)]
    split = [[0] * (n + 1) for _ in range(k + 1)]
    cost[0][0] = 0.0
    for c in range(1, k + 1):
        for j in range(c, n + 1):
            best, best_i = infinity, c - 1
            for i in range(c - 1, j):
                candidate = cost[c - 1][i] + sse(i, j)
                if candidate < best:
                    best, best_i = candidate, i
            cost[c][j] = best
            split[c][j] = best_i

    # Recover break values (upper bound of each class).
    breaks: list[float] = []
    j = n
    for c in range(k, 0, -1):
        breaks.append(float(points[j - 1]))
        j = split[c][j]
    breaks.reverse()
    while len(breaks) < n_classes:
        breaks.append(breaks[-1])
    return breaks


def jenks_group(value: float, breaks: list[float]) -> int:
    """Class index (0 = lowest) of ``value`` under ``breaks``."""
    for index, bound in enumerate(breaks):
        if value <= bound:
            return index
    return len(breaks) - 1
