"""Per-PW hit-rate collection (STEP 3-5 of the FURBYS procedure).

The trace is replayed under an offline policy (FLACK by default; Belady
or FOO for the Figure 15 sensitivity study) with per-PW recording
enabled; each PW's whole-execution hit rate — micro-ops served from the
micro-op cache over micro-ops requested — becomes the input to the
Jenks grouping.
"""

from __future__ import annotations

from .. import stagetimer
from ..config import SimulationConfig
from ..core.trace import Trace
from ..errors import ProfilingError
from ..frontend.pipeline import FrontendPipeline
from ..offline.belady import BeladyPolicy
from ..offline.flack import FLACKPolicy
from ..offline.foo import FOOPolicy
from ..policies.thermometer import COLD, HOT, WARM
from ..uopcache.replacement import ReplacementPolicy
from .jenks import jenks_breaks, jenks_group

#: Offline decision sources accepted by the profiling pipeline (Fig. 15
#: compares them; FLACK is ~3-4% better than the alternatives).
PROFILE_SOURCES = ("flack", "belady", "foo")


def make_profile_policy(
    source: str, trace: Trace, config: SimulationConfig
) -> ReplacementPolicy:
    """Instantiate the offline policy used to generate profile decisions."""
    if source == "flack":
        return FLACKPolicy(trace, config.uop_cache)
    if source == "belady":
        return BeladyPolicy(trace)
    if source == "foo":
        return FOOPolicy(trace, config.uop_cache)
    raise ProfilingError(
        f"unknown profile source {source!r}; expected one of {PROFILE_SOURCES}"
    )


def collect_hit_stats(
    trace: Trace,
    config: SimulationConfig,
    *,
    source: str = "flack",
    policy: ReplacementPolicy | None = None,
) -> dict[int, tuple[int, int]]:
    """Raw per-PW ``(uops hit, uops requested)`` counts from one replay.

    This is the expensive profiling artifact — a full simulation under
    an offline policy — and the form the shared artifact store
    (:mod:`repro.harness.artifacts`) caches: the counts carry the
    sample weights that hit *rates* discard, which profile merging
    needs.  ``policy`` overrides ``source`` when provided (tests use
    this to profile under arbitrary policies).
    """
    if policy is None:
        policy = make_profile_policy(source, trace, config)
    with stagetimer.timed("profile_sim"):
        pipeline = FrontendPipeline(config, policy, record_hit_rates=True)
        pipeline.run(trace)
    assert pipeline.pw_hit_stats is not None
    return {
        start: (hit, total)
        for start, (hit, total) in pipeline.pw_hit_stats.items()
    }


def collect_hit_rates(
    trace: Trace,
    config: SimulationConfig,
    *,
    source: str = "flack",
    policy: ReplacementPolicy | None = None,
) -> dict[int, float]:
    """Whole-execution hit rate per PW start under offline decisions.

    ``policy`` overrides ``source`` when provided (tests use this to
    profile under arbitrary policies).
    """
    stats = collect_hit_stats(trace, config, source=source, policy=policy)
    return {
        start: (hit / total if total else 0.0)
        for start, (hit, total) in stats.items()
    }


def three_class_profile(
    trace: Trace,
    config: SimulationConfig,
    *,
    source: str = "flack",
    hit_rates: dict[int, float] | None = None,
) -> dict[int, int]:
    """Thermometer's hot/warm/cold classification from profiled hit rates.

    Thermometer [82] divides entries into three temperature classes by
    profiled hit rate; this reuses the same profiling run as FURBYS but
    collapses the clustering to three Jenks classes.  ``hit_rates``
    supplies already-collected rates (the shared artifact store uses
    this to skip the replay); when omitted they are profiled here.
    """
    rates = hit_rates
    if rates is None:
        rates = collect_hit_rates(trace, config, source=source)
    if not rates:
        return {}
    breaks = jenks_breaks(list(rates.values()), 3)
    mapping = {0: COLD, 1: WARM, 2: HOT}
    return {
        start: mapping[min(2, jenks_group(rate, breaks))]
        for start, rate in rates.items()
    }
