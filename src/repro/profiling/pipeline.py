"""End-to-end FURBYS profiling (Figure 6, STEP 1-7).

``profile_application`` runs the offline stages (2-6): record the
lookup sequence, replay it under FLACK, compute whole-execution hit
rates, group them with Jenks natural breaks, and emit the hint map.
``make_furbys`` packages the result with a
:class:`~repro.policies.furbys.FurbysPolicy` ready for the online
deployment stage (7) through
:class:`~repro.frontend.pipeline.FrontendPipeline`'s ``hints`` input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .. import stagetimer
from ..config import SimulationConfig
from ..core.trace import Trace
from ..policies.furbys import FurbysPolicy
from .hints import HintMap, build_hints, merge_hints
from .hitrate import collect_hit_stats
from .ptrace import record_lookup_sequence


@dataclass(slots=True)
class FurbysProfile:
    """Output of the offline profiling stages."""

    hints: HintMap
    hit_rates: dict[int, float] = field(repr=False, default_factory=dict)
    source: str = "flack"
    n_bits: int = 3
    scope: str = "per_set"
    #: start -> micro-ops requested during profiling (the hit-rate
    #: denominator); the sample weight for cross-input merging.
    sample_counts: dict[int, int] = field(repr=False, default_factory=dict)

    @property
    def n_groups(self) -> int:
        return 1 << self.n_bits

    def merged_with(self, *others: "FurbysProfile") -> "FurbysProfile":
        """Combine profiles from several training inputs (Figure 18).

        Hit rates merge as the sample-weighted mean (weights are the
        per-start micro-op totals when recorded, else uniform), so a
        start profiled heavily in one input is not diluted by a few
        stray lookups in another; sample counts accumulate.
        """
        profiles = [self, *others]
        rate_acc: dict[int, list[float]] = {}  # start -> [rate*w sum, w sum]
        counts: dict[int, int] = {}
        for profile in profiles:
            for start, rate in profile.hit_rates.items():
                weight = profile.sample_counts.get(start, 1)
                entry = rate_acc.setdefault(start, [0.0, 0.0])
                entry[0] += rate * weight
                entry[1] += weight
                counts[start] = counts.get(start, 0) + weight
        return FurbysProfile(
            hints=merge_hints([p.hints for p in profiles]),
            hit_rates={
                start: (num / den if den else 0.0)
                for start, (num, den) in rate_acc.items()
            },
            source=self.source,
            n_bits=self.n_bits,
            scope=self.scope,
            sample_counts=counts,
        )


def profile_application(
    trace: Trace,
    config: SimulationConfig,
    *,
    source: str = "flack",
    n_bits: int = 3,
    scope: str = "per_set",
    hit_stats: dict[int, tuple[int, int]] | None = None,
) -> FurbysProfile:
    """Run STEP 2-6 on a training trace.

    ``source`` selects the offline decision generator (``flack``,
    ``belady`` or ``foo`` — the Figure 15 comparison); ``n_bits`` the
    hint width (Figure 19); ``scope`` the weight granularity.
    ``hit_stats`` supplies an already-collected profiling replay (see
    :mod:`repro.harness.artifacts`), skipping STEP 3-5's simulation.
    """
    record_lookup_sequence(trace)  # STEP 2 (identity here; see ptrace.py)
    if hit_stats is None:
        hit_stats = collect_hit_stats(trace, config, source=source)  # STEP 3-5
    hit_rates = {
        start: (hit / total if total else 0.0)
        for start, (hit, total) in hit_stats.items()
    }
    with stagetimer.timed("hint_build"):
        hints = build_hints(  # STEP 6
            trace,
            hit_rates,
            n_bits=n_bits,
            scope=scope,
            n_sets=config.uop_cache.sets,
        )
    return FurbysProfile(
        hints=hints, hit_rates=hit_rates, source=source, n_bits=n_bits,
        scope=scope,
        sample_counts={s: total for s, (_, total) in hit_stats.items()},
    )


def make_furbys(
    profile: FurbysProfile,
    *,
    bypass_enabled: bool = True,
    pitfall_depth: int = 2,
) -> tuple[FurbysPolicy, HintMap]:
    """STEP 7 inputs: the policy and the hints for the deployment run.

    Pass both to the frontend::

        policy, hints = make_furbys(profile)
        pipeline = FrontendPipeline(config, policy, hints=hints)
    """
    policy = FurbysPolicy(
        bypass_enabled=bypass_enabled, pitfall_depth=pitfall_depth
    )
    return policy, profile.hints
