"""Hint injection: embedding weight groups into the binary (STEP 6).

The paper injects each PW's 3-bit weight group into reserved bits of a
branch instruction inside the PW; the decoder extracts it and the
accumulator forwards it with the assembled window (Section V-A/V-B).
Two constraints of that encoding are modelled here:

* only PWs terminated by (or containing) a branch can carry a hint —
  line-boundary-terminated windows reach the cache unhinted and default
  to the coldest group;
* one weight per PW start address, 3 bits wide by default (the
  Figure 19 sensitivity sweeps 1-8 bits).

Weights are computed at cache-set granularity by default, matching the
paper ("replacement decisions are performed for each cache set
individually"); global scope is available for the ablation bench.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..core.trace import Trace
from ..errors import ProfilingError
from ..uopcache.cache import default_set_index
from .jenks import jenks_breaks, jenks_group

#: A hint map: PW start address -> weight group (0 = coldest).
HintMap = dict[int, int]


def hintable_starts(trace: Trace) -> set[int]:
    """Starts that can carry a hint (the PW contains a branch).

    "Most PWs end with a branch or contain at least a branch"
    (Section V-A); pure mid-block line fragments cannot be hinted and
    default to the coldest group online.
    """
    return {pw.start for pw in trace if pw.contains_branch}


def build_hints(
    trace: Trace,
    hit_rates: Mapping[int, float],
    *,
    n_bits: int = 3,
    scope: str = "per_set",
    n_sets: int = 64,
    set_index_fn: Callable[[int, int], int] | None = None,
) -> HintMap:
    """Cluster hit rates into ``2**n_bits`` groups and emit hints.

    ``scope`` is ``"per_set"`` (paper default) or ``"global"``.
    """
    if n_bits < 1 or n_bits > 8:
        raise ProfilingError("hint width must be 1-8 bits")
    if scope not in ("per_set", "global"):
        raise ProfilingError(f"unknown weight scope {scope!r}")
    n_groups = 1 << n_bits
    allowed = hintable_starts(trace)
    rated = {s: r for s, r in hit_rates.items() if s in allowed}
    if not rated:
        return {}

    hints: HintMap = {}
    if scope == "global":
        breaks = jenks_breaks(list(rated.values()), n_groups)
        for start, rate in rated.items():
            hints[start] = min(n_groups - 1, jenks_group(rate, breaks))
        return hints

    set_fn = set_index_fn or default_set_index
    by_set: dict[int, list[tuple[int, float]]] = {}
    for start, rate in rated.items():
        by_set.setdefault(set_fn(start, n_sets), []).append((start, rate))
    for members in by_set.values():
        breaks = jenks_breaks([rate for _, rate in members], n_groups)
        for start, rate in members:
            hints[start] = min(n_groups - 1, jenks_group(rate, breaks))
    return hints


def merge_hints(hint_maps: list[HintMap]) -> HintMap:
    """Merge hints from several training inputs (cross-validation).

    Conflicting weights resolve to the rounded mean, mirroring the
    paper's merged profiles for the Figure 18 study.
    """
    sums: dict[int, list[int]] = {}
    for hints in hint_maps:
        for start, weight in hints.items():
            entry = sums.setdefault(start, [0, 0])
            entry[0] += weight
            entry[1] += 1
    return {start: round(total / count) for start, (total, count) in sums.items()}
