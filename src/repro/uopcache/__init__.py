"""Micro-op cache model: PW storage, partial hits, replacement interface."""

from .cache import CacheSet, UopCache
from .replacement import (
    BYPASS,
    Bypass,
    Decision,
    EvictionReason,
    ReplacementPolicy,
    Victims,
)

__all__ = [
    "CacheSet",
    "UopCache",
    "BYPASS",
    "Bypass",
    "Decision",
    "EvictionReason",
    "ReplacementPolicy",
    "Victims",
]
