"""Replacement-policy interface for the micro-op cache.

A policy answers one question — *which resident PWs should make room for
an incoming PW, or should the insertion be bypassed?* — and observes the
cache's lookup/insert/evict events to maintain whatever metadata it
needs (recency stacks, RRPVs, signature tables, profile weights, ...).

Unlike a conventional cache, an incoming PW may need *several* ways
(its ``size``), so victim selection can evict multiple PWs.  The base
class implements the greedy multi-victim loop; concrete policies
usually only implement :meth:`victim_order` (a preference ranking of
the resident PWs) and optionally :meth:`should_bypass`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from enum import Enum
from typing import TYPE_CHECKING, Sequence

from ..core.pw import StoredPW

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.pw import PWLookup
    from .cache import UopCache


class EvictionReason(Enum):
    """Why a PW left the cache (policies may treat these differently)."""

    REPLACEMENT = "replacement"
    INCLUSIVE = "inclusive"
    #: A same-start, larger PW replaced this one (keep-larger rule).
    UPGRADE = "upgrade"
    #: Bulk :meth:`~repro.uopcache.cache.UopCache.flush` (e.g. between
    #: warmup and measurement) — not an inclusivity event.
    FLUSH = "flush"


class Bypass:
    """Sentinel decision: do not insert the incoming PW."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "BYPASS"


#: The singleton bypass decision.
BYPASS = Bypass()


@dataclass(slots=True)
class Victims:
    """Decision: evict these resident PWs, then insert."""

    pws: list[StoredPW]


Decision = Bypass | Victims


class ReplacementPolicy(ABC):
    """Base class for micro-op cache replacement policies.

    Lifecycle: the cache calls :meth:`attach` once, then streams events.
    ``now`` arguments are the lookup index (the simulator's clock).
    """

    #: Short name used by the experiment harness and reports.
    name: str = "base"

    def __init__(self) -> None:
        self._cache: "UopCache | None" = None

    # --- wiring ---------------------------------------------------------------

    def attach(self, cache: "UopCache") -> None:
        """Bind the policy to a cache (geometry becomes available)."""
        self._cache = cache
        self.reset()

    @property
    def cache(self) -> "UopCache":
        if self._cache is None:
            raise RuntimeError(f"policy {self.name} used before attach()")
        return self._cache

    def reset(self) -> None:
        """Clear per-run state; called by :meth:`attach`."""

    # --- observation hooks ------------------------------------------------------

    def on_lookup(self, now: int, set_index: int, lookup: "PWLookup") -> None:
        """Every lookup, before the outcome is known (history policies)."""

    def on_hit(self, now: int, set_index: int, stored: StoredPW,
               lookup: "PWLookup") -> None:
        """A full hit on ``stored``."""

    def on_partial_hit(self, now: int, set_index: int, stored: StoredPW,
                       lookup: "PWLookup") -> None:
        """A same-start hit that only covers part of the lookup."""

    def on_miss(self, now: int, set_index: int, lookup: "PWLookup") -> None:
        """A full miss."""

    def on_insert(self, now: int, set_index: int, stored: StoredPW) -> None:
        """``stored`` has been inserted."""

    def on_evict(self, now: int, set_index: int, stored: StoredPW,
                 reason: EvictionReason) -> None:
        """``stored`` has been evicted."""

    # --- decision -----------------------------------------------------------------

    def should_bypass(self, now: int, set_index: int, incoming: StoredPW,
                      resident: Sequence[StoredPW], need_ways: int) -> bool:
        """Whether to skip inserting ``incoming`` entirely.

        Consulted on *every* insertion attempt, even when the set has
        free space (``need_ways <= 0``) — offline policies and
        energy-saving online policies bypass eagerly, not only under
        pressure.
        """
        return False

    def victim_order(self, now: int, set_index: int, incoming: StoredPW,
                     resident: Sequence[StoredPW]) -> list[StoredPW]:
        """Residents ranked most-evictable first.

        The default multi-victim loop pops from the front of this list
        until enough ways are free.  Policies that need full control can
        override :meth:`choose_victims` instead.
        """
        raise NotImplementedError

    def choose_victims(self, now: int, set_index: int, incoming: StoredPW,
                       resident: Sequence[StoredPW], need_ways: int) -> Decision:
        """Free at least ``need_ways`` entries, or decide to bypass.

        ``resident`` excludes any same-start PW being upgraded in place
        (the cache handles the keep-larger bookkeeping; it has already
        consulted :meth:`should_bypass` before calling this).
        """
        if need_ways <= 0:
            return Victims([])
        ranked = self.victim_order(now, set_index, incoming, resident)
        victims: list[StoredPW] = []
        freed = 0
        for candidate in ranked:
            victims.append(candidate)
            freed += candidate.size
            if freed >= need_ways:
                return Victims(victims)
        # The set genuinely cannot host the PW (should not happen for
        # PWs no larger than the associativity); fall back to bypass.
        return BYPASS
