"""Set-associative micro-op cache storage.

Stores :class:`~repro.core.pw.StoredPW` objects, each occupying
``size`` of its set's ways (Section II-C: multi-entry PWs are fetched
and evicted as a whole).  The cache itself is policy-free — all
replacement decisions are delegated to a
:class:`~repro.uopcache.replacement.ReplacementPolicy` — and
orchestration (hit/miss semantics, asynchronous insertion) lives in
:mod:`repro.frontend.pipeline`.

Inclusivity support: the cache maintains a reverse map from icache line
address to resident PW starts so an L1i eviction can invalidate every
overlapping PW in O(overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import Callable, Iterator, NamedTuple

from ..config import UopCacheConfig
from ..core.pw import PWLookup, StoredPW
from ..errors import ConfigurationError
from .replacement import BYPASS, Bypass, EvictionReason, ReplacementPolicy, Victims


def default_set_index(start: int, n_sets: int) -> int:
    """Map a PW start address to a set.

    Folds higher address bits into the index (as hardware hash-index
    functions do) so windows from one code region spread across sets
    instead of piling conflict misses into a few of them.
    """
    return ((start >> 5) ^ (start >> 11)) % n_sets


class InsertResult(NamedTuple):
    """Outcome of one insertion attempt."""

    inserted: bool
    evicted_pws: int
    evicted_entries: int


#: Shared no-insertion outcome (bypass / oversize / keep-larger).
NOT_INSERTED = InsertResult(False, 0, 0)


@dataclass(slots=True)
class CacheSet:
    """One cache set: resident PWs keyed by start address.

    ``free_slots`` tracks physical way indices so policies that reason
    about ways (FURBYS's miss-pitfall detector) see hardware-accurate
    victim way ids.  It is maintained as a min-heap: insertion pops the
    lowest-numbered free ways (the same assignment order the previous
    sort-per-insert implementation produced) without re-sorting.
    """

    pws: dict[int, StoredPW] = field(default_factory=dict)
    used_ways: int = 0
    free_slots: list[int] = field(default_factory=list)

    def __iter__(self) -> Iterator[StoredPW]:
        return iter(self.pws.values())

    def __len__(self) -> int:
        return len(self.pws)


class UopCache:
    """The micro-op cache storage array.

    Parameters
    ----------
    config:
        Geometry (entries/ways/uops-per-entry).
    policy:
        Replacement policy; it is attached to this cache.
    line_bytes:
        Icache line size, for the inclusivity reverse map.
    set_index:
        Optional custom set-index function ``(start, n_sets) -> int``.
    """

    def __init__(
        self,
        config: UopCacheConfig,
        policy: ReplacementPolicy,
        *,
        line_bytes: int = 64,
        set_index: Callable[[int, int], int] | None = None,
    ) -> None:
        self.config = config
        self.policy = policy
        self.line_bytes = line_bytes
        self._set_index = set_index or default_set_index
        #: start address -> set index memo; index functions are pure,
        #: so each distinct start is hashed exactly once per cache.
        self._set_index_memo: dict[int, int] = {}
        # An ascending range is already a valid min-heap.
        self.sets = [
            CacheSet(free_slots=list(range(config.ways)))
            for _ in range(config.sets)
        ]
        self._line_map: dict[int, set[int]] = {}
        # Event counters the pipeline folds into SimulationStats.
        self.eviction_count = 0
        self.evicted_entries = 0
        self.inclusive_invalidations = 0
        self.upgrades = 0
        self.flushes = 0
        # should_bypass is consulted on every insertion attempt; when
        # the policy inherits the never-bypass default, the hot path can
        # skip the call (and the candidate-list build it would need).
        self._policy_may_bypass = (
            type(policy).should_bypass is not ReplacementPolicy.should_bypass
        )
        policy.attach(self)

    # --- geometry ------------------------------------------------------------

    @property
    def n_sets(self) -> int:
        return self.config.sets

    @property
    def ways(self) -> int:
        return self.config.ways

    def set_index(self, start: int) -> int:
        memo = self._set_index_memo
        index = memo.get(start)
        if index is None:
            index = memo[start] = self._set_index(start, self.config.sets)
        return index

    def resident_entries(self) -> int:
        """Total entries currently occupied (for occupancy invariants)."""
        return sum(s.used_ways for s in self.sets)

    def resident_pws(self) -> int:
        return sum(len(s) for s in self.sets)

    # --- probing --------------------------------------------------------------

    def probe(self, lookup: PWLookup) -> StoredPW | None:
        """Return the resident same-start PW, if any (no side effects)."""
        return self.sets[self.set_index(lookup.start)].pws.get(lookup.start)

    def contains(self, start: int) -> bool:
        return start in self.sets[self.set_index(start)].pws

    # --- line reverse map (inclusivity) ----------------------------------------

    def _lines_of(self, stored: StoredPW) -> range:
        first = stored.start // self.line_bytes
        last = (stored.end - 1) // self.line_bytes
        return range(first, last + 1)

    def _map_lines(self, stored: StoredPW) -> None:
        # The line span is cached on the PW so the matching unmap (and
        # any re-map) skips the divisions.
        stored.lines = lines = self._lines_of(stored)
        line_map = self._line_map
        start = stored.start
        for line in lines:
            starts = line_map.get(line)
            if starts is None:
                line_map[line] = {start}
            else:
                starts.add(start)

    def _unmap_lines(self, stored: StoredPW) -> None:
        line_map = self._line_map
        start = stored.start
        for line in stored.lines:
            starts = line_map.get(line)
            if starts is not None:
                starts.discard(start)
                if not starts:
                    del line_map[line]

    # --- mutation ---------------------------------------------------------------

    def _remove(
        self,
        now: int,
        stored: StoredPW,
        reason: EvictionReason,
        set_index: int | None = None,
    ) -> None:
        if set_index is None:
            set_index = self.set_index(stored.start)
        cset = self.sets[set_index]
        del cset.pws[stored.start]
        cset.used_ways -= stored.size
        free_slots = cset.free_slots
        for slot in stored.slots:
            heappush(free_slots, slot)
        self._unmap_lines(stored)
        if reason is EvictionReason.REPLACEMENT:
            self.eviction_count += 1
            self.evicted_entries += stored.size
        elif reason is EvictionReason.INCLUSIVE:
            self.inclusive_invalidations += 1
        elif reason is EvictionReason.FLUSH:
            self.flushes += 1
        else:
            self.upgrades += 1
        self.policy.on_evict(now, set_index, stored, reason)

    def invalidate_line(self, now: int, line_addr: int) -> int:
        """Invalidate every PW overlapping an evicted icache line.

        ``line_addr`` is the byte address of the line start.  Returns the
        number of PWs invalidated (for the inclusive-invalidation stat).
        """
        line = line_addr // self.line_bytes
        starts = self._line_map.get(line)
        if not starts:
            return 0
        count = 0
        for start in list(starts):
            set_index = self.set_index(start)
            stored = self.sets[set_index].pws.get(start)
            if stored is not None:
                self._remove(now, stored, EvictionReason.INCLUSIVE, set_index)
                count += 1
        return count

    def try_insert(
        self,
        now: int,
        lookup: PWLookup,
        weight: int | None = None,
        set_index: int = -1,
    ) -> InsertResult:
        """Insert the PW described by ``lookup``, consulting the policy.

        Implements the keep-larger rule for same-start PWs: a smaller
        incoming window never displaces a larger resident one, and a
        larger incoming window upgrades the resident entry in place
        (acquiring extra ways through the policy if needed).

        ``weight`` is the FURBYS hint group carried by the accumulator
        (None for unhinted windows).  ``set_index`` may be passed by
        callers that already know it (the pipeline hot loop precomputes
        it per lookup); negative means "compute here".  Returns an
        :class:`InsertResult`; ``inserted`` is False when the policy
        bypassed or the PW cannot fit the set.
        """
        config = self.config
        start = lookup.start
        if set_index < 0:
            set_index = self.set_index(start)
        cset = self.sets[set_index]
        uops = lookup.uops
        size = -(-uops // config.uops_per_entry)
        ways = config.ways
        if size > ways:
            # Oversize PW: can never be cached; served by the legacy path.
            return NOT_INSERTED

        existing = cset.pws.get(start)
        if existing is not None:
            if config.keep_larger and existing.uops >= uops:
                # Keep-larger: the resident window already covers this one.
                return NOT_INSERTED
            extra_needed = size - existing.size
        else:
            extra_needed = size

        incoming = StoredPW(
            start=start, uops=uops, insts=lookup.insts,
            bytes_len=lookup.bytes_len, size=size, weight=weight,
        )
        need = extra_needed - (ways - cset.used_ways)
        if need > 0 or self._policy_may_bypass:
            if existing is None:
                candidates = list(cset.pws.values())
            else:
                candidates = [pw for pw in cset.pws.values() if pw is not existing]
            if self._policy_may_bypass and self.policy.should_bypass(
                now, set_index, incoming, candidates, need
            ):
                return NOT_INSERTED
        evicted_pws = 0
        evicted_entries = 0
        if need > 0:
            decision = self.policy.choose_victims(
                now, set_index, incoming, candidates, need
            )
            if isinstance(decision, Bypass):
                return NOT_INSERTED
            assert isinstance(decision, Victims)
            for victim in decision.pws:
                self._remove(now, victim, EvictionReason.REPLACEMENT, set_index)
                evicted_pws += 1
                evicted_entries += victim.size
            if ways - cset.used_ways < extra_needed:
                raise ConfigurationError(
                    f"policy {self.policy.name} freed too few ways in set {set_index}"
                )
        if existing is not None:
            # Upgrade in place: same tag, more entries (Section II-D).
            if incoming.weight is None:
                incoming.weight = existing.weight
            self._remove(now, existing, EvictionReason.UPGRADE, set_index)
        free_slots = cset.free_slots
        if size == 1:
            incoming.slots = (heappop(free_slots),)
        else:
            incoming.slots = tuple(heappop(free_slots) for _ in range(size))
        cset.pws[start] = incoming
        cset.used_ways += size
        self._map_lines(incoming)
        self.policy.on_insert(now, set_index, incoming)
        return InsertResult(True, evicted_pws, evicted_entries)

    def flush(self, now: int = 0) -> None:
        """Empty the cache (used between warmup and measurement).

        Flushed PWs are accounted under :attr:`flushes` (reason
        ``FLUSH``), *not* as inclusive invalidations — a warmup flush
        says nothing about icache inclusivity.
        """
        for set_index, cset in enumerate(self.sets):
            for stored in list(cset.pws.values()):
                self._remove(now, stored, EvictionReason.FLUSH, set_index)

    # --- introspection -------------------------------------------------------------

    def residents(self, set_index: int) -> list[StoredPW]:
        """Resident PWs of one set (copy; mutation-safe for callers)."""
        return list(self.sets[set_index].pws.values())
