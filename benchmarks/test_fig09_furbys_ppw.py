"""Figure 9: performance-per-watt gain of FURBYS."""

from repro.harness.experiments import fig9_furbys_ppw


def test_fig9_furbys_ppw(run_experiment):
    result = run_experiment(fig9_furbys_ppw)
    gains = result["mean_gains"]
    assert gains["furbys"] > 0
    for policy in ("srrip", "ship++", "mockingjay", "ghrp"):
        assert gains["furbys"] >= gains[policy], (policy, gains)
