"""Table I: simulation parameters (configuration self-description)."""

from repro.harness.experiments import tab1_parameters


def test_tab1_parameters(run_experiment):
    result = run_experiment(tab1_parameters)
    labels = [row[0] for row in result["rows"]]
    assert "Micro-op cache" in labels and "Decoder" in labels
