"""Section VI-C: FURBYS replacement coverage and bypass statistics."""

from repro.harness.experiments import sec6c_coverage


def test_sec6c_coverage(run_experiment):
    result = run_experiment(sec6c_coverage)
    # Paper: FURBYS selects the victim ~88.7% of the time (the rest is
    # the SRRIP pitfall fallback).
    assert 0.6 < result["mean_coverage"] <= 1.0
