"""Figure 16: cache size and associativity sensitivity (FURBYS vs GHRP)."""

from repro.harness.experiments import fig16_size_assoc


def test_fig16_size_assoc(run_experiment):
    result = run_experiment(fig16_size_assoc)
    # Paper: FURBYS outperforms GHRP across all configurations.
    assert result["mean_gap_over_ghrp"] > 0
