"""Figure 19: sensitivity to the number of weight-group bits."""

from repro.harness.experiments import fig19_weight_groups


def test_fig19_weight_groups(run_experiment):
    result = run_experiment(fig19_weight_groups)
    by_bits = result["mean_by_bits"]
    # Paper: 3 bits is the knee — better than 1 bit, and more bits add
    # little.
    assert by_bits[3] > by_bits[1] - 0.005
    # More bits past the knee never help (in this substrate very wide
    # hints actively hurt: fine-grained weights override recency).
    assert by_bits[3] >= by_bits[8] - 0.01
    assert by_bits[3] >= by_bits[6] - 0.01
