"""Ablation (DESIGN.md §6): Jenks natural breaks vs equal-width bins."""

from repro.harness.experiments import abl_jenks_vs_uniform


def test_abl_jenks_vs_uniform(run_experiment):
    result = run_experiment(abl_jenks_vs_uniform)
    # Jenks should not lose badly to naive binning.
    assert result["mean_jenks_advantage"] > -0.03
