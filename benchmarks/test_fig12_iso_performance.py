"""Figure 12: ISO-performance — LRU needs a larger cache to match FURBYS."""

from repro.harness.experiments import fig12_iso_performance


def test_fig12_iso_performance(run_experiment):
    result = run_experiment(fig12_iso_performance)
    # Paper: LRU needs on average ~1.5x capacity to match FURBYS.
    assert result["mean_equivalent_scale"] >= 1.2
