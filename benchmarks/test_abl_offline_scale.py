"""Extension: offline + profile-guided arms at 1M-lookup scale.

The offline kernel specializations make million-lookup traces the
default for the paper's headline arms; the Figure 5 / Figure 8
ordering must hold at scale: the Belady bound on top, FLACK tracking
it, and the deployable FURBYS / Thermometer policies capturing a
meaningful fraction of the bound without collapsing.
"""

from repro.harness.experiments import abl_offline_scale


def test_abl_offline_scale(run_experiment):
    result = run_experiment(abl_offline_scale)
    means = result["mean_reductions"]
    # The offline bound dominates every deployable policy at scale, and
    # FLACK (the practical bound) stays close behind Belady.
    assert means["belady"] >= means["furbys"] - 0.01
    assert means["belady"] >= means["thermometer"] - 0.01
    assert means["flack"] >= means["furbys"] - 0.02
    # Profile-guided policies still beat LRU on average at scale.
    assert means["furbys"] > 0.0
    for policy, reduction in means.items():
        assert reduction > -0.25, (policy, reduction)
