"""Figure 15: FURBYS trained on Belady / FOO / FLACK decisions."""

from repro.harness.experiments import fig15_profile_sources


def test_fig15_profile_sources(run_experiment):
    result = run_experiment(fig15_profile_sources)
    means = result["mean_reductions"]
    # Paper: the FLACK-derived profile is the best training input.
    assert means["flack"] >= means["belady"] - 0.01
    assert means["flack"] >= means["foo"] - 0.01
    assert means["flack"] > 0
