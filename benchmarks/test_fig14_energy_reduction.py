"""Figure 14: energy-reduction breakdown by structure."""

from repro.harness.experiments import fig14_energy_reduction


def test_fig14_energy_reduction(run_experiment):
    result = run_experiment(fig14_energy_reduction)
    shares = result["mean_shares"]
    # Paper: most of the saving comes from fewer micro-op cache
    # insertions and reduced decoder usage.
    assert shares["decoder"] + shares["uop_cache"] + shares["icache"] > 0.5
