"""Figure 21: effect of FURBYS's dynamic bypass mechanism."""

from repro.harness.experiments import fig21_bypass


def test_fig21_bypass(run_experiment):
    result = run_experiment(fig21_bypass)
    # Bypassing helps misses (paper: +4.33%) or is at worst neutral,
    # and a visible fraction of insertions is bypassed (paper: ~30%).
    assert result["mean_delta"] > -0.01
    assert 0.01 < result["mean_bypass_fraction"] < 0.6
