"""Table II: the 11 data-center applications and their branch MPKIs."""

from repro.harness.experiments import selected_apps, tab2_workloads


def test_tab2_workloads(run_experiment):
    result = run_experiment(tab2_workloads)
    assert len(result["rows"]) == len(selected_apps())
    for row in result["rows"]:
        target, measured = float(row[2]), float(row[3])
        # Calibration tolerance: measured MPKI within ~2.5x of Table II.
        assert measured > 0
        assert 0.3 < measured / target < 2.5, row
