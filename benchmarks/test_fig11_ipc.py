"""Figure 11: IPC speedup over LRU."""

from repro.harness.experiments import fig11_ipc


def test_fig11_ipc(run_experiment):
    result = run_experiment(fig11_ipc)
    means = result["mean_speedups"]
    # Paper: FURBYS ~+0.49%, ~60% of FLACK; miss reduction only
    # partially translates into IPC.
    assert means["furbys"] > 0
    assert means["flack"] >= means["furbys"] - 0.001
    assert means["furbys"] < 0.05  # small, as the paper argues
