"""Figure 10: FLACK feature ablation vs. Belady (perfect icache)."""

from repro.harness.experiments import fig10_flack_ablation


def test_fig10_flack_ablation(run_experiment):
    result = run_experiment(fig10_flack_ablation)
    means = result["mean_reductions"]
    # Cumulative features improve monotonically (small slack for noise)...
    assert means["flack[A]"] > means["foo-ohr"] - 0.02
    assert means["flack[A+VC]"] > means["flack[A]"] - 0.005
    # SB's miss benefit is workload-dependent (its main value is
    # partial-hit serving and bypass energy); allow it to be neutral.
    assert means["flack[A+VC+SB]"] > means["flack[A+VC]"] - 0.02
    # ... and full FLACK beats Belady (paper: by 4.46%).
    assert result["flack_minus_belady"] > 0
