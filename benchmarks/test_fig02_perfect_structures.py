"""Figure 2: PPW gain of perfect frontend structures."""

from repro.harness.experiments import fig2_perfect_structures


def test_fig2_perfect_structures(run_experiment):
    result = run_experiment(fig2_perfect_structures)
    gains = result["mean_gains"]
    # Paper: the perfect micro-op cache yields the largest PPW gain.
    assert gains["uop_cache"] > 0
    assert gains["uop_cache"] >= max(
        gains["icache"], gains["btb"], gains["branch_predictor"]
    )
