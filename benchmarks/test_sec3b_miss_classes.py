"""Section III-B: cold/capacity/conflict classification of misses."""

from repro.harness.experiments import miss_classification


def test_miss_classification(run_experiment):
    result = run_experiment(miss_classification)
    # Paper: capacity misses dominate (88.31%), cold misses are minor.
    assert result["lru_capacity_fraction"] > result["lru_conflict_fraction"]
    assert result["lru_capacity_fraction"] > result["lru_cold_fraction"]
    assert result["lru_cold_fraction"] < 0.20
