"""Figure 13: per-core energy breakdown on Clang."""

from repro.harness.experiments import fig13_energy_breakdown


def test_fig13_energy_breakdown(run_experiment):
    result = run_experiment(fig13_energy_breakdown)
    # The no-uop-cache reference spends ~12.5% on the decoder (paper,
    # cross-checked against [40], [65]).
    reference = result["rows"][0]
    assert 0.08 < float(reference[1]) < 0.18
    # Adding a micro-op cache saves energy; FURBYS saves a bit more.
    assert result["lru_saving"] > 0
    assert result["furbys_extra_saving"] > -0.01
