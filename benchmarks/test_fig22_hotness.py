"""Figure 22: hit rate by PW hotness class on Kafka."""

from repro.harness.experiments import fig22_hotness


def test_fig22_hotness(run_experiment):
    result = run_experiment(fig22_hotness)
    # Hot PWs: all policies do well (paper: <1% apart); the decile rows
    # are (range, lru, srrip, furbys, flack).
    hottest = result["rows"][0]
    rates = [float(cell) for cell in hottest[1:]]
    # (Asynchronous-insertion races put a floor on hot-PW misses at
    # this trace scale, so the bar is looser than the paper's <1%.)
    assert min(rates) > 0.25
    assert max(rates) - min(rates) < 0.25
