"""Extension: online policies at 1M-lookup production scale.

The vectorized simulation kernel makes million-lookup traces the
default for this figure; the Figure 5 online ordering must hold at
scale (every online policy lands in the near-LRU band, none collapses).
"""

from repro.harness.experiments import abl_online_scale


def test_abl_online_scale(run_experiment):
    result = run_experiment(abl_online_scale)
    means = result["mean_reductions"]
    # Online policies stay within a band around LRU at scale: random
    # replacement must not beat the recency-based policies by more than
    # noise, and nothing should collapse to catastrophic regressions.
    assert means["random"] <= max(means["srrip"], means["ghrp"]) + 0.02
    for policy, reduction in means.items():
        assert reduction > -0.25, (policy, reduction)
