"""Ablation (DESIGN.md §6): decode-pipeline depth (asynchrony window)."""

from repro.harness.experiments import abl_async_window


def test_abl_async_window(run_experiment):
    result = run_experiment(abl_async_window)
    lru = result["mean_lru_by_delay"]
    # Deeper decode pipelines cannot make the cache hit more.
    assert lru[10] >= lru[0] - 0.005
    # FLACK stays at or below LRU's miss rate at every depth.
    flack = result["mean_flack_by_delay"]
    assert all(flack[d] <= lru[d] + 0.005 for d in lru)
