"""Figure 18: cross-input validation of the FURBYS profile."""

from repro.harness.experiments import fig18_cross_validation


def test_fig18_cross_validation(run_experiment):
    result = run_experiment(fig18_cross_validation)
    # Paper: cross-input profiles retain ~94% of same-input reductions;
    # synthetic inputs diverge more, so the bar here is retaining most
    # of the benefit and staying clearly positive.
    assert result["mean_cross_reduction"] > 0
    assert result["mean_ratio"] > 0.4
