"""Section VII: inclusive vs. non-inclusive micro-op cache."""

from repro.harness.experiments import sec7_noninclusive


def test_sec7_noninclusive(run_experiment):
    result = run_experiment(sec7_noninclusive)
    # Paper: the non-inclusive design lifts FURBYS's IPC gain
    # substantially (2.5% vs 0.48%).
    assert result["mean_noninclusive"] >= result["mean_inclusive"] - 0.001
