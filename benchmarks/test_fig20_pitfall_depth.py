"""Figure 20: sensitivity to the local miss-pitfall detector depth."""

from repro.harness.experiments import fig20_pitfall_depth


def test_fig20_pitfall_depth(run_experiment):
    result = run_experiment(fig20_pitfall_depth)
    by_depth = result["mean_by_depth"]
    # Paper: depth 2 is the best choice; having a detector beats none.
    assert by_depth[2] >= by_depth[0]
    best = max(by_depth.values())
    assert by_depth[2] >= best - 0.02
