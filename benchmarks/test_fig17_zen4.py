"""Figure 17: PPW gains under the AMD Zen4 frontend configuration."""

from repro.harness.experiments import fig17_zen4


def test_fig17_zen4(run_experiment):
    result = run_experiment(fig17_zen4)
    gains = result["mean_gains"]
    assert gains["furbys"] > 0
    for policy in ("srrip", "ship++", "mockingjay", "ghrp"):
        assert gains["furbys"] >= gains[policy], (policy, gains)
