"""Ablation (DESIGN.md §6): per-set vs global weight computation."""

from repro.harness.experiments import abl_weight_scope


def test_abl_weight_scope(run_experiment):
    result = run_experiment(abl_weight_scope)
    # The paper computes weights per set; it should not lose badly to
    # global scope on any implementation.
    assert result["mean_per_set_advantage"] > -0.05
