"""Figure 8: FURBYS miss reduction vs. all baselines."""

from repro.harness.experiments import COMPARISON_POLICIES, fig8_furbys_miss


def test_fig8_furbys_miss(run_experiment):
    result = run_experiment(fig8_furbys_miss)
    means = result["mean_reductions"]
    # FURBYS beats every existing online policy on average...
    for policy in COMPARISON_POLICIES:
        if policy != "furbys":
            assert means["furbys"] >= means[policy], (policy, means)
    # ... and sits between LRU and the FLACK bound (paper: 47% of FLACK).
    assert 0.15 < result["furbys_fraction_of_flack"] < 0.95
    assert means["furbys"] > 0.02
