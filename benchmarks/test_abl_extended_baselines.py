"""Beyond-the-paper baselines: DRRIP and Hawkeye on the uop cache."""

from repro.harness.experiments import abl_extended_baselines


def test_abl_extended_baselines(run_experiment):
    result = run_experiment(abl_extended_baselines)
    # Like the Figure 5 policies, these land far below FURBYS.
    assert result["furbys_beats_extended"]
