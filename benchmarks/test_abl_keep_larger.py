"""Ablation (DESIGN.md §6): the keep-larger rule for overlapping PWs."""

from repro.harness.experiments import abl_keep_larger


def test_abl_keep_larger(run_experiment):
    result = run_experiment(abl_keep_larger)
    # Losing intermediate exit points should not *reduce* LRU misses.
    assert result["mean_lru_miss_delta_when_off"] > -0.02
