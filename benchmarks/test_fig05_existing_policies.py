"""Figure 5: existing replacement policies vs. the FLACK bound."""

from repro.harness.experiments import fig5_existing_policies


def test_fig5_existing_policies(run_experiment):
    result = run_experiment(fig5_existing_policies)
    means = result["mean_reductions"]
    # Paper: every existing policy achieves only a fraction of FLACK.
    for policy, value in means.items():
        if policy != "flack":
            assert value < means["flack"], (policy, value)
    assert means["flack"] > 0.08
