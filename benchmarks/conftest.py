"""Shared bench fixtures.

Each bench regenerates one table/figure through the memoized experiment
harness, runs exactly once (the experiments are minutes-scale, not
microbenchmarks), prints the reproduced rows, and asserts the *shape*
properties the paper reports (who wins, roughly by how much).

Results are cached on disk (``.repro-cache/``), so re-running the suite
is fast; delete the cache directory (or set ``REPRO_CACHE=0``) for a
cold rerun.  ``REPRO_APPS``/``REPRO_TRACE_LEN`` scale the experiments
down for smoke runs.
"""

from __future__ import annotations

import pytest

from repro.harness.reporting import format_table


@pytest.fixture
def run_experiment(benchmark):
    """Run an experiment function once under pytest-benchmark timing."""

    def runner(experiment, *args, **kwargs):
        result = benchmark.pedantic(
            experiment, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        print()
        print(format_table(result["headers"], result["rows"],
                           title=f"== {experiment.__name__} =="))
        for key, value in result.items():
            if key not in ("headers", "rows"):
                print(f"{key}: {value}")
        return result

    return runner
