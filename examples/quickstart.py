"""Quickstart: compare micro-op cache replacement policies on one app.

Runs the kafka workload (Table II) through the behavioural frontend
simulator under several replacement policies — the LRU baseline, two
online heuristics, the profile-guided FURBYS, and the offline
near-optimal FLACK bound — and prints micro-op miss rates and
reductions, reproducing a slice of the paper's Figure 8.

Usage::

    python examples/quickstart.py [app]
"""

import sys

from repro import RunRequest, run
from repro.harness.reporting import format_table, percent

TRACE_LEN = 24000  # keep the example snappy; figures use longer traces


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "kafka"
    policies = ("lru", "srrip", "ghrp", "thermometer", "furbys", "flack")

    print(f"Simulating {TRACE_LEN} PW lookups of {app!r} "
          f"(512-entry 8-way micro-op cache, Zen3-like frontend)...\n")

    baseline = run(RunRequest(app=app, policy="lru", trace_len=TRACE_LEN))
    rows = []
    for policy in policies:
        stats = run(RunRequest(app=app, policy=policy, trace_len=TRACE_LEN))
        rows.append((
            policy,
            f"{stats.uop_miss_rate:.4f}",
            percent(stats.miss_reduction_vs(baseline)),
            f"{stats.bypass_fraction:.2f}",
            f"{stats.insertions}",
        ))
    print(format_table(
        ("policy", "uop miss rate", "miss reduction", "bypass frac",
         "insertions"),
        rows,
    ))
    print("\nFLACK is the offline near-optimal bound (Section IV); FURBYS"
          "\nis the practical profile-guided policy that mimics it online.")


if __name__ == "__main__":
    main()
