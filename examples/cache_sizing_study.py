"""ISO-performance study: replacement policy quality as cache capacity.

Sweeps the micro-op cache size under LRU and compares against FURBYS at
the default 512 entries — the paper's Figure 12 argument that a better
replacement policy is worth a ~1.5x larger cache (with none of the area
or power cost).

Usage::

    python examples/cache_sizing_study.py [app]
"""

import sys

from repro import RunRequest, run
from repro.harness.reporting import format_table, percent

TRACE_LEN = 24000
SCALES = (1.0, 1.25, 1.5, 1.75, 2.0)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "postgres"
    base_entries = 512

    baseline = run(RunRequest(app=app, policy="lru", trace_len=TRACE_LEN))
    furbys = run(RunRequest(app=app, policy="furbys", trace_len=TRACE_LEN))
    furbys_reduction = furbys.miss_reduction_vs(baseline)

    rows = [(f"FURBYS @ {base_entries}", percent(furbys_reduction))]
    equivalent = None
    for scale in SCALES[1:]:
        entries = int(base_entries * scale) // 8 * 8
        scaled = run(RunRequest(app=app, policy="lru", trace_len=TRACE_LEN,
                                cache_entries=entries))
        reduction = scaled.miss_reduction_vs(baseline)
        rows.append((f"LRU    @ {entries}", percent(reduction)))
        if equivalent is None and reduction >= furbys_reduction:
            equivalent = scale

    print(format_table(
        ("configuration", "miss reduction vs LRU @ 512"),
        rows,
        title=f"ISO-performance on {app!r}",
    ))
    if equivalent is None:
        print(f"\nLRU does not match FURBYS even at {SCALES[-1]}x capacity "
              "(the paper observes this for Postgres).")
    else:
        print(f"\nLRU needs ~{equivalent}x capacity to match FURBYS.")


if __name__ == "__main__":
    main()
