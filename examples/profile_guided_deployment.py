"""The full FURBYS pipeline, step by step (Figure 6 of the paper).

Walks through STEP 1-7 explicitly — trace collection, lookup-sequence
recording, FLACK decision simulation, hit-rate grouping with Jenks
natural breaks, hint injection, and online deployment — then reports
the miss reduction, energy saving, and IPC effect versus LRU.

Usage::

    python examples/profile_guided_deployment.py [app]
"""

import sys
from collections import Counter

from repro.config import zen3_config
from repro.frontend.pipeline import FrontendPipeline
from repro.policies import make_policy
from repro.power.mcpat import CorePowerModel
from repro.power.ppw import ppw_gain
from repro.profiling import (
    build_hints,
    collect_hit_rates,
    make_furbys,
    record_lookup_sequence,
    simulate_pt_collection,
)
from repro.timing.model import TimingModel

TRACE_LEN = 24000
WARMUP = TRACE_LEN // 3


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "finagle"
    config = zen3_config()

    print(f"STEP 1: collect an execution trace of {app!r} "
          "(simulated Intel PT)")
    trace = simulate_pt_collection(app, n_lookups=TRACE_LEN)
    print(f"        {len(trace)} PW lookups, {trace.total_uops} micro-ops, "
          f"{len(trace.unique_starts())} distinct windows")

    print("STEP 2: record the PW lookup sequence (size-0 cache view)")
    sequence = record_lookup_sequence(trace)
    print(f"        {len(sequence)} lookups recorded")

    print("STEP 3-5: replay under FLACK and collect per-PW hit rates")
    hit_rates = collect_hit_rates(trace, config, source="flack")
    print(f"        hit rates for {len(hit_rates)} windows "
          f"(mean {sum(hit_rates.values()) / len(hit_rates):.2f})")

    print("STEP 6: group hit rates with Jenks natural breaks, inject hints")
    hints = build_hints(trace, hit_rates, n_bits=3,
                        n_sets=config.uop_cache.sets)
    distribution = Counter(hints.values())
    print(f"        weight distribution: "
          f"{dict(sorted(distribution.items()))}")

    print("STEP 7: deploy — FURBYS hardware consumes the hints online\n")
    from repro.profiling import FurbysProfile
    policy, hint_map = make_furbys(
        FurbysProfile(hints=hints, hit_rates=hit_rates)
    )
    furbys = FrontendPipeline(config, policy, hints=hint_map).run(
        trace, warmup=WARMUP
    )
    lru = FrontendPipeline(config, make_policy("lru")).run(
        trace, warmup=WARMUP
    )

    model = CorePowerModel(config)
    timing = TimingModel(config)
    speedup = timing.evaluate(furbys).speedup_vs(timing.evaluate(lru))
    print(f"miss reduction vs LRU : "
          f"{furbys.miss_reduction_vs(lru) * 100:+.2f}%")
    print(f"insertions bypassed   : {furbys.bypass_fraction * 100:.1f}%")
    print(f"victim coverage       : {furbys.policy_coverage * 100:.1f}% "
          "(rest taken by the SRRIP pitfall fallback)")
    print(f"perf-per-watt gain    : {ppw_gain(config, furbys, lru, model=model) * 100:+.2f}%")
    print(f"IPC speedup           : {speedup * 100:+.2f}%")


if __name__ == "__main__":
    main()
