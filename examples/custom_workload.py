"""Bring your own workload: build a CFG, generate a trace, bound it.

Shows the substrate layer directly: synthesize a control-flow graph,
walk it into a PW lookup trace, then ask "how much headroom does a
better replacement policy have on *this* code?" by comparing LRU
against Belady and FLACK — the analysis Section III of the paper runs
on the Table II applications.

Usage::

    python examples/custom_workload.py
"""

from dataclasses import replace

from repro.config import zen3_config
from repro.frontend.pipeline import FrontendPipeline
from repro.offline.belady import BeladyPolicy
from repro.offline.flack import FLACKPolicy
from repro.policies import make_policy
from repro.workloads.cfg import build_cfg
from repro.workloads.generator import generate_trace


def main() -> None:
    # A mid-sized service: 250 handler functions, short request loops.
    cfg = build_cfg(
        seed=2024,
        functions=250,
        blocks_per_function=(3, 9),
        insts_per_block=(3, 8),
        mean_iterations=1.5,
        call_fraction=0.2,
    )
    print(f"static code image: {cfg.total_blocks} blocks, "
          f"{cfg.total_insts} instructions, {cfg.total_bytes / 1024:.0f} KiB")

    trace = generate_trace(
        cfg, 20000, seed=7,
        zipf_alpha=0.6, phase_length=5000, phase_count=3,
        in_phase_bias=0.92, phase_loop_length=45,
        target_mispredict_mpki=2.0,
    )
    print(f"dynamic trace: {len(trace)} PW lookups, "
          f"{len(trace.unique_starts())} distinct windows, "
          f"branch MPKI {1000 * trace.total_mispredictions / trace.total_instructions:.2f}\n")

    config = replace(zen3_config(), perfect_icache=True)
    warmup = len(trace) // 3

    def simulate(policy):
        return FrontendPipeline(config, policy).run(trace, warmup=warmup)

    lru = simulate(make_policy("lru"))
    belady = simulate(BeladyPolicy(trace))
    flack = simulate(FLACKPolicy(trace, config.uop_cache))

    print(f"LRU    miss rate : {lru.uop_miss_rate:.4f}")
    print(f"Belady miss rate : {belady.uop_miss_rate:.4f} "
          f"({belady.miss_reduction_vs(lru) * 100:+.1f}%)")
    print(f"FLACK  miss rate : {flack.uop_miss_rate:.4f} "
          f"({flack.miss_reduction_vs(lru) * 100:+.1f}%)")
    print("\nThe FLACK-Belady gap is the value of modelling variable costs,"
          "\npartial hits and asynchronous insertion (Sections III-IV).")


if __name__ == "__main__":
    main()
