#!/usr/bin/env python
"""Measure cold trace construction and the binary trace store.

The headline metric is the wall-clock to build every app's trace cold
(registry and disk caches off), best-of-``--repeats`` — the work the
columnar generation fast path (``REPRO_TRACE_FASTPATH``) accelerates
and the disk trace cache then eliminates entirely.  Three extra checks
make the artifact self-verifying:

* with ``--before-src`` pointing at a pre-optimization checkout's
  ``src/`` (e.g. a git worktree), the same batch is timed there and the
  v1 dumps of both arms' traces are digest-compared, making the
  bit-identity claim part of the artifact (``identical_results``);
* a 1,000,000-lookup trace is generated and round-tripped through the
  v2 binary format (``million_lookup_roundtrip``);
* ``--cache-smoke`` runs two cold simulation batches in fresh
  interpreters sharing one cache directory and asserts the second
  regenerated zero traces (it must be served by the disk trace cache).

Usage::

    git worktree add /tmp/before-wt <pre-optimization-commit>
    PYTHONPATH=src python scripts/bench_trace_engine.py \
        --before-src /tmp/before-wt/src --output BENCH_trace_engine.json
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from _benchlib import SRC, emit, run_json

#: Runs inside a fresh interpreter per arm so the two arms cannot share
#: imported modules or warmed caches.  Prints one JSON object.
_INNER = r"""
import hashlib, io, json, os, sys, time
os.environ["REPRO_CACHE"] = "0"
from repro.workloads.apps import get_profile
from repro.workloads.registry import build_app_trace, clear_trace_cache

apps, trace_len, repeats = (
    tuple(sys.argv[1].split(",")), int(sys.argv[2]), int(sys.argv[3])
)
readings = []
for _ in range(repeats):
    clear_trace_cache()
    total = 0.0
    for app in apps:
        started = time.perf_counter()
        build_app_trace(get_profile(app), "default", trace_len)
        total += time.perf_counter() - started
    readings.append(round(total, 3))
best = min(readings)
# Behaviour check: the v1 text dump digests the full lookup sequence
# plus metadata, and both arms can produce it.
digests = {}
for app in apps:
    trace = build_app_trace(get_profile(app), "default", trace_len)
    stream = io.StringIO()
    trace.dump(stream)
    digests[app] = hashlib.sha256(stream.getvalue().encode()).hexdigest()
total_lookups = trace_len * len(apps)
json.dump({
    "apps": len(apps),
    "trace_len": trace_len,
    "total_lookups": total_lookups,
    "readings_s": readings,
    "build_s": best,
    "build_lookups_per_s": round(total_lookups / best, 1),
    "digests": digests,
}, sys.stdout)
"""

#: Generates a 1M-lookup trace and round-trips it through v2 binary.
_MILLION = r"""
import json, os, sys, tempfile, time
os.environ["REPRO_CACHE"] = "0"
from repro.core.trace import Trace
from repro.workloads.apps import get_profile
from repro.workloads.registry import build_app_trace

started = time.perf_counter()
trace = build_app_trace(get_profile("kafka"), "default", 1_000_000)
gen_s = time.perf_counter() - started
with tempfile.NamedTemporaryFile(suffix=".bin", delete=False) as tmp:
    path = tmp.name
try:
    started = time.perf_counter()
    trace.save_binary(path)
    save_s = time.perf_counter() - started
    size = os.path.getsize(path)
    started = time.perf_counter()
    loaded = Trace.load_binary(path)
    load_s = time.perf_counter() - started
    ok = (
        len(loaded) == len(trace)
        and loaded.metadata == trace.metadata
        and loaded.columns == trace.columns
    )
finally:
    os.unlink(path)
json.dump({
    "lookups": len(trace),
    "generate_s": round(gen_s, 3),
    "save_s": round(save_s, 3),
    "load_s": round(load_s, 3),
    "file_bytes": size,
    "roundtrip_identical": ok,
}, sys.stdout)
"""

#: One cold simulation batch; prints the trace-cache counters so the
#: caller can see whether traces were generated or disk-loaded.
_CACHE_SMOKE = r"""
import json, sys
from repro.harness.parallel import run_batch
from repro.harness.runner import RunRequest
from repro.workloads.registry import trace_cache_stats

apps, policy, trace_len = sys.argv[1].split(","), sys.argv[2], int(sys.argv[3])
requests = [
    RunRequest(app=app, policy=policy, trace_len=trace_len) for app in apps
]
run_batch(requests, jobs=1)
json.dump(trace_cache_stats(), sys.stdout)
"""


def _run_inner(src: Path, code: str, argv: list,
               extra_env: dict | None = None) -> dict:
    return run_json(code, argv, src=src, env=extra_env)


def _cache_smoke(src: Path, apps: str, trace_len: int) -> dict:
    """Two cold batches, fresh interpreters, one shared cache dir.

    The second run uses a different policy so its simulation results
    miss the stats cache (forcing real runs) while its traces must come
    from the disk trace cache: ``generated`` has to be 0.
    """
    with tempfile.TemporaryDirectory(prefix="repro-trace-smoke-") as cache:
        env = {"REPRO_CACHE": "1", "REPRO_CACHE_DIR": cache}
        first = _run_inner(src, _CACHE_SMOKE, [apps, "lru", str(trace_len)],
                           env)
        second = _run_inner(src, _CACHE_SMOKE, [apps, "srrip", str(trace_len)],
                            env)
    return {
        "first_run": first,
        "second_run": second,
        "second_run_regenerated_zero": second["generated"] == 0,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default="kafka,clang,postgres")
    parser.add_argument("--trace-len", type=int, default=45_000)
    parser.add_argument("--repeats", type=int, default=3,
                        help="batch repetitions per arm (best-of)")
    parser.add_argument("--before-src", type=Path, default=None,
                        help="src/ of a pre-optimization checkout; when "
                             "given, times it and checks bit-identity")
    parser.add_argument("--skip-million", action="store_true",
                        help="skip the 1M-lookup v2 round-trip check")
    parser.add_argument("--cache-smoke", action="store_true",
                        help="also assert the second cold batch hits the "
                             "disk trace cache (0 regenerations)")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON to this file")
    args = parser.parse_args(argv)

    src = SRC
    inner_args = [args.apps, str(args.trace_len), str(args.repeats)]
    after = _run_inner(src, _INNER, inner_args)
    outcome = {
        "benchmark": "cold trace construction "
                     f"({after['apps']} apps x {args.trace_len}-lookup "
                     "traces; registry and disk caches off)",
        "apps": args.apps,
        "after": {k: after[k] for k in
                  ("readings_s", "build_s", "build_lookups_per_s")},
    }

    if args.before_src is not None:
        before = _run_inner(args.before_src, _INNER, inner_args)
        outcome["before"] = {k: before[k] for k in
                             ("readings_s", "build_s", "build_lookups_per_s")}
        outcome["speedup"] = round(before["build_s"] / after["build_s"], 3)
        outcome["identical_results"] = before["digests"] == after["digests"]

    if not args.skip_million:
        outcome["million_lookup_roundtrip"] = _run_inner(src, _MILLION, [])

    if args.cache_smoke:
        outcome["cache_smoke"] = _cache_smoke(
            src, args.apps, min(args.trace_len, 8000)
        )

    emit(outcome, args.output)
    ok = (
        outcome.get("identical_results", True)
        and outcome.get("million_lookup_roundtrip",
                        {}).get("roundtrip_identical", True)
        and outcome.get("cache_smoke",
                        {}).get("second_run_regenerated_zero", True)
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
