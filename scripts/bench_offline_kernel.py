#!/usr/bin/env python
"""Benchmark the offline-policy simulation kernel against the reference loops.

Mirror of ``bench_sim_kernel.py`` for the offline and profile-guided
arms (Belady, FOO replay, FLACK, FURBYS, Thermometer — the policies
:mod:`repro.frontend.simd_offline` covers).  Three arms, each a fresh
interpreter (process-cold) over a pre-warmed on-disk trace + profiling
artifact cache:

* ``kernel``     — ``FrontendPipeline.run`` with ``REPRO_SIM_FASTPATH=1``
                   (the ``simd_offline`` kernel; the default).
* ``fastloop``   — ``FrontendPipeline.run`` with ``REPRO_SIM_FASTPATH=0``
                   (the prepared-trace ``_run_segment`` loop).
* ``reference``  — ``FrontendPipeline.run_reference`` (the original
                   object-at-a-time ``step()`` loop).

Unlike the online arms, every offline policy pays a real construction
phase (columnar future index, FOO/FLACK flow pass, FURBYS/Thermometer
profiling replay) that is byte-identical across arms — so the headline
``speedup`` compares the **simulation phase only** (``sim_s``); policy
construction and trace load are reported separately.  ``serial_s``
still records the full cold batch for context.

A separate identity phase reruns every app x policy combination at
``--identity-len`` lookups through all three arms in one process and
compares ``SimulationStats`` field-by-field (``identical_results``).

Usage::

    PYTHONPATH=src python scripts/bench_offline_kernel.py \
        --output BENCH_offline_kernel.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from _benchlib import best_of, emit, run_json, scratch_cache_dir

_POLICIES = "belady,foo-ohr,flack,furbys,thermometer"

#: Untimed setup: generate every trace and profiling artifact once into
#: the on-disk cache, so the timed arms measure simulation, not
#: artifact construction.
_WARM = r"""
import json, sys, time
from repro.harness.runner import (
    RunRequest, _build_policy_and_hints, clear_memory_cache,
)
from repro.workloads.registry import clear_trace_cache, get_trace

apps, policies, lens = (
    sys.argv[1].split(","), sys.argv[2].split(","),
    [int(x) for x in sys.argv[3].split(",")],
)
started = time.perf_counter()
for app in apps:
    for n in lens:
        trace = get_trace(app, n_lookups=n)
        for pname in policies:
            request = RunRequest(app=app, policy=pname, trace_len=n)
            _build_policy_and_hints(request, request.build_config(), trace)
        clear_memory_cache()
        clear_trace_cache()  # keep the warm phase memory-flat
json.dump({"warm_s": round(time.perf_counter() - started, 3)},
          sys.stdout)
"""

#: One timed arm: the cold serial batch, with per-phase attribution.
_ARM = r"""
import json, sys, time
from repro.frontend.pipeline import FrontendPipeline
from repro.harness.runner import RunRequest, _build_policy_and_hints
from repro.workloads.registry import get_trace

mode, apps, policies, n = (
    sys.argv[1], sys.argv[2].split(","), sys.argv[3].split(","),
    int(sys.argv[4]),
)
started = time.perf_counter()
trace_load_s = 0.0
policy_build_s = 0.0
sim_s = 0.0
for app in apps:
    t0 = time.perf_counter()
    trace = get_trace(app, n_lookups=n)
    trace_load_s += time.perf_counter() - t0
    for pname in policies:
        request = RunRequest(app=app, policy=pname, trace_len=n)
        config = request.build_config()
        t0 = time.perf_counter()
        policy, hints = _build_policy_and_hints(request, config, trace)
        policy_build_s += time.perf_counter() - t0
        pipeline = FrontendPipeline(config, policy, hints=hints)
        t0 = time.perf_counter()
        if mode == "reference":
            pipeline.run_reference(trace)
        else:
            pipeline.run(trace)
        sim_s += time.perf_counter() - t0
serial_s = time.perf_counter() - started
total = n * len(apps) * len(policies)
json.dump({
    "serial_s": round(serial_s, 3),
    "trace_load_s": round(trace_load_s, 3),
    "policy_build_s": round(policy_build_s, 3),
    "sim_s": round(sim_s, 3),
    "lookups_per_s": round(total / serial_s, 1),
    "sim_lookups_per_s": round(total / sim_s, 1),
}, sys.stdout)
"""

#: Identity phase: all apps x policies x arms at the identity length.
_IDENTITY = r"""
import dataclasses, json, os, sys
from repro.frontend.pipeline import FrontendPipeline
from repro.harness.runner import RunRequest, _build_policy_and_hints
from repro.workloads.registry import get_trace

apps, policies, n = sys.argv[1].split(","), sys.argv[2].split(","), \
    int(sys.argv[3])
matrix = {}
for app in apps:
    trace = get_trace(app, n_lookups=n)
    for pname in policies:
        request = RunRequest(app=app, policy=pname, trace_len=n)
        config = request.build_config()

        def _fresh():
            policy, hints = _build_policy_and_hints(request, config, trace)
            return FrontendPipeline(config, policy, hints=hints)

        os.environ["REPRO_SIM_FASTPATH"] = "1"
        st_kernel = dataclasses.asdict(_fresh().run(trace))
        os.environ["REPRO_SIM_FASTPATH"] = "0"
        st_fastloop = dataclasses.asdict(_fresh().run(trace))
        st_reference = dataclasses.asdict(_fresh().run_reference(trace))
        matrix[f"{app}/{pname}"] = (
            st_kernel == st_fastloop == st_reference
        )
json.dump({"matrix": matrix, "identical": all(matrix.values())},
          sys.stdout)
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default="kafka,clang,postgres")
    parser.add_argument("--policies", default=_POLICIES,
                        help="offline / profile-guided policies")
    parser.add_argument("--trace-len", type=int, default=100_000)
    parser.add_argument("--identity-len", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=3,
                        help="cold processes per arm (best-of)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="trace/artifact cache dir (default: a temp dir)")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    with scratch_cache_dir(args.cache_dir,
                           "bench-offline-kernel-") as cache_dir:
        env = {"REPRO_CACHE": "1", "REPRO_CACHE_DIR": str(cache_dir)}

        lens = f"{args.trace_len},{args.identity_len}"
        warm = run_json(_WARM, [args.apps, args.policies, lens], env=env)

        arms = {}
        for mode in ("kernel", "fastloop", "reference"):
            arm_env = dict(env)
            arm_env["REPRO_SIM_FASTPATH"] = "0" if mode == "fastloop" else "1"
            arms[mode] = best_of(
                args.repeats,
                lambda: run_json(
                    _ARM, [mode, args.apps, args.policies, args.trace_len],
                    env=arm_env,
                ),
                key="sim_s",
            )

        identity = run_json(
            _IDENTITY, [args.apps, args.policies, args.identity_len], env=env)

    n_runs = len(args.apps.split(",")) * len(args.policies.split(","))
    outcome = {
        "benchmark": "offline-kernel cold serial batch "
                     f"({n_runs} runs x {args.trace_len} lookups: "
                     "disk trace load + policy build + simulation; "
                     "speedups compare the simulation phase, which is "
                     "the only phase the kernel changes)",
        "apps": args.apps,
        "policies": args.policies,
        "trace_len": args.trace_len,
        "warm_s": warm["warm_s"],
        "arms": arms,
        "speedup": round(arms["reference"]["sim_s"]
                         / arms["kernel"]["sim_s"], 3),
        "speedup_vs_fastloop": round(arms["fastloop"]["sim_s"]
                                     / arms["kernel"]["sim_s"], 3),
        "identity_len": args.identity_len,
        "identical_results": identity["identical"],
        "identity_matrix": identity["matrix"],
    }

    emit(outcome, args.output)
    return 0 if outcome["identical_results"] else 1


if __name__ == "__main__":
    sys.exit(main())
