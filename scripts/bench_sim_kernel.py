#!/usr/bin/env python
"""Benchmark the vectorized simulation kernel against the reference loops.

Three arms, each a fresh interpreter (process-cold) over a pre-warmed
on-disk trace cache, so the comparison isolates the *simulation* change:
trace generation (~50us/lookup, identical in every arm) is paid once in
an untimed setup phase and reported separately as ``trace_warm_s``.

* ``kernel``     — ``FrontendPipeline.run`` with ``REPRO_SIM_FASTPATH=1``
                   (the ``repro.frontend.simd`` kernel; the default).
* ``fastloop``   — ``FrontendPipeline.run`` with ``REPRO_SIM_FASTPATH=0``
                   (the prepared-trace ``_run_segment`` loop the kernel
                   replaces — the bit-identity reference knob).
* ``reference``  — ``FrontendPipeline.run_reference`` (the original
                   object-at-a-time ``step()`` loop, the ~67-84k
                   lookups/s engine BENCH_hotpath.json recorded).

Each arm executes the full apps x policies batch serially — trace load
from disk, pipeline construction, simulation — and reports aggregate
lookups/s over the batch wall-clock (best of ``--repeats`` cold
processes).  The headline ``speedup`` is kernel vs. ``reference``;
``speedup_vs_fastloop`` is also recorded.

A separate identity phase reruns every app x policy combination at
``--identity-len`` lookups through all three arms in one process and
compares ``SimulationStats`` field-by-field (``identical_results``).

Usage::

    PYTHONPATH=src python scripts/bench_sim_kernel.py \
        --output BENCH_sim_kernel.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from _benchlib import best_of, emit, run_json, scratch_cache_dir

_POLICIES = "lru,srrip,random,ghrp"

#: Untimed setup: generate every trace once into the on-disk cache.
_WARM = r"""
import json, sys, time
from repro.workloads.registry import clear_trace_cache, get_trace

apps, lens = sys.argv[1].split(","), [int(x) for x in sys.argv[2].split(",")]
started = time.perf_counter()
for app in apps:
    for n in lens:
        get_trace(app, n_lookups=n)
        clear_trace_cache()  # keep the warm phase memory-flat
json.dump({"trace_warm_s": round(time.perf_counter() - started, 3)},
          sys.stdout)
"""

#: One timed arm: the cold serial batch (trace load + pipeline + sim).
_ARM = r"""
import json, sys, time
from repro.config import zen3_config
from repro.frontend.pipeline import FrontendPipeline
from repro.policies.ghrp import GHRPPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.random_policy import RandomPolicy
from repro.policies.srrip import SRRIPPolicy

POLICIES = {"lru": LRUPolicy, "srrip": SRRIPPolicy,
            "random": RandomPolicy, "ghrp": GHRPPolicy}
mode, apps, policies, n = (
    sys.argv[1], sys.argv[2].split(","), sys.argv[3].split(","),
    int(sys.argv[4]),
)
from repro.workloads.registry import get_trace

config = zen3_config()
started = time.perf_counter()
trace_load_s = 0.0
traces = {}
for app in apps:
    t0 = time.perf_counter()
    traces[app] = get_trace(app, n_lookups=n)
    trace_load_s += time.perf_counter() - t0
sim_s = 0.0
for pname in policies:
    for app in apps:
        pipeline = FrontendPipeline(config, POLICIES[pname]())
        t0 = time.perf_counter()
        if mode == "reference":
            pipeline.run_reference(traces[app])
        else:
            pipeline.run(traces[app])
        sim_s += time.perf_counter() - t0
serial_s = time.perf_counter() - started
total = n * len(apps) * len(policies)
json.dump({
    "serial_s": round(serial_s, 3),
    "trace_load_s": round(trace_load_s, 3),
    "sim_s": round(sim_s, 3),
    "lookups_per_s": round(total / serial_s, 1),
    "sim_lookups_per_s": round(total / sim_s, 1),
}, sys.stdout)
"""

#: Identity phase: all apps x policies x arms at the identity length.
_IDENTITY = r"""
import dataclasses, json, os, sys
from repro.config import zen3_config
from repro.frontend.pipeline import FrontendPipeline
from repro.policies.ghrp import GHRPPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.random_policy import RandomPolicy
from repro.policies.srrip import SRRIPPolicy
from repro.workloads.registry import get_trace

POLICIES = {"lru": LRUPolicy, "srrip": SRRIPPolicy,
            "random": RandomPolicy, "ghrp": GHRPPolicy}
apps, policies, n = sys.argv[1].split(","), sys.argv[2].split(","), \
    int(sys.argv[3])
config = zen3_config()
matrix = {}
for app in apps:
    trace = get_trace(app, n_lookups=n)
    for pname in policies:
        os.environ["REPRO_SIM_FASTPATH"] = "1"
        kernel = FrontendPipeline(config, POLICIES[pname]())
        st_kernel = dataclasses.asdict(kernel.run(trace))
        os.environ["REPRO_SIM_FASTPATH"] = "0"
        fastloop = FrontendPipeline(config, POLICIES[pname]())
        st_fastloop = dataclasses.asdict(fastloop.run(trace))
        reference = FrontendPipeline(config, POLICIES[pname]())
        st_reference = dataclasses.asdict(reference.run_reference(trace))
        matrix[f"{app}/{pname}"] = (
            st_kernel == st_fastloop == st_reference
        )
json.dump({"matrix": matrix, "identical": all(matrix.values())},
          sys.stdout)
"""


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default="kafka,clang,postgres")
    parser.add_argument("--policies", default=_POLICIES,
                        help="kernel-eligible online policies")
    parser.add_argument("--trace-len", type=int, default=100_000)
    parser.add_argument("--identity-len", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=3,
                        help="cold processes per arm (best-of)")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="trace cache dir (default: a temp dir)")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    with scratch_cache_dir(args.cache_dir, "bench-sim-kernel-") as cache_dir:
        env = {"REPRO_CACHE": "1", "REPRO_CACHE_DIR": str(cache_dir)}

        lens = f"{args.trace_len},{args.identity_len}"
        warm = run_json(_WARM, [args.apps, lens], env=env)

        arms = {}
        for mode in ("kernel", "fastloop", "reference"):
            arm_env = dict(env)
            arm_env["REPRO_SIM_FASTPATH"] = "0" if mode == "fastloop" else "1"
            arms[mode] = best_of(
                args.repeats,
                lambda: run_json(
                    _ARM, [mode, args.apps, args.policies, args.trace_len],
                    env=arm_env,
                ),
                key="serial_s", readings_key="readings_s",
            )

        identity = run_json(
            _IDENTITY, [args.apps, args.policies, args.identity_len], env=env)

    n_runs = len(args.apps.split(",")) * len(args.policies.split(","))
    outcome = {
        "benchmark": "sim-kernel cold serial batch "
                     f"({n_runs} runs x {args.trace_len} lookups: "
                     "disk trace load + pipeline + simulation; "
                     "trace generation pre-paid in trace_warm_s)",
        "apps": args.apps,
        "policies": args.policies,
        "trace_len": args.trace_len,
        "trace_warm_s": warm["trace_warm_s"],
        "arms": arms,
        "speedup": round(arms["reference"]["serial_s"]
                         / arms["kernel"]["serial_s"], 3),
        "speedup_vs_fastloop": round(arms["fastloop"]["serial_s"]
                                     / arms["kernel"]["serial_s"], 3),
        "identity_len": args.identity_len,
        "identical_results": identity["identical"],
        "identity_matrix": identity["matrix"],
    }

    emit(outcome, args.output)
    return 0 if outcome["identical_results"] else 1


if __name__ == "__main__":
    sys.exit(main())
