#!/usr/bin/env python
"""Benchmark the arm-fused batch path against the per-arm kernels.

The workload is the cold serial **full-figure batch**: every policy the
figures compare (online + offline + profile-guided, 14 arms) x every
app, through the real ``run_batch(jobs=1)`` entry point.  Two arms,
each a fresh interpreter over a pre-warmed on-disk trace/artifact cache
with the stats cache wiped between runs:

* ``fused``    — ``REPRO_SIM_FUSE=1`` (default): the batch prepass
                 groups each app's arms and hands them to one
                 ``simd_fused.run_group`` sweep over shared columns.
* ``per_arm``  — ``REPRO_SIM_FUSE=0``: the PR-8 path, one solo kernel
                 pass per (app, policy) arm.

Policy construction (future index, FLACK flow solves, profiling
replays) is byte-identical work in both arms, so the headline
``sim_speedup`` compares the **simulation phase only** (the
``frontend_sim`` stage-timer total); ``serial_s`` records the full
batch for context.  Both arms' full ``SimulationStats`` are compared
field-by-field per app x policy (``identity_matrix`` /
``identical_results``) — the identity claim is part of the artifact.

A separate streaming phase (skip with ``--skip-stream``) runs one fused
sweep over a ``--stream-len``-lookup trace (default 10M — the scale the
chunked column streaming enables) twice: windowed
(``REPRO_SIM_STREAM_WINDOW=--stream-window``) and monolithic
(window 0).  It reports each run's peak RSS so the artifact shows the
bounded-window memory profile, and checks the two produce identical
stats.

Usage::

    PYTHONPATH=src python scripts/bench_fused_batch.py \
        --output BENCH_fused_batch.json
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

from _benchlib import best_of, emit, run_json, scratch_cache_dir

#: The full-figure policy mix: every arm the paper's tables compare.
_POLICIES = (
    "lru,srrip,random,ghrp,"
    "belady,foo-ohr,foo-bhr,"
    "flack[foo],flack[A],flack[A+VC],flack[A+VC+SB],flack,"
    "furbys,thermometer"
)

#: Untimed setup: generate every trace and profiling artifact once into
#: the on-disk cache, so the timed arms measure the batch, not cold
#: trace generation.
_WARM = r"""
import json, sys, time
from repro.harness.runner import (
    RunRequest, _build_policy_and_hints, clear_memory_cache,
)
from repro.workloads.registry import clear_trace_cache, get_trace

apps, policies, n = (
    sys.argv[1].split(","), sys.argv[2].split(","), int(sys.argv[3]),
)
started = time.perf_counter()
for app in apps:
    trace = get_trace(app, n_lookups=n)
    for pname in policies:
        request = RunRequest(app=app, policy=pname, trace_len=n)
        _build_policy_and_hints(request, request.build_config(), trace)
    clear_memory_cache()
    clear_trace_cache()  # keep the warm phase memory-flat
json.dump({"warm_s": round(time.perf_counter() - started, 3)},
          sys.stdout)
"""

#: One timed arm: the cold serial full-figure batch through run_batch,
#: with the simulation phase attributed via the stage timers and the
#: fused/fallback counters captured for the report.
_ARM = r"""
import dataclasses, json, sys, time
from repro import stagetimer
from repro.harness import resilience
from repro.harness.parallel import run_batch
from repro.harness.runner import RunRequest

apps, policies, n = (
    sys.argv[1].split(","), sys.argv[2].split(","), int(sys.argv[3]),
)
requests = [
    RunRequest(app=app, policy=pname, trace_len=n)
    for app in apps for pname in policies
]
snapshot = resilience.global_counters()
with stagetimer.capture() as stages:
    started = time.perf_counter()
    results, report = run_batch(requests, jobs=1)
    serial_s = time.perf_counter() - started
deltas = resilience.counters_since(snapshot)
sim_s = stages.get("frontend_sim", 0.0)
total = n * len(requests)
json.dump({
    "serial_s": round(serial_s, 3),
    "sim_s": round(sim_s, 3),
    "lookups_per_s": round(total / serial_s, 1),
    "sim_lookups_per_s": round(total / sim_s, 1) if sim_s else None,
    "fused_counters": {
        k: v for k, v in sorted(deltas.items())
        if k.startswith("sim_fused:")
    },
    "sim_fallbacks": {
        k: v for k, v in sorted(deltas.items())
        if k.startswith("sim_fallback:")
    },
    "stats": [dataclasses.asdict(s) for s in results],
}, sys.stdout)
"""

#: One fused sweep at figure scale: load the (pre-generated) trace from
#: the chunked v2 loader, build the arms, run run_group under the given
#: streaming window, and report the process's peak RSS.
_STREAM = r"""
import dataclasses, json, os, resource, sys, time
from repro.frontend import simd_fused
from repro.frontend.pipeline import FrontendPipeline
from repro.harness.runner import RunRequest, _build_policy_and_hints
from repro.workloads.registry import get_trace

app, arms, n, window = (
    sys.argv[1], sys.argv[2].split(","), int(sys.argv[3]), sys.argv[4],
)
os.environ["REPRO_SIM_STREAM_WINDOW"] = window
t0 = time.perf_counter()
trace = get_trace(app, n_lookups=n)
load_s = time.perf_counter() - t0
t0 = time.perf_counter()
pipelines = []
for pname in arms:
    request = RunRequest(app=app, policy=pname, trace_len=n)
    config = request.build_config()
    policy, hints = _build_policy_and_hints(request, config, trace)
    pipelines.append(FrontendPipeline(config, policy, hints=hints))
build_s = time.perf_counter() - t0
t0 = time.perf_counter()
stats = simd_fused.run_group(pipelines, trace, 0)
sweep_s = time.perf_counter() - t0
peak_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
json.dump({
    "lookups": n,
    "arms": arms,
    "stream_window": int(window),
    "trace_load_s": round(load_s, 3),
    "policy_build_s": round(build_s, 3),
    "sweep_s": round(sweep_s, 3),
    "sweep_lookups_per_s": round(n * len(arms) / sweep_s, 1),
    "peak_rss_mib": round(peak_kb / 1024, 1),
    "stats": [dataclasses.asdict(s) for s in stats],
}, sys.stdout)
"""

#: Pre-generates the streaming-phase trace into the disk cache.
_STREAM_WARM = r"""
import json, sys, time
from repro.workloads.registry import get_trace

started = time.perf_counter()
get_trace(sys.argv[1], n_lookups=int(sys.argv[2]))
json.dump({"warm_s": round(time.perf_counter() - started, 3)},
          sys.stdout)
"""

#: Simulation-result cache entries are bare ``<hex24>.json`` files in
#: the cache root (traces are ``trace-*.bin``, profiling artifacts
#: ``hitstats-*``/``profile-*``); dropping them between arm invocations
#: keeps every run cold while the trace/artifact layers stay warm.
_STATS_ENTRY = re.compile(r"[0-9a-f]{24}\.json")


def _drop_stats_entries(cache_dir: Path) -> None:
    for path in cache_dir.glob("*.json"):
        if _STATS_ENTRY.fullmatch(path.name):
            path.unlink()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default="kafka,clang,postgres")
    parser.add_argument("--policies", default=_POLICIES,
                        help="full-figure policy mix")
    parser.add_argument("--trace-len", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=3,
                        help="cold processes per arm (best-of)")
    parser.add_argument("--stream-len", type=int, default=10_000_000,
                        help="lookups for the streaming-sweep phase")
    parser.add_argument("--stream-arms", default="lru,ghrp,belady",
                        help="arms for the streaming-sweep phase")
    parser.add_argument("--stream-window", type=int, default=262_144,
                        help="REPRO_SIM_STREAM_WINDOW for the windowed run")
    parser.add_argument("--skip-stream", action="store_true",
                        help="skip the large streaming-sweep phase")
    parser.add_argument("--cache-dir", type=Path, default=None,
                        help="trace/artifact cache dir (default: a temp dir)")
    parser.add_argument("--output", type=Path, default=None)
    args = parser.parse_args(argv)

    with scratch_cache_dir(args.cache_dir, "bench-fused-batch-") as cache_dir:
        env = {"REPRO_CACHE": "1", "REPRO_CACHE_DIR": str(cache_dir)}

        warm = run_json(_WARM, [args.apps, args.policies, args.trace_len],
                        env=env)

        arms = {}
        for mode in ("fused", "per_arm"):
            arm_env = dict(env)
            arm_env["REPRO_SIM_FUSE"] = "1" if mode == "fused" else "0"

            def _measure() -> dict:
                _drop_stats_entries(cache_dir)
                return run_json(
                    _ARM, [args.apps, args.policies, args.trace_len],
                    env=arm_env,
                )

            arms[mode] = best_of(args.repeats, _measure, key="sim_s")

        apps = args.apps.split(",")
        policies = args.policies.split(",")
        labels = [f"{app}/{pname}" for app in apps for pname in policies]
        matrix = {
            label: fused == per_arm
            for label, fused, per_arm in zip(
                labels, arms["fused"]["stats"], arms["per_arm"]["stats"])
        }
        for arm in arms.values():
            del arm["stats"]  # compared above; too bulky for the report

        outcome = {
            "benchmark": "arm-fused cold serial full-figure batch "
                         f"({len(labels)} runs x {args.trace_len} lookups "
                         "through run_batch(jobs=1): disk trace load + "
                         "policy build + simulation; sim_speedup compares "
                         "the simulation phase, the only phase fusion "
                         "changes)",
            "apps": args.apps,
            "policies": args.policies,
            "trace_len": args.trace_len,
            "warm_s": warm["warm_s"],
            "arms": arms,
            "sim_speedup": round(arms["per_arm"]["sim_s"]
                                 / arms["fused"]["sim_s"], 3),
            "serial_speedup": round(arms["per_arm"]["serial_s"]
                                    / arms["fused"]["serial_s"], 3),
            "identical_results": all(matrix.values()),
            "identity_matrix": matrix,
        }

        if not args.skip_stream:
            stream_warm = run_json(
                _STREAM_WARM, [args.apps.split(",")[0], args.stream_len],
                env=env)
            stream_args = [args.apps.split(",")[0], args.stream_arms,
                           args.stream_len]
            windowed = run_json(
                _STREAM, [*stream_args, args.stream_window], env=env)
            monolithic = run_json(_STREAM, [*stream_args, 0], env=env)
            identical = windowed.pop("stats") == monolithic.pop("stats")
            outcome["streaming"] = {
                "trace_warm_s": stream_warm["warm_s"],
                "windowed": windowed,
                "monolithic": monolithic,
                "identical_results": identical,
                "peak_rss_ratio": round(
                    monolithic["peak_rss_mib"] / windowed["peak_rss_mib"], 3),
            }

        ok = outcome["identical_results"] and outcome.get(
            "streaming", {}).get("identical_results", True)

    emit(outcome, args.output)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
