#!/usr/bin/env python
"""Time a representative figure batch serial vs. parallel, emit JSON.

The batch is the Figure 5/8 policy mix over a few apps — all cold-cache
(disk layer disabled, in-process caches cleared before each arm) — run
once through ``run_batch(jobs=N)`` and once through the serial path.
The JSON records wall-clock per arm, the speedup, the machine's core
count, and whether the two arms produced field-identical stats.

Usage::

    PYTHONPATH=src python scripts/bench_parallel.py \
        --apps kafka,clang,postgres --trace-len 20000 --jobs 4 \
        --output BENCH_parallel_engine.json --check-determinism
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from _benchlib import SRC, emit

sys.path.insert(0, str(SRC))

from repro.harness.bench import (  # noqa: E402
    BENCH_APPS,
    BENCH_POLICIES,
    compare_serial_parallel,
    representative_requests,
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default=",".join(BENCH_APPS),
                        help="comma-separated apps in the batch")
    parser.add_argument("--policies", default=",".join(BENCH_POLICIES),
                        help="comma-separated policies in the batch")
    parser.add_argument("--trace-len", type=int, default=None,
                        help="PW lookups per trace (default: full length)")
    parser.add_argument("--jobs", type=int, default=4,
                        help="workers for the parallel arm (default 4)")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON to this file")
    parser.add_argument("--check-determinism", action="store_true",
                        help="exit non-zero unless both arms produced "
                             "field-identical stats")
    args = parser.parse_args(argv)

    requests = representative_requests(
        apps=tuple(a.strip() for a in args.apps.split(",") if a.strip()),
        policies=tuple(p.strip() for p in args.policies.split(",") if p.strip()),
        trace_len=args.trace_len,
    )
    outcome = compare_serial_parallel(requests, jobs=args.jobs)
    outcome["apps"] = args.apps
    outcome["policies"] = args.policies
    outcome["trace_len"] = args.trace_len

    emit(outcome, args.output)

    if args.check_determinism and not outcome["identical_results"]:
        print("FAIL: parallel results differ from serial", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
