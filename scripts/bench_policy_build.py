#!/usr/bin/env python
"""Measure cold policy construction across the offline/profiled batch.

The metric is the wall-clock to build every policy of a representative
offline batch — Belady, FOO, the four FLACK ablation rungs, full FLACK,
FURBYS and Thermometer — per app, with cold caches, traces pre-built
(trace generation is measured by ``bench_hotpath.py``).  This is the
work the shared offline-artifact store (future index, interval
decomposition, admission plan, profiling replay) collapses: ablation
variants share one trace's artifacts, FURBYS and Thermometer share one
profiling replay.  Each arm reports best-of-``--repeats``.

With ``--before-src`` pointing at a pre-optimization checkout's
``src/`` (e.g. a git worktree), the same batch is timed there and both
arms' full SimulationStats are compared field-by-field, making the
bit-identity claim part of the artifact.

Usage::

    git worktree add /tmp/before-wt <pre-optimization-commit>
    PYTHONPATH=src python scripts/bench_policy_build.py \
        --before-src /tmp/before-wt/src --output BENCH_policy_build.json
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from _benchlib import SRC, emit, run_json

#: Runs inside a fresh interpreter per arm so the two arms cannot share
#: imported modules or warmed caches.  Prints one JSON object.
_INNER = r"""
import dataclasses, json, os, sys, time
os.environ["REPRO_CACHE"] = "0"
from repro.harness.runner import (
    RunRequest, _build_policy_and_hints, clear_memory_cache, execute,
)
from repro.workloads.registry import clear_trace_cache, get_trace

apps, policies, trace_len, repeats = (
    tuple(sys.argv[1].split(",")), tuple(sys.argv[2].split(",")),
    int(sys.argv[3]), int(sys.argv[4]),
)
requests = [
    RunRequest(app=app, policy=policy, trace_len=trace_len)
    for app in apps for policy in policies
]
readings = []
for _ in range(repeats):
    clear_memory_cache()
    clear_trace_cache()
    total = 0.0
    for request in requests:
        config = request.build_config()
        # Outside the timed region: the trace (shared across the app's
        # policies, as in the experiment harness) is not the metric.
        trace = get_trace(request.app, request.input_name, trace_len)
        started = time.perf_counter()
        _build_policy_and_hints(request, config, trace)
        total += time.perf_counter() - started
    readings.append(round(total, 3))
best = min(readings)
# Behaviour check: full simulations through the regular runner path.
clear_memory_cache()
clear_trace_cache()
stats = [dataclasses.asdict(execute(request)) for request in requests]
total_lookups = trace_len * len(requests)
json.dump({
    "runs": len(requests),
    "trace_len": trace_len,
    "total_lookups": total_lookups,
    "readings_s": readings,
    "build_s": best,
    "build_lookups_per_s": round(total_lookups / best, 1),
    "stats": stats,
}, sys.stdout)
"""

DEFAULT_POLICIES = (
    "belady,foo-ohr,flack[foo],flack[A],flack[A+VC],flack[A+VC+SB],"
    "flack,furbys,thermometer"
)


def _time_arm(src: Path, apps: str, policies: str,
              trace_len: int, repeats: int) -> dict:
    return run_json(_INNER, [apps, policies, trace_len, repeats], src=src)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default="kafka,clang,postgres")
    parser.add_argument("--policies", default=DEFAULT_POLICIES)
    parser.add_argument("--trace-len", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=3,
                        help="batch repetitions per arm (best-of)")
    parser.add_argument("--before-src", type=Path, default=None,
                        help="src/ of a pre-optimization checkout; when "
                             "given, times it and checks bit-identity")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON to this file")
    parser.add_argument("--skip-stages", action="store_true",
                        help="omit the per-stage breakdown detail")
    args = parser.parse_args(argv)

    after = _time_arm(SRC, args.apps, args.policies,
                      args.trace_len, args.repeats)
    outcome = {
        "benchmark": "cold policy construction, offline/profiled batch "
                     f"({after['runs']} policies x {args.trace_len}-lookup "
                     "traces; traces pre-built, caches cold per repeat)",
        "apps": args.apps,
        "policies": args.policies,
        "after": {k: after[k] for k in
                  ("readings_s", "build_s", "build_lookups_per_s")},
    }

    if args.before_src is not None:
        before = _time_arm(args.before_src, args.apps, args.policies,
                           args.trace_len, args.repeats)
        outcome["before"] = {k: before[k] for k in
                             ("readings_s", "build_s", "build_lookups_per_s")}
        outcome["speedup"] = round(before["build_s"] / after["build_s"], 3)
        outcome["identical_results"] = before["stats"] == after["stats"]

    if not args.skip_stages:
        sys.path.insert(0, str(SRC))
        from repro.harness.microbench import policy_build_batch  # noqa: E402

        os.environ["REPRO_CACHE"] = "0"
        detail = policy_build_batch(
            tuple(args.apps.split(",")), tuple(args.policies.split(",")),
            trace_len=args.trace_len,
        )
        outcome["stage_detail"] = detail["aggregate"]

    emit(outcome, args.output)
    return 0 if outcome.get("identical_results", True) else 1


if __name__ == "__main__":
    sys.exit(main())
