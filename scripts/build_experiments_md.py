"""Assemble EXPERIMENTS.md from a bench log.

Reads the ``== experiment ==`` sections a full
``pytest benchmarks/ --benchmark-only -s`` run prints, pairs each with
the corresponding paper-reported numbers, and rewrites the
MEASURED-PLACEHOLDER section of EXPERIMENTS.md.

Usage::

    python scripts/build_experiments_md.py /tmp/bench_warm3.log
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: Paper-reported values per experiment, shown next to the measured
#: tables.  (section, paper summary, shape expectation)
PAPER = {
    "tab1_parameters": (
        "Table I", "AMD Zen3-like: 6-wide OoO, 4-wide/5-cycle decoder, "
        "512-entry 8-way uop cache (8 uops/entry, inclusive), 32KiB 8-way L1i.",
        "configuration is reproduced verbatim"),
    "tab2_workloads": (
        "Table II", "11 apps; branch MPKI 0.41 (postgres) ... 5.64 (wordpress).",
        "per-app MPKI within calibration tolerance, ordering preserved"),
    "miss_classification": (
        "Section III-B", "LRU misses: 0.89% cold, 88.31% capacity, 10.8% "
        "conflict; near-optimal cuts capacity/conflict misses by 23.9%/31.6%.",
        "capacity-dominated, cold minor, FLACK cuts both"),
    "fig2_perfect_structures": (
        "Figure 2", "Perfect uop cache: +7.41% PPW, the largest of all "
        "frontend structures.",
        "perfect uop cache is the largest PPW lever"),
    "fig5_existing_policies": (
        "Figure 5", "Existing policies reach only a fraction of the "
        "offline bound; best (GHRP) = 31.52% of FLACK.",
        "every existing policy ≪ FLACK"),
    "fig8_furbys_miss": (
        "Figure 8", "FURBYS: 14.34% average miss reduction = 1.84x GHRP "
        "(7.81%), 57.85%* of FLACK (*relative to the Fig.-8 FLACK runs).",
        "FURBYS > every existing policy; a solid fraction of FLACK"),
    "fig9_furbys_ppw": (
        "Figure 9", "FURBYS: +3.10% core performance-per-watt, ~5.1x the "
        "existing policies.",
        "FURBYS has the largest PPW gain"),
    "fig10_flack_ablation": (
        "Figure 10", "FOO < +A < +VC < +SB, full FLACK beats Belady by "
        "4.46% (30.21% vs 25.75% miss reduction).",
        "ladder improves cumulatively (SB neutral here); FLACK > Belady "
        "on every app"),
    "fig11_ipc": (
        "Figure 11", "FURBYS: +0.49% IPC = 60% of FLACK, 1.65x GHRP; "
        "miss reduction only partially translates to IPC.",
        "small positive IPC, FLACK ≥ FURBYS ≥ baselines"),
    "fig12_iso_performance": (
        "Figure 12", "LRU needs ~1.5x capacity on average (2x for "
        "postgres) to match FURBYS.",
        "mean ISO scale ≥ ~1.3x, with ≥2x outliers"),
    "fig13_energy_breakdown": (
        "Figure 13", "No-uop-cache core: 12.5% decoder + 7.7% icache; "
        "LRU uop cache saves 8.1%; FURBYS saves another 2.2%.",
        "fractions in the published ballpark; FURBYS adds savings"),
    "fig14_energy_reduction": (
        "Figure 14", "Savings: 73.26% fewer uop-cache insertions, 16.35% "
        "decoder, 7.75% icache.",
        "decoder + uop-cache insertions dominate the saving"),
    "fig15_profile_sources": (
        "Figure 15", "FLACK-derived profiles beat Belady-derived by "
        "~3.47% and FOO-derived by ~4.39%.",
        "FLACK is the best training input"),
    "fig16_size_assoc": (
        "Figure 16", "FURBYS > GHRP at every size/associativity; the gap "
        "shrinks as capacity grows.",
        "positive FURBYS-GHRP gap across geometries"),
    "fig17_zen4": (
        "Figure 17", "Zen4 frontend: FURBYS +2.41% PPW, still the best.",
        "FURBYS leads under the larger frontend"),
    "fig18_cross_validation": (
        "Figure 18", "Cross-input profiles retain 94.34% of same-input "
        "reductions (13.51% vs 14.34%).",
        "cross-trained profiles retain most of the benefit"),
    "fig19_weight_groups": (
        "Figure 19", "3 hint bits is the knee; more bits add overhead, "
        "not performance.",
        "3 bits ≥ 1 bit and ≥ wider hints"),
    "fig20_pitfall_depth": (
        "Figure 20", "Detector depth 2 gives the best miss reduction.",
        "depth 2 at or near the optimum; detector > none"),
    "fig21_bypass": (
        "Figure 21", "Bypassing adds 4.33% miss reduction and skips ~30% "
        "of insertions.",
        "bypass helps or is neutral; visible bypass fraction"),
    "fig22_hotness": (
        "Figure 22", "All policies serve hot PWs (<1% apart); FURBYS "
        "wins on warm PWs; FLACK's remaining edge is in cold PWs.",
        "policies converge on hot deciles, diverge on warm/cold"),
    "sec6c_coverage": (
        "Section VI-C", "FURBYS selects the victim 88.68% of the time "
        "(SRRIP fallback the rest).",
        "coverage high, fallback minority"),
    "sec7_noninclusive": (
        "Section VII", "Non-inclusive uop cache lifts FURBYS IPC from "
        "0.48% to 2.5%.",
        "non-inclusive ≥ inclusive"),
    "abl_jenks_vs_uniform": (
        "(extension)", "Not in the paper: Jenks vs equal-width binning.",
        "Jenks at least matches naive binning"),
    "abl_weight_scope": (
        "(extension)", "Not in the paper: per-set vs global weights "
        "(the paper computes per set).",
        "per-set does not lose to global"),
    "abl_keep_larger": (
        "(extension)", "Not in the paper: disabling the keep-larger rule.",
        "losing intermediate exit points does not reduce misses"),
    "abl_async_window": (
        "(extension)", "Not in the paper: decode-depth sensitivity.",
        "deeper pipes cost misses; FLACK stays at/below LRU"),
    "abl_extended_baselines": (
        "(extension)", "Not in the paper: DRRIP and Hawkeye baselines.",
        "both land far below FURBYS, like the Figure 5 policies"),
}


def extract_sections(log_text: str) -> dict[str, str]:
    sections: dict[str, str] = {}
    pattern = re.compile(r"^== ([a-z0-9_]+) ==$", re.M)
    matches = list(pattern.finditer(log_text))
    for index, match in enumerate(matches):
        start = match.end()
        end = matches[index + 1].start() if index + 1 < len(matches) else None
        body = log_text[start:end] if end else log_text[start:]
        # Keep the table and summary lines; stop at pytest noise.
        lines = []
        for line in body.splitlines():
            if line.startswith(("F", ".", "=")) and len(line.strip()) <= 2:
                break
            if line.startswith(("----------- benchmark", "Legend:")):
                break
            lines.append(line.rstrip())
        sections[match.group(1)] = "\n".join(lines).strip()
    return sections


def build(log_path: Path, experiments_path: Path) -> None:
    sections = extract_sections(log_path.read_text())
    parts: list[str] = []
    for name, (where, paper, shape) in PAPER.items():
        parts.append(f"## `{name}` — {where}")
        parts.append("")
        parts.append(f"**Paper:** {paper}")
        parts.append(f"**Shape expectation:** {shape}.")
        parts.append("")
        measured = sections.get(name)
        if measured:
            parts.append("**Measured:**")
            parts.append("")
            parts.append("```")
            parts.append(measured)
            parts.append("```")
        else:
            parts.append("*(not present in the provided bench log)*")
        parts.append("")
    text = experiments_path.read_text()
    text = text.replace("MEASURED-PLACEHOLDER", "\n".join(parts))
    experiments_path.write_text(text)
    missing = [n for n in PAPER if n not in sections]
    print(f"wrote {experiments_path} ({len(PAPER) - len(missing)} sections,"
          f" missing: {missing or 'none'})")


if __name__ == "__main__":
    log = Path(sys.argv[1] if len(sys.argv) > 1 else "/tmp/bench_warm3.log")
    build(log, Path(__file__).resolve().parent.parent / "EXPERIMENTS.md")
