#!/usr/bin/env python
"""Measure the single-run hot path: the end-to-end cold serial batch.

The metric is the one PR 1 recorded for the serial arm in
``BENCH_parallel_engine.json``: wall-clock for the representative
figure batch (3 apps x 5 policies x 20k-lookup traces) executed
serially with cold caches, including trace generation and policy
construction — i.e. what a single `repro` invocation actually pays.
Each arm reports best-of-``--repeats`` (minimum; the defensible
estimate on a noisy host).

With ``--before-src`` pointing at a pre-optimization checkout's
``src/`` (e.g. a git worktree), the same batch is timed there and the
two arms' SimulationStats are compared field-by-field, making the
bit-identity claim part of the artifact.

Usage::

    git worktree add /tmp/before-wt <pre-optimization-commit>
    PYTHONPATH=src python scripts/bench_hotpath.py \
        --before-src /tmp/before-wt/src --output BENCH_hotpath.json
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from _benchlib import SRC, emit, run_json

#: Runs inside a fresh interpreter per arm so the two arms cannot share
#: imported modules or warmed caches.  Prints one JSON object.
_INNER = r"""
import dataclasses, json, os, sys, time
os.environ["REPRO_CACHE"] = "0"
from repro.harness.bench import _cold_start, representative_requests
from repro.harness.runner import execute

apps, policies, trace_len, repeats = (
    tuple(sys.argv[1].split(",")), tuple(sys.argv[2].split(",")),
    int(sys.argv[3]), int(sys.argv[4]),
)
requests = representative_requests(apps=apps, policies=policies,
                                   trace_len=trace_len)
readings, stats = [], None
for _ in range(repeats):
    _cold_start()
    started = time.perf_counter()
    stats = [execute(request) for request in requests]
    readings.append(round(time.perf_counter() - started, 3))
best = min(readings)
total_lookups = trace_len * len(requests)
json.dump({
    "runs": len(requests),
    "trace_len": trace_len,
    "total_lookups": total_lookups,
    "readings_s": readings,
    "serial_s": best,
    "lookups_per_s": round(total_lookups / best, 1),
    "stats": [dataclasses.asdict(s) for s in stats],
}, sys.stdout)
"""


def _time_arm(src: Path, apps: str, policies: str,
              trace_len: int, repeats: int) -> dict:
    return run_json(_INNER, [apps, policies, trace_len, repeats], src=src)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--apps", default="kafka,clang,postgres")
    parser.add_argument("--policies", default="lru,srrip,ghrp,flack,furbys")
    parser.add_argument("--trace-len", type=int, default=20_000)
    parser.add_argument("--repeats", type=int, default=3,
                        help="batch repetitions per arm (best-of)")
    parser.add_argument("--before-src", type=Path, default=None,
                        help="src/ of a pre-optimization checkout; when "
                             "given, times it and checks bit-identity")
    parser.add_argument("--output", type=Path, default=None,
                        help="also write the JSON to this file")
    parser.add_argument("--skip-micro", action="store_true",
                        help="omit the per-stage microbench detail")
    args = parser.parse_args(argv)

    after = _time_arm(SRC, args.apps, args.policies,
                      args.trace_len, args.repeats)
    outcome = {
        "benchmark": "end-to-end cold serial batch "
                     f"({after['runs']} runs x {args.trace_len} lookups: "
                     "trace gen + policy build + pipeline)",
        "apps": args.apps,
        "policies": args.policies,
        "after": {k: after[k] for k in
                  ("readings_s", "serial_s", "lookups_per_s")},
    }

    if args.before_src is not None:
        before = _time_arm(args.before_src, args.apps, args.policies,
                           args.trace_len, args.repeats)
        outcome["before"] = {k: before[k] for k in
                             ("readings_s", "serial_s", "lookups_per_s")}
        outcome["speedup"] = round(before["serial_s"] / after["serial_s"], 3)
        outcome["identical_results"] = before["stats"] == after["stats"]

    if not args.skip_micro:
        sys.path.insert(0, str(SRC))
        from repro.harness.microbench import microbench_batch  # noqa: E402

        os.environ["REPRO_CACHE"] = "0"
        detail = microbench_batch(
            tuple(args.apps.split(",")), tuple(args.policies.split(",")),
            trace_len=args.trace_len, repeats=args.repeats,
        )
        outcome["stage_detail"] = detail["aggregate"]

    emit(outcome, args.output)
    return 0 if outcome.get("identical_results", True) else 1


if __name__ == "__main__":
    sys.exit(main())
