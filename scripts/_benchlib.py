"""Shared plumbing for the ``scripts/bench_*.py`` harnesses.

Every benchmark script here follows the same recipe: run timed arms in
fresh interpreters (so arms cannot share imported modules or warmed
in-process caches), keep the best of N cold readings, and emit one
indented JSON report to stdout plus an optional ``--output`` file.
This module holds that recipe once:

* :func:`run_json`    — execute a ``python -c`` snippet in a fresh
  interpreter and parse the single JSON object it prints.
* :func:`best_of`     — repeat a measurement, keep the reading with the
  lowest value of ``key`` and annotate it with every reading (on a
  noisy shared host the minimum is the defensible estimate).
* :func:`emit`        — print the report and mirror it to a file.
* :func:`scratch_cache_dir` — an on-disk trace/artifact cache directory
  for the run: the caller's ``--cache-dir`` when given, else a
  temporary one cleaned up on exit.

The timed snippets themselves stay in the individual scripts — what
each arm measures is the benchmark's identity; only the harness around
it is shared.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Iterator, Sequence

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"


def run_json(code: str, args: Sequence[object] = (), *,
             src: Path = SRC, env: dict | None = None) -> dict:
    """Run ``python -c code args...`` cold and parse its JSON stdout.

    ``src`` becomes the child's ``PYTHONPATH`` (point it at another
    checkout's ``src/`` for a before/after arm); ``env`` entries are
    layered on top of the inherited environment.
    """
    merged = dict(os.environ, PYTHONPATH=str(src))
    if env:
        merged.update(env)
    output = subprocess.run(
        [sys.executable, "-c", code, *(str(a) for a in args)],
        env=merged, check=True, capture_output=True, text=True,
    ).stdout
    return json.loads(output)


def best_of(repeats: int, measure: Callable[[], dict], *,
            key: str, readings_key: str | None = None) -> dict:
    """Best (minimum-``key``) of ``repeats`` measurements.

    Returns a copy of the winning reading with the full list of ``key``
    values appended under ``readings_key`` (default ``readings_<key>``)
    so the report preserves the spread, not just the minimum.
    """
    readings = [measure() for _ in range(max(1, repeats))]
    best = dict(min(readings, key=lambda r: r[key]))
    best[readings_key or f"readings_{key}"] = [r[key] for r in readings]
    return best


def emit(outcome: dict, output: Path | str | None = None) -> str:
    """Print the indented JSON report; mirror it to ``output`` if given."""
    text = json.dumps(outcome, indent=2)
    print(text)
    if output is not None:
        Path(output).write_text(text + "\n")
    return text


@contextmanager
def scratch_cache_dir(cache_dir: Path | None,
                      prefix: str) -> Iterator[Path]:
    """The run's on-disk cache directory: ``cache_dir`` or a temp one."""
    if cache_dir is not None:
        yield cache_dir
        return
    with tempfile.TemporaryDirectory(prefix=prefix) as tmp:
        yield Path(tmp)
