"""Behavioural-simulator semantics (repro.frontend.pipeline).

These tests pin down the paper-defined mechanics: micro-op-level miss
accounting, partial hits with keep-larger merging, asynchronous
insertion through the decode pipe, path-switch counting, inclusive
invalidation, perfect-structure modes, warmup and 3C classification.
"""

from dataclasses import replace

import pytest

from repro.config import zen3_config
from repro.core.stats import MissClass
from repro.core.trace import Trace
from repro.frontend.pipeline import FrontendPipeline, _ShadowClassifier
from repro.policies.lru import LRUPolicy

from .conftest import pw


def make_pipeline(*, delay=0, perfect_icache=True, **kwargs):
    config = zen3_config().with_uop_cache(insertion_delay=delay)
    config = replace(config, perfect_icache=perfect_icache)
    return FrontendPipeline(config, LRUPolicy(), **kwargs)


def run_lookups(pipeline, lookups, warmup=0):
    return pipeline.run(Trace(list(lookups)), warmup=warmup)


class TestHitMissAccounting:
    def test_first_access_misses_then_hits(self):
        pipeline = make_pipeline()
        stats = run_lookups(pipeline, [pw(0x1000, 6), pw(0x1000, 6)])
        assert stats.pw_misses == 1
        assert stats.pw_hits == 1
        assert stats.uops_total == 12
        assert stats.uops_missed == 6

    def test_intermediate_exit_point_full_hit(self):
        # A shorter same-start lookup is fully served by the larger PW.
        pipeline = make_pipeline()
        stats = run_lookups(pipeline, [pw(0x1000, 10), pw(0x1000, 4)])
        assert stats.pw_hits == 1
        assert stats.uops_missed == 10

    def test_partial_hit_serves_prefix_and_upgrades(self):
        pipeline = make_pipeline()
        stats = run_lookups(
            pipeline,
            [pw(0x1000, 4), pw(0x1000, 10), pw(0x1000, 10)],
        )
        assert stats.pw_partial_hits == 1
        # Lookup 2: 4 uops served, 6 missed; lookup 3 hits the merged PW.
        assert stats.uops_missed == 4 + 6
        assert stats.pw_hits == 1
        stored = pipeline.uop_cache.probe(pw(0x1000, 10))
        assert stored.uops == 10

    def test_decoder_only_sees_missed_uops(self):
        pipeline = make_pipeline()
        stats = run_lookups(pipeline, [pw(0x1000, 4), pw(0x1000, 10)])
        assert stats.decoder_uops == 4 + 6  # full miss + partial remainder


class TestAsynchronousInsertion:
    def test_lookup_during_decode_window_misses_again(self):
        pipeline = make_pipeline(delay=5)
        stats = run_lookups(
            pipeline, [pw(0x1000, 8), pw(0x1000, 8), pw(0x1000, 8)]
        )
        # All three lookups land before the insertion completes at t=5.
        assert stats.pw_misses == 3
        assert stats.insertions == 1  # coalesced in-flight insertion

    def test_hit_after_insertion_completes(self):
        pipeline = make_pipeline(delay=2)
        filler = [pw(0x2000 + i * 0x100, 8) for i in range(3)]
        stats = run_lookups(pipeline, [pw(0x1000, 8), *filler, pw(0x1000, 8)])
        assert stats.pw_hits == 1

    def test_longer_window_supersedes_pending_insertion(self):
        pipeline = make_pipeline(delay=3)
        filler = [pw(0x2000 + i * 0x100, 8) for i in range(4)]
        stats = run_lookups(
            pipeline, [pw(0x1000, 4), pw(0x1000, 12), *filler, pw(0x1000, 12)]
        )
        assert stats.pw_hits == 1  # the merged 12-uop window was inserted
        del stats


class TestSwitchCounting:
    def test_alternating_paths_switch(self):
        pipeline = make_pipeline()
        stats = run_lookups(pipeline, [
            pw(0x1000, 8),  # miss -> legacy
            pw(0x1000, 8),  # hit  -> uop path (switch 1)
            pw(0x2000, 8),  # miss -> legacy (switch 2)
            pw(0x1000, 8),  # hit  -> uop (switch 3)
        ])
        assert stats.path_switches == 3

    def test_consecutive_misses_do_not_switch(self):
        pipeline = make_pipeline()
        stats = run_lookups(
            pipeline, [pw(0x1000 + i * 0x100, 8) for i in range(5)]
        )
        assert stats.path_switches == 0


class TestPerfectStructures:
    def test_perfect_uop_cache_never_misses(self):
        config = replace(zen3_config(), perfect_uop_cache=True)
        pipeline = FrontendPipeline(config, LRUPolicy())
        stats = run_lookups(pipeline, [pw(0x1000 + i * 64, 8) for i in range(50)])
        assert stats.uops_missed == 0
        assert stats.decoder_uops == 0
        assert stats.insertions == 0

    def test_perfect_btb_counts_no_misses(self):
        config = replace(zen3_config(), perfect_btb=True)
        pipeline = FrontendPipeline(config, LRUPolicy())
        stats = run_lookups(pipeline, [pw(0x1000 + i * 64, 8) for i in range(50)])
        assert stats.btb_accesses == 50
        assert stats.btb_misses == 0

    def test_perfect_branch_predictor_clears_mispredictions(self):
        config = replace(zen3_config(), perfect_branch_predictor=True)
        pipeline = FrontendPipeline(config, LRUPolicy())
        stats = run_lookups(pipeline, [pw(0x1000, 8, mispredicted=True)] * 3)
        assert stats.mispredictions == 0


class TestInclusiveInvalidation:
    def test_icache_eviction_invalidates_uop_cache(self):
        # Real icache; make it tiny via config to force evictions fast.
        config = zen3_config().with_uop_cache(insertion_delay=0)
        from repro.config import ICacheConfig
        config = replace(
            config, icache=ICacheConfig(size_bytes=2 * 64 * 2, ways=2)
        )
        pipeline = FrontendPipeline(config, LRUPolicy())
        # Touch many distinct lines through the legacy path (every lookup
        # misses the uop cache first time), forcing icache evictions.
        lookups = [pw(0x1000 + i * 0x1000, 8, bytes_len=16) for i in range(12)]
        stats = run_lookups(pipeline, lookups)
        assert stats.icache_misses > 0
        assert stats.inclusive_invalidations > 0

    def test_non_inclusive_mode_never_invalidates(self):
        config = zen3_config().with_uop_cache(
            insertion_delay=0, inclusive_with_icache=False
        )
        from repro.config import ICacheConfig
        config = replace(
            config, icache=ICacheConfig(size_bytes=2 * 64 * 2, ways=2)
        )
        pipeline = FrontendPipeline(config, LRUPolicy())
        lookups = [pw(0x1000 + i * 0x1000, 8, bytes_len=16) for i in range(12)]
        stats = run_lookups(pipeline, lookups)
        assert stats.inclusive_invalidations == 0


class TestWarmup:
    def test_warmup_discards_counters_but_keeps_state(self):
        pipeline = make_pipeline()
        lookups = [pw(0x1000, 8), pw(0x1000, 8)]
        stats = run_lookups(pipeline, lookups, warmup=1)
        # The miss happened during warmup; the measured window only hits.
        assert stats.pw_misses == 0
        assert stats.pw_hits == 1
        assert stats.lookups == 1


class TestShadowClassifier:
    def test_cold_then_conflict_then_capacity(self):
        classifier = _ShadowClassifier(capacity_entries=2, uops_per_entry=8)
        first = pw(0x1000, 8)
        assert classifier.classify(first) is MissClass.COLD
        classifier.touch(first)
        # Present in the FA shadow: a miss would be a conflict.
        assert classifier.classify(first) is MissClass.CONFLICT
        # Push it out of the 2-entry shadow.
        classifier.touch(pw(0x2000, 8))
        classifier.touch(pw(0x3000, 8))
        assert classifier.classify(first) is MissClass.CAPACITY

    def test_pipeline_classification_totals_match_misses(self):
        pipeline = make_pipeline(classify_misses=True)
        lookups = [pw(0x1000 + i * 64, 8) for i in range(20)] * 2
        stats = run_lookups(pipeline, lookups)
        assert stats.miss_breakdown.total == stats.uops_missed


class TestHitRateRecording:
    def test_per_pw_hit_stats(self):
        pipeline = make_pipeline(record_hit_rates=True)
        run_lookups(pipeline, [pw(0x1000, 8)] * 3)
        hits, total = pipeline.pw_hit_stats[0x1000]
        assert total == 24
        assert hits == 16  # first lookup missed
