"""Shared test fixtures and trace builders."""

from __future__ import annotations

import os

import pytest

# Keep experiment-level tests fast and hermetic.
os.environ.setdefault("REPRO_CACHE", "0")

from repro.config import SimulationConfig, UopCacheConfig, zen3_config
from repro.core.pw import PWLookup
from repro.core.trace import Trace, TraceMetadata


def pw(start: int, uops: int = 8, *, insts: int | None = None,
       bytes_len: int | None = None, branch: bool = True,
       contains_branch: bool | None = None,
       mispredicted: bool = False) -> PWLookup:
    """Compact PWLookup builder for hand-written traces."""
    return PWLookup(
        start=start,
        uops=uops,
        insts=insts if insts is not None else max(1, uops - 1),
        bytes_len=bytes_len if bytes_len is not None else max(1, uops * 4),
        terminated_by_branch=branch,
        contains_branch=branch if contains_branch is None else contains_branch,
        mispredicted=mispredicted,
    )


def cyclic_trace(n_pws: int, repeats: int, *, uops: int = 8,
                 stride: int = 64, base: int = 0x400000) -> Trace:
    """N distinct PWs looked up round-robin ``repeats`` times."""
    lookups = [
        pw(base + i * stride, uops)
        for _ in range(repeats)
        for i in range(n_pws)
    ]
    return Trace(lookups, TraceMetadata(app="cyclic"))


@pytest.fixture
def tiny_uop_config() -> UopCacheConfig:
    """A 2-set, 4-way micro-op cache for hand-checkable scenarios."""
    return UopCacheConfig(entries=8, ways=4, uops_per_entry=8,
                          insertion_delay=0)


@pytest.fixture
def zen3() -> SimulationConfig:
    return zen3_config()


@pytest.fixture
def small_app_trace() -> Trace:
    """A small generated application trace (deterministic)."""
    from repro.workloads.cfg import build_cfg
    from repro.workloads.generator import generate_trace

    cfg = build_cfg(
        seed=7, functions=40, blocks_per_function=(3, 8),
        insts_per_block=(3, 8), mean_iterations=2.0,
    )
    return generate_trace(cfg, 4000, seed=99, phase_length=800, phase_count=3)
