"""Unit tests for Jenks natural breaks (repro.profiling.jenks)."""

import pytest

from repro.errors import ProfilingError
from repro.profiling.jenks import jenks_breaks, jenks_group


class TestJenksBreaks:
    def test_two_obvious_clusters(self):
        values = [0.0, 0.01, 0.02, 0.9, 0.92, 0.95]
        breaks = jenks_breaks(values, 2)
        assert len(breaks) == 2
        assert breaks[0] < 0.5 < breaks[1]

    def test_three_clusters(self):
        values = [1, 1, 2, 10, 11, 12, 50, 51, 52]
        breaks = jenks_breaks(values, 3)
        assert jenks_group(2, breaks) == 0
        assert jenks_group(11, breaks) == 1
        assert jenks_group(52, breaks) == 2

    def test_breaks_are_sorted(self):
        values = [0.3, 0.1, 0.9, 0.5, 0.7] * 4
        breaks = jenks_breaks(values, 4)
        assert breaks == sorted(breaks)

    def test_last_break_covers_maximum(self):
        values = [0.1, 0.4, 0.8]
        breaks = jenks_breaks(values, 2)
        assert breaks[-1] >= max(values)

    def test_fewer_distinct_values_than_classes(self):
        breaks = jenks_breaks([0.5, 0.5, 0.5], 8)
        assert len(breaks) == 8
        assert jenks_group(0.5, breaks) == 0

    def test_single_value(self):
        breaks = jenks_breaks([0.7], 3)
        assert jenks_group(0.7, breaks) == 0

    def test_quantized_large_input_matches_clusters(self):
        import random
        rng = random.Random(3)
        values = [rng.gauss(0.1, 0.02) for _ in range(2000)]
        values += [rng.gauss(0.9, 0.02) for _ in range(2000)]
        breaks = jenks_breaks(values, 2, max_points=128)
        # The break sits at the top of the low cluster, below the gap.
        assert breaks[0] < 0.5 < breaks[1]
        assert jenks_group(0.1, breaks) == 0
        assert jenks_group(0.9, breaks) == 1

    def test_rejects_empty(self):
        with pytest.raises(ProfilingError):
            jenks_breaks([], 3)

    def test_rejects_zero_classes(self):
        with pytest.raises(ProfilingError):
            jenks_breaks([1.0], 0)


class TestJenksGroup:
    def test_group_boundaries_inclusive(self):
        breaks = [0.2, 0.5, 1.0]
        assert jenks_group(0.2, breaks) == 0
        assert jenks_group(0.21, breaks) == 1
        assert jenks_group(1.0, breaks) == 2

    def test_above_all_breaks_clamps_to_last(self):
        assert jenks_group(5.0, [0.2, 0.5, 1.0]) == 2

    def test_minimizes_within_class_variance(self):
        # Optimality check against brute force on a small input.
        import itertools
        values = sorted([1.0, 2.0, 8.0, 9.0, 20.0, 21.0])

        def sse(groups):
            total = 0.0
            for group in groups:
                if not group:
                    return float("inf")
                mean = sum(group) / len(group)
                total += sum((v - mean) ** 2 for v in group)
            return total

        best = min(
            (
                sse([values[:i], values[i:j], values[j:]])
                for i, j in itertools.combinations(range(1, len(values)), 2)
            )
        )
        breaks = jenks_breaks(values, 3)
        groups = [[], [], []]
        for value in values:
            groups[jenks_group(value, breaks)].append(value)
        assert sse(groups) == pytest.approx(best)
