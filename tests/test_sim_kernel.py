"""Bit-identity and fallback guards for the vectorized simulation kernel.

Three layers:

* **Property sweep** — randomized cache geometries (sets x ways), all
  kernel-eligible policies, trace lengths 1k / 20k / 100k: the
  :mod:`repro.frontend.simd` kernel must reproduce
  :meth:`FrontendPipeline.run_reference` stats *and* end-of-run policy
  state field-by-field.
* **Chaos knob** — ``REPRO_SIM_FASTPATH=0`` must restore the reference
  path end-to-end under :func:`~repro.harness.parallel.run_batch`
  (the kernel entry point is poisoned to prove it is never reached),
  and a missing numpy must degrade the same way.
* **Memory release** — :func:`~repro.harness.runner.clear_memory_cache`
  must drop every memoized per-trace entry (columnar future index,
  prepared-trace derivations), verified with
  :func:`repro.core.trace.memo_census`.
"""

from __future__ import annotations

import dataclasses
import gc
import random

import pytest

from repro import stagetimer
from repro.config import preset
from repro.core.pw import PWLookup
from repro.core.trace import Trace, memo_census
from repro.frontend import simd
from repro.frontend.pipeline import FrontendPipeline
from repro.harness.parallel import run_batch
from repro.harness.runner import RunRequest, clear_memory_cache
from repro.policies import make_policy
from repro.workloads.registry import clear_trace_cache, get_trace

POLICIES = ("lru", "srrip", "random", "ghrp")

#: Randomized geometries (n_sets, ways) — drawn once with a pinned seed
#: so the sweep is reproducible while still covering odd corners
#: (direct-mapped, single-set, wide) no hand-picked list would.
_GEOM_RNG = random.Random(0x5EED)
GEOMETRIES = sorted(
    {(2 ** _GEOM_RNG.randint(0, 5), _GEOM_RNG.choice((1, 2, 4, 8)))
     for _ in range(10)}
)[:6]

#: Longer traces sweep fewer geometries to keep the suite's runtime
#: bounded; the geometry space itself is covered at 1k.
LENGTH_CASES = [
    (1_000, GEOMETRIES),
    (20_000, GEOMETRIES[:2]),
    (100_000, GEOMETRIES[:1]),
]
SWEEP = [
    (n, sets, ways, policy)
    for n, geoms in LENGTH_CASES
    for sets, ways in geoms
    for policy in POLICIES
]


def _cold():
    clear_memory_cache()
    clear_trace_cache()


def _random_trace(seed: int, n: int) -> Trace:
    """Re-referenced windows with same-start size variants and overlap,
    the mix that exercises partial hits, keep-larger upgrades and
    inclusive invalidation (same recipe as test_golden_stats)."""
    rng = random.Random(seed)
    windows = []
    addr = 0x400000
    for _ in range(60):
        insts = rng.randint(1, 12)
        uops = insts + rng.randint(0, 8)
        bytes_len = max(1, insts * rng.randint(2, 6))
        windows.append((addr, uops, insts, bytes_len))
        addr += rng.choice((bytes_len, bytes_len, bytes_len // 2 + 1, 17))
    lookups = []
    for _ in range(n):
        start, uops, insts, bytes_len = rng.choice(windows)
        if rng.random() < 0.25:
            scale = rng.choice((0.5, 0.75, 1.5))
            uops = max(1, int(uops * scale))
            insts = max(1, min(insts, uops))
        lookups.append(PWLookup(
            start=start, uops=uops, insts=insts, bytes_len=bytes_len,
            terminated_by_branch=rng.random() < 0.7,
            contains_branch=rng.random() < 0.85,
            mispredicted=rng.random() < 0.05,
        ))
    return Trace(lookups)


def _policy_state(policy) -> dict:
    """End-of-run policy internals, repr'd for exact comparison."""
    state = {
        attr: repr(getattr(policy, attr, None))
        for attr in ("_last_use", "_rrpv_map", "_sig", "_reused",
                     "_bypassed", "_tables", "_history", "_clock")
    }
    rng = getattr(policy, "_rng", None)
    if rng is not None:
        state["_rng"] = repr(rng.getstate())
    return state


@pytest.mark.parametrize(
    "n,sets,ways,policy",
    SWEEP,
    ids=[f"{n}-{s}x{w}-{p}" for n, s, w, p in SWEEP],
)
def test_kernel_matches_reference(n, sets, ways, policy):
    """Kernel stats and policy end-state are bit-identical to the
    reference loop across geometries, policies and trace lengths."""
    config = preset("zen3").with_uop_cache(entries=sets * ways, ways=ways)
    trace = _random_trace(seed=n * 31 + sets * 7 + ways, n=n)
    warmup = n // 5 if (sets + ways) % 2 else 0

    kernel_policy = make_policy(policy)
    kernel_pipeline = FrontendPipeline(config, kernel_policy)
    with stagetimer.capture() as stages:
        kernel_stats = kernel_pipeline.run(trace, warmup=warmup)
    if simd._np is not None:
        assert stages.get("sim_kernel_calls"), (
            "vectorized kernel did not run for a supported configuration"
        )

    reference_policy = make_policy(policy)
    reference_pipeline = FrontendPipeline(config, reference_policy)
    reference_stats = reference_pipeline.run_reference(trace, warmup=warmup)

    assert dataclasses.asdict(kernel_stats) == \
        dataclasses.asdict(reference_stats)
    assert _policy_state(kernel_policy) == _policy_state(reference_policy)


def test_fastpath_off_restores_reference_under_run_batch(monkeypatch):
    """REPRO_SIM_FASTPATH=0 routes run_batch through the reference path
    end-to-end: identical results, kernel entry never reached."""
    request = RunRequest(app="kafka", policy="srrip",
                         trace_len=1500, warmup=500)
    _cold()
    monkeypatch.delenv("REPRO_SIM_FASTPATH", raising=False)
    (stats_on,), _ = run_batch([request], jobs=1)

    _cold()
    monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")

    def _poisoned(*args, **kwargs):  # pragma: no cover - must not run
        raise AssertionError("kernel ran despite REPRO_SIM_FASTPATH=0")

    monkeypatch.setattr(simd, "run_kernel", _poisoned)
    (stats_off,), _ = run_batch([request], jobs=1)
    assert dataclasses.asdict(stats_on) == dataclasses.asdict(stats_off)
    _cold()


def test_missing_numpy_falls_back_to_reference_loop(monkeypatch):
    """Without numpy the default entry point silently degrades to the
    prepared-trace loop with unchanged results."""
    monkeypatch.setattr(simd, "_np", None)
    assert not simd.sim_fastpath_enabled()
    config = preset("zen3").with_uop_cache(entries=32, ways=4)
    trace = _random_trace(seed=9, n=800)
    fallback = FrontendPipeline(config, make_policy("lru")).run(trace)
    reference = FrontendPipeline(
        config, make_policy("lru")).run_reference(trace)
    assert dataclasses.asdict(fallback) == dataclasses.asdict(reference)


def test_clear_memory_cache_releases_trace_memos():
    """Per-trace memo entries (prepared derivations, future indexes) are
    released with the registry LRU — no memory-resident leftovers."""
    _cold()
    gc.collect()
    trace = get_trace("kafka", n_lookups=1200)
    config = preset("zen3").with_uop_cache(entries=64, ways=4)
    FrontendPipeline(config, make_policy("lru")).run(trace)
    census = memo_census()
    assert census["traces"] >= 1
    assert census["entries"] >= 1
    del trace
    _cold()
    gc.collect()
    census = memo_census()
    assert (census["traces"], census["entries"]) == (0, 0)
