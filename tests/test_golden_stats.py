"""Bit-identity guards for the optimized pipeline hot loop.

Two layers of protection:

* **Golden fixtures** — ``tests/fixtures/golden_stats.json`` holds full
  :class:`~repro.core.stats.SimulationStats` dumps for 3 apps x 4
  policies, generated *before* the hot-path optimizations landed.  The
  optimized stack must reproduce every field exactly.
* **Property test** — randomized small traces (re-referenced windows,
  same-start size variants for partial hits) simulated under stressed
  configurations (insertion delay, tiny inclusive icache,
  non-inclusive mode, warmup) through both :meth:`FrontendPipeline.run`
  and the unoptimized :meth:`FrontendPipeline.run_reference`, compared
  field-by-field.
"""

import dataclasses
import json
import random
from dataclasses import replace
from pathlib import Path

import pytest

from repro.config import ICacheConfig, preset
from repro.core.pw import PWLookup
from repro.core.trace import Trace
from repro.frontend.pipeline import FrontendPipeline
from repro.harness.runner import RunRequest, execute
from repro.offline.flack import FLACKPolicy
from repro.policies import make_policy

GOLDEN = json.loads(
    (Path(__file__).parent / "fixtures" / "golden_stats.json").read_text()
)


@pytest.mark.parametrize("key", sorted(GOLDEN["runs"]))
def test_golden_stats_exact(key):
    """The optimized pipeline reproduces pre-optimization stats exactly."""
    app, policy = key.split("/")
    request = RunRequest(app=app, policy=policy, trace_len=GOLDEN["trace_len"])
    stats = execute(request)
    assert dataclasses.asdict(stats) == GOLDEN["runs"][key]


# --- randomized fast-loop vs reference-loop equivalence ---------------------


def _random_trace(seed: int, n: int = 500) -> Trace:
    """A small trace exercising re-reference, partial hits and overlap."""
    rng = random.Random(seed)
    windows = []
    addr = 0x400000
    for _ in range(40):
        insts = rng.randint(1, 12)
        uops = insts + rng.randint(0, 8)
        bytes_len = max(1, insts * rng.randint(2, 6))
        windows.append((addr, uops, insts, bytes_len))
        # Overlapping starts: some windows begin inside the previous
        # one, so inclusive invalidation hits multiple PWs per line.
        addr += rng.choice((bytes_len, bytes_len, bytes_len // 2 + 1, 17))
    lookups = []
    for _ in range(n):
        start, uops, insts, bytes_len = rng.choice(windows)
        if rng.random() < 0.25:
            # Same-start shorter/longer variant: partial hits and the
            # keep-larger upgrade rule.
            scale = rng.choice((0.5, 0.75, 1.5))
            uops = max(1, int(uops * scale))
            insts = max(1, min(insts, uops))
        lookups.append(PWLookup(
            start=start, uops=uops, insts=insts, bytes_len=bytes_len,
            terminated_by_branch=rng.random() < 0.7,
            contains_branch=rng.random() < 0.85,
            mispredicted=rng.random() < 0.05,
        ))
    return Trace(lookups)


def _stress_configs():
    base = preset("zen3").with_uop_cache(entries=64, ways=4)
    tiny_icache = replace(
        base, icache=ICacheConfig(size_bytes=2048, ways=2, line_bytes=64)
    )
    return [
        ("small-cache", base, 0),
        ("insertion-delay", base.with_uop_cache(insertion_delay=3), 0),
        ("tiny-inclusive-icache", tiny_icache, 0),
        ("non-inclusive", base.with_uop_cache(inclusive_with_icache=False), 0),
        ("warmup", base, 150),
    ]


def _policies_for(trace, config):
    return [
        ("lru", lambda: make_policy("lru")),
        ("srrip", lambda: make_policy("srrip")),
        ("ghrp", lambda: make_policy("ghrp")),
        ("flack", lambda: FLACKPolicy(trace, config.uop_cache)),
    ]


@pytest.mark.parametrize(
    "label,config,warmup", _stress_configs(), ids=lambda v: v if isinstance(v, str) else ""
)
def test_fast_loop_matches_reference_on_random_traces(label, config, warmup):
    for seed in (1, 2):
        trace = _random_trace(seed)
        for name, factory in _policies_for(trace, config):
            fast = FrontendPipeline(config, factory()).run(trace, warmup=warmup)
            reference = FrontendPipeline(config, factory()).run_reference(
                trace, warmup=warmup
            )
            assert dataclasses.asdict(fast) == dataclasses.asdict(reference), (
                f"fast loop diverged from reference: config={label} "
                f"policy={name} seed={seed}"
            )
