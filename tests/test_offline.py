"""Unit and behaviour tests for the offline policies (repro.offline)."""

from dataclasses import replace

import pytest

from repro.config import UopCacheConfig, zen3_config
from repro.core.trace import Trace
from repro.frontend.pipeline import FrontendPipeline
from repro.offline.base import NEVER, FutureIndex, OfflineReplayPolicy
from repro.offline.belady import BeladyPolicy
from repro.offline.flack import ABLATION_STEPS, FLACKPolicy, flack_ablation_suite
from repro.offline.foo import FOOPolicy
from repro.offline.intervals import (
    IdentityMode,
    ValueMetric,
    extract_intervals,
    interval_value,
)
from repro.offline.plan import greedy_admission
from repro.policies.lru import LRUPolicy

from .conftest import cyclic_trace, pw


def run_policy(trace, policy, *, warmup=0, delay=None):
    config = replace(zen3_config(), perfect_icache=True)
    if delay is not None:
        config = config.with_uop_cache(insertion_delay=delay)
    pipeline = FrontendPipeline(config, policy)
    return pipeline.run(trace, warmup=warmup)


class TestFutureIndex:
    def test_next_use_exact(self):
        trace = Trace([pw(0x1, 4), pw(0x2, 4), pw(0x1, 4), pw(0x1, 8)])
        index = FutureIndex(trace, IdentityMode.EXACT)
        assert index.next_use((0x1, 4), after=0) == 2
        assert index.next_use((0x1, 4), after=2) == NEVER  # 4-uop differs
        assert index.next_use((0x1, 8), after=0) == 3

    def test_next_use_start_identity_chains_lengths(self):
        trace = Trace([pw(0x1, 4), pw(0x1, 8)])
        index = FutureIndex(trace, IdentityMode.START)
        assert index.next_use(0x1, after=0) == 1

    def test_unknown_key_is_never(self):
        trace = Trace([pw(0x1, 4)])
        index = FutureIndex(trace, IdentityMode.START)
        assert index.next_use(0xFF, after=0) == NEVER


class TestIntervalExtraction:
    def test_interval_values_by_metric(self):
        stored, nxt = pw(0x1, uops=12), pw(0x1, uops=6)
        assert interval_value(ValueMetric.OHR, stored, nxt, 8) == 1.0
        assert interval_value(ValueMetric.ENTRIES, stored, nxt, 8) == 1.0
        assert interval_value(ValueMetric.UOPS, stored, nxt, 8) == 6.0

    def test_exact_identity_separates_lengths(self):
        trace = Trace([pw(0x1, 4), pw(0x1, 8), pw(0x1, 4)])
        config = UopCacheConfig(entries=8, ways=4)
        per_set, _ = extract_intervals(
            trace, config, identity=IdentityMode.EXACT,
            metric=ValueMetric.OHR, set_index_fn=lambda s, n: 0,
        )
        assert len(per_set[0]) == 1  # only the 4-uop pair chains
        assert per_set[0][0].t_start == 0 and per_set[0][0].t_end == 2

    def test_start_identity_chains_all(self):
        trace = Trace([pw(0x1, 4), pw(0x1, 8), pw(0x1, 4)])
        config = UopCacheConfig(entries=8, ways=4)
        per_set, _ = extract_intervals(
            trace, config, identity=IdentityMode.START,
            metric=ValueMetric.UOPS, set_index_fn=lambda s, n: 0,
        )
        assert len(per_set[0]) == 2
        assert per_set[0][0].value == 4.0  # min(4, 8): partial credit
        assert per_set[0][1].value == 4.0  # min(8, 4): exit point

    def test_min_gap_filters_short_intervals(self):
        trace = Trace([pw(0x1, 4), pw(0x1, 4), *[pw(0x2 + i, 4) for i in range(8)],
                       pw(0x1, 4)])
        config = UopCacheConfig(entries=8, ways=4)
        per_set, _ = extract_intervals(
            trace, config, identity=IdentityMode.EXACT,
            metric=ValueMetric.OHR, set_index_fn=lambda s, n: 0, min_gap=5,
        )
        spans = [(iv.t_start, iv.t_end) for iv in per_set[0]]
        assert (0, 1) not in spans      # too short to survive decode
        assert (1, 10) in spans


class TestGreedyAdmission:
    def test_respects_capacity(self):
        trace = cyclic_trace(8, repeats=6)
        config = UopCacheConfig(entries=4, ways=4)
        per_set, slots = extract_intervals(
            trace, config, identity=IdentityMode.EXACT,
            metric=ValueMetric.OHR, set_index_fn=lambda s, n: 0,
        )
        plan = greedy_admission(per_set, slots, ways=4, trace_len=len(trace))
        # With 8 cyclic windows and 4 ways, at most half can be kept.
        assert 0 < plan.admitted_count <= plan.considered_count
        assert plan.admission_ratio <= 0.55

    def test_zero_duration_always_admitted(self):
        trace = Trace([pw(0x1, 4), pw(0x1, 4)])
        config = UopCacheConfig(entries=4, ways=4)
        per_set, slots = extract_intervals(
            trace, config, identity=IdentityMode.EXACT,
            metric=ValueMetric.OHR, set_index_fn=lambda s, n: 0,
        )
        plan = greedy_admission(per_set, slots, 4, len(trace))
        assert plan.keep_from(0)


class TestBelady:
    def test_optimal_on_pure_cyclic(self):
        # Theory: footprint 2x capacity -> optimal hit rate is 50%.
        trace = cyclic_trace(1024, repeats=12)
        lru = run_policy(trace, LRUPolicy(), warmup=4096)
        belady = run_policy(trace, BeladyPolicy(trace), warmup=4096)
        assert lru.uop_miss_rate > 0.99
        assert belady.uop_miss_rate == pytest.approx(0.5, abs=0.02)

    def test_bypasses_dead_windows(self):
        trace = Trace([pw(0x10 + i, 8) for i in range(10)])
        stats = run_policy(trace, BeladyPolicy(trace), delay=0)
        assert stats.insertions == 0  # nothing recurs: all bypassed

    def test_never_worse_than_lru_on_small_mixes(self, small_app_trace):
        lru = run_policy(small_app_trace, LRUPolicy(), warmup=1000)
        belady = run_policy(
            small_app_trace, BeladyPolicy(small_app_trace), warmup=1000
        )
        assert belady.uops_missed <= lru.uops_missed * 1.02


class TestFOOAndFLACK:
    def test_flack_matches_optimum_on_pure_cyclic(self):
        trace = cyclic_trace(1024, repeats=12)
        config = zen3_config().uop_cache
        flack = run_policy(trace, FLACKPolicy(trace, config), warmup=4096)
        assert flack.uop_miss_rate == pytest.approx(0.5, abs=0.02)

    def test_objective_validation(self):
        trace = Trace([pw(0x1)])
        with pytest.raises(ValueError):
            FOOPolicy(trace, zen3_config().uop_cache, objective="uops")

    def test_ablation_suite_has_four_rungs(self):
        trace = cyclic_trace(16, repeats=4)
        suite = flack_ablation_suite(trace, zen3_config().uop_cache)
        assert list(suite) == [label for label, _ in ABLATION_STEPS]
        assert suite["foo"].plan is not None        # plan mode
        assert suite["A+VC+SB"].plan is None        # greedy mode

    def test_flack_beats_lru_and_foo_on_app_trace(self, small_app_trace):
        config = zen3_config().uop_cache
        lru = run_policy(small_app_trace, LRUPolicy(), warmup=1000)
        flack = run_policy(
            small_app_trace, FLACKPolicy(small_app_trace, config), warmup=1000
        )
        assert flack.uops_missed < lru.uops_missed

    def test_variable_cost_prefers_dense_windows(self):
        # Three windows cycle through a 2-way set: the policy must give
        # up one of them each round, and with variable costs it should
        # sacrifice a 1-uop window, never the 8-uop one (Figure 3).
        light_a, light_b, heavy = pw(0x20, 1), pw(0x60, 1), pw(0xA0, 8)
        trace = Trace([light_a, light_b, heavy] * 8)
        config = zen3_config().with_uop_cache(
            entries=2, ways=2, insertion_delay=0
        )
        policy = FLACKPolicy(trace, config.uop_cache,
                             set_index_fn=lambda s, n: 0)
        pipeline = FrontendPipeline(
            replace(config, perfect_icache=True), policy,
            set_index=lambda s, n: 0,
        )
        stats = pipeline.run(trace)
        # The heavy window hits every round after the first.
        assert stats.uops_hit >= 8 * 6


class TestOfflineReplayFlags:
    def test_async_aware_bypasses_dead_late_insertion(self):
        config = UopCacheConfig(entries=8, ways=4, insertion_delay=4)
        # 0x1 is looked up twice within the decode window, never again:
        # with asynchrony awareness the insertion is pointless.
        lookups = [pw(0x1, 8), pw(0x1, 8), *[pw(0x100 + i * 64, 8) for i in range(6)]]
        trace = Trace(lookups)
        aware = OfflineReplayPolicy(
            trace, config, plan_mode=False, async_aware=True,
            variable_cost=True, selective_bypass=True,
        )
        stats = run_policy(trace, aware, delay=4)
        assert not any(
            s.pws for s in aware.cache.sets
            if any(p.start == 0x1 for p in s.pws.values())
        )
        del stats
