"""Chaos suite: fault injection against the resilient batch engine.

Covers :mod:`repro.faultinject`, :mod:`repro.harness.resilience` and the
retry/timeout/partial-result machinery in :mod:`repro.harness.parallel`:
injected worker crashes, hangs, transient exceptions, shared-memory
attach failures and corrupted cache artifacts must all be survived with
bit-identical results and honest fault accounting.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time

import pytest

from repro import faultinject
from repro.errors import FaultInjectionError
from repro.faultinject import FaultPlan
from repro.harness import resilience
from repro.harness.parallel import (
    BatchExecutionError,
    resolve_on_error,
    run_batch,
    run_many,
)
from repro.harness.resilience import FaultReport, RetryPolicy
from repro.harness.runner import RunRequest, clear_memory_cache
from repro.workloads.registry import clear_trace_cache

SMALL = dict(trace_len=1500, warmup=500)

#: Retry policy for the chaos tests: near-zero backoff keeps them fast.
FAST_RETRY = RetryPolicy(max_attempts=3, base_delay_s=0.001)


def _cold():
    clear_memory_cache()
    clear_trace_cache()


def _mixed_batch() -> list[RunRequest]:
    return [
        RunRequest(app="kafka", policy="lru", **SMALL),
        RunRequest(app="kafka", policy="srrip", **SMALL),
        RunRequest(app="clang", policy="lru", **SMALL),
        RunRequest(app="clang", policy="srrip", **SMALL),
    ]


@pytest.fixture(autouse=True)
def _fault_hygiene(monkeypatch):
    """No leftover fault spec or counters may leak between tests."""
    monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
    monkeypatch.delenv("REPRO_FAULT_STATE", raising=False)
    monkeypatch.delenv("REPRO_ON_ERROR", raising=False)
    monkeypatch.delenv("REPRO_TIMEOUT_S", raising=False)
    faultinject.reset_plan_cache()
    resilience.reset_counters()
    yield
    # Full reset: drops the plan cache *and* removes the once-per-fault
    # claim files, so a repeated spec re-injects in the next test.
    faultinject.reset()
    resilience.reset_counters()


def _arm(monkeypatch, tmp_path, spec: str) -> None:
    monkeypatch.setenv("REPRO_FAULT_SPEC", spec)
    monkeypatch.setenv("REPRO_FAULT_STATE", str(tmp_path / "fault-state"))
    faultinject.reset_plan_cache()


def _serial_reference(requests) -> list[dict]:
    _cold()
    return [dataclasses.asdict(s) for s in run_many(requests, jobs=1)]


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy(seed=42)
        assert policy.delay_for(2, "abc") == policy.delay_for(2, "abc")

    def test_delay_varies_by_attempt_and_key(self):
        policy = RetryPolicy(seed=42)
        assert policy.delay_for(1, "abc") != policy.delay_for(2, "abc")
        assert policy.delay_for(1, "abc") != policy.delay_for(1, "xyz")

    def test_delay_bounds(self):
        policy = RetryPolicy(base_delay_s=0.1, backoff=2.0, jitter=0.5)
        for attempt in (1, 2, 3):
            base = 0.1 * 2 ** (attempt - 1)
            delay = policy.delay_for(attempt, "k")
            assert base <= delay <= base * 1.5
        assert policy.delay_for(0) == 0.0

    def test_classification(self):
        from repro.errors import ArtifactError, UnknownPolicyError

        policy = RetryPolicy()
        assert policy.is_retryable(TimeoutError("hung"))
        assert policy.is_retryable(OSError("shm gone"))
        assert policy.is_retryable(ArtifactError("torn"))
        assert policy.is_retryable(FaultInjectionError("injected"))
        assert not policy.is_retryable(UnknownPolicyError("nope"))
        assert not policy.is_retryable(KeyError("programming error"))

    def test_classification_by_name(self):
        policy = RetryPolicy()
        assert policy.is_retryable_name("BrokenProcessPool")
        assert policy.is_retryable_name("TimeoutError")
        assert not policy.is_retryable_name("UnknownPolicyError")
        # Unknown exception names are deterministic until proven otherwise.
        assert not policy.is_retryable_name("SomeBrandNewError")


class TestFaultReport:
    def test_merge_counters_routes_corruption(self):
        report = FaultReport()
        report.merge_counters(
            {"corrupt_artifact": 2, "shm_attach": 1, "noise": 0}
        )
        assert report.corrupt_artifacts == 2
        assert report.degraded_fallbacks == 1
        assert report.fallbacks == {"shm_attach": 1}

    def test_total_faults(self):
        report = FaultReport(crashed=1, timed_out=2, skipped=3,
                             corrupt_artifacts=4, degraded_fallbacks=5)
        assert report.total_faults == 15

    def test_counters_since(self):
        resilience.reset_counters()
        before = resilience.global_counters()
        resilience.note_fallback("disk_write")
        resilience.note_fallback("disk_write")
        assert resilience.counters_since(before) == {"disk_write": 2}


class TestFaultSpec:
    def test_parse_rejects_malformed(self, tmp_path):
        for bad in ("task:0", "task:x:crash", "disk:0:crash",
                    "task:0:corrupt", "artifact:nope:corrupt",
                    "task:0:hang=soon"):
            with pytest.raises(FaultInjectionError):
                FaultPlan(bad, tmp_path)

    def test_unarmed_hooks_are_noops(self, tmp_path):
        assert faultinject.active_plan() is None
        faultinject.on_worker_task(0)  # must not raise
        target = tmp_path / "artifact.json"
        target.write_text("{}")
        assert not faultinject.maybe_corrupt_artifact(target, "stats")
        assert target.read_text() == "{}"
        faultinject.maybe_fail_shm_attach()  # must not raise

    def test_each_fault_fires_once_across_plans(self, tmp_path):
        state = tmp_path / "state"
        first = FaultPlan("task:0:raise", state)
        with pytest.raises(FaultInjectionError):
            first.fire_task_faults(0)
        # Same state dir (a retry, possibly in another process): spent.
        second = FaultPlan("task:0:raise", state)
        second.fire_task_faults(0)  # no raise

    def test_corrupt_artifact_garbles_file(self, tmp_path, monkeypatch):
        _arm(monkeypatch, tmp_path, "artifact:stats:corrupt")
        target = tmp_path / "entry.json"
        target.write_text('{"stats": {}}')
        assert faultinject.maybe_corrupt_artifact(target, "stats")
        assert b"repro-fault-injected" in target.read_bytes()
        # Once only.
        target.write_text('{"stats": {}}')
        assert not faultinject.maybe_corrupt_artifact(target, "stats")


class TestResolveOnError:
    def test_default_and_env(self, monkeypatch):
        assert resolve_on_error() == "raise"
        monkeypatch.setenv("REPRO_ON_ERROR", "skip")
        assert resolve_on_error() == "skip"
        assert resolve_on_error("retry") == "retry"

    def test_rejects_unknown_mode(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            resolve_on_error("explode")


class TestWorkerCrashRecovery:
    def test_crash_is_retried_to_identical_results(
        self, tmp_path, monkeypatch
    ):
        requests = _mixed_batch()
        reference = _serial_reference(requests)
        _arm(monkeypatch, tmp_path, "task:0:crash")
        _cold()
        results, report = run_batch(
            requests, jobs=2, on_error="retry", retry_policy=FAST_RETRY
        )
        assert [dataclasses.asdict(s) for s in results] == reference
        assert report.faults.crashed == 1
        assert report.faults.retried >= 1
        assert report.executed == len(requests)

    def test_injected_exception_is_retried(self, tmp_path, monkeypatch):
        requests = _mixed_batch()
        reference = _serial_reference(requests)
        _arm(monkeypatch, tmp_path, "task:1:raise")
        _cold()
        results, report = run_batch(
            requests, jobs=2, on_error="retry", retry_policy=FAST_RETRY
        )
        assert [dataclasses.asdict(s) for s in results] == reference
        assert report.faults.crashed == 0
        assert report.faults.retried >= 1

    def test_crash_raises_under_fail_fast(self, tmp_path, monkeypatch):
        _arm(monkeypatch, tmp_path, "task:0:crash")
        _cold()
        with pytest.raises(BatchExecutionError) as excinfo:
            run_batch(_mixed_batch(), jobs=2, on_error="raise")
        assert "BrokenProcessPool" in str(excinfo.value)


class TestHangTimeout:
    def test_hung_worker_is_timed_out_and_retried(
        self, tmp_path, monkeypatch
    ):
        requests = [
            RunRequest(app="kafka", policy="lru", **SMALL),
            RunRequest(app="kafka", policy="srrip", **SMALL),
        ]
        reference = _serial_reference(requests)
        _arm(monkeypatch, tmp_path, "task:0:hang=120")
        _cold()
        results, report = run_batch(
            requests, jobs=2, on_error="retry",
            retry_policy=FAST_RETRY, timeout_s=10.0,
        )
        assert [dataclasses.asdict(s) for s in results] == reference
        assert report.faults.timed_out >= 1
        assert report.faults.retried >= 1

    def test_abandoned_hung_worker_is_killed(self, tmp_path, monkeypatch):
        """Regression: teardown must snapshot the worker list *before*
        ``ProcessPoolExecutor.shutdown`` clears it, or the hung worker
        (here: 120 s of sleep) survives the batch and blocks interpreter
        exit until its sleep ends."""
        requests = [
            RunRequest(app="kafka", policy="lru", **SMALL),
            RunRequest(app="kafka", policy="srrip", **SMALL),
        ]
        _arm(monkeypatch, tmp_path, "task:0:hang=120")
        _cold()
        run_batch(
            requests, jobs=2, on_error="retry",
            retry_policy=FAST_RETRY, timeout_s=5.0,
        )
        deadline = time.monotonic() + 5.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert multiprocessing.active_children() == []


class TestSkipMode:
    def test_partial_results_in_request_order(self):
        good_a = RunRequest(app="kafka", policy="lru", **SMALL)
        bad = RunRequest(app="kafka", policy="no-such-policy", **SMALL)
        good_b = RunRequest(app="clang", policy="lru", **SMALL)
        reference = _serial_reference([good_a, good_b])
        _cold()
        results, report = run_batch(
            [good_a, bad, good_b], jobs=2, on_error="skip",
            retry_policy=FAST_RETRY,
        )
        assert results[1] is None
        assert dataclasses.asdict(results[0]) == reference[0]
        assert dataclasses.asdict(results[2]) == reference[1]
        assert report.faults.skipped == 1
        assert report.faults.failures[0]["error"] == "UnknownPolicyError"
        # Deterministic failures must not burn retry attempts.
        assert report.faults.failures[0]["attempts"] == 1

    def test_skip_on_serial_path(self):
        _cold()
        bad = RunRequest(app="kafka", policy="no-such-policy", **SMALL)
        good = RunRequest(app="kafka", policy="lru", **SMALL)
        results, report = run_batch([bad, good], jobs=1, on_error="skip")
        assert results[0] is None
        assert results[1] is not None
        assert report.faults.skipped == 1

    def test_run_many_passes_mode_through(self):
        _cold()
        bad = RunRequest(app="kafka", policy="no-such-policy", **SMALL)
        assert run_many([bad], jobs=1, on_error="skip") == [None]


class TestFailureReporting:
    def test_error_carries_attempts_and_traceback(self):
        _cold()
        bad = RunRequest(app="kafka", policy="no-such-policy", **SMALL)
        with pytest.raises(BatchExecutionError) as excinfo:
            run_many([bad], jobs=1)
        error = excinfo.value
        assert error.request == bad
        assert error.attempts == 1
        assert "UnknownPolicyError" in error.detail

    def test_format_failure_block(self):
        _cold()
        bad = RunRequest(app="kafka", policy="no-such-policy", **SMALL)
        with pytest.raises(BatchExecutionError) as excinfo:
            run_many([bad], jobs=1)
        from repro.harness.reporting import format_failure

        block = format_failure(excinfo.value)
        assert "no-such-policy" in block
        assert "attempts: 1" in block
        assert "UnknownPolicyError" in block

    def test_fault_lines_in_batch_report(self):
        from repro.harness.parallel import BatchReport
        from repro.harness.reporting import format_batch_report

        report = BatchReport(requests=4, unique=4, executed=4, jobs=2)
        report.faults.crashed = 1
        report.faults.retried = 2
        report.faults.merge_counters({"shm_attach": 1})
        text = format_batch_report(report)
        assert "1 crashed" in text
        assert "2 retried" in text
        assert "shm_attach=1" in text

    def test_clean_report_stays_one_line(self):
        from repro.harness.parallel import BatchReport
        from repro.harness.reporting import format_batch_report

        assert "\n" not in format_batch_report(
            BatchReport(requests=1, unique=1, executed=1, jobs=1)
        )


class TestShmAttachFault:
    def test_attach_failure_degrades_and_is_counted(
        self, tmp_path, monkeypatch
    ):
        requests = _mixed_batch()
        reference = _serial_reference(requests)
        _arm(monkeypatch, tmp_path, "shm:attach:fail")
        _cold()
        results, report = run_batch(
            requests, jobs=2, on_error="retry", retry_policy=FAST_RETRY
        )
        assert [dataclasses.asdict(s) for s in results] == reference
        assert report.faults.fallbacks.get("shm_attach", 0) >= 1
        assert report.faults.degraded_fallbacks >= 1


class TestCorruptArtifactRecovery:
    def test_corrupt_stats_entry_is_quarantined_and_recomputed(
        self, tmp_path, monkeypatch
    ):
        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        request = RunRequest(app="kafka", policy="lru", **SMALL)
        _cold()
        reference = dataclasses.asdict(run_many([request], jobs=1)[0])
        assert (cache / f"{request.cache_key()}.json").exists()

        _arm(monkeypatch, tmp_path, "artifact:stats:corrupt")
        _cold()
        results, report = run_batch([request], jobs=1, on_error="retry")
        assert dataclasses.asdict(results[0]) == reference
        assert report.faults.corrupt_artifacts >= 1
        assert list(cache.glob("*.corrupt"))
        # The recomputed entry was re-persisted and is valid again.
        _cold()
        _, report = run_batch([request], jobs=1)
        assert report.disk_hits == 1


class TestChaosCombined:
    def test_crash_hang_and_corruption_in_one_batch(
        self, tmp_path, monkeypatch
    ):
        """The acceptance scenario: one crash, one hang, one corrupted
        trace artifact in a two-app batch; ``on_error="retry"`` must
        complete bit-identically to a clean serial run with every fault
        accounted for."""
        requests = _mixed_batch()
        # Clean serial reference with the disk cache off, so the chaos
        # arm below starts stats-cold and actually executes every task.
        reference = _serial_reference(requests)

        # Pre-warm the disk trace cache so the corruption has a target,
        # then drop the in-process caches.
        cache = tmp_path / "cache"
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache))
        _cold()
        from repro.workloads.registry import get_trace

        for request in requests:
            get_trace(request.app, request.input_name,
                      request.resolved_trace_len())
        _cold()

        _arm(
            monkeypatch, tmp_path,
            "task:0:crash;task:1:hang=120;artifact:trace:corrupt",
        )
        results, report = run_batch(
            requests, jobs=2, on_error="retry",
            retry_policy=FAST_RETRY, timeout_s=10.0,
        )
        assert [dataclasses.asdict(s) for s in results] == reference
        assert report.faults.crashed >= 1
        assert report.faults.timed_out >= 1
        assert report.faults.corrupt_artifacts >= 1
        assert report.faults.retried >= 2
