"""Exact min-cost-flow solver and flow-based admission tests."""

import random

import pytest

from repro.config import UopCacheConfig
from repro.core.trace import Trace
from repro.errors import FlowError
from repro.offline.intervals import IdentityMode, ValueMetric, extract_intervals
from repro.offline.mincostflow import MinCostFlow, flow_admission
from repro.offline.plan import greedy_admission

from .conftest import cyclic_trace, pw


class TestMinCostFlowSolver:
    def test_single_edge(self):
        solver = MinCostFlow(2)
        solver.add_edge(0, 1, capacity=5, cost=3)
        flow, cost = solver.solve(0, 1)
        assert flow == 5 and cost == 15

    def test_prefers_cheap_path(self):
        solver = MinCostFlow(4)
        solver.add_edge(0, 1, 10, 1)
        solver.add_edge(1, 3, 10, 1)
        solver.add_edge(0, 2, 10, 5)
        solver.add_edge(2, 3, 10, 5)
        flow, cost = solver.solve(0, 3)
        assert flow == 20
        assert cost == 10 * 2 + 10 * 10  # cheap path first, then expensive

    def test_respects_bottleneck(self):
        solver = MinCostFlow(3)
        solver.add_edge(0, 1, 7, 0)
        solver.add_edge(1, 2, 4, 0)
        flow, _ = solver.solve(0, 2)
        assert flow == 4

    def test_flow_on_reports_edge_usage(self):
        solver = MinCostFlow(2)
        edge = solver.add_edge(0, 1, 5, 1)
        solver.solve(0, 1)
        assert solver.flow_on(edge) == 5

    def test_rejects_negative_cost(self):
        with pytest.raises(FlowError):
            MinCostFlow(2).add_edge(0, 1, 1, -1)

    def test_disconnected_graph_pushes_nothing(self):
        solver = MinCostFlow(3)
        solver.add_edge(0, 1, 5, 0)
        flow, cost = solver.solve(0, 2)
        assert flow == 0 and cost == 0


class TestBlockingFlowEquivalence:
    """The blocking-flow solve() must match the per-path SSP baseline."""

    def _pair(self, n, edges):
        fast, reference = MinCostFlow(n), MinCostFlow(n)
        for u, v, capacity, cost in edges:
            fast.add_edge(u, v, capacity, cost)
            reference.add_edge(u, v, capacity, cost)
        return fast, reference

    def test_random_graphs(self):
        rng = random.Random(42)
        for _ in range(150):
            n = rng.randint(2, 12)
            edges = []
            for _ in range(rng.randint(1, 30)):
                u, v = rng.randrange(n), rng.randrange(n)
                if u != v:
                    edges.append((u, v, rng.randint(0, 8), rng.randint(0, 20)))
            fast, reference = self._pair(n, edges)
            assert fast.solve(0, n - 1) == reference.solve_reference(0, n - 1)

    def test_parallel_cost_tiers(self):
        # Many same-cost paths: the blocking flow must batch them into
        # one phase without changing the cost accounting.
        edges = [(0, 1, 3, c) for c in (1, 1, 1, 2, 2, 5)]
        edges += [(1, 2, 3, c) for c in (1, 1, 2, 5)]
        fast, reference = self._pair(3, edges)
        assert fast.solve(0, 2) == reference.solve_reference(0, 2)

    def test_zero_cost_saturation(self):
        edges = [(0, 1, 4, 0), (1, 2, 4, 0), (0, 2, 2, 0)]
        fast, reference = self._pair(3, edges)
        assert fast.solve(0, 2) == reference.solve_reference(0, 2)


class TestFlowAdmission:
    def _intervals(self, trace, ways):
        config = UopCacheConfig(entries=ways, ways=ways)
        return extract_intervals(
            trace, config, identity=IdentityMode.EXACT,
            metric=ValueMetric.OHR, set_index_fn=lambda s, n: 0,
        )

    def test_everything_admitted_when_it_fits(self):
        trace = cyclic_trace(3, repeats=4)
        per_set, slots = self._intervals(trace, ways=4)
        plan = flow_admission(per_set, slots, 4, len(trace))
        assert plan.admitted_count == plan.considered_count

    def test_overcommitted_set_admits_partially(self):
        trace = cyclic_trace(8, repeats=4)
        per_set, slots = self._intervals(trace, ways=4)
        plan = flow_admission(per_set, slots, 4, len(trace))
        assert 0 < plan.admitted_count < plan.considered_count

    def test_flow_value_bounds_greedy(self):
        # The exact LP admission cannot be worse than the greedy plan.
        trace = cyclic_trace(10, repeats=5)
        per_set, slots = self._intervals(trace, ways=4)
        exact = flow_admission(per_set, slots, 4, len(trace))
        greedy = greedy_admission(per_set, slots, 4, len(trace))
        assert exact.admitted_value >= greedy.admitted_value - 1e-9

    def test_greedy_is_near_optimal_on_small_mixes(self):
        # Mixed sizes and values: greedy should stay within 20% of the
        # flow bound on small instances.
        lookups = []
        for repeat in range(5):
            for i in range(6):
                lookups.append(pw(0x1000 + i * 0x40, uops=4 + (i % 3) * 8))
        trace = Trace(lookups)
        config = UopCacheConfig(entries=4, ways=4)
        per_set, slots = extract_intervals(
            trace, config, identity=IdentityMode.EXACT,
            metric=ValueMetric.UOPS, set_index_fn=lambda s, n: 0,
        )
        exact = flow_admission(per_set, slots, 4, len(trace))
        greedy = greedy_admission(per_set, slots, 4, len(trace))
        assert greedy.admitted_value >= 0.8 * exact.admitted_value


class TestOptimalityGapAtFullTraceLength:
    """The scalable solver makes the exact plan usable at 20k lookups.

    This is the paper's greedy-vs-LP optimality-gap measurement at the
    default experiment trace length — previously only feasible on toy
    traces.  The exact plan must dominate greedy, and greedy must stay
    near-optimal (FOO's near-tightness argument).
    """

    def test_exact_dominates_greedy_at_20k(self):
        from repro.offline.intervals import shared_intervals
        from repro.uopcache.cache import default_set_index
        from repro.workloads.registry import get_trace

        trace = get_trace("kafka", "default", 20_000)
        config = UopCacheConfig()
        per_set, slots = shared_intervals(
            trace, config, identity=IdentityMode.EXACT,
            metric=ValueMetric.OHR, set_index_fn=default_set_index,
        )
        exact = flow_admission(per_set, slots, config.ways, len(trace))
        greedy = greedy_admission(per_set, slots, config.ways, len(trace))
        assert exact.admitted_value >= greedy.admitted_value - 1e-9
        assert greedy.admitted_value >= 0.9 * exact.admitted_value

    def test_foo_use_flow_builds_at_20k(self):
        from repro.offline.foo import FOOPolicy
        from repro.workloads.registry import get_trace

        trace = get_trace("kafka", "default", 20_000)
        policy = FOOPolicy(trace, UopCacheConfig(), use_flow=True)
        assert policy.plan is not None
        assert policy.plan.admitted_count > 0
