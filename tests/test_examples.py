"""Smoke tests: every example script runs end-to-end (scaled down)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(monkeypatch, capsys, name, argv=()):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    # Shrink the workloads the examples drive.
    monkeypatch.setenv("REPRO_CACHE", "0")
    module_globals = runpy.run_path(str(EXAMPLES / name), run_name="not_main")
    monkeypatch.setitem(module_globals, "TRACE_LEN", 1500)
    module_globals["main"]()
    return capsys.readouterr().out


@pytest.mark.parametrize("name,needle", [
    ("quickstart.py", "miss reduction"),
    ("cache_sizing_study.py", "ISO-performance"),
    ("custom_workload.py", "FLACK"),
])
def test_example_runs(monkeypatch, capsys, name, needle):
    out = run_example(monkeypatch, capsys, name)
    assert needle in out


def test_profile_guided_deployment(monkeypatch, capsys):
    out = run_example(monkeypatch, capsys, "profile_guided_deployment.py")
    assert "STEP 7" in out
    assert "miss reduction vs LRU" in out
