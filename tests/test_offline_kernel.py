"""Bit-identity and fallback guards for the offline-policy sim kernel.

Mirror of ``tests/test_sim_kernel.py`` for the offline and
profile-guided families (:mod:`repro.frontend.simd_offline`):

* **Property sweep** — randomized cache geometries, the Belady /
  FOO-replay / FLACK / FURBYS / Thermometer arms, trace lengths
  1k / 20k / 100k: the kernel must reproduce
  :meth:`FrontendPipeline.run_reference` stats *and* end-of-run policy
  state (intervals, pending lookups, recency, RRPV, pitfall detectors,
  selection counters) field-by-field.
* **Recording parity** — per-PW hit-rate recording
  (``record_hit_rates=True``, the profiling-replay shape) runs through
  the kernel with a bit-identical ``pw_hit_stats`` dict.
* **Fallback visibility** — unsupported shapes run the reference loop
  and count a ``sim_fallback:<policy>:<reason>`` resilience counter,
  which :class:`~repro.harness.resilience.FaultReport` routes to its
  informational ``sim_fallbacks`` bucket (not ``total_faults``).
* **Chaos variant** — ``REPRO_FAULT_SPEC``-injected worker crashes must
  leave batch results over offline arms bit-identical to a clean
  serial run, and ``REPRO_SIM_FASTPATH=0`` must keep the kernel entry
  point unreached.
"""

from __future__ import annotations

import dataclasses
import random

import pytest

from repro import faultinject, stagetimer
from repro.config import preset
from repro.core.pw import PWLookup
from repro.core.trace import Trace
from repro.frontend import simd
from repro.frontend.pipeline import FrontendPipeline
from repro.harness import resilience
from repro.harness.parallel import run_batch, run_many
from repro.harness.resilience import FaultReport, RetryPolicy
from repro.harness.runner import RunRequest, clear_memory_cache
from repro.offline.belady import BeladyPolicy
from repro.offline.flack import FLACKPolicy
from repro.offline.foo import FOOPolicy
from repro.policies.furbys import FurbysPolicy
from repro.policies.thermometer import ThermometerPolicy
from repro.workloads.registry import clear_trace_cache, get_trace

POLICIES = ("belady", "foo-ohr", "flack", "flack[A]", "furbys",
            "thermometer")

#: Same pinned-seed geometry draw as test_sim_kernel (direct-mapped,
#: single-set and wide corners included).
_GEOM_RNG = random.Random(0x5EED)
GEOMETRIES = sorted(
    {(2 ** _GEOM_RNG.randint(0, 5), _GEOM_RNG.choice((1, 2, 4, 8)))
     for _ in range(10)}
)[:6]

#: Longer traces sweep fewer geometries to keep the suite's runtime
#: bounded (the offline arms pay a policy build per case on top of the
#: two simulation runs); the geometry space itself is covered at 1k.
LENGTH_CASES = [
    (1_000, GEOMETRIES),
    (20_000, GEOMETRIES[:2]),
    (100_000, GEOMETRIES[:1]),
]
SWEEP = [
    (n, sets, ways, policy)
    for n, geoms in LENGTH_CASES
    for sets, ways in geoms
    for policy in POLICIES
]


def _cold():
    clear_memory_cache()
    clear_trace_cache()


def _random_trace(seed: int, n: int) -> Trace:
    """Re-referenced windows with same-start size variants and overlap,
    the mix that exercises partial hits, keep-larger upgrades and
    inclusive invalidation (same recipe as test_sim_kernel)."""
    rng = random.Random(seed)
    windows = []
    addr = 0x400000
    for _ in range(60):
        insts = rng.randint(1, 12)
        uops = insts + rng.randint(0, 8)
        bytes_len = max(1, insts * rng.randint(2, 6))
        windows.append((addr, uops, insts, bytes_len))
        addr += rng.choice((bytes_len, bytes_len, bytes_len // 2 + 1, 17))
    lookups = []
    for _ in range(n):
        start, uops, insts, bytes_len = rng.choice(windows)
        if rng.random() < 0.25:
            scale = rng.choice((0.5, 0.75, 1.5))
            uops = max(1, int(uops * scale))
            insts = max(1, min(insts, uops))
        lookups.append(PWLookup(
            start=start, uops=uops, insts=insts, bytes_len=bytes_len,
            terminated_by_branch=rng.random() < 0.7,
            contains_branch=rng.random() < 0.85,
            mispredicted=rng.random() < 0.05,
        ))
    return Trace(lookups)


def _build(policy: str, trace: Trace, config):
    """(policy instance, pipeline hints) for one sweep arm.

    FURBYS hints and Thermometer classes are synthetic but
    deterministic functions of the PW start, so every weight/class
    combination (including bypass-eligible cold windows) occurs
    without a profiling replay per case.
    """
    if policy == "belady":
        return BeladyPolicy(trace), None
    if policy == "foo-ohr":
        return FOOPolicy(trace, config.uop_cache), None
    if policy == "flack":
        return FLACKPolicy(trace, config.uop_cache), None
    if policy == "flack[A]":
        return FLACKPolicy(
            trace, config.uop_cache,
            async_aware=True, variable_cost=False, selective_bypass=False,
        ), None
    starts = {lookup.start for lookup in trace}
    if policy == "furbys":
        hints = {start: (start >> 4) % 8 for start in starts}
        return FurbysPolicy(), hints
    assert policy == "thermometer"
    classes = {start: start % 3 for start in starts}
    return ThermometerPolicy(classes), None


def _policy_state(policy) -> dict:
    """End-of-run policy internals, repr'd for exact comparison (dict
    reprs include insertion order, so hook order is covered too)."""
    state = {
        attr: repr(getattr(policy, attr, None))
        for attr in ("_interval_start", "_pending_lookup_t", "_last_use",
                     "_pitfall", "_classes", "primary_selections",
                     "fallback_selections", "bypass_decisions")
    }
    rrpv = getattr(policy, "rrpv", None)
    if rrpv is not None:
        state["rrpv"] = repr(rrpv._rrpv)
    return state


@pytest.mark.parametrize(
    "n,sets,ways,policy",
    SWEEP,
    ids=[f"{n}-{s}x{w}-{p}" for n, s, w, p in SWEEP],
)
def test_offline_kernel_matches_reference(n, sets, ways, policy):
    """Kernel stats and policy end-state are bit-identical to the
    reference loop across geometries, policies and trace lengths."""
    config = preset("zen3").with_uop_cache(entries=sets * ways, ways=ways)
    trace = _random_trace(seed=n * 31 + sets * 7 + ways, n=n)
    warmup = n // 5 if (sets + ways) % 2 else 0

    kernel_policy, hints = _build(policy, trace, config)
    kernel_pipeline = FrontendPipeline(config, kernel_policy, hints=hints)
    with stagetimer.capture() as stages:
        kernel_stats = kernel_pipeline.run(trace, warmup=warmup)
    if simd._np is not None:
        assert stages.get("sim_kernel_calls"), (
            "offline kernel did not run for a supported configuration"
        )

    reference_policy, hints = _build(policy, trace, config)
    reference_pipeline = FrontendPipeline(
        config, reference_policy, hints=hints)
    reference_stats = reference_pipeline.run_reference(trace, warmup=warmup)

    assert dataclasses.asdict(kernel_stats) == \
        dataclasses.asdict(reference_stats)
    assert _policy_state(kernel_policy) == _policy_state(reference_policy)


@pytest.mark.parametrize("policy", ("belady", "foo-ohr", "flack"))
def test_hit_rate_recording_matches_reference(policy):
    """The profiling-replay shape (offline policy + per-PW recording)
    routes through the kernel with bit-identical pw_hit_stats."""
    config = preset("zen3").with_uop_cache(entries=64, ways=8)
    trace = _random_trace(seed=77, n=3_000)

    kernel_policy, _ = _build(policy, trace, config)
    kernel_pipeline = FrontendPipeline(
        config, kernel_policy, record_hit_rates=True)
    with stagetimer.capture() as stages:
        kernel_stats = kernel_pipeline.run(trace)
    if simd._np is not None:
        assert stages.get("sim_kernel_calls")

    reference_policy, _ = _build(policy, trace, config)
    reference_pipeline = FrontendPipeline(
        config, reference_policy, record_hit_rates=True)
    reference_stats = reference_pipeline.run_reference(trace)

    assert dataclasses.asdict(kernel_stats) == \
        dataclasses.asdict(reference_stats)
    assert repr(kernel_pipeline.pw_hit_stats) == \
        repr(reference_pipeline.pw_hit_stats)


class TestFallbackVisibility:
    def test_unsupported_shape_counts_a_reasoned_fallback(self, monkeypatch):
        """Miss classification is reference-only; running it under an
        offline policy must count sim_fallback:<policy>:miss_classifier
        while staying bit-identical."""
        monkeypatch.delenv("REPRO_SIM_FASTPATH", raising=False)
        resilience.reset_counters()
        config = preset("zen3").with_uop_cache(entries=32, ways=4)
        trace = _random_trace(seed=5, n=1_200)
        policy, _ = _build("belady", trace, config)
        pipeline = FrontendPipeline(config, policy, classify_misses=True)
        stats = pipeline.run(trace)
        counters = resilience.global_counters()
        assert counters.get("sim_fallback:belady:miss_classifier") == 1
        reference_policy, _ = _build("belady", trace, config)
        reference = FrontendPipeline(
            config, reference_policy, classify_misses=True
        ).run_reference(trace)
        assert dataclasses.asdict(stats) == dataclasses.asdict(reference)
        resilience.reset_counters()

    def test_fastpath_off_is_not_counted_as_fallback(self, monkeypatch):
        """REPRO_SIM_FASTPATH=0 is an explicit choice, not a silent
        degradation — no counter, and the kernel is never entered."""
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")
        resilience.reset_counters()

        def _poisoned(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("kernel ran despite REPRO_SIM_FASTPATH=0")

        monkeypatch.setattr(simd, "run_kernel", _poisoned)
        config = preset("zen3").with_uop_cache(entries=32, ways=4)
        trace = _random_trace(seed=6, n=1_000)
        policy, _ = _build("flack", trace, config)
        FrontendPipeline(config, policy).run(trace)
        assert not any(
            name.startswith("sim_fallback:")
            for name in resilience.global_counters()
        )

    def test_fault_report_routes_sim_fallbacks_separately(self):
        """sim_fallback:* counters are informational: itemized on the
        report, excluded from total_faults."""
        report = FaultReport()
        report.merge_counters({
            "sim_fallback:belady:miss_classifier": 2,
            "shm_attach": 1,
        })
        assert report.sim_fallbacks == {
            "sim_fallback:belady:miss_classifier": 2
        }
        assert report.fallbacks == {"shm_attach": 1}
        assert report.degraded_fallbacks == 1
        assert report.total_faults == 1

    def test_batch_report_line_itemizes_sim_fallbacks(self):
        from repro.harness.parallel import BatchReport
        from repro.harness.reporting import format_batch_report

        report = BatchReport(requests=2, unique=2, executed=2, jobs=1)
        report.faults.merge_counters(
            {"sim_fallback:belady:miss_classifier": 2})
        text = format_batch_report(report)
        assert "2 sim kernel fallbacks" in text
        assert "belady:miss_classifier=2" in text


class TestChaos:
    @pytest.fixture(autouse=True)
    def _fault_hygiene(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAULT_SPEC", raising=False)
        monkeypatch.delenv("REPRO_FAULT_STATE", raising=False)
        faultinject.reset_plan_cache()
        resilience.reset_counters()
        yield
        faultinject.reset_plan_cache()
        resilience.reset_counters()

    def test_injected_crash_keeps_offline_results_identical(
        self, tmp_path, monkeypatch
    ):
        """A worker crash mid-batch (retried on a rebuilt pool) leaves
        the offline arms' results bit-identical to a clean serial run —
        the kernel's live policy-state mirroring cannot leak between
        attempts."""
        requests = [
            RunRequest(app="kafka", policy="belady",
                       trace_len=1_200, warmup=400),
            RunRequest(app="kafka", policy="flack",
                       trace_len=1_200, warmup=400),
            RunRequest(app="kafka", policy="thermometer",
                       trace_len=1_200, warmup=400),
        ]
        _cold()
        reference = [
            dataclasses.asdict(s) for s in run_many(requests, jobs=1)
        ]
        monkeypatch.setenv("REPRO_FAULT_SPEC", "task:0:crash")
        monkeypatch.setenv("REPRO_FAULT_STATE",
                           str(tmp_path / "fault-state"))
        faultinject.reset_plan_cache()
        _cold()
        results, report = run_batch(
            requests, jobs=2, on_error="retry",
            retry_policy=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                                     backoff=1.0, jitter=0.0),
        )
        assert [dataclasses.asdict(s) for s in results] == reference
        assert report.faults.crashed >= 1
        _cold()

    def test_fastpath_off_under_run_batch(self, monkeypatch):
        """REPRO_SIM_FASTPATH=0 restores the reference path for an
        offline arm end-to-end under run_batch (poisoned kernel)."""
        request = RunRequest(app="kafka", policy="foo-ohr",
                             trace_len=1_200, warmup=400)
        _cold()
        monkeypatch.delenv("REPRO_SIM_FASTPATH", raising=False)
        (stats_on,), _ = run_batch([request], jobs=1)

        _cold()
        monkeypatch.setenv("REPRO_SIM_FASTPATH", "0")

        def _poisoned(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("kernel ran despite REPRO_SIM_FASTPATH=0")

        monkeypatch.setattr(simd, "run_kernel", _poisoned)
        (stats_off,), _ = run_batch([request], jobs=1)
        assert dataclasses.asdict(stats_on) == dataclasses.asdict(stats_off)
        _cold()
