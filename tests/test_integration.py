"""Integration tests: the full policy ladder on small generated traces.

These exercise the paper's central claims end-to-end at reduced scale:
FLACK approximates the offline optimum, Belady trails FLACK, FURBYS
recovers a chunk of the offline gain online, and the profiling pipeline
transfers across inputs of the same application.
"""

from dataclasses import replace

import pytest

from repro.config import zen3_config
from repro.frontend.pipeline import FrontendPipeline
from repro.offline.belady import BeladyPolicy
from repro.offline.flack import FLACKPolicy, flack_ablation_suite
from repro.policies import make_policy
from repro.policies.furbys import FurbysPolicy
from repro.profiling import make_furbys, profile_application
from repro.workloads.registry import build_app_trace
from repro.workloads.apps import get_profile

TRACE_LEN = 9000
WARMUP = 3000


@pytest.fixture(scope="module")
def kafka_trace():
    return build_app_trace(get_profile("kafka"), "default", TRACE_LEN)


@pytest.fixture(scope="module")
def config():
    return replace(zen3_config(), perfect_icache=True)


def simulate(config, trace, policy, hints=None):
    pipeline = FrontendPipeline(config, policy, hints=hints)
    return pipeline.run(trace, warmup=WARMUP)


class TestPolicyLadder:
    def test_flack_beats_belady_beats_lru(self, kafka_trace, config):
        lru = simulate(config, kafka_trace, make_policy("lru"))
        belady = simulate(config, kafka_trace, BeladyPolicy(kafka_trace))
        flack = simulate(
            config, kafka_trace, FLACKPolicy(kafka_trace, config.uop_cache)
        )
        assert belady.uops_missed < lru.uops_missed
        assert flack.uops_missed <= belady.uops_missed * 1.02

    def test_ablation_ladder_is_broadly_monotone(self, kafka_trace, config):
        lru = simulate(config, kafka_trace, make_policy("lru"))
        reductions = {}
        for label, policy in flack_ablation_suite(
            kafka_trace, config.uop_cache
        ).items():
            stats = simulate(config, kafka_trace, policy)
            reductions[label] = stats.miss_reduction_vs(lru)
        assert reductions["A+VC+SB"] >= reductions["foo"] - 0.02
        assert reductions["A+VC+SB"] >= reductions["A"] - 0.02

    def test_furbys_lands_between_lru_and_flack(self, kafka_trace, config):
        lru = simulate(config, kafka_trace, make_policy("lru"))
        flack = simulate(
            config, kafka_trace, FLACKPolicy(kafka_trace, config.uop_cache)
        )
        profile = profile_application(kafka_trace, config)
        policy, hints = make_furbys(profile)
        furbys = simulate(config, kafka_trace, policy, hints)
        assert furbys.uops_missed < lru.uops_missed
        assert furbys.uops_missed > flack.uops_missed

    def test_furbys_statistics_exposed(self, kafka_trace, config):
        profile = profile_application(kafka_trace, config)
        policy, hints = make_furbys(profile)
        stats = simulate(config, kafka_trace, policy, hints)
        assert 0.5 < stats.policy_coverage <= 1.0
        assert 0.0 <= stats.bypass_fraction < 0.5


class TestCrossInputTransfer:
    def test_profile_transfers_to_other_input(self, config):
        train = build_app_trace(get_profile("kafka"), "default", TRACE_LEN)
        test = build_app_trace(get_profile("kafka"), "alt-seed", TRACE_LEN)
        lru = simulate(config, test, make_policy("lru"))
        profile = profile_application(train, config)
        policy, hints = make_furbys(profile)
        cross = simulate(config, test, policy, hints)
        # The cross-trained profile keeps FURBYS at worst mildly below
        # LRU and typically above it (Figure 18's robustness claim).
        assert cross.uops_missed < lru.uops_missed * 1.05


class TestPowerIntegration:
    def test_furbys_saves_energy_vs_lru(self, kafka_trace):
        from repro.power.mcpat import CorePowerModel

        config = zen3_config()
        lru = simulate(config, kafka_trace, make_policy("lru"))
        profile = profile_application(kafka_trace, config)
        policy, hints = make_furbys(profile)
        furbys = simulate(config, kafka_trace, policy, hints)
        model = CorePowerModel(config)
        assert model.breakdown(furbys).total < model.breakdown(lru).total * 1.02
