"""Durable experiment ledger: store, journaling, resume and chaos.

Covers :mod:`repro.harness.ledger` (the WAL-mode SQLite run store and
its lifecycle/heartbeat rules), the journal wiring inside
:func:`repro.harness.parallel.run_batch`, checksum-verified resume with
zero re-execution of journaled requests, and the SIGKILL-and-resume
CLI path (``repro experiments run`` / ``resume``) end to end.
"""

from __future__ import annotations

import dataclasses
import json
import os
import signal
import sqlite3
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro import faultinject
from repro.errors import FaultInjectionError, ReproError
from repro.harness import resilience
from repro.harness.ledger import (
    ExperimentRun,
    Ledger,
    active_journal,
    ledger_path,
    resume_experiment,
)
from repro.harness.parallel import run_many
from repro.harness.runner import RunRequest, clear_memory_cache, run
from repro.workloads.registry import clear_trace_cache

SMALL = dict(trace_len=1500, warmup=500)


def _cold():
    clear_memory_cache()
    clear_trace_cache()


def _small_batch() -> list[RunRequest]:
    return [
        RunRequest(app="kafka", policy="lru", **SMALL),
        RunRequest(app="kafka", policy="srrip", **SMALL),
        RunRequest(app="clang", policy="lru", **SMALL),
    ]


@pytest.fixture(autouse=True)
def _ledger_hygiene(monkeypatch):
    """Isolated env: no disk cache, no fault spec, clean counters."""
    for name in (
        "REPRO_FAULT_SPEC", "REPRO_FAULT_STATE", "REPRO_LEDGER",
        "REPRO_HEARTBEAT_S", "REPRO_APPS", "REPRO_TRACE_LEN", "REPRO_JOBS",
        "REPRO_ON_ERROR", "REPRO_TIMEOUT_S",
    ):
        monkeypatch.delenv(name, raising=False)
    monkeypatch.setenv("REPRO_CACHE", "0")
    faultinject.reset_plan_cache()
    resilience.reset_counters()
    _cold()
    yield
    faultinject.reset()
    resilience.reset_counters()
    _cold()


class TestLedgerStore:
    def test_env_disable_and_path_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        assert ledger_path() is None
        assert Ledger.open() is None
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "env.sqlite"))
        assert ledger_path() == tmp_path / "env.sqlite"
        # An explicit argument beats the environment.
        assert ledger_path(tmp_path / "arg.sqlite") == tmp_path / "arg.sqlite"

    def test_lifecycle_and_listing(self, tmp_path):
        ledger = Ledger.open(tmp_path / "l.sqlite")
        experiment_id = ledger.create_experiment("alpha", note="first")
        row = ledger.experiment(experiment_id)
        assert row["state"] == "PENDING"
        assert row["git_hash"]
        ledger.mark_running(experiment_id)
        row = ledger.experiment(experiment_id)
        assert row["state"] == "RUNNING"
        assert row["owner_pid"] == os.getpid()
        ledger.finish(experiment_id, "COMPLETE")
        assert ledger.find("alpha")["id"] == experiment_id
        assert ledger.find(str(experiment_id))["state"] == "COMPLETE"
        assert ledger.find("nope") is None
        listed = ledger.list_experiments()
        assert [entry["name"] for entry in listed] == ["alpha"]
        assert listed[0]["requests"] == 0
        ledger.close()

    def test_register_is_idempotent(self, tmp_path):
        ledger = Ledger.open(tmp_path / "l.sqlite")
        experiment_id = ledger.create_experiment("reg")
        pairs = [(r.cache_key(), r) for r in _small_batch()]
        ledger.register_requests(experiment_id, pairs)
        ledger.register_requests(experiment_id, pairs)
        assert ledger.request_count(experiment_id) == len(pairs)
        stored = ledger.stored_requests(experiment_id)
        assert [key for key, _ in stored] == [key for key, _ in pairs]
        # Rebuilt requests resolve to the same cache keys.
        assert all(req.cache_key() == key for key, req in stored)
        ledger.close()

    def test_record_and_checksum_verify(self, tmp_path):
        ledger = Ledger.open(tmp_path / "l.sqlite")
        experiment_id = ledger.create_experiment("rec")
        request = _small_batch()[0]
        key = request.cache_key()
        stats = run(request)
        ledger.register_requests(experiment_id, [(key, request)])
        ledger.record_results(experiment_id, [(key, request, stats)])
        assert ledger.done_keys(experiment_id) == {key}
        assert ledger.pending_count(experiment_id) == 0
        verified = ledger.journaled_stats(experiment_id)
        assert dataclasses.asdict(verified[key]) == dataclasses.asdict(stats)
        ledger.close()

    def test_torn_row_is_demoted_and_counted(self, tmp_path):
        ledger = Ledger.open(tmp_path / "l.sqlite")
        experiment_id = ledger.create_experiment("torn")
        request = _small_batch()[0]
        key = request.cache_key()
        ledger.register_requests(experiment_id, [(key, request)])
        ledger.record_results(experiment_id, [(key, request, run(request))])
        with ledger._db:
            ledger._db.execute(
                "UPDATE requests SET stats = 'garbage' WHERE experiment_id = ?",
                (experiment_id,),
            )
        before = resilience.global_counters()
        assert ledger.journaled_stats(experiment_id) == {}
        assert ledger.pending_count(experiment_id) == 1
        delta = resilience.counters_since(before)
        assert delta.get("corrupt_artifact", 0) == 1
        ledger.close()

    def test_corrupt_database_file_is_quarantined(self, tmp_path):
        path = tmp_path / "l.sqlite"
        ledger = Ledger.open(path)
        ledger.create_experiment("old")
        ledger.close()
        path.write_bytes(b"\x00garbage, not a database\x00" * 64)
        reopened = Ledger.open(path)
        assert reopened is not None
        assert reopened.list_experiments() == []  # fresh store
        assert list(tmp_path.glob("l.sqlite.*corrupt*")), "quarantine missing"
        reopened.close()

    def test_fault_spec_corrupts_ledger_file_on_open(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "l.sqlite"
        ledger = Ledger.open(path)
        ledger.create_experiment("doomed")
        ledger.close()
        monkeypatch.setenv("REPRO_FAULT_SPEC", "artifact:ledger:corrupt")
        monkeypatch.setenv(
            "REPRO_FAULT_STATE", str(tmp_path / "fault-state")
        )
        faultinject.reset_plan_cache()
        reopened = Ledger.open(path)  # the injected garble hits here
        assert reopened.list_experiments() == []
        assert list(tmp_path.glob("l.sqlite.*corrupt*"))
        reopened.close()

    def test_stale_heartbeat_detection(self, tmp_path):
        ledger = Ledger.open(tmp_path / "l.sqlite")
        experiment_id = ledger.create_experiment("beat")
        ledger.mark_running(experiment_id)
        assert not ledger.is_stale(ledger.experiment(experiment_id))
        with ledger._db:
            ledger._db.execute(
                "UPDATE experiments SET heartbeat_at = ?, heartbeat_s = 0.2"
                " WHERE id = ?",
                (time.time() - 60.0, experiment_id),
            )
        assert ledger.is_stale(ledger.experiment(experiment_id))
        ledger.close()


class TestJournalWiring:
    def test_run_batch_journals_inside_experiment_run(self, tmp_path):
        db = tmp_path / "l.sqlite"
        requests = _small_batch()
        with ExperimentRun("wired", path=db) as record:
            assert active_journal() is record.journal
            stats = run_many(requests)
        assert active_journal() is None
        assert record.state == "COMPLETE"
        ledger = Ledger.open(db)
        rows = ledger.results_rows(record.experiment_id)
        assert [r["status"] for r in rows] == ["done"] * len(requests)
        journaled = {r["cache_key"]: r["stats"] for r in rows}
        for request, result in zip(requests, stats):
            assert journaled[request.cache_key()] == dataclasses.asdict(result)
        assert ledger.fault_rows(record.experiment_id)  # report recorded
        ledger.close()

    def test_no_ledger_touched_outside_context(self, tmp_path, monkeypatch):
        db = tmp_path / "l.sqlite"
        monkeypatch.setenv("REPRO_LEDGER", str(db))
        run_many(_small_batch()[:1])
        assert not db.exists()

    def test_disabled_ledger_is_transparent(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "0")
        with ExperimentRun("ghost") as record:
            stats = run_many(_small_batch()[:1])
        assert record.ledger is None
        assert record.state is None
        assert stats[0].uops_total > 0

    def test_cache_hits_are_journaled_too(self, tmp_path):
        requests = _small_batch()
        run_many(requests)  # warm the in-memory cache, unrecorded
        with ExperimentRun("warm", path=tmp_path / "l.sqlite") as record:
            run_many(requests)
        assert record.state == "COMPLETE"
        ledger = Ledger.open(tmp_path / "l.sqlite")
        assert len(ledger.done_keys(record.experiment_id)) == len(requests)
        ledger.close()

    def test_failed_when_rows_left_pending(self, tmp_path):
        db = tmp_path / "l.sqlite"
        request = _small_batch()[0]
        with ExperimentRun("partial", path=db) as record:
            record.journal.register([(request.cache_key(), request)])
            # No results land: the experiment cannot be COMPLETE.
        assert record.state == "FAILED"

    def test_exception_marks_failed(self, tmp_path):
        with pytest.raises(RuntimeError):
            with ExperimentRun("boom", path=tmp_path / "l.sqlite") as record:
                raise RuntimeError("mid-experiment")
        assert record.state == "FAILED"

    def test_keyboard_interrupt_marks_interrupted(self, tmp_path):
        with pytest.raises(KeyboardInterrupt):
            with ExperimentRun("ctrlc", path=tmp_path / "l.sqlite") as record:
                raise KeyboardInterrupt
        assert record.state == "INTERRUPTED"


class TestResume:
    def _recorded(self, db, name="base") -> tuple[int, list[dict]]:
        requests = _small_batch()
        with ExperimentRun(name, path=db) as record:
            stats = run_many(requests)
        assert record.state == "COMPLETE"
        return record.experiment_id, [dataclasses.asdict(s) for s in stats]

    def test_resume_complete_is_a_noop(self, tmp_path):
        db = tmp_path / "l.sqlite"
        experiment_id, _ = self._recorded(db)
        out = resume_experiment(str(experiment_id), path=db)
        assert out["resumed"] is False
        assert out["state"] == "COMPLETE"
        assert out["re_executed"] == 0

    def test_resume_reexecutes_only_missing_rows(self, tmp_path):
        db = tmp_path / "l.sqlite"
        experiment_id, reference = self._recorded(db)
        con = sqlite3.connect(db)
        con.execute(
            "UPDATE requests SET status = 'pending', stats = NULL,"
            " sha256 = NULL WHERE idx = 1"
        )
        con.execute("UPDATE experiments SET state = 'FAILED'")
        con.commit()
        con.close()
        _cold()
        out = resume_experiment(str(experiment_id), path=db)
        assert out["state"] == "COMPLETE"
        assert out["ledger_served"] == 2
        assert out["re_executed"] == 1
        assert out["memory_hits"] == 2  # journaled rows: 0 re-executions
        ledger = Ledger.open(db)
        merged = [r["stats"] for r in ledger.results_rows(experiment_id)]
        ledger.close()
        assert merged == reference  # bit-identical to the clean run

    def test_resume_refuses_fresh_running_heartbeat(self, tmp_path):
        db = tmp_path / "l.sqlite"
        experiment_id, _ = self._recorded(db)
        con = sqlite3.connect(db)
        con.execute(
            "UPDATE experiments SET state = 'RUNNING', heartbeat_at = ?,"
            " heartbeat_s = 60.0",
            (time.time(),),
        )
        con.commit()
        con.close()
        with pytest.raises(ReproError, match="fresh"):
            resume_experiment(str(experiment_id), path=db)
        # force takes it over; the takeover is noted in the report.
        out = resume_experiment(str(experiment_id), path=db, force=True)
        assert out["state"] == "COMPLETE"
        assert out["faults"]["notes"].get("note:ledger_takeover") == 1

    def test_resume_stale_running_is_taken_over(self, tmp_path):
        db = tmp_path / "l.sqlite"
        experiment_id, _ = self._recorded(db)
        con = sqlite3.connect(db)
        con.execute(
            "UPDATE experiments SET state = 'RUNNING', heartbeat_at = ?,"
            " heartbeat_s = 0.2",
            (time.time() - 30.0,),
        )
        con.commit()
        con.close()
        out = resume_experiment(str(experiment_id), path=db)
        assert out["state"] == "COMPLETE"
        assert out["faults"]["notes"].get("note:ledger_takeover") == 1

    def test_resume_unknown_or_disabled(self, tmp_path, monkeypatch):
        with pytest.raises(ReproError, match="matches"):
            resume_experiment("ghost", path=tmp_path / "l.sqlite")
        monkeypatch.setenv("REPRO_LEDGER", "0")
        with pytest.raises(ReproError, match="disabled"):
            resume_experiment("1")

    def test_resume_recomputes_torn_row_bit_identically(
        self, tmp_path, monkeypatch
    ):
        db = tmp_path / "l.sqlite"
        experiment_id, reference = self._recorded(db)
        con = sqlite3.connect(db)
        con.execute("UPDATE experiments SET state = 'INTERRUPTED'")
        con.commit()
        con.close()
        monkeypatch.setenv("REPRO_FAULT_SPEC", "ledger:rows:corrupt")
        monkeypatch.setenv(
            "REPRO_FAULT_STATE", str(tmp_path / "fault-state")
        )
        faultinject.reset_plan_cache()
        _cold()
        out = resume_experiment(str(experiment_id), path=db)
        assert out["state"] == "COMPLETE"
        assert out["ledger_served"] == 2
        assert out["re_executed"] == 1
        assert out["faults"]["corrupt_artifacts"] == 1
        ledger = Ledger.open(db)
        merged = [r["stats"] for r in ledger.results_rows(experiment_id)]
        ledger.close()
        assert merged == reference


def _repro_cli(argv, tmp_path, extra_env, timeout=240.0):
    src = Path(__file__).resolve().parents[1] / "src"
    env = dict(os.environ)
    env.pop("REPRO_APPS", None)
    env.pop("REPRO_TRACE_LEN", None)
    env["REPRO_CACHE"] = "0"
    env["PYTHONPATH"] = (
        f"{src}{os.pathsep}{env['PYTHONPATH']}"
        if env.get("PYTHONPATH") else str(src)
    )
    env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, timeout=timeout, env=env,
        cwd=tmp_path,
    )


class TestSigkillResumeCLI:
    def test_sigkill_mid_run_then_resume_is_bit_identical(self, tmp_path):
        """Satellite proof: a SIGKILLed ``repro experiments run`` resumes
        to bit-identical stats without re-executing journaled rows."""
        db = tmp_path / "ledger.sqlite"
        grid = [
            "--apps", "kafka", "--policies", "lru,srrip,ghrp",
            "--trace-len", "1500",
        ]
        # jobs=1: the serial path journals per request with no worker
        # processes, so the SIGKILL leaves no orphans holding our pipes.
        killed = _repro_cli(
            ["experiments", "run", "bench", "--name", "torn",
             "--ledger", str(db), "--jobs", "1", *grid],
            tmp_path,
            {
                "REPRO_FAULT_SPEC": "exp:1:kill",
                "REPRO_FAULT_STATE": str(tmp_path / "fault-state"),
                "REPRO_HEARTBEAT_S": "0.2",
            },
        )
        assert killed.returncode == -signal.SIGKILL, killed.stderr
        assert (tmp_path / "fault-state" / "exp-1-kill.fired").exists()

        ledger = Ledger.open(db)
        row = ledger.find("torn")
        assert row is not None and row["state"] == "RUNNING"
        journaled = len(ledger.done_keys(int(row["id"])))
        ledger.close()
        assert 1 <= journaled <= 3

        time.sleep(1.6)  # let the 0.2s heartbeat go stale
        resumed = _repro_cli(
            ["experiments", "resume", "torn", "--ledger", str(db),
             "--jobs", "1"],
            tmp_path, {},
        )
        assert resumed.returncode == 0, resumed.stderr
        summary = json.loads(resumed.stdout)  # stdout is pure JSON
        assert summary["state"] == "COMPLETE"
        assert summary["ledger_served"] == journaled
        assert summary["re_executed"] == 3 - journaled
        assert summary["memory_hits"] == journaled
        assert summary["faults"]["notes"].get("note:ledger_takeover") == 1

        # Bit-identity: a clean in-process recording of the same grid
        # journals byte-for-byte the same stats payloads per cache key.
        from repro.harness.experiments import run_recorded

        _cold()
        reference = run_recorded(
            "bench", ledger=db, name="ref", apps=("kafka",),
            policies=("lru", "srrip", "ghrp"), trace_len=1500,
        )
        assert reference["state"] == "COMPLETE"
        ledger = Ledger.open(db)
        torn_rows = {
            r["cache_key"]: r["stats"]
            for r in ledger.results_rows(int(row["id"]))
        }
        ref_rows = {
            r["cache_key"]: r["stats"]
            for r in ledger.results_rows(reference["id"])
        }
        ledger.close()
        assert torn_rows == ref_rows

    def test_query_cli_formats(self, tmp_path):
        db = tmp_path / "ledger.sqlite"
        with ExperimentRun("q", path=db):
            run_many(_small_batch()[:2])
        table = _repro_cli(
            ["query", "experiments", "--ledger", str(db)], tmp_path, {}
        )
        assert table.returncode == 0
        assert "COMPLETE" in table.stdout
        rows = _repro_cli(
            ["query", "results", "q", "--ledger", str(db),
             "--format", "json", "--metric", "uops_total"],
            tmp_path, {},
        )
        assert rows.returncode == 0
        decoded = json.loads(rows.stdout.split("\n", 0)[0])
        assert len(decoded) == 2
        assert all(float(entry["uops_total"]) > 0 for entry in decoded)


class TestFaultInjectReset:
    def test_reset_removes_claim_files(self, tmp_path, monkeypatch):
        state = tmp_path / "fault-state"
        monkeypatch.setenv("REPRO_FAULT_SPEC", "task:5:raise")
        monkeypatch.setenv("REPRO_FAULT_STATE", str(state))
        faultinject.reset_plan_cache()
        with pytest.raises(FaultInjectionError):
            faultinject.on_worker_task(5)
        assert list(state.glob("*.fired"))
        faultinject.reset()
        assert not state.exists()  # emptied and removed

    def test_kill_below_threshold_is_inert(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FAULT_SPEC", "exp:100:kill")
        monkeypatch.setenv(
            "REPRO_FAULT_STATE", str(tmp_path / "fault-state")
        )
        faultinject.reset_plan_cache()
        faultinject.maybe_kill_experiment(5)  # must not SIGKILL us


class TestRenderRows:
    def test_three_formats(self):
        from repro.harness.reporting import render_rows

        headers = ("a", "b")
        rows = [(1, "x"), (2, "y")]
        table = render_rows(headers, rows, "table", title="T")
        assert table.splitlines()[0] == "T"
        csv_text = render_rows(headers, rows, "csv")
        assert csv_text.splitlines() == ["a,b", "1,x", "2,y"]
        decoded = json.loads(render_rows(headers, rows, "json"))
        assert decoded == [{"a": 1, "b": "x"}, {"a": 2, "b": "y"}]
        with pytest.raises(ValueError):
            render_rows(headers, rows, "xml")
