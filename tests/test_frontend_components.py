"""Tests for the frontend substrate components (icache, BTB, decoder,
accumulator)."""

from repro.config import BranchPredictorConfig, CoreConfig, ICacheConfig
from repro.frontend.accumulator import Accumulator
from repro.frontend.branch import BranchTargetBuffer
from repro.frontend.decoder import LegacyDecoder
from repro.frontend.icache import InstructionCache

from .conftest import pw


class TestInstructionCache:
    def _tiny(self):
        # 2 sets x 2 ways of 64B lines.
        return InstructionCache(ICacheConfig(size_bytes=256, ways=2))

    def test_miss_then_hit(self):
        icache = self._tiny()
        assert icache.access_line(0x1000) is None  # cold fill
        assert icache.misses == 1
        icache.access_line(0x1000)
        assert icache.misses == 1
        assert icache.accesses == 2

    def test_eviction_returns_victim_address(self):
        icache = self._tiny()
        # Lines 0x0, 0x100, 0x200 all map to set 0 (line % 2 == 0).
        icache.access_line(0x000)
        icache.access_line(0x100)
        victim = icache.access_line(0x200)
        assert victim == 0x000

    def test_lru_refresh_protects_line(self):
        icache = self._tiny()
        icache.access_line(0x000)
        icache.access_line(0x100)
        icache.access_line(0x000)  # refresh
        victim = icache.access_line(0x200)
        assert victim == 0x100

    def test_access_range_touches_every_line(self):
        icache = self._tiny()
        icache.access_range(0x1000, 0x1000 + 130)
        assert icache.accesses == 3  # 130 bytes -> 3 lines

    def test_contains(self):
        icache = self._tiny()
        icache.access_line(0x40)
        assert icache.contains(0x40)
        assert not icache.contains(0x80)

    def test_miss_rate(self):
        icache = self._tiny()
        assert icache.miss_rate == 0.0
        icache.access_line(0x0)
        assert icache.miss_rate == 1.0


class TestBranchTargetBuffer:
    def test_miss_allocates(self):
        btb = BranchTargetBuffer(BranchPredictorConfig(btb_entries=8, btb_ways=2))
        assert not btb.access(0x1234)
        assert btb.access(0x1234)
        assert btb.miss_rate == 0.5

    def test_capacity_eviction(self):
        btb = BranchTargetBuffer(BranchPredictorConfig(btb_entries=4, btb_ways=2))
        pcs = [0x10, 0x10 + (2 << 2) * 1, 0x10 + (2 << 2) * 2]  # same set
        for pc in pcs:
            btb.access(pc)
        assert not btb.access(pcs[0])  # evicted by the third fill


class TestLegacyDecoder:
    def test_throughput_cycles(self):
        decoder = LegacyDecoder(CoreConfig(decode_width=4))
        assert decoder.decode(insts=8, uops=10) == 2
        assert decoder.decode(insts=1, uops=1) == 1
        assert decoder.uops_decoded == 11
        assert decoder.episodes == 2

    def test_fill_latency_from_config(self):
        decoder = LegacyDecoder(CoreConfig(decode_latency_cycles=7))
        assert decoder.fill_latency == 7


class TestAccumulator:
    def test_hint_attached_to_branchful_pw(self):
        accumulator = Accumulator({0x1000: 5})
        request = accumulator.accumulate(pw(0x1000), now=3, delay=5)
        assert request.weight == 5
        assert request.due == 8

    def test_no_hint_for_branchless_fragment(self):
        accumulator = Accumulator({0x1000: 5})
        fragment = pw(0x1000, branch=False, contains_branch=False)
        request = accumulator.accumulate(fragment, now=0, delay=5)
        assert request.weight is None

    def test_unknown_start_gets_none(self):
        accumulator = Accumulator({0x1000: 5})
        assert accumulator.accumulate(pw(0x2000), 0, 1).weight is None

    def test_counts_accumulations(self):
        accumulator = Accumulator()
        accumulator.accumulate(pw(0x1), 0, 1)
        accumulator.accumulate(pw(0x2), 1, 1)
        assert accumulator.accumulated == 2
        assert not accumulator.has_hints()
