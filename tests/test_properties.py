"""Property-based tests (hypothesis) on core data structures and
invariants: cache occupancy, trace serialization, Jenks classification,
greedy admission capacity, and the shadow classifier."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import UopCacheConfig
from repro.core.trace import Trace, TraceMetadata
from repro.frontend.pipeline import _ShadowClassifier
from repro.offline.intervals import IdentityMode, ValueMetric, extract_intervals
from repro.offline.plan import greedy_admission
from repro.policies.furbys import FurbysPolicy
from repro.policies.lru import LRUPolicy
from repro.policies.srrip import SRRIPPolicy
from repro.profiling.jenks import jenks_breaks, jenks_group
from repro.uopcache.cache import UopCache

from .conftest import pw

# --- strategies ---------------------------------------------------------------

lookup_strategy = st.builds(
    pw,
    start=st.integers(min_value=0x1000, max_value=0x4000).map(lambda x: x * 16),
    uops=st.integers(min_value=1, max_value=32),
    branch=st.booleans(),
    mispredicted=st.booleans(),
)

trace_strategy = st.lists(lookup_strategy, min_size=1, max_size=120)


# --- cache occupancy invariants ----------------------------------------------

@settings(max_examples=60, deadline=None)
@given(trace_strategy, st.sampled_from(["lru", "srrip", "furbys"]))
def test_cache_never_exceeds_way_capacity(lookups, policy_name):
    """No interleaving of insertions may oversubscribe any set."""
    policy = {
        "lru": LRUPolicy,
        "srrip": SRRIPPolicy,
        "furbys": FurbysPolicy,
    }[policy_name]()
    config = UopCacheConfig(entries=16, ways=4, uops_per_entry=8)
    cache = UopCache(config, policy)
    for t, lookup in enumerate(lookups):
        stored = cache.probe(lookup)
        if stored is not None:
            if stored.uops >= lookup.uops:
                policy.on_hit(t, cache.set_index(lookup.start), stored, lookup)
            else:
                policy.on_partial_hit(
                    t, cache.set_index(lookup.start), stored, lookup
                )
        cache.try_insert(t, lookup, weight=t % 8)
        for cset in cache.sets:
            used = sum(p.size for p in cset.pws.values())
            assert used == cset.used_ways
            assert used <= config.ways
            slots = [s for p in cset.pws.values() for s in p.slots]
            assert len(slots) == len(set(slots))  # no slot double-booked
            assert len(slots) + len(cset.free_slots) == config.ways


@settings(max_examples=40, deadline=None)
@given(trace_strategy)
def test_line_map_matches_residency(lookups):
    """Inclusive invalidation bookkeeping never leaks or misses PWs."""
    config = UopCacheConfig(entries=16, ways=4, uops_per_entry=8)
    cache = UopCache(config, LRUPolicy())
    for t, lookup in enumerate(lookups):
        cache.try_insert(t, lookup)
    mapped = {s for starts in cache._line_map.values() for s in starts}
    resident = {p.start for cset in cache.sets for p in cset.pws.values()}
    assert mapped == resident


# --- trace serialization ---------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(trace_strategy, st.text(
    alphabet=st.characters(whitelist_categories=("Ll",)), min_size=1, max_size=8
))
def test_trace_roundtrip(lookups, app):
    trace = Trace(lookups, TraceMetadata(app=app, seed=3))
    buffer = io.StringIO()
    trace.dump(buffer)
    buffer.seek(0)
    restored = Trace.parse(buffer)
    assert restored.lookups == trace.lookups
    assert restored.metadata.app == app


# --- Jenks classification --------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(
    st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=200),
    st.integers(min_value=1, max_value=8),
)
def test_jenks_breaks_cover_all_values(values, k):
    breaks = jenks_breaks(values, k)
    assert len(breaks) == k
    assert breaks == sorted(breaks)
    for value in values:
        group = jenks_group(value, breaks)
        assert 0 <= group < k
    assert breaks[-1] >= max(values)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0),
                min_size=2, max_size=100))
def test_jenks_grouping_is_monotone(values):
    """Larger values never land in a lower class."""
    breaks = jenks_breaks(values, 4)
    ordered = sorted(values)
    groups = [jenks_group(v, breaks) for v in ordered]
    assert groups == sorted(groups)


# --- greedy admission capacity ----------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(trace_strategy, st.integers(min_value=1, max_value=8))
def test_greedy_admission_respects_capacity(lookups, ways):
    """Admitted intervals never oversubscribe any slot of any set."""
    config = UopCacheConfig(entries=ways, ways=ways, uops_per_entry=8)
    per_set, slots = extract_intervals(
        Trace(lookups), config,
        identity=IdentityMode.START, metric=ValueMetric.UOPS,
        set_index_fn=lambda s, n: 0,
    )
    plan = greedy_admission(per_set, slots, ways, len(lookups))
    occupancy = [0] * max(1, slots[0])
    for interval in per_set[0]:
        if plan.keep_from(interval.t_start):
            for slot in range(interval.i_slot, interval.j_slot):
                occupancy[slot] += interval.size
    assert all(level <= ways for level in occupancy)


# --- shadow classifier -----------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(trace_strategy)
def test_shadow_classifier_never_underflows(lookups):
    classifier = _ShadowClassifier(capacity_entries=4, uops_per_entry=8)
    for lookup in lookups:
        classifier.classify(lookup)
        classifier.touch(lookup)
        assert classifier._used >= 0
        assert classifier._used <= 4 or len(classifier._fa) == 0
