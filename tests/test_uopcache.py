"""Unit tests for the micro-op cache storage (repro.uopcache.cache)."""

import pytest

from repro.config import UopCacheConfig
from repro.policies.lru import LRUPolicy
from repro.uopcache.cache import UopCache, default_set_index
from repro.uopcache.replacement import BYPASS, ReplacementPolicy

from .conftest import pw


def make_cache(config=None, policy=None, **kwargs):
    config = config or UopCacheConfig(entries=8, ways=4, uops_per_entry=8)
    return UopCache(config, policy or LRUPolicy(), **kwargs)


def same_set_starts(cache, count, uops=8):
    """Start addresses that all map to set 0 of the cache."""
    starts = []
    addr = 0
    while len(starts) < count:
        if cache.set_index(addr) == 0:
            starts.append(addr)
        addr += 0x40
    return starts


class TestBasicInsertionAndProbe:
    def test_insert_then_probe(self):
        cache = make_cache()
        lookup = pw(0x1000, uops=6)
        result = cache.try_insert(0, lookup)
        assert result.inserted
        stored = cache.probe(lookup)
        assert stored is not None and stored.uops == 6

    def test_probe_miss(self):
        cache = make_cache()
        assert cache.probe(pw(0x9999)) is None

    def test_occupancy_tracks_sizes(self):
        cache = make_cache()
        cache.try_insert(0, pw(0x1000, uops=12))  # 2 entries
        assert cache.resident_entries() == 2
        assert cache.resident_pws() == 1

    def test_oversize_pw_is_never_cached(self):
        cache = make_cache()  # 4 ways -> max 32 uops
        result = cache.try_insert(0, pw(0x1000, uops=40))
        assert not result.inserted
        assert cache.resident_pws() == 0


class TestEvictionAndVictims:
    def test_lru_eviction_when_full(self):
        cache = make_cache()
        starts = same_set_starts(cache, 5)
        for t, start in enumerate(starts[:4]):
            cache.try_insert(t, pw(start, uops=8))
        result = cache.try_insert(10, pw(starts[4], uops=8))
        assert result.inserted
        assert result.evicted_pws == 1
        assert not cache.contains(starts[0])  # oldest evicted
        assert cache.contains(starts[4])

    def test_multi_entry_insert_can_evict_several(self):
        cache = make_cache()
        starts = same_set_starts(cache, 5)
        for t, start in enumerate(starts[:4]):
            cache.try_insert(t, pw(start, uops=8))
        result = cache.try_insert(10, pw(starts[4], uops=16))  # needs 2 ways
        assert result.inserted
        assert result.evicted_pws == 2
        assert result.evicted_entries == 2

    def test_bypass_decision_prevents_insert(self):
        class AlwaysBypass(LRUPolicy):
            def should_bypass(self, now, set_index, incoming, resident, need):
                return True

        cache = make_cache(policy=AlwaysBypass())
        result = cache.try_insert(0, pw(0x1000))
        assert not result.inserted
        assert cache.resident_pws() == 0

    def test_eviction_counters(self):
        cache = make_cache()
        starts = same_set_starts(cache, 6)
        for t, start in enumerate(starts):
            cache.try_insert(t, pw(start, uops=8))
        assert cache.eviction_count == 2


class TestKeepLargerRule:
    def test_smaller_same_start_does_not_displace(self):
        cache = make_cache()
        cache.try_insert(0, pw(0x1000, uops=10))
        result = cache.try_insert(1, pw(0x1000, uops=4))
        assert not result.inserted
        assert cache.probe(pw(0x1000, uops=4)).uops == 10

    def test_larger_same_start_upgrades_in_place(self):
        cache = make_cache()
        cache.try_insert(0, pw(0x1000, uops=4))
        result = cache.try_insert(1, pw(0x1000, uops=12))
        assert result.inserted
        assert cache.probe(pw(0x1000, uops=12)).uops == 12
        assert cache.resident_pws() == 1
        assert cache.resident_entries() == 2
        assert cache.upgrades == 1

    def test_upgrade_preserves_weight_when_unhinted(self):
        cache = make_cache()
        cache.try_insert(0, pw(0x1000, uops=4), weight=5)
        cache.try_insert(1, pw(0x1000, uops=12), weight=None)
        assert cache.probe(pw(0x1000, uops=4)).weight == 5


class TestWaySlots:
    def test_slots_assigned_and_recycled(self):
        cache = make_cache()
        starts = same_set_starts(cache, 5)
        for t, start in enumerate(starts[:4]):
            cache.try_insert(t, pw(start, uops=8))
        occupied = [cache.probe(pw(s)).slots for s in starts[:4]]
        flat = [slot for slots in occupied for slot in slots]
        assert sorted(flat) == [0, 1, 2, 3]
        cache.try_insert(10, pw(starts[4], uops=8))
        new_slots = cache.probe(pw(starts[4])).slots
        assert len(new_slots) == 1
        # Recycled slot of the evicted LRU window.
        assert new_slots[0] in (0, 1, 2, 3)

    def test_multi_entry_pw_owns_multiple_slots(self):
        cache = make_cache()
        cache.try_insert(0, pw(0x1000, uops=20))
        stored = cache.probe(pw(0x1000, uops=20))
        assert len(stored.slots) == 3


class TestInclusivity:
    def test_invalidate_line_removes_overlapping_pws(self):
        cache = make_cache()
        lookup = pw(0x1010, uops=8, bytes_len=24)
        cache.try_insert(0, lookup)
        removed = cache.invalidate_line(1, 0x1000)
        assert removed == 1
        assert cache.probe(lookup) is None
        assert cache.inclusive_invalidations == 1

    def test_invalidate_straddling_pw_from_either_line(self):
        cache = make_cache()
        straddle = pw(0x1030, uops=8, bytes_len=40)  # crosses 0x1040
        cache.try_insert(0, straddle)
        assert cache.invalidate_line(1, 0x1040) == 1

    def test_invalidate_untouched_line_is_noop(self):
        cache = make_cache()
        cache.try_insert(0, pw(0x1000))
        assert cache.invalidate_line(1, 0x8000) == 0

    def test_flush_empties_cache(self):
        cache = make_cache()
        cache.try_insert(0, pw(0x1000))
        cache.try_insert(1, pw(0x2000))
        cache.flush()
        assert cache.resident_pws() == 0
        assert cache.resident_entries() == 0

    def test_flush_counts_as_flushes_not_invalidations(self):
        cache = make_cache()
        cache.try_insert(0, pw(0x1000))
        cache.try_insert(1, pw(0x2000))
        cache.flush()
        assert cache.flushes == 2
        assert cache.inclusive_invalidations == 0
        assert cache.eviction_count == 0
        assert cache.upgrades == 0


class TestSetIndex:
    def test_default_set_index_folds_high_bits(self):
        assert default_set_index(0x0, 64) == 0
        a = default_set_index(0x400000, 64)
        b = default_set_index(0x400000 + (64 << 5), 64)
        assert 0 <= a < 64 and 0 <= b < 64

    def test_custom_set_index_is_used(self):
        cache = make_cache(set_index=lambda start, n: 1)
        cache.try_insert(0, pw(0x1000))
        assert len(cache.sets[1]) == 1
